// serve_client — command-line client for the tcgrid_serve daemon.
//
// Speaks the newline-delimited-JSON serve protocol (DESIGN.md §11) over the
// daemon's unix socket. Result rows stream to stdout as JSONL, one line per
// (scenario, trial, heuristic); everything else (acks, status) also prints
// as the raw protocol line so output is scriptable.
//
//   serve_client submit   --socket S --tenant T (--spec FILE | --reduced M [--cap N])
//                         [--job ID] [--follow]
//   serve_client status   --socket S --job ID
//   serve_client results  --socket S --job ID [--from N] [--wait]
//   serve_client cancel   --socket S --job ID
//   serve_client counters --socket S
//
// `submit --follow` submits, then streams rows until the job is terminal —
// the one-command equivalent of run_experiment against a warm daemon.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/api.hpp"
#include "api/spec_json.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace {

namespace json = tcgrid::util::json;
using tcgrid::util::LineChannel;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: serve_client <submit|status|results|cancel|counters> --socket PATH ...\n"
      "  submit   --tenant T (--spec FILE | --reduced M [--cap N]) [--job ID] [--follow]\n"
      "  status   --job ID\n"
      "  results  --job ID [--from N] [--wait]\n"
      "  cancel   --job ID\n");
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// One request, one response line. Throws on transport failure.
std::string roundtrip(LineChannel& ch, const std::string& request) {
  if (!ch.write_line(request)) throw std::runtime_error("server closed the connection");
  std::string response;
  if (!ch.read_line(response)) throw std::runtime_error("server closed the connection");
  return response;
}

/// Print protocol lines until the "end" record; returns the end line.
/// Row lines go to stdout verbatim (they ARE the output format).
std::string stream_rows(LineChannel& ch) {
  std::string line;
  while (ch.read_line(line)) {
    const json::Value v = json::parse(line);
    if (const json::Value* type = v.find("type");
        type != nullptr && type->is_string() && type->as_string() == "end") {
      return line;
    }
    if (const json::Value* ok = v.find("ok"); ok != nullptr && ok->is_bool() &&
                                              !ok->as_bool()) {
      throw std::runtime_error("server error: " + line);
    }
    std::printf("%s\n", line.c_str());
  }
  throw std::runtime_error("server closed the connection mid-stream");
}

/// Fails loudly on {"ok":false,...} responses so scripts see exit 1.
void check_ok(const std::string& response) {
  const json::Value v = json::parse(response);
  const json::Value* ok = v.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    throw std::runtime_error("server error: " + response);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];

  std::string socket_path, tenant, spec_file, job;
  int reduced_m = 0;
  long cap = 200'000;
  std::size_t from = 0;
  bool follow = false, wait = false;
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage();
        return argv[++i];
      };
      if (arg == "--socket") socket_path = next();
      else if (arg == "--tenant") tenant = next();
      else if (arg == "--spec") spec_file = next();
      else if (arg == "--reduced") reduced_m = std::stoi(next());
      else if (arg == "--cap") cap = std::stol(next());
      else if (arg == "--job") job = next();
      else if (arg == "--from") from = std::stoul(next());
      else if (arg == "--follow") follow = true;
      else if (arg == "--wait") wait = true;
      else usage();
    }
    if (socket_path.empty()) usage();

    tcgrid::util::Fd fd = tcgrid::util::connect_unix(socket_path);
    LineChannel ch(fd.get());

    if (command == "submit") {
      if (tenant.empty() || (spec_file.empty() && reduced_m == 0)) usage();
      json::Value spec_value;
      if (!spec_file.empty()) {
        spec_value = json::parse(read_file(spec_file));
      } else {
        spec_value = tcgrid::api::spec_to_json(
            tcgrid::api::ExperimentSpec::reduced(reduced_m, cap));
      }
      const std::string response =
          roundtrip(ch, tcgrid::serve::submit_request(tenant, spec_value, job));
      check_ok(response);
      std::fprintf(stderr, "%s\n", response.c_str());
      if (follow) {
        const json::Value ack = json::parse(response);
        const std::string job_id = ack.find("job")->as_string();
        if (!ch.write_line(tcgrid::serve::results_request(job_id, 0, /*wait=*/true))) {
          throw std::runtime_error("server closed the connection");
        }
        std::fprintf(stderr, "%s\n", stream_rows(ch).c_str());
      }
    } else if (command == "status") {
      if (job.empty()) usage();
      const std::string response = roundtrip(ch, tcgrid::serve::status_request(job));
      check_ok(response);
      std::printf("%s\n", response.c_str());
    } else if (command == "results") {
      if (job.empty()) usage();
      if (!ch.write_line(tcgrid::serve::results_request(job, from, wait))) {
        throw std::runtime_error("server closed the connection");
      }
      std::fprintf(stderr, "%s\n", stream_rows(ch).c_str());
    } else if (command == "cancel") {
      if (job.empty()) usage();
      const std::string response = roundtrip(ch, tcgrid::serve::cancel_request(job));
      check_ok(response);
      std::printf("%s\n", response.c_str());
    } else if (command == "counters") {
      const std::string response = roundtrip(ch, tcgrid::serve::counters_request());
      check_ok(response);
      std::printf("%s\n", response.c_str());
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
