// serve_client — command-line client for the tcgrid_serve daemon.
//
// Speaks the newline-delimited-JSON serve protocol (DESIGN.md §11) over the
// daemon's unix socket. Result rows stream to stdout as JSONL, one line per
// (scenario, trial, heuristic); everything else (acks, status) also prints
// as the raw protocol line so output is scriptable.
//
//   serve_client submit   --socket S --tenant T (--spec FILE | --reduced M [--cap N])
//                         [--job ID] [--follow]
//   serve_client status   --socket S --job ID
//   serve_client results  --socket S --job ID [--from N] [--wait]
//   serve_client cancel   --socket S --job ID
//   serve_client counters --socket S [--json]
//   serve_client metrics  --socket S [--json | --prometheus]
//   serve_client register --socket S --shard ADDR
//
// --socket accepts a unix path or "tcp:HOST:PORT" (any daemon started with
// --listen-tcp). `register` tells a coordinator daemon to start leasing
// units to the shard daemon at ADDR — the runtime way to grow the fleet.
// `submit --follow` submits, then streams rows until the job is terminal —
// the one-command equivalent of run_experiment against a warm daemon.
// `counters` and `metrics` render aligned tables for humans by default;
// --json keeps the raw one-line protocol response for scripts, and
// `metrics --prometheus` prints the text exposition for a scrape pipeline.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "api/api.hpp"
#include "api/spec_json.hpp"
#include "serve/protocol.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"
#include "util/table.hpp"

namespace {

namespace json = tcgrid::util::json;
using tcgrid::util::LineChannel;

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: serve_client <submit|status|results|cancel|counters|metrics|register> --socket PATH ...\n"
      "  submit   --tenant T (--spec FILE | --reduced M [--cap N]) [--job ID] [--follow]\n"
      "  status   --job ID\n"
      "  results  --job ID [--from N] [--wait]\n"
      "  cancel   --job ID\n"
      "  counters [--json]\n"
      "  metrics  [--json | --prometheus]\n"
      "  register --shard ADDR   (tell a coordinator to lease to the shard at ADDR)\n"
      "  PATH is a unix socket path or tcp:HOST:PORT\n");
  std::exit(2);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

/// One request, one response line. Throws on transport failure.
std::string roundtrip(LineChannel& ch, const std::string& request) {
  if (!ch.write_line(request)) throw std::runtime_error("server closed the connection");
  std::string response;
  if (!ch.read_line(response)) throw std::runtime_error("server closed the connection");
  return response;
}

/// Print protocol lines until the "end" record; returns the end line.
/// Row lines go to stdout verbatim (they ARE the output format).
std::string stream_rows(LineChannel& ch) {
  std::string line;
  while (ch.read_line(line)) {
    const json::Value v = json::parse(line);
    if (const json::Value* type = v.find("type");
        type != nullptr && type->is_string() && type->as_string() == "end") {
      return line;
    }
    if (const json::Value* ok = v.find("ok"); ok != nullptr && ok->is_bool() &&
                                              !ok->as_bool()) {
      throw std::runtime_error("server error: " + line);
    }
    std::printf("%s\n", line.c_str());
  }
  throw std::runtime_error("server closed the connection mid-stream");
}

/// Fails loudly on {"ok":false,...} responses so scripts see exit 1.
void check_ok(const std::string& response) {
  const json::Value v = json::parse(response);
  const json::Value* ok = v.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) {
    throw std::runtime_error("server error: " + response);
  }
}

std::string uint_cell(const json::Value& parent, const char* key) {
  const json::Value* v = parent.find(key);
  return v == nullptr ? "-" : std::to_string(v->as_uint());
}

/// Human-readable rendering of a `counters` response: one fleet summary
/// line, then one table row per tenant.
void print_counters_table(const json::Value& v) {
  const json::Value* fleet = v.find("fleet");
  std::printf("threads %s  jobs %s", uint_cell(v, "threads").c_str(),
              uint_cell(v, "jobs").c_str());
  if (fleet != nullptr) {
    std::printf("  queue %s  inflight %s  busy %s",
                uint_cell(*fleet, "queue_depth").c_str(),
                uint_cell(*fleet, "inflight_units").c_str(),
                uint_cell(*fleet, "busy_workers").c_str());
  }
  std::printf("\n");
  if (const json::Value* coord = v.find("coordinator"); coord != nullptr) {
    std::printf(
        "coordinator: shards %s (%s live)  leased %s  stolen %s  "
        "re-dispatched %s  duplicate commits %s\n",
        uint_cell(*coord, "shards").c_str(), uint_cell(*coord, "live_shards").c_str(),
        uint_cell(*coord, "leased_units").c_str(),
        uint_cell(*coord, "stolen_units").c_str(),
        uint_cell(*coord, "redispatched_units").c_str(),
        uint_cell(*coord, "duplicate_commits").c_str());
  }
  std::printf("\n");
  tcgrid::util::Table table({"tenant", "jobs", "units", "rows", "inflight",
                             "draining", "evictions", "chains", "set hits",
                             "store bytes"});
  if (const json::Value* tenants = v.find("tenants"); tenants != nullptr) {
    for (const auto& [name, t] : tenants->as_object()) {
      const json::Value* store = t.find("chain_store");
      table.add_row(
          {name, uint_cell(t, "jobs"), uint_cell(t, "units_done"),
           uint_cell(t, "rows"), uint_cell(t, "inflight"),
           t.find("draining")->as_bool() ? "yes" : "no", uint_cell(t, "evictions"),
           store != nullptr ? uint_cell(*store, "chains") : "-",
           store != nullptr ? uint_cell(*store, "set_hits") : "-",
           store != nullptr ? uint_cell(*store, "bytes") : "-"});
    }
  }
  std::printf("%s", table.str().c_str());
}

/// Human-readable rendering of a `metrics` response: one table row per
/// series — counters/gauges show their value, histograms count + mean.
void print_metrics_table(const json::Value& v) {
  if (const json::Value* enabled = v.find("enabled");
      enabled != nullptr && enabled->is_bool() && !enabled->as_bool()) {
    std::printf("(obs disabled on the daemon — series are registered but zero)\n");
  }
  tcgrid::util::Table table({"metric", "labels", "kind", "value", "mean"});
  const json::Value* metrics = v.find("metrics");
  if (metrics == nullptr || !metrics->is_array()) {
    throw std::runtime_error("metrics: malformed response (no metrics array)");
  }
  for (const json::Value& m : metrics->as_array()) {
    std::string labels;
    if (const json::Value* l = m.find("labels"); l != nullptr) {
      for (const auto& [k, lv] : l->as_object()) {
        if (!labels.empty()) labels += ',';
        labels += k + "=" + lv.as_string();
      }
    }
    const std::string kind = m.find("kind")->as_string();
    std::string value, mean = "-";
    if (kind == "histogram") {
      const unsigned long long count = m.find("count")->as_uint();
      const unsigned long long sum = m.find("sum")->as_uint();
      value = std::to_string(count);
      if (count > 0) {
        mean = tcgrid::util::Table::num(static_cast<double>(sum) /
                                        static_cast<double>(count));
      }
    } else {
      value = json::dump(*m.find("value"));
    }
    table.add_row({m.find("name")->as_string(), labels, kind, value, mean});
  }
  std::printf("%s", table.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];

  std::string socket_path, tenant, spec_file, job, shard;
  int reduced_m = 0;
  long cap = 200'000;
  std::size_t from = 0;
  bool follow = false, wait = false, raw_json = false, prometheus = false;
  try {
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) usage();
        return argv[++i];
      };
      if (arg == "--socket") socket_path = next();
      else if (arg == "--tenant") tenant = next();
      else if (arg == "--spec") spec_file = next();
      else if (arg == "--reduced") reduced_m = std::stoi(next());
      else if (arg == "--cap") cap = std::stol(next());
      else if (arg == "--job") job = next();
      else if (arg == "--from") from = std::stoul(next());
      else if (arg == "--follow") follow = true;
      else if (arg == "--wait") wait = true;
      else if (arg == "--json") raw_json = true;
      else if (arg == "--prometheus") prometheus = true;
      else if (arg == "--shard") shard = next();
      else usage();
    }
    if (socket_path.empty()) usage();

    tcgrid::util::Fd fd = tcgrid::util::connect_address(socket_path);
    LineChannel ch(fd.get());

    if (command == "submit") {
      if (tenant.empty() || (spec_file.empty() && reduced_m == 0)) usage();
      json::Value spec_value;
      if (!spec_file.empty()) {
        spec_value = json::parse(read_file(spec_file));
      } else {
        spec_value = tcgrid::api::spec_to_json(
            tcgrid::api::ExperimentSpec::reduced(reduced_m, cap));
      }
      const std::string response =
          roundtrip(ch, tcgrid::serve::submit_request(tenant, spec_value, job));
      check_ok(response);
      std::fprintf(stderr, "%s\n", response.c_str());
      if (follow) {
        const json::Value ack = json::parse(response);
        const std::string job_id = ack.find("job")->as_string();
        if (!ch.write_line(tcgrid::serve::results_request(job_id, 0, /*wait=*/true))) {
          throw std::runtime_error("server closed the connection");
        }
        std::fprintf(stderr, "%s\n", stream_rows(ch).c_str());
      }
    } else if (command == "status") {
      if (job.empty()) usage();
      const std::string response = roundtrip(ch, tcgrid::serve::status_request(job));
      check_ok(response);
      std::printf("%s\n", response.c_str());
    } else if (command == "results") {
      if (job.empty()) usage();
      if (!ch.write_line(tcgrid::serve::results_request(job, from, wait))) {
        throw std::runtime_error("server closed the connection");
      }
      std::fprintf(stderr, "%s\n", stream_rows(ch).c_str());
    } else if (command == "cancel") {
      if (job.empty()) usage();
      const std::string response = roundtrip(ch, tcgrid::serve::cancel_request(job));
      check_ok(response);
      std::printf("%s\n", response.c_str());
    } else if (command == "counters") {
      const std::string response = roundtrip(ch, tcgrid::serve::counters_request());
      check_ok(response);
      if (raw_json) std::printf("%s\n", response.c_str());
      else print_counters_table(json::parse(response));
    } else if (command == "metrics") {
      const std::string response = roundtrip(
          ch, tcgrid::serve::metrics_request(prometheus ? "prometheus" : "json"));
      check_ok(response);
      if (prometheus) {
        // The exposition text rides inside the JSON response (the protocol
        // is line-based); unwrap it for piping into a scrape file.
        std::printf("%s", json::parse(response).find("prometheus")->as_string().c_str());
      } else if (raw_json) {
        std::printf("%s\n", response.c_str());
      } else {
        print_metrics_table(json::parse(response));
      }
    } else if (command == "register") {
      if (shard.empty()) usage();
      const std::string response =
          roundtrip(ch, tcgrid::serve::register_request(shard));
      check_ok(response);
      std::printf("%s\n", response.c_str());
    } else {
      usage();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
