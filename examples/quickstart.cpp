// Quickstart: build one of the paper's random scenarios, run a handful of
// heuristics on the same availability realization, and compare makespans.
//
// All wiring (scenario instantiation, estimator construction/reuse,
// scheduler creation, engine setup) lives behind api::Session.
//
//   ./quickstart [--m 5] [--ncom 5] [--wmin 2] [--seed 7] [--cap 200000]
#include <iostream>

#include "api/api.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);

  platform::ScenarioParams params;
  params.m = static_cast<int>(cli.get_long("m", 5));
  params.ncom = static_cast<int>(cli.get_long("ncom", 5));
  params.wmin = cli.get_long("wmin", 2);
  params.seed = static_cast<std::uint64_t>(cli.get_long("seed", 7));

  api::Options options;
  options.slot_cap = cli.get_long("cap", 200'000);
  api::Session session(options);

  const platform::Scenario& scenario = session.scenario_for(params);
  std::cout << "Scenario: p=" << params.p << " m=" << params.m
            << " ncom=" << params.ncom << " wmin=" << params.wmin
            << " Tprog=" << scenario.app.t_prog << " Tdata=" << scenario.app.t_data
            << " (10 iterations to complete)\n\n";

  util::Table table({"Heuristic", "makespan", "restarts", "reconfigs", "status"});
  for (const char* name : {"RANDOM", "IE", "IAY", "Y-IE", "P-IE", "E-IAY"}) {
    const sim::SimulationResult r = session.run_trial(params, name, /*trial=*/0);
    table.add_row({name, std::to_string(r.makespan), std::to_string(r.total_restarts),
                   std::to_string(r.total_reconfigurations),
                   r.success ? "ok" : "CAP HIT"});
  }
  std::cout << table.str()
            << "\nAll heuristics faced the identical availability realization.\n";
  return 0;
}
