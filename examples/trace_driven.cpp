// Trace-driven scheduling: instead of sampling availability on the fly,
// record a (possibly non-Markovian) trace to a file, fit a Markov model
// from it, and drive the scheduler against the replayed trace — the
// workflow a practitioner would use with real desktop-grid logs.
//
//   ./trace_driven [--trace path] [--slots 20000] [--wmin 2] [--seed 9]
//
// Without --trace, a heavy-tailed semi-Markov trace is synthesized first
// (Weibull sojourns, shape 0.7), standing in for a production log.
#include <fstream>
#include <iostream>
#include <sstream>

#include "api/api.hpp"
#include "offline/clairvoyant.hpp"
#include "platform/availability.hpp"
#include "platform/semi_markov.hpp"
#include "platform/trace_io.hpp"
#include "sched/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);
  const long slots = cli.get_long("slots", 20'000);
  const auto seed = static_cast<std::uint64_t>(cli.get_long("seed", 9));

  platform::ScenarioParams params;
  params.wmin = cli.get_long("wmin", 2);
  params.seed = seed;
  auto scenario = platform::make_scenario(params);

  // --- obtain a trace ------------------------------------------------------
  platform::StateTimeline timeline;
  if (cli.has("trace")) {
    const std::string path = cli.get("trace", "");
    timeline = platform::load_trace(path);
    std::cout << "loaded trace " << path << ": " << timeline.size() << " slots x "
              << timeline.front().size() << " processors\n";
  } else {
    std::vector<platform::SemiMarkovParams> sm(
        static_cast<std::size_t>(scenario.platform.size()));
    for (auto& s : sm) {
      s.shape = {0.7, 0.7, 0.7};
      s.scale = {40.0, 12.0, 12.0};  // mostly-up processors, heavy tails
    }
    platform::SemiMarkovAvailability source(sm, seed);
    timeline = platform::record(source, slots);
    std::ostringstream buf;
    platform::write_trace(buf, timeline);
    std::ofstream out("synthetic_trace.txt");
    out << "# synthetic semi-Markov desktop-grid trace (u/r/d per processor)\n"
        << buf.str();
    std::cout << "synthesized " << slots << "-slot semi-Markov trace "
              << "(saved to synthetic_trace.txt)\n";
  }

  // --- fit a Markov model from the trace (the §VII-B workflow) -------------
  std::vector<platform::Processor> believed = {scenario.platform.procs().begin(),
                                               scenario.platform.procs().end()};
  for (int q = 0; q < scenario.platform.size(); ++q) {
    believed[static_cast<std::size_t>(q)].availability =
        platform::fit_transition_matrix(timeline, q);
  }
  platform::Platform believed_platform(std::move(believed), scenario.platform.ncom());
  sched::Estimator estimator(believed_platform, scenario.app, 1e-6);

  const auto pi0 = believed_platform.proc(0).availability.stationary();
  std::cout << "fitted model, e.g. P1: stationary (UP,RECLAIMED,DOWN) = ("
            << util::Table::num(pi0[0]) << ", " << util::Table::num(pi0[1]) << ", "
            << util::Table::num(pi0[2]) << ")\n\n";

  // --- replay the trace under several heuristics ---------------------------
  api::Options options;
  options.slot_cap = static_cast<long>(timeline.size());
  api::Session session(options);

  util::Table table({"Heuristic", "makespan", "iterations", "restarts", "status"});
  for (const char* name : {"RANDOM", "IE", "IAY", "Y-IE", "P-IE"}) {
    platform::FixedAvailability avail(timeline);
    auto scheduler = sched::make_scheduler(name, estimator, seed);
    const auto r =
        session.run_custom(scenario.platform, scenario.app, avail, *scheduler);
    table.add_row({name, std::to_string(r.makespan),
                   std::to_string(r.iterations_completed),
                   std::to_string(r.total_restarts),
                   r.success ? "ok" : "trace exhausted"});
  }
  // Clairvoyant reference: same trace, but with full future knowledge.
  {
    offline::ClairvoyantScheduler clair(scenario.platform, scenario.app, timeline);
    platform::FixedAvailability avail(timeline);
    const auto r = session.run_custom(scenario.platform, scenario.app, avail, clair);
    table.add_row({"CLAIRVOYANT", std::to_string(r.makespan),
                   std::to_string(r.iterations_completed),
                   std::to_string(r.total_restarts),
                   r.success ? "ok" : "trace exhausted"});
  }

  std::cout << table.str()
            << "\nSchedulers used a Markov model *fitted from the trace* while"
               "\nthe replayed availability is heavy-tailed — the model-mismatch"
               "\nsetting the paper proposes as future work (see bench_mismatch)."
               "\nCLAIRVOYANT sees the whole trace in advance (SIV's off-line"
               "\nsetting): the gap to it prices the lack of future knowledge.\n";
  return 0;
}
