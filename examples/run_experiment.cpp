// Full-featured single-run driver: every model knob on the command line,
// any registered heuristic (paper or extension), optional ASCII Gantt of a
// chosen window, per-iteration anatomy, and CSV export of repeated trials.
//
//   ./run_experiment --heuristic Y-IE --m 5 --ncom 5 --wmin 3 --seed 7
//                    [--p 20] [--iterations 10] [--trials 1] [--cap 1000000]
//                    [--eps 1e-6] [--gantt-from 0 --gantt-to 120]
//                    [--csv out.csv] [--list]
#include <iostream>

#include "api/api.hpp"
#include "sched/registry.hpp"
#include "sim/gantt.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);

  if (cli.has("list")) {
    std::cout << "paper heuristics:";
    for (const auto& n : sched::all_heuristic_names()) std::cout << ' ' << n;
    std::cout << "\nextensions:";
    for (const auto& n : sched::extension_heuristic_names()) std::cout << ' ' << n;
    std::cout << '\n';
    return 0;
  }

  const std::string heuristic = cli.get("heuristic", "Y-IE");
  if (!sched::is_heuristic_name(heuristic)) {
    std::cerr << "unknown heuristic '" << heuristic << "' (try --list)\n";
    return 1;
  }

  platform::ScenarioParams params;
  params.m = static_cast<int>(cli.get_long("m", 5));
  params.ncom = static_cast<int>(cli.get_long("ncom", 5));
  params.wmin = cli.get_long("wmin", 3);
  params.p = static_cast<int>(cli.get_long("p", 20));
  params.iterations = static_cast<int>(cli.get_long("iterations", 10));
  params.seed = static_cast<std::uint64_t>(cli.get_long("seed", 7));

  api::Options options;
  options.slot_cap = cli.get_long("cap", 1'000'000);
  options.eps = cli.get_double("eps", 1e-6);
  api::Session session(options);

  const int trials = static_cast<int>(cli.get_long("trials", 1));
  const long gantt_from = cli.get_long("gantt-from", -1);
  const long gantt_to = cli.get_long("gantt-to", gantt_from >= 0 ? gantt_from + 120 : -1);

  util::CsvWriter csv({"trial", "success", "makespan", "restarts", "reconfigs",
                       "idle_slots"});
  util::Table summary({"trial", "makespan", "restarts", "reconfigs", "status"});

  for (int trial = 0; trial < trials; ++trial) {
    const bool want_trace = gantt_from >= 0 && trial == 0;
    sim::ActivityTrace trace;
    const auto r = session.run_trial(params, heuristic, trial,
                                     want_trace ? &trace : nullptr);

    summary.add_row({std::to_string(trial), std::to_string(r.makespan),
                     std::to_string(r.total_restarts),
                     std::to_string(r.total_reconfigurations),
                     r.success ? "ok" : "CAP HIT"});
    csv.add_row({std::to_string(trial), r.success ? "1" : "0",
                 std::to_string(r.makespan), std::to_string(r.total_restarts),
                 std::to_string(r.total_reconfigurations),
                 std::to_string(r.idle_slots)});

    if (trial == 0) {
      std::cout << heuristic << " on p=" << params.p << " m=" << params.m
                << " ncom=" << params.ncom << " wmin=" << params.wmin
                << " (seed " << params.seed << ")\n\n";
      util::Table anatomy({"iteration", "slots", "comm", "compute", "suspended",
                           "restarts", "reconfigs"});
      for (std::size_t i = 0; i < r.iterations.size(); ++i) {
        const auto& it = r.iterations[i];
        anatomy.add_row(
            {std::to_string(i + 1), std::to_string(it.end_slot - it.start_slot + 1),
             std::to_string(it.comm_slots), std::to_string(it.compute_slots),
             std::to_string(it.suspended_slots), std::to_string(it.restarts),
             std::to_string(it.reconfigurations)});
      }
      std::cout << anatomy.str() << '\n';
      if (want_trace) {
        std::cout << "Gantt, slots [" << gantt_from << ", " << gantt_to << "):\n"
                  << sim::render_gantt(trace, gantt_from, gantt_to)
                  << sim::gantt_legend() << '\n';
      }
    }
  }

  std::cout << summary.str();
  if (cli.has("csv")) {
    const std::string path = cli.get("csv", "run.csv");
    std::cout << (csv.save(path) ? "wrote " : "FAILED to write ") << path << '\n';
  }
  return 0;
}
