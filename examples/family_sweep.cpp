// Cross-family sweep: the same factorial experiment run in several worlds.
//
// Demonstrates the scen subsystem end to end: one ExperimentSpec, one
// Session, and a loop over availability-family names. Scenario seeds are
// space-independent, so every family sees the SAME platforms — differences
// in the table below are purely the availability law. A custom trace-replay
// family is registered on the fly from a recorded daynight trace to show
// the registration path.
//
//   ./family_sweep [--families markov,weibull,daynight] [--cap N]
//                  [--scenarios N] [--trials N] [--csv PATH]
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "expt/metrics.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "scen/scen.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace tcgrid;

namespace {

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string name;
  while (std::getline(in, name, ',')) {
    if (!name.empty()) out.push_back(name);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const long cap = cli.get_long("cap", 150'000);
  const int scenarios = static_cast<int>(cli.get_long("scenarios", 2));
  const int trials = static_cast<int>(cli.get_long("trials", 2));
  const std::string csv_path = cli.get("csv", "");

  // Register a trace-replay family: record 20k slots of the daynight world
  // on a representative platform and replay windows of it per trial.
  {
    platform::ScenarioParams rec_params;
    rec_params.seed = 7;
    const auto rec_scenario = platform::make_scenario(rec_params);
    auto src = scen::availability_family("daynight")
                   ->make_source(rec_scenario.platform, 99,
                                 platform::InitialStates::Stationary);
    auto timeline = std::make_shared<platform::StateTimeline>(
        platform::record(*src, 20'000));
    scen::register_availability_family(
        scen::make_trace_family("recorded", {std::move(timeline)}));
  }

  const std::vector<std::string> families =
      split_names(cli.get("families", "markov,weibull,daynight,recorded"));
  const std::vector<std::string> heuristics = {"IE", "Y-IE", "P-IE", "E-IAY"};

  std::cout << "== Cross-family sweep ==\nfamilies:";
  for (const auto& f : families) std::cout << ' ' << f;
  std::cout << "\nheuristics: IE Y-IE P-IE E-IAY, " << scenarios
            << " scenario(s)/cell x " << trials << " trial(s), cap " << cap << "\n\n";

  std::unique_ptr<api::CsvSink> csv;
  if (!csv_path.empty()) csv = std::make_unique<api::CsvSink>(csv_path);

  util::Table table({"family", "IE", "Y-IE", "P-IE", "E-IAY", "unfinished"});
  for (const auto& family : families) {
    api::ExperimentSpec spec = api::ExperimentSpec::reduced(5, cap);
    spec.grid.ncoms = {5, 20};
    spec.grid.wmins = {1, 4, 8};
    spec.grid.scenarios_per_cell = scenarios;
    spec.trials = trials;
    spec.heuristics = heuristics;
    spec.scenario_space.availability = family;

    api::AggregateSink aggregate;
    std::vector<api::ResultSink*> sinks{&aggregate};
    if (csv != nullptr) sinks.push_back(csv.get());
    api::Session().run(spec, sinks);

    const auto& results = aggregate.results();
    std::vector<std::string> row{family};
    long unfinished = 0;
    for (const auto& h : heuristics) {
      const auto idx = static_cast<std::size_t>(results.heuristic_index(h));
      double sum = 0;
      long n = 0;
      for (const auto& per_scenario : results.outcomes[idx]) {
        for (const auto& outcome : per_scenario) {
          if (outcome.success) {
            sum += static_cast<double>(outcome.makespan);
            ++n;
          } else {
            ++unfinished;
          }
        }
      }
      row.push_back(n > 0 ? util::Table::num(sum / static_cast<double>(n), 0) : "-");
    }
    row.push_back(std::to_string(unfinished));
    table.add_row(row);
  }
  std::cout << table.str()
            << "\nmean makespan over completed (scenario, trial) pairs; identical"
               "\nplatforms per row — only the availability law differs.\n";
  if (csv != nullptr) std::cout << "raw outcomes -> " << csv_path << "\n";
  return 0;
}
