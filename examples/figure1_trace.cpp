// Reproduces the paper's Figure 1: an example iteration execution with
// m = 5 tasks on p = 5 heterogeneous processors (w_i = i), ncom = 2,
// Tprog = 2, Tdata = 1, rendered as an ASCII Gantt chart.
//
// The availability script mirrors the paper's walk-through: P1 and P5 are
// unavailable when the configuration is chosen; P3 is reclaimed during the
// communication phase; P2 and P3 are reclaimed mid-computation, suspending
// everyone; the iteration completes at the global synchronization.
#include <iostream>

#include "api/api.hpp"
#include "platform/availability.hpp"
#include "sim/gantt.hpp"

int main() {
  using namespace tcgrid;
  using markov::State;

  // Availability script (slot-by-slot; beyond the script everything is UP).
  std::vector<std::vector<State>> script(
      15, {State::Down, State::Up, State::Up, State::Up, State::Down});
  script[2][2] = State::Reclaimed;  // P3 reclaimed right after its program
  script[3][2] = State::Reclaimed;
  script[9][1] = State::Reclaimed;  // P2 reclaimed mid-computation
  script[10][1] = State::Reclaimed;
  script[9][2] = State::Reclaimed;  // P3 too, one slot longer
  script[10][2] = State::Reclaimed;
  script[11][2] = State::Reclaimed;
  platform::FixedAvailability avail(script);

  // Heterogeneous platform: w_i = i, bounded multi-port master with ncom = 2.
  std::vector<platform::Processor> procs(5);
  for (int q = 0; q < 5; ++q) {
    procs[static_cast<std::size_t>(q)].speed = q + 1;
    procs[static_cast<std::size_t>(q)].max_tasks = 5;
    procs[static_cast<std::size_t>(q)].availability =
        markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
  }
  platform::Platform plat(std::move(procs), /*ncom=*/2);

  model::Application app;
  app.num_tasks = 5;
  app.t_prog = 2;
  app.t_data = 1;
  app.iterations = 1;

  // The paper's example mapping: 2 tasks on P2, 2 on P3, 1 on P4 -> W = 6.
  class Fixed final : public sim::Scheduler {
   public:
    std::optional<model::Configuration> decide(const sim::SchedulerView& view) override {
      if (view.has_config()) return std::nullopt;
      for (int q : {1, 2, 3}) {
        if (view.states[static_cast<std::size_t>(q)] != markov::State::Up) {
          return std::nullopt;
        }
      }
      return model::Configuration({{1, 2}, {2, 2}, {3, 1}});
    }
    [[nodiscard]] std::string_view name() const override { return "figure1"; }
  } sched;

  api::Session session;
  sim::ActivityTrace trace;
  const auto result = session.run_custom(plat, app, avail, sched, &trace);

  std::cout << "Figure 1 reproduction: one iteration, m=5 tasks, ncom=2, "
               "Tprog=2, Tdata=1, config {P2:2, P3:2, P4:1}, W=6\n\n"
            << sim::render_gantt(trace) << '\n'
            << sim::gantt_legend() << '\n'
            << "iteration completed at slot " << result.makespan - 1 << " ("
            << result.iterations[0].comm_slots << " communication slots, "
            << result.iterations[0].compute_slots << " compute slots, "
            << result.iterations[0].suspended_slots << " suspended slots)\n";
  return 0;
}
