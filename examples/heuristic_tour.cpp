// Tour of all 17 heuristics on one scenario: runs every heuristic on the
// same availability realizations and prints per-heuristic makespans plus a
// short anatomy of the winner's execution (restarts, reconfigurations,
// comm/compute/suspended slots per iteration).
//
//   ./heuristic_tour [--m 5] [--ncom 5] [--wmin 3] [--seed 11] [--trials 3]
#include <algorithm>
#include <iostream>
#include <vector>

#include "api/api.hpp"
#include "sched/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);

  platform::ScenarioParams params;
  params.m = static_cast<int>(cli.get_long("m", 5));
  params.ncom = static_cast<int>(cli.get_long("ncom", 5));
  params.wmin = cli.get_long("wmin", 3);
  params.seed = static_cast<std::uint64_t>(cli.get_long("seed", 11));
  const int trials = static_cast<int>(cli.get_long("trials", 3));

  api::Options options;
  options.slot_cap = cli.get_long("cap", 500'000);
  api::Session session(options);  // one estimator, reused across the tour

  std::cout << "Scenario: p=20, m=" << params.m << ", ncom=" << params.ncom
            << ", wmin=" << params.wmin << ", " << trials
            << " trial(s), 10 iterations per run\n\n";

  struct Row {
    std::string name;
    double mean = 0.0;
    int fails = 0;
    long restarts = 0, reconfigs = 0;
  };
  std::vector<Row> rows;
  std::string best_name;
  double best_mean = -1.0;

  for (const auto& name : sched::all_heuristic_names()) {
    Row row;
    row.name = name;
    int ok = 0;
    for (int t = 0; t < trials; ++t) {
      const auto r = session.run_trial(params, name, t);
      if (r.success) {
        row.mean += static_cast<double>(r.makespan);
        ++ok;
      } else {
        ++row.fails;
      }
      row.restarts += r.total_restarts;
      row.reconfigs += r.total_reconfigurations;
    }
    row.mean = ok > 0 ? row.mean / ok : 0.0;
    if (ok > 0 && (best_mean < 0 || row.mean < best_mean)) {
      best_mean = row.mean;
      best_name = name;
    }
    rows.push_back(row);
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    const double ka = a.mean > 0 ? a.mean : 1e18;
    const double kb = b.mean > 0 ? b.mean : 1e18;
    return ka < kb;
  });

  util::Table table({"Heuristic", "mean makespan", "fails", "restarts", "reconfigs"});
  for (const auto& r : rows) {
    table.add_row({r.name, util::Table::num(r.mean, 1), std::to_string(r.fails),
                   std::to_string(r.restarts), std::to_string(r.reconfigs)});
  }
  std::cout << table.str() << '\n';

  // Anatomy of the winner's first trial.
  const auto best = session.run_trial(params, best_name, 0);
  std::cout << "Anatomy of " << best_name << " (trial 0, makespan "
            << best.makespan << "):\n";
  util::Table anatomy({"iteration", "slots", "comm", "compute", "suspended",
                       "restarts", "reconfigs"});
  for (std::size_t i = 0; i < best.iterations.size(); ++i) {
    const auto& it = best.iterations[i];
    anatomy.add_row({std::to_string(i + 1),
                     std::to_string(it.end_slot - it.start_slot + 1),
                     std::to_string(it.comm_slots), std::to_string(it.compute_slots),
                     std::to_string(it.suspended_slots), std::to_string(it.restarts),
                     std::to_string(it.reconfigurations)});
  }
  std::cout << anatomy.str();
  return 0;
}
