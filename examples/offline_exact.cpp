// The off-line problem (paper §IV) made tangible:
//  1. samples a Markov availability window and finds, exactly, the largest
//     w such that m processors are simultaneously UP during w slots
//     (OFFLINE-COUPLED, mu = 1), with the certificate;
//  2. shows the mu = inf relaxation stacking tasks on fewer workers;
//  3. demonstrates the Theorem 4.1 reduction: a random ENCD bi-clique
//     instance solved through the scheduling formulation.
//
//   ./offline_exact [--p 8] [--slots 24] [--m 3] [--seed 5]
#include <iostream>

#include "offline/encd.hpp"
#include "offline/exact_solver.hpp"
#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);
  const int p = static_cast<int>(cli.get_long("p", 8));
  const int slots = static_cast<int>(cli.get_long("slots", 24));
  const int m = static_cast<int>(cli.get_long("m", 3));
  const auto seed = static_cast<std::uint64_t>(cli.get_long("seed", 5));

  // --- sample an availability window from the paper's Markov model --------
  platform::ScenarioParams params;
  params.p = p;
  params.seed = seed;
  const auto scenario = platform::make_scenario(params);
  platform::MarkovAvailability source(scenario.platform, seed);
  const auto window = platform::record(source, slots);
  const auto inst = offline::OfflineInstance::from_timeline(window);

  std::cout << "Availability window (" << p << " procs x " << slots
            << " slots, 'X' = UP):\n";
  for (int q = 0; q < p; ++q) {
    std::cout << "  P" << q + 1 << (q + 1 < 10 ? "  " : " ") << "|";
    for (int t = 0; t < slots; ++t) std::cout << (inst.up(q, t) ? 'X' : '.');
    std::cout << '\n';
  }

  // --- exact mu = 1 optimum ----------------------------------------------
  const int best_w = offline::max_coupled_slots(inst, m);
  std::cout << "\nOFFLINE-COUPLED(mu=1): the largest w with " << m
            << " processors simultaneously UP during w slots is w = " << best_w
            << '\n';
  if (best_w > 0) {
    const auto cert = offline::solve_mu1(inst, m, best_w);
    std::cout << "  certificate: procs {";
    for (std::size_t i = 0; i < cert.procs.size(); ++i) {
      std::cout << (i ? "," : "") << 'P' << cert.procs[i] + 1;
    }
    std::cout << "} slots {";
    for (std::size_t i = 0; i < cert.slots.size(); ++i) {
      std::cout << (i ? "," : "") << cert.slots[i];
    }
    std::cout << "}\n";
  }

  // --- mu = inf relaxation -------------------------------------------------
  const int w_query = std::max(1, best_w);
  const auto relaxed = offline::solve_muinf(inst, 2 * m, w_query);
  std::cout << "\nOFFLINE-COUPLED(mu=inf) with m = " << 2 * m << ", w = " << w_query
            << ": " << (relaxed.found ? "feasible" : "infeasible");
  if (relaxed.found) {
    std::cout << " (stacking j = " << relaxed.tasks_per_worker
              << " tasks per worker on " << relaxed.certificate.procs.size()
              << " workers for " << relaxed.certificate.slots.size() << " slots)";
  }
  std::cout << '\n';

  // --- Theorem 4.1: ENCD through the scheduling lens ----------------------
  util::Rng rng(seed ^ 0x51ed);
  const auto graph = offline::BipartiteGraph::random(6, 6, 0.6, rng);
  const auto reduced = offline::encd_to_offline_mu1(graph);
  std::cout << "\nTheorem 4.1 demo: random bipartite graph (6+6 vertices) -> "
               "offline instance;\n  (a,b) bi-clique exists  | via ENCD oracle"
               " | via scheduling solver\n";
  for (int a = 2; a <= 3; ++a) {
    for (int b = 2; b <= 3; ++b) {
      const bool oracle = offline::encd_brute_force(graph, a, b);
      const bool sched = offline::solve_mu1(reduced, a, b).found;
      std::cout << "  (" << a << "," << b << ")                   |      "
                << (oracle ? "yes" : " no") << "           |      "
                << (sched ? "yes" : " no") << (oracle == sched ? "   [agree]" : "   [MISMATCH]")
                << '\n';
    }
  }
  std::cout << "\nDeciding these questions is NP-hard (reduction from ENCD), "
               "which is why the\non-line heuristics of SVI never try to be "
               "optimal, even with full knowledge.\n";
  return 0;
}
