// Reproduces the paper's Table II: the best eight heuristics at m = 10
// tasks (Y-IE, P-IE, E-IAY, E-IY, E-IP, IAY, IY, plus the reference IE).
//
// m = 10 instances are substantially harder (more simultaneous availability
// needed), so the default cap is lower than Table I's; `--full` restores the
// paper's exact scale.
#include <iostream>

#include "bench_common.hpp"
#include "sched/registry.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);
  auto spec = bench::spec_from_cli(cli, /*m=*/10, /*default_cap=*/150'000);
  spec.heuristics = sched::tableii_heuristic_names();
  bench::print_header("Table II: results with m = 10 tasks (best 8 heuristics)",
                      spec);

  const auto results = bench::run_and_aggregate(spec, cli);
  const auto summaries = expt::summarize_all(results, "IE");
  std::cout << bench::table_with_paper_column(summaries, bench::paper_table2_diff())
                   .str()
            << "\nExpected shape (paper): ranking nearly unchanged vs m = 5;"
               "\nY-IE/P-IE/E-IAY the only negative %diff; IAY and IY degrade"
               "\nsharply (>130%) once m doubles; fails much more common.\n";
  return 0;
}
