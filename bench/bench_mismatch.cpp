// Extension bench (paper §VII-B, future work made executable): how "wrong"
// do the Markov-based heuristics get when real availability is NOT Markovian?
//
// World A — model correct: availability follows each processor's Markov
//   chain, heuristics know the true chain (the paper's laboratory setting).
// World B — model wrong: availability is a semi-Markov process with
//   heavy-tailed Weibull sojourns (shape 0.7, mean sojourns matched to the
//   Markov chain's); heuristics are given a "flawed" Markov model fitted by
//   maximum likelihood from a recorded training trace.
//
// Reported: mean makespan per heuristic in each world and its %diff vs the
// reference IE, answering whether Y-IE/P-IE's advantage survives model
// misspecification.
#include <cmath>
#include <iostream>
#include <vector>

#include "api/api.hpp"
#include "expt/runner.hpp"
#include "platform/scenario.hpp"
#include "scen/scen.hpp"
#include "sched/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace tcgrid;

long run_with(const platform::Platform& real, const model::Application& app,
              platform::AvailabilitySource& avail, const sched::Estimator& est,
              const std::string& name, long cap) {
  auto sched = sched::make_scheduler(name, est, 7);
  api::Options options;
  options.slot_cap = cap;
  return api::Session::run_custom(options, real, app, avail, *sched).makespan;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int scenarios = static_cast<int>(cli.get_long("scenarios", 4));
  const int trials = static_cast<int>(cli.get_long("trials", 3));
  const long cap = cli.get_long("cap", 300'000);
  const double shape = cli.get_double("shape", 0.7);
  const long train_slots = cli.get_long("train", 50'000);
  const std::vector<std::string> heuristics = {"IE", "Y-IE", "P-IE", "E-IAY",
                                               "IAY", "RANDOM"};

  std::cout << "== Model-mismatch study (paper SVII-B future work) ==\n"
            << scenarios << " scenario(s) x " << trials
            << " trial(s), Weibull shape " << shape << ", cap " << cap
            << " slots, " << train_slots << "-slot training trace\n\n";

  std::vector<double> sum_a(heuristics.size(), 0.0), sum_b(heuristics.size(), 0.0);
  std::vector<int> count_a(heuristics.size(), 0), count_b(heuristics.size(), 0);

  for (int sc = 0; sc < scenarios; ++sc) {
    platform::ScenarioParams params;
    params.m = 5;
    params.ncom = 5;
    params.wmin = 1 + 3 * sc;  // spread across difficulty
    params.seed = 100 + static_cast<std::uint64_t>(sc);
    const auto scenario = platform::make_scenario(params);

    // World A estimator: the true Markov model.
    sched::Estimator true_est(scenario.platform, scenario.app, 1e-6);

    // Semi-Markov truth for World B: the weibull family (Weibull sojourns
    // matched to the platform's chains) — shared with bench_scen.
    const auto truth_family =
        scen::make_weibull_family("weibull", scen::WeibullFamilyParams{shape});

    // Fit a "flawed" Markov model from a recorded training trace.
    const auto believed_platform = scen::fit_markov_platform(
        scenario.platform, *truth_family, train_slots, params.seed ^ 0xbeef);
    sched::Estimator fitted_est(believed_platform, scenario.app, 1e-6);

    for (int trial = 0; trial < trials; ++trial) {
      for (std::size_t h = 0; h < heuristics.size(); ++h) {
        // World A: Markov availability, true model.
        platform::MarkovAvailability avail_a(
            scenario.platform, expt::trial_seed(scenario, trial));
        const long ma = run_with(scenario.platform, scenario.app, avail_a,
                                 true_est, heuristics[h], cap);
        if (ma < cap) {
          sum_a[h] += static_cast<double>(ma);
          ++count_a[h];
        }
        // World B: semi-Markov availability, fitted (wrong) model.
        auto avail_b = truth_family->make_source(scenario.platform,
                                                 expt::trial_seed(scenario, trial),
                                                 platform::InitialStates::Stationary);
        const long mb = run_with(scenario.platform, scenario.app, *avail_b,
                                 fitted_est, heuristics[h], cap);
        if (mb < cap) {
          sum_b[h] += static_cast<double>(mb);
          ++count_b[h];
        }
      }
    }
  }

  auto mean = [](double sum, int n) { return n > 0 ? sum / n : 0.0; };
  const double ie_a = mean(sum_a[0], count_a[0]);
  const double ie_b = mean(sum_b[0], count_b[0]);

  util::Table table({"Heuristic", "makespan (Markov)", "%diff", "makespan (semi-Markov)",
                     "%diff", "fails A", "fails B"});
  const int total = scenarios * trials;
  for (std::size_t h = 0; h < heuristics.size(); ++h) {
    const double a = mean(sum_a[h], count_a[h]);
    const double b = mean(sum_b[h], count_b[h]);
    auto diff = [](double x, double ref) {
      return ref > 0.0 && x > 0.0 ? 100.0 * (x - ref) / std::min(x, ref) : 0.0;
    };
    table.add_row({heuristics[h], util::Table::num(a, 0),
                   util::Table::num(diff(a, ie_a)), util::Table::num(b, 0),
                   util::Table::num(diff(b, ie_b)),
                   std::to_string(total - count_a[h]),
                   std::to_string(total - count_b[h])});
  }
  std::cout << table.str()
            << "\nReading: if the probabilistic heuristics (Y-IE, P-IE, E-IAY)"
               "\nstill show negative %diff in the semi-Markov world, their"
               "\nadvantage is robust to the Markov assumption being wrong.\n";
  return 0;
}
