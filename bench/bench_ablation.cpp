// Ablations of this implementation's documented design choices (DESIGN.md §2):
//   (a) the master's intra-slot bandwidth service order (unspecified in the
//       paper; we default to enrollment order, matching Figure 1);
//   (b) the estimator's series truncation precision eps;
//   (c) proactive candidate memoization (results must be bit-identical;
//       only the wall time may change).
#include <chrono>
#include <iostream>
#include <vector>

#include "api/api.hpp"
#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "sched/heuristics.hpp"
#include "sched/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace tcgrid;

struct TrialSpec {
  platform::Scenario scenario;
  std::uint64_t avail_seed;
};

std::vector<TrialSpec> make_trials(int scenarios, int trials) {
  std::vector<TrialSpec> specs;
  for (int sc = 0; sc < scenarios; ++sc) {
    platform::ScenarioParams params;
    params.m = 5;
    // ncom = 2 so the bandwidth bound actually binds (with ncom >= the
    // enrolled count the service order would be moot).
    params.ncom = 2;
    params.wmin = 1 + 2 * sc;
    params.seed = 300 + static_cast<std::uint64_t>(sc);
    auto scenario = platform::make_scenario(params);
    for (int t = 0; t < trials; ++t) {
      specs.push_back({scenario, util::derive_seed(params.seed, 1000 +
                                                   static_cast<std::uint64_t>(t))});
    }
  }
  return specs;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const int scenarios = static_cast<int>(cli.get_long("scenarios", 4));
  const int trials = static_cast<int>(cli.get_long("trials", 3));
  const long cap = cli.get_long("cap", 300'000);
  const auto specs = make_trials(scenarios, trials);

  std::cout << "== Ablation bench: implementation design choices ==\n"
            << scenarios << " scenario(s) x " << trials << " trial(s), cap " << cap
            << "\n\n";

  // ---- (a) master bandwidth service order -------------------------------
  {
    util::Table table({"comm order", "mean makespan IE", "mean makespan Y-IE"});
    for (auto [label, order] :
         {std::pair{"enrollment (default)", sim::CommOrder::Enrollment},
          std::pair{"fewest-remaining-first", sim::CommOrder::FewestFirst},
          std::pair{"most-remaining-first", sim::CommOrder::MostFirst}}) {
      double sums[2] = {0.0, 0.0};
      int counts[2] = {0, 0};
      api::Options options;
      options.slot_cap = cap;
      options.comm_order = order;
      for (const auto& spec : specs) {
        sched::Estimator est(spec.scenario.platform, spec.scenario.app, 1e-6);
        const char* names[2] = {"IE", "Y-IE"};
        for (int h = 0; h < 2; ++h) {
          auto sched = sched::make_scheduler(names[h], est);
          platform::MarkovAvailability avail(spec.scenario.platform, spec.avail_seed);
          const auto r = api::Session::run_custom(options, spec.scenario.platform,
                                                  spec.scenario.app, avail, *sched);
          if (r.success) {
            sums[h] += static_cast<double>(r.makespan);
            ++counts[h];
          }
        }
      }
      table.add_row({label,
                     util::Table::num(counts[0] ? sums[0] / counts[0] : 0.0, 1),
                     util::Table::num(counts[1] ? sums[1] / counts[1] : 0.0, 1)});
    }
    std::cout << "(a) bandwidth service order\n" << table.str() << "\n";
  }

  // ---- (b) estimator precision eps --------------------------------------
  {
    util::Table table({"eps", "mean makespan Y-IE", "trials changed vs 1e-9"});
    std::vector<long> reference;
    for (double eps : {1e-9, 1e-6, 1e-4, 1e-2}) {
      double sum = 0.0;
      int count = 0;
      std::vector<long> makespans;
      api::Options options;
      options.slot_cap = cap;
      for (const auto& spec : specs) {
        sched::Estimator est(spec.scenario.platform, spec.scenario.app, eps);
        auto sched = sched::make_scheduler("Y-IE", est);
        platform::MarkovAvailability avail(spec.scenario.platform, spec.avail_seed);
        const auto r = api::Session::run_custom(options, spec.scenario.platform,
                                                spec.scenario.app, avail, *sched);
        makespans.push_back(r.makespan);
        if (r.success) {
          sum += static_cast<double>(r.makespan);
          ++count;
        }
      }
      int changed = 0;
      if (reference.empty()) reference = makespans;
      for (std::size_t i = 0; i < makespans.size(); ++i) {
        if (makespans[i] != reference[i]) ++changed;
      }
      table.add_row({util::Table::num(eps, 9),
                     util::Table::num(count ? sum / count : 0.0, 1),
                     std::to_string(changed)});
    }
    std::cout << "(b) series truncation precision\n" << table.str()
              << "(decisions should be insensitive until eps gets very coarse)\n\n";
  }

  // ---- (c) proactive candidate memoization -------------------------------
  {
    util::Table table({"caching", "wall ms", "mean makespan P-IE"});
    for (bool caching : {true, false}) {
      double sum = 0.0;
      int count = 0;
      const auto t0 = std::chrono::steady_clock::now();
      api::Options options;
      options.slot_cap = cap;
      for (const auto& spec : specs) {
        sched::Estimator est(spec.scenario.platform, spec.scenario.app, 1e-6);
        sched::ProactiveScheduler sched(sched::Criterion::P, sched::Rule::IE, est);
        sched.set_caching(caching);
        platform::MarkovAvailability avail(spec.scenario.platform, spec.avail_seed);
        const auto r = api::Session::run_custom(options, spec.scenario.platform,
                                                spec.scenario.app, avail, sched);
        if (r.success) {
          sum += static_cast<double>(r.makespan);
          ++count;
        }
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      table.add_row({caching ? "on (default)" : "off", util::Table::num(ms, 1),
                     util::Table::num(count ? sum / count : 0.0, 1)});
    }
    std::cout << "(c) proactive candidate memoization\n" << table.str()
              << "(makespans must be identical; only the wall time differs)\n\n";
  }

  // ---- (d) crediting banked compute progress in the criterion ------------
  {
    util::Table table({"current-config criterion", "mean makespan Y-IE",
                       "mean makespan E-IE", "reconfigs Y-IE"});
    for (bool credit : {false, true}) {
      double sums[2] = {0.0, 0.0};
      int counts[2] = {0, 0};
      long reconfigs = 0;
      api::Options options;
      options.slot_cap = cap;
      for (const auto& spec : specs) {
        sched::Estimator est(spec.scenario.platform, spec.scenario.app, 1e-6);
        const std::pair<sched::Criterion, sched::Rule> combos[2] = {
            {sched::Criterion::Y, sched::Rule::IE},
            {sched::Criterion::E, sched::Rule::IE}};
        for (int h = 0; h < 2; ++h) {
          sched::ProactiveScheduler sched(combos[h].first, combos[h].second, est);
          sched.set_credit_compute(credit);
          platform::MarkovAvailability avail(spec.scenario.platform, spec.avail_seed);
          const auto r = api::Session::run_custom(options, spec.scenario.platform,
                                                  spec.scenario.app, avail, sched);
          if (r.success) {
            sums[h] += static_cast<double>(r.makespan);
            ++counts[h];
          }
          if (h == 0) reconfigs += r.total_reconfigurations;
        }
      }
      table.add_row({credit ? "remaining W (literal SVI-B)" : "full W (default)",
                     util::Table::num(counts[0] ? sums[0] / counts[0] : 0.0, 1),
                     util::Table::num(counts[1] ? sums[1] / counts[1] : 0.0, 1),
                     std::to_string(reconfigs)});
    }
    std::cout << "(d) crediting banked compute progress when refreshing the\n"
                 "    current configuration's criterion (see EXPERIMENTS.md)\n"
              << table.str();
  }
  return 0;
}
