// Extension bench: the paper's probabilistic heuristics against the
// knowledge-light baselines of its related-work section (§II), and against
// model-free adaptive variants that learn the Markov chain on line.
//
// Questions answered:
//   * how much of Y-IE's advantage comes from knowing the availability
//     *model*, vs just knowing speeds (FASTEST) or availability ranks
//     (MOSTAVAIL / UPTIME)?
//   * does ADAPT-Y-IE (same heuristic, model fitted from observations)
//     recover the advantage without oracle knowledge?
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);
  auto spec = bench::spec_from_cli(cli, /*m=*/5, /*default_cap=*/200'000);
  // A lighter grid than Table I: the comparison, not the factorial, is the
  // point here.
  spec.grid.wmins = {1, 3, 5, 7, 9};
  spec.grid.ncoms = {5, 10};
  spec.heuristics = {"RANDOM", "FASTEST",  "MOSTAVAIL", "UPTIME",
                     "IE",     "IAY",      "Y-IE",      "P-IE",
                     "ADAPT-IE", "ADAPT-Y-IE"};
  std::cout << "== Baselines & adaptive variants vs the paper's heuristics ==\n"
            << "sweep: m=5 ncom={5,10} wmin={1,3,5,7,9}, "
            << spec.grid.scenarios_per_cell << " scenario(s)/cell x " << spec.trials
            << " trial(s), cap=" << spec.options.slot_cap << "\n\n";

  const auto results = bench::run_and_aggregate(spec, cli);
  const auto summaries = expt::summarize_all(results, "IE");
  std::cout << expt::paper_table(summaries).str()
            << "\nReading guide: FASTEST/MOSTAVAIL/UPTIME are the §II-style"
               "\nbaselines (static ranks, no probabilistic model); ADAPT-*"
               "\nrun the same estimator mathematics on a model fitted from"
               "\nobserved states only. If ADAPT-Y-IE lands near Y-IE, the"
               "\noracle model is not load-bearing — observation suffices.\n";
  return 0;
}
