// Estimator benchmarks, in two modes:
//
//  * default: google-benchmark microbenchmarks of the §V estimator
//    mathematics — the truncated series (Theorem 5.1), the renewal
//    recursion cross-check, the survival tables, and the full per-candidate
//    evaluation path that the incremental heuristics hammer (m x p times
//    per scheduling decision);
//  * --emit_json[=PATH]: the CI perf smoke for the canonical chain-stats
//    store (DESIGN.md §10) — time cold Estimator construction+evaluate,
//    warm evaluate and survival-table growth with a shared
//    markov::ChainStatsStore vs per-estimator private stores (the
//    Options::shared_chain_stats ablation), verify every estimate is
//    bit-identical between the two, and write the timings plus store hit
//    rates to BENCH_estimator.json. Exit codes: 0 ok, 2 on any
//    shared/private divergence (CI fails on it).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "markov/chain_stats.hpp"
#include "markov/series.hpp"
#include "platform/scenario.hpp"
#include "sched/estimator.hpp"
#include "util/cli.hpp"

namespace {

using namespace tcgrid;

std::vector<markov::UrMatrix> random_set(std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<markov::UrMatrix> set;
  for (std::size_t i = 0; i < k; ++i) {
    set.push_back(markov::ur_submatrix(markov::TransitionMatrix::paper_random(rng)));
  }
  return set;
}

void BM_CoupledStats_SetSize(benchmark::State& state) {
  const auto set = random_set(static_cast<std::size_t>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::coupled_stats(set, 1e-6));
  }
}
BENCHMARK(BM_CoupledStats_SetSize)->DenseRange(1, 10);

void BM_CoupledStats_Eps(benchmark::State& state) {
  const auto set = random_set(5, 23);
  const double eps = std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::coupled_stats(set, eps));
  }
}
BENCHMARK(BM_CoupledStats_Eps)->DenseRange(3, 12, 3);

void BM_RenewalRecursion(benchmark::State& state) {
  const auto set = random_set(5, 29);
  const auto horizon = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::renewal_first_return(set, horizon));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RenewalRecursion)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_EstimatorEvaluate_Cold(benchmark::State& state) {
  // Fresh estimator (private store) every pass: measures uncached set
  // statistics — the shared_chain_stats=off ablation cost.
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6);
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_Cold)->DenseRange(2, 10, 2);

void BM_EstimatorEvaluate_ColdSharedStore(benchmark::State& state) {
  // Fresh estimator VIEW per pass over one warm shared store: what a new
  // scenario-cell estimator costs once the session store has seen the
  // chains (the shared_chain_stats=on steady state).
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  auto store = std::make_shared<markov::ChainStatsStore>(1e-6);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_ColdSharedStore)->DenseRange(2, 10, 2);

void BM_EstimatorEvaluate_Warm(benchmark::State& state) {
  // Memoized path: what a steady-state scheduling decision costs.
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  (void)est.evaluate(needs, set, 20);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_Warm)->DenseRange(2, 10, 2);

void BM_PNoDownTable(benchmark::State& state) {
  platform::ScenarioParams params;
  params.seed = 7;
  const auto scenario = platform::make_scenario(params);
  const long t = state.range(0);
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6);
    benchmark::DoNotOptimize(est.p_no_down(3, t));
  }
}
BENCHMARK(BM_PNoDownTable)->RangeMultiplier(8)->Range(8, 4096);

// ---------------------------------------------------------------------------
// --emit_json mode: shared vs private chain-stats store comparison.
// ---------------------------------------------------------------------------

/// The paper's homogeneous special case: p identical workers on ONE chain
/// (the store's best case: every per-chain quantity computed once, every
/// k-subset one multiset entry).
platform::Scenario homogeneous_scenario(int p) {
  std::vector<platform::Processor> procs;
  for (int q = 0; q < p; ++q) {
    platform::Processor pr;
    pr.id = q;
    pr.speed = 2;
    pr.max_tasks = 10;
    // Sticky chains (self-loops at the top of the paper's [0.90, 0.99]
    // range): the realistic homogeneous fleet, and the regime where the
    // truncated series runs longest — i.e. where re-deriving it per
    // estimator hurts most.
    pr.availability = markov::TransitionMatrix::from_self_loops(0.99, 0.95, 0.90);
    procs.push_back(pr);
  }
  model::Application app;
  app.num_tasks = 5;
  app.t_prog = 10;
  app.t_data = 2;
  app.iterations = 10;
  platform::ScenarioParams params;
  params.p = p;
  return platform::Scenario{platform::Platform(std::move(procs), 5), app, params};
}

struct ModeTiming {
  double cold_us = 0.0;       ///< construct + first-decision evaluates, fresh estimator
  double warm_ns = 0.0;       ///< evaluate on a warm estimator
  double growth_us = 0.0;     ///< p_no_down deep-table growth, fresh estimator
  std::vector<sched::IterationEstimate> probes;  ///< divergence-gate samples
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One mode's measurements. `store` null = private stores (the ablation).
ModeTiming time_mode(const platform::Scenario& scenario,
                     const std::shared_ptr<markov::ChainStatsStore>& store,
                     int reps) {
  ModeTiming out;
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  const int k = std::min(10, scenario.platform.size());
  for (int q = 0; q < k; ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }

  // Cold: construction + a first incremental decision's worth of candidate
  // evaluations (the builder scores growing prefix sets) per fresh
  // estimator — the cost a sweep pays per scenario cell (and per thread)
  // before any cache is warm.
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    out.probes.clear();
    for (int len = 1; len <= k; ++len) {
      out.probes.push_back(est.evaluate(std::span(needs).first(len),
                                        std::span(set).first(len), 20));
    }
  }
  out.cold_us = seconds_since(t0) * 1e6 / reps;

  // Warm: the steady-state decision cost (front-cache hit path).
  sched::Estimator warm(scenario.platform, scenario.app, 1e-6, store);
  (void)warm.evaluate(needs, set, 20);
  const int warm_reps = reps * 200;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < warm_reps; ++r) {
    benchmark::DoNotOptimize(warm.evaluate(needs, set, 20));
  }
  out.warm_ns = seconds_since(t0) * 1e9 / warm_reps;

  // Table growth: a deep survival query on a fresh estimator (shared mode
  // reads the already-grown store table; private mode re-tabulates).
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    benchmark::DoNotOptimize(est.p_no_down(0, 20'000));
  }
  out.growth_us = seconds_since(t0) * 1e6 / reps;
  return out;
}

/// Warm-resubmit: the serve daemon's cross-request case (DESIGN.md §10).
/// Within one sweep, intern_hits on fresh chains are structurally ~0 — the
/// win shows up when a SECOND submission of the same scenario population
/// constructs fresh estimators against the tenant session's retained,
/// already-populated store. Measured as construction + first-decision
/// evaluates: `first_us` with an empty store per rep (a tenant's first
/// submit, or post-eviction), `resubmit_us` against one retained store.
struct ResubmitTiming {
  double first_us = 0.0;
  double resubmit_us = 0.0;
};

ResubmitTiming time_warm_resubmit(const platform::Scenario& scenario, int reps) {
  ResubmitTiming out;
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  const int k = std::min(10, scenario.platform.size());
  for (int q = 0; q < k; ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  auto first_decision = [&](sched::Estimator& est) {
    for (int len = 1; len <= k; ++len) {
      benchmark::DoNotOptimize(
          est.evaluate(std::span(needs).first(len), std::span(set).first(len), 20));
    }
  };

  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto store = std::make_shared<markov::ChainStatsStore>(1e-6);
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    first_decision(est);
  }
  out.first_us = seconds_since(t0) * 1e6 / reps;

  auto retained = std::make_shared<markov::ChainStatsStore>(1e-6);
  {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, retained);
    first_decision(est);  // the first submission populates the store
  }
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, retained);
    first_decision(est);
  }
  out.resubmit_us = seconds_since(t0) * 1e6 / reps;
  return out;
}

bool bit_identical(const std::vector<sched::IterationEstimate>& a,
                   const std::vector<sched::IterationEstimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].p_success != b[i].p_success || a[i].e_time != b[i].e_time) return false;
  }
  return true;
}

int emit_json(const util::Cli& cli) {
  const std::string path = [&] {
    auto v = cli.value("emit_json");
    return (v && !v->empty()) ? *v : std::string("BENCH_estimator.json");
  }();
  const int reps = static_cast<int>(cli.get_long("reps", 200));

  struct Case {
    const char* name;
    platform::Scenario scenario;
  };
  platform::ScenarioParams paper_params;
  paper_params.seed = 5;
  std::vector<Case> cases;
  cases.push_back({"homogeneous", homogeneous_scenario(20)});
  cases.push_back({"paper", platform::make_scenario(paper_params)});

  namespace json = tcgrid::util::json;
  json::Array platforms;
  bool all_identical = true;
  for (const Case& c : cases) {
    // Shared store: session-style, one store for every estimator of the
    // case. Private: the shared_chain_stats=off ablation.
    auto store = std::make_shared<markov::ChainStatsStore>(1e-6);
    const ModeTiming shared = time_mode(c.scenario, store, reps);
    const ModeTiming priv = time_mode(c.scenario, nullptr, reps);
    const ResubmitTiming resubmit = time_warm_resubmit(c.scenario, reps);
    const bool identical = bit_identical(shared.probes, priv.probes);
    all_identical = all_identical && identical;
    const auto counters = store->counters();

    platforms.push_back(json::Object{
        {"name", c.name},
        {"p", static_cast<unsigned long long>(c.scenario.platform.size())},
        {"distinct_chains", counters.chains},
        {"cold_us", json::Object{{"shared", shared.cold_us},
                                 {"private", priv.cold_us},
                                 {"speedup", priv.cold_us / shared.cold_us}}},
        {"warm_evaluate_ns",
         json::Object{{"shared", shared.warm_ns}, {"private", priv.warm_ns}}},
        {"table_growth_us",
         json::Object{{"shared", shared.growth_us}, {"private", priv.growth_us}}},
        {"warm_resubmit_us",
         json::Object{{"first_submit", resubmit.first_us},
                      {"resubmit", resubmit.resubmit_us},
                      {"speedup", resubmit.first_us / resubmit.resubmit_us}}},
        {"store", json::Object{{"chains", counters.chains},
                               {"intern_hits", counters.intern_hits},
                               {"set_entries", counters.set_entries},
                               {"set_hits", counters.set_hits},
                               {"set_misses", counters.set_misses},
                               {"survival_entries", counters.survival_entries},
                               {"bytes", counters.bytes}}},
        {"identical", identical},
    });
    std::fprintf(stderr,
                 "%-12s cold %8.2fus shared / %8.2fus private (x%.1f)  warm "
                 "%6.0fns / %6.0fns  growth %8.2fus / %8.2fus  resubmit "
                 "%8.2fus vs first %8.2fus (x%.1f)  %s\n",
                 c.name, shared.cold_us, priv.cold_us, priv.cold_us / shared.cold_us,
                 shared.warm_ns, priv.warm_ns, shared.growth_us, priv.growth_us,
                 resubmit.resubmit_us, resubmit.first_us,
                 resubmit.first_us / resubmit.resubmit_us,
                 identical ? "identical" : "MISMATCH");
  }
  const json::Value artifact = json::Object{
      {"bench", "estimator_chain_stats"},
      {"reps", reps},
      {"platforms", std::move(platforms)},
      {"all_identical", all_identical},
  };
  if (const int rc = tcgrid::bench::write_json_artifact("bench_estimator", path, artifact);
      rc != 0) {
    return rc;
  }
  return all_identical ? 0 : 2;  // CI fails on shared/private divergence
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("emit_json")) return emit_json(cli);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
