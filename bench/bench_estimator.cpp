// Google-benchmark microbenchmarks of the §V estimator mathematics: the
// truncated series (Theorem 5.1), the renewal recursion cross-check, the
// survival tables, and the full per-candidate evaluation path that the
// incremental heuristics hammer (m x p times per scheduling decision).
#include <benchmark/benchmark.h>

#include <vector>

#include "markov/series.hpp"
#include "platform/scenario.hpp"
#include "sched/estimator.hpp"

namespace {

using namespace tcgrid;

std::vector<markov::UrMatrix> random_set(std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<markov::UrMatrix> set;
  for (std::size_t i = 0; i < k; ++i) {
    set.push_back(markov::ur_submatrix(markov::TransitionMatrix::paper_random(rng)));
  }
  return set;
}

void BM_CoupledStats_SetSize(benchmark::State& state) {
  const auto set = random_set(static_cast<std::size_t>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::coupled_stats(set, 1e-6));
  }
}
BENCHMARK(BM_CoupledStats_SetSize)->DenseRange(1, 10);

void BM_CoupledStats_Eps(benchmark::State& state) {
  const auto set = random_set(5, 23);
  const double eps = std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::coupled_stats(set, eps));
  }
}
BENCHMARK(BM_CoupledStats_Eps)->DenseRange(3, 12, 3);

void BM_RenewalRecursion(benchmark::State& state) {
  const auto set = random_set(5, 29);
  const auto horizon = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::renewal_first_return(set, horizon));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RenewalRecursion)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_EstimatorEvaluate_Cold(benchmark::State& state) {
  // Fresh estimator every pass: measures uncached set statistics.
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6);
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_Cold)->DenseRange(2, 10, 2);

void BM_EstimatorEvaluate_Warm(benchmark::State& state) {
  // Memoized path: what a steady-state scheduling decision costs.
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  (void)est.evaluate(needs, set, 20);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_Warm)->DenseRange(2, 10, 2);

void BM_PNoDownTable(benchmark::State& state) {
  platform::ScenarioParams params;
  params.seed = 7;
  const auto scenario = platform::make_scenario(params);
  const long t = state.range(0);
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6);
    benchmark::DoNotOptimize(est.p_no_down(3, t));
  }
}
BENCHMARK(BM_PNoDownTable)->RangeMultiplier(8)->Range(8, 4096);

}  // namespace

BENCHMARK_MAIN();
