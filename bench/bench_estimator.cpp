// Estimator benchmarks, in two modes:
//
//  * default: google-benchmark microbenchmarks of the §V estimator
//    mathematics — the truncated series (Theorem 5.1), the renewal
//    recursion cross-check, the survival tables, and the full per-candidate
//    evaluation path that the incremental heuristics hammer (m x p times
//    per scheduling decision);
//  * --emit_json[=PATH]: the CI perf smoke for the canonical chain-stats
//    store (DESIGN.md §10) — time cold Estimator construction+evaluate,
//    warm evaluate and survival-table growth with a shared
//    markov::ChainStatsStore vs per-estimator private stores (the
//    Options::shared_chain_stats ablation), verify every estimate is
//    bit-identical between the two, and write the timings plus store hit
//    rates to BENCH_estimator.json. Exit codes: 0 ok, 2 on any
//    shared/private divergence (CI fails on it);
//  * --store_bench[=PATH]: the CI perf smoke for the PERSISTENT store
//    (DESIGN.md §14) — fork fresh child processes of this binary
//    (--store_child) against one on-disk store directory: a no-store
//    baseline, a cold-disk warmup (computes everything, flushes one
//    generation), and a warm-disk pass (fresh process, mmap'd
//    generations). Verifies all three produce bit-identical estimates and
//    writes the timings + persistence counters to BENCH_store.json. Exit
//    codes: 0 ok, 2 on divergence or a warm pass that never hit disk.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "markov/chain_stats.hpp"
#include "markov/persistent_stats.hpp"
#include "markov/series.hpp"
#include "platform/scenario.hpp"
#include "sched/estimator.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace tcgrid;

std::vector<markov::UrMatrix> random_set(std::size_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<markov::UrMatrix> set;
  for (std::size_t i = 0; i < k; ++i) {
    set.push_back(markov::ur_submatrix(markov::TransitionMatrix::paper_random(rng)));
  }
  return set;
}

void BM_CoupledStats_SetSize(benchmark::State& state) {
  const auto set = random_set(static_cast<std::size_t>(state.range(0)), 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::coupled_stats(set, 1e-6));
  }
}
BENCHMARK(BM_CoupledStats_SetSize)->DenseRange(1, 10);

void BM_CoupledStats_Eps(benchmark::State& state) {
  const auto set = random_set(5, 23);
  const double eps = std::pow(10.0, -static_cast<double>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::coupled_stats(set, eps));
  }
}
BENCHMARK(BM_CoupledStats_Eps)->DenseRange(3, 12, 3);

void BM_RenewalRecursion(benchmark::State& state) {
  const auto set = random_set(5, 29);
  const auto horizon = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(markov::renewal_first_return(set, horizon));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RenewalRecursion)->RangeMultiplier(4)->Range(64, 4096)->Complexity();

void BM_EstimatorEvaluate_Cold(benchmark::State& state) {
  // Fresh estimator (private store) every pass: measures uncached set
  // statistics — the shared_chain_stats=off ablation cost.
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6);
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_Cold)->DenseRange(2, 10, 2);

void BM_EstimatorEvaluate_ColdSharedStore(benchmark::State& state) {
  // Fresh estimator VIEW per pass over one warm shared store: what a new
  // scenario-cell estimator costs once the session store has seen the
  // chains (the shared_chain_stats=on steady state).
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  auto store = std::make_shared<markov::ChainStatsStore>(1e-6);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_ColdSharedStore)->DenseRange(2, 10, 2);

void BM_EstimatorEvaluate_Warm(benchmark::State& state) {
  // Memoized path: what a steady-state scheduling decision costs.
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < static_cast<int>(state.range(0)); ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  (void)est.evaluate(needs, set, 20);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.evaluate(needs, set, 20));
  }
}
BENCHMARK(BM_EstimatorEvaluate_Warm)->DenseRange(2, 10, 2);

void BM_PNoDownTable(benchmark::State& state) {
  platform::ScenarioParams params;
  params.seed = 7;
  const auto scenario = platform::make_scenario(params);
  const long t = state.range(0);
  for (auto _ : state) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6);
    benchmark::DoNotOptimize(est.p_no_down(3, t));
  }
}
BENCHMARK(BM_PNoDownTable)->RangeMultiplier(8)->Range(8, 4096);

// ---------------------------------------------------------------------------
// --emit_json mode: shared vs private chain-stats store comparison.
// ---------------------------------------------------------------------------

/// The paper's homogeneous special case: p identical workers on ONE chain
/// (the store's best case: every per-chain quantity computed once, every
/// k-subset one multiset entry).
platform::Scenario homogeneous_scenario(int p) {
  std::vector<platform::Processor> procs;
  for (int q = 0; q < p; ++q) {
    platform::Processor pr;
    pr.id = q;
    pr.speed = 2;
    pr.max_tasks = 10;
    // Sticky chains (self-loops at the top of the paper's [0.90, 0.99]
    // range): the realistic homogeneous fleet, and the regime where the
    // truncated series runs longest — i.e. where re-deriving it per
    // estimator hurts most.
    pr.availability = markov::TransitionMatrix::from_self_loops(0.99, 0.95, 0.90);
    procs.push_back(pr);
  }
  model::Application app;
  app.num_tasks = 5;
  app.t_prog = 10;
  app.t_data = 2;
  app.iterations = 10;
  platform::ScenarioParams params;
  params.p = p;
  return platform::Scenario{platform::Platform(std::move(procs), 5), app, params};
}

struct ModeTiming {
  double cold_us = 0.0;       ///< construct + first-decision evaluates, fresh estimator
  double warm_ns = 0.0;       ///< evaluate on a warm estimator
  double growth_us = 0.0;     ///< p_no_down deep-table growth, fresh estimator
  std::vector<sched::IterationEstimate> probes;  ///< divergence-gate samples
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

/// One mode's measurements. `store` null = private stores (the ablation).
ModeTiming time_mode(const platform::Scenario& scenario,
                     const std::shared_ptr<markov::ChainStatsStore>& store,
                     int reps) {
  ModeTiming out;
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  const int k = std::min(10, scenario.platform.size());
  for (int q = 0; q < k; ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }

  // Cold: construction + a first incremental decision's worth of candidate
  // evaluations (the builder scores growing prefix sets) per fresh
  // estimator — the cost a sweep pays per scenario cell (and per thread)
  // before any cache is warm.
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    out.probes.clear();
    for (int len = 1; len <= k; ++len) {
      out.probes.push_back(est.evaluate(std::span(needs).first(len),
                                        std::span(set).first(len), 20));
    }
  }
  out.cold_us = seconds_since(t0) * 1e6 / reps;

  // Warm: the steady-state decision cost (front-cache hit path).
  sched::Estimator warm(scenario.platform, scenario.app, 1e-6, store);
  (void)warm.evaluate(needs, set, 20);
  const int warm_reps = reps * 200;
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < warm_reps; ++r) {
    benchmark::DoNotOptimize(warm.evaluate(needs, set, 20));
  }
  out.warm_ns = seconds_since(t0) * 1e9 / warm_reps;

  // Table growth: a deep survival query on a fresh estimator (shared mode
  // reads the already-grown store table; private mode re-tabulates).
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    benchmark::DoNotOptimize(est.p_no_down(0, 20'000));
  }
  out.growth_us = seconds_since(t0) * 1e6 / reps;
  return out;
}

/// Warm-resubmit: the serve daemon's cross-request case (DESIGN.md §10).
/// Within one sweep, intern_hits on fresh chains are structurally ~0 — the
/// win shows up when a SECOND submission of the same scenario population
/// constructs fresh estimators against the tenant session's retained,
/// already-populated store. Measured as construction + first-decision
/// evaluates: `first_us` with an empty store per rep (a tenant's first
/// submit, or post-eviction), `resubmit_us` against one retained store.
struct ResubmitTiming {
  double first_us = 0.0;
  double resubmit_us = 0.0;
};

ResubmitTiming time_warm_resubmit(const platform::Scenario& scenario, int reps) {
  ResubmitTiming out;
  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  const int k = std::min(10, scenario.platform.size());
  for (int q = 0; q < k; ++q) {
    set.push_back(q);
    needs.push_back({q, 12});
  }
  auto first_decision = [&](sched::Estimator& est) {
    for (int len = 1; len <= k; ++len) {
      benchmark::DoNotOptimize(
          est.evaluate(std::span(needs).first(len), std::span(set).first(len), 20));
    }
  };

  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    auto store = std::make_shared<markov::ChainStatsStore>(1e-6);
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
    first_decision(est);
  }
  out.first_us = seconds_since(t0) * 1e6 / reps;

  auto retained = std::make_shared<markov::ChainStatsStore>(1e-6);
  {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, retained);
    first_decision(est);  // the first submission populates the store
  }
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    sched::Estimator est(scenario.platform, scenario.app, 1e-6, retained);
    first_decision(est);
  }
  out.resubmit_us = seconds_since(t0) * 1e6 / reps;
  return out;
}

bool bit_identical(const std::vector<sched::IterationEstimate>& a,
                   const std::vector<sched::IterationEstimate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].p_success != b[i].p_success || a[i].e_time != b[i].e_time) return false;
  }
  return true;
}

int emit_json(const util::Cli& cli) {
  const std::string path = [&] {
    auto v = cli.value("emit_json");
    return (v && !v->empty()) ? *v : std::string("BENCH_estimator.json");
  }();
  const int reps = static_cast<int>(cli.get_long("reps", 200));

  struct Case {
    const char* name;
    platform::Scenario scenario;
  };
  platform::ScenarioParams paper_params;
  paper_params.seed = 5;
  std::vector<Case> cases;
  cases.push_back({"homogeneous", homogeneous_scenario(20)});
  cases.push_back({"paper", platform::make_scenario(paper_params)});

  namespace json = tcgrid::util::json;
  json::Array platforms;
  bool all_identical = true;
  for (const Case& c : cases) {
    // Shared store: session-style, one store for every estimator of the
    // case. Private: the shared_chain_stats=off ablation.
    auto store = std::make_shared<markov::ChainStatsStore>(1e-6);
    const ModeTiming shared = time_mode(c.scenario, store, reps);
    const ModeTiming priv = time_mode(c.scenario, nullptr, reps);
    const ResubmitTiming resubmit = time_warm_resubmit(c.scenario, reps);
    const bool identical = bit_identical(shared.probes, priv.probes);
    all_identical = all_identical && identical;
    const auto counters = store->counters();

    platforms.push_back(json::Object{
        {"name", c.name},
        {"p", static_cast<unsigned long long>(c.scenario.platform.size())},
        {"distinct_chains", counters.chains},
        {"cold_us", json::Object{{"shared", shared.cold_us},
                                 {"private", priv.cold_us},
                                 {"speedup", priv.cold_us / shared.cold_us}}},
        {"warm_evaluate_ns",
         json::Object{{"shared", shared.warm_ns}, {"private", priv.warm_ns}}},
        {"table_growth_us",
         json::Object{{"shared", shared.growth_us}, {"private", priv.growth_us}}},
        {"warm_resubmit_us",
         json::Object{{"first_submit", resubmit.first_us},
                      {"resubmit", resubmit.resubmit_us},
                      {"speedup", resubmit.first_us / resubmit.resubmit_us}}},
        {"store", json::Object{{"chains", counters.chains},
                               {"intern_hits", counters.intern_hits},
                               {"set_entries", counters.set_entries},
                               {"set_hits", counters.set_hits},
                               {"set_misses", counters.set_misses},
                               {"survival_entries", counters.survival_entries},
                               {"bytes", counters.bytes}}},
        {"identical", identical},
    });
    std::fprintf(stderr,
                 "%-12s cold %8.2fus shared / %8.2fus private (x%.1f)  warm "
                 "%6.0fns / %6.0fns  growth %8.2fus / %8.2fus  resubmit "
                 "%8.2fus vs first %8.2fus (x%.1f)  %s\n",
                 c.name, shared.cold_us, priv.cold_us, priv.cold_us / shared.cold_us,
                 shared.warm_ns, priv.warm_ns, shared.growth_us, priv.growth_us,
                 resubmit.resubmit_us, resubmit.first_us,
                 resubmit.first_us / resubmit.resubmit_us,
                 identical ? "identical" : "MISMATCH");
  }
  const json::Value artifact = json::Object{
      {"bench", "estimator_chain_stats"},
      {"reps", reps},
      {"platforms", std::move(platforms)},
      {"all_identical", all_identical},
  };
  if (const int rc = tcgrid::bench::write_json_artifact("bench_estimator", path, artifact);
      rc != 0) {
    return rc;
  }
  return all_identical ? 0 : 2;  // CI fails on shared/private divergence
}

// ---------------------------------------------------------------------------
// --store_bench mode: cold-process-warm-disk persistent store comparison.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a_mix(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) {
    h ^= (bits >> (8 * i)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

/// Child body (--store_child=MODE [--store_dir=D]): the per-scenario-cell
/// workload a sweep pays in a fresh process — per rep, a fresh store (over
/// the persistent cache when --store_dir is given) and a fresh estimator
/// doing one incremental first decision plus a deep survival-table query.
/// Emits exactly one JSON line on stdout: timing, a bit-exact digest of
/// every estimate, and the persistence counters.
int store_child(const util::Cli& cli) {
  const std::string dir = cli.value("store_dir").value_or("");
  const int reps = static_cast<int>(cli.get_long("reps", 30));

  std::shared_ptr<markov::PersistentChainStats> persist;
  if (!dir.empty()) {
    persist = std::make_shared<markov::PersistentChainStats>(dir, 1e-6);
  }

  struct Case {
    const char* name;
    platform::Scenario scenario;
  };
  platform::ScenarioParams paper_params;
  paper_params.seed = 5;
  std::vector<Case> cases;
  cases.push_back({"homogeneous", homogeneous_scenario(20)});
  cases.push_back({"paper", platform::make_scenario(paper_params)});

  std::uint64_t digest = 14695981039346656037ull;
  unsigned long long probes = 0;
  std::vector<std::shared_ptr<markov::ChainStatsStore>> last_stores(cases.size());

  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    for (std::size_t ci = 0; ci < cases.size(); ++ci) {
      const platform::Scenario& scenario = cases[ci].scenario;
      auto store = persist != nullptr
                       ? std::make_shared<markov::ChainStatsStore>(1e-6, persist)
                       : std::make_shared<markov::ChainStatsStore>(1e-6);
      sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
      std::vector<int> set;
      std::vector<sched::Estimator::CommNeed> needs;
      const int k = std::min(10, scenario.platform.size());
      for (int q = 0; q < k; ++q) {
        set.push_back(q);
        needs.push_back({q, 12});
      }
      for (int len = 1; len <= k; ++len) {
        const sched::IterationEstimate e = est.evaluate(
            std::span(needs).first(len), std::span(set).first(len), 20);
        if (r == 0) {  // the digest covers one rep; later reps are replicas
          digest = fnv1a_mix(fnv1a_mix(digest, e.p_success), e.e_time);
          probes += 2;
        }
      }
      const double deep = est.p_no_down(0, 20'000);
      if (r == 0) {
        digest = fnv1a_mix(digest, deep);
        probes += 1;
      }
      benchmark::DoNotOptimize(deep);
      last_stores[ci] = std::move(store);
    }
  }
  const double work_us = seconds_since(t0) * 1e6 / reps;

  unsigned long long flushed = 0;
  if (persist != nullptr) {
    // One generation per case store; a warm child's stores contain nothing
    // new, so these flushes write nothing (asserted by the parent).
    for (const auto& store : last_stores) flushed += persist->flush_from(*store);
  }

  namespace json = tcgrid::util::json;
  char digest_hex[32];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(digest));
  json::Object line{
      {"work_us", work_us},
      {"probes", probes},
      {"digest", std::string(digest_hex)},
      {"flushed", flushed},
  };
  if (persist != nullptr) {
    const auto p = persist->counters();
    line.emplace_back(
        "persist",
        json::Object{
            {"generations", static_cast<unsigned long long>(p.generations)},
            {"mapped_bytes", static_cast<unsigned long long>(p.mapped_bytes)},
            {"chains", static_cast<unsigned long long>(p.chains)},
            {"sets", static_cast<unsigned long long>(p.sets)},
            {"chain_hits", static_cast<unsigned long long>(p.chain_hits)},
            {"chain_misses", static_cast<unsigned long long>(p.chain_misses)},
            {"set_hits", static_cast<unsigned long long>(p.set_hits)},
            {"set_misses", static_cast<unsigned long long>(p.set_misses)},
            {"skipped_generations",
             static_cast<unsigned long long>(p.skipped_generations)},
            {"flushed_entries", static_cast<unsigned long long>(p.flushed_entries)},
        });
  }
  std::printf("%s\n", json::dump(json::Value{std::move(line)}).c_str());
  return 0;
}

/// Parent: run the three children against one fresh store directory and
/// compare. Uses popen on /proc/self/exe so every pass is a genuinely cold
/// process (fresh address space, nothing warm but the disk).
int store_bench(const util::Cli& cli, const char* argv0) {
  namespace fs = std::filesystem;
  namespace json = tcgrid::util::json;
  const std::string path = [&] {
    auto v = cli.value("store_bench");
    return (v && !v->empty()) ? *v : std::string("BENCH_store.json");
  }();
  const int reps = static_cast<int>(cli.get_long("reps", 30));

  char exe_buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", exe_buf, sizeof exe_buf - 1);
  const std::string exe = n > 0 ? std::string(exe_buf, static_cast<std::size_t>(n))
                                : std::string(argv0);

  const fs::path dir =
      fs::temp_directory_path() / ("tcgrid_store_bench_" + std::to_string(::getpid()));
  std::error_code ec;
  fs::remove_all(dir, ec);

  auto run_child = [&](const char* label, bool with_dir) -> json::Value {
    std::string cmd = "'" + exe + "' --store_child=1 --reps=" + std::to_string(reps);
    if (with_dir) cmd += " --store_dir='" + dir.string() + "'";
    FILE* pipe = ::popen(cmd.c_str(), "r");
    if (pipe == nullptr) throw std::runtime_error("popen failed");
    std::string out;
    char buf[4096];
    std::size_t got = 0;
    while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, got);
    const int rc = ::pclose(pipe);
    if (rc != 0 || out.empty()) {
      throw std::runtime_error(std::string("store child '") + label + "' failed");
    }
    return json::parse(out);
  };

  int rc = 0;
  try {
    const json::Value nostore = run_child("nostore", /*with_dir=*/false);
    const json::Value warmup = run_child("warmup", /*with_dir=*/true);
    const json::Value warm = run_child("warm", /*with_dir=*/true);

    const std::string d0 = nostore.find("digest")->as_string();
    const std::string d1 = warmup.find("digest")->as_string();
    const std::string d2 = warm.find("digest")->as_string();
    const bool identical = d0 == d1 && d0 == d2;

    const double nostore_us = nostore.find("work_us")->as_double();
    const double warmup_us = warmup.find("work_us")->as_double();
    const double warm_us = warm.find("work_us")->as_double();
    const double speedup = nostore_us / warm_us;

    const json::Value* warm_persist = warm.find("persist");
    const auto persist_u64 = [&](const char* key) -> unsigned long long {
      const json::Value* v = warm_persist != nullptr ? warm_persist->find(key) : nullptr;
      return v != nullptr ? static_cast<unsigned long long>(v->as_double()) : 0;
    };
    const unsigned long long warm_chain_hits = persist_u64("chain_hits");
    const unsigned long long warm_set_hits = persist_u64("set_hits");
    const unsigned long long warm_flushed =
        static_cast<unsigned long long>(warm.find("flushed")->as_double());

    unsigned long long disk_bytes = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) disk_bytes += entry.file_size();
    }

    const json::Value artifact = json::Object{
        {"bench", "persistent_store"},
        {"reps", reps},
        {"nostore_us", nostore_us},
        {"warmup_us", warmup_us},
        {"warm_us", warm_us},
        {"speedup_warm_vs_nostore", speedup},
        {"identical", identical},
        {"warm_chain_hits", warm_chain_hits},
        {"warm_set_hits", warm_set_hits},
        {"warm_flushed_entries", warm_flushed},
        {"store_disk_bytes", disk_bytes},
        {"warm_persist", warm_persist != nullptr ? *warm_persist : json::Value{}},
    };
    if (const int wrc = tcgrid::bench::write_json_artifact("bench_store", path, artifact);
        wrc != 0) {
      rc = wrc;
    }
    std::fprintf(stderr,
                 "store_bench  nostore %9.1fus  warmup %9.1fus  warm %9.1fus "
                 "(x%.1f)  warm hits %llu chain / %llu set  disk %llu bytes  %s\n",
                 nostore_us, warmup_us, warm_us, speedup, warm_chain_hits,
                 warm_set_hits, disk_bytes, identical ? "identical" : "MISMATCH");
    if (!identical) {
      std::fprintf(stderr, "store_bench: FAIL — estimates diverge across store modes\n");
      rc = 2;
    } else if (warm_chain_hits == 0) {
      std::fprintf(stderr, "store_bench: FAIL — warm pass never hit the disk store\n");
      rc = 2;
    } else if (warm_flushed != 0) {
      std::fprintf(stderr,
                   "store_bench: FAIL — warm pass re-flushed %llu entries "
                   "(cache should already hold them)\n",
                   warm_flushed);
      rc = 2;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "store_bench: %s\n", e.what());
    rc = 1;
  }
  fs::remove_all(dir, ec);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("store_child")) return store_child(cli);
  if (cli.has("store_bench")) return store_bench(cli, argv[0]);
  if (cli.has("emit_json")) return emit_json(cli);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
