// Engine benchmarks, in two modes:
//
//  * default: google-benchmark microbenchmarks of end-to-end runs per
//    heuristic class (slots/sec, fast-forward on and off), one incremental
//    configuration build, and raw availability stepping;
//  * --emit_json[=PATH]: the CI perf smoke — run the reduced sweep per
//    heuristic with the event-horizon fast path ON and OFF (same binary,
//    same seeds), verify the outcomes are identical, and write
//    machine-readable slots/sec + speedups to BENCH_engine.json. This seeds
//    the perf trajectory: each CI run leaves a comparable artifact.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "bench_common.hpp"
#include "platform/scenario.hpp"
#include "sched/incremental.hpp"
#include "sched/registry.hpp"
#include "util/cli.hpp"

namespace {

using namespace tcgrid;

platform::ScenarioParams bench_params(int m, long wmin) {
  platform::ScenarioParams params;
  params.m = m;
  params.ncom = 5;
  params.wmin = wmin;
  params.seed = 11;
  return params;
}

platform::Scenario bench_scenario(int m, long wmin) {
  return platform::make_scenario(bench_params(m, wmin));
}

void run_heuristic_benchmark(benchmark::State& state, const char* name,
                             bool fast_forward) {
  const auto params = bench_params(static_cast<int>(state.range(0)), state.range(1));
  api::Options options;
  options.fast_forward = fast_forward;
  api::Session session(options);
  // Warm the session's scenario+estimator cache outside the timed region so
  // iterations measure the engine, not one-time construction (matching the
  // pre-facade benchmark semantics).
  (void)session.run_trial(params, name, 0);
  long slots = 0;
  for (auto _ : state) {
    const auto r = session.run_trial(params, name, 0);
    slots += r.makespan;
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["slots/s"] =
      benchmark::Counter(static_cast<double>(slots), benchmark::Counter::kIsRate);
}

void BM_Run_RANDOM(benchmark::State& state) {
  run_heuristic_benchmark(state, "RANDOM", true);
}
void BM_Run_IE(benchmark::State& state) { run_heuristic_benchmark(state, "IE", true); }
void BM_Run_YIE(benchmark::State& state) { run_heuristic_benchmark(state, "Y-IE", true); }
void BM_Run_EIAY(benchmark::State& state) { run_heuristic_benchmark(state, "E-IAY", true); }
// The per-slot ablation baselines (EngineOptions::fast_forward = false).
void BM_Run_RANDOM_PerSlot(benchmark::State& state) {
  run_heuristic_benchmark(state, "RANDOM", false);
}
void BM_Run_IE_PerSlot(benchmark::State& state) {
  run_heuristic_benchmark(state, "IE", false);
}
void BM_Run_YIE_PerSlot(benchmark::State& state) {
  run_heuristic_benchmark(state, "Y-IE", false);
}
void BM_Run_EIAY_PerSlot(benchmark::State& state) {
  run_heuristic_benchmark(state, "E-IAY", false);
}

BENCHMARK(BM_Run_RANDOM)->Args({5, 2})->Args({10, 2});
BENCHMARK(BM_Run_IE)->Args({5, 2})->Args({10, 2});
BENCHMARK(BM_Run_YIE)->Args({5, 2})->Args({10, 2})->Args({5, 8});
BENCHMARK(BM_Run_EIAY)->Args({5, 2});
BENCHMARK(BM_Run_RANDOM_PerSlot)->Args({5, 2});
BENCHMARK(BM_Run_IE_PerSlot)->Args({5, 2});
BENCHMARK(BM_Run_YIE_PerSlot)->Args({5, 2})->Args({5, 8});
BENCHMARK(BM_Run_EIAY_PerSlot)->Args({5, 2});

void BM_IncrementalBuild(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<int>(state.range(0)), 2);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  sched::IncrementalBuilder builder(sched::Rule::IE, est);
  builder.set_memo(false);  // measure the build itself, not the memo hit

  std::vector<markov::State> states(static_cast<std::size_t>(scenario.platform.size()),
                                    markov::State::Up);
  std::vector<model::Holdings> holdings(states.size());
  std::vector<long> comm(states.size(), 0);
  sim::SchedulerView view;
  view.platform = &scenario.platform;
  view.app = &scenario.app;
  view.states = states;
  view.holdings = holdings;
  view.comm_remaining = comm;

  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(view));
  }
}
BENCHMARK(BM_IncrementalBuild)->Arg(5)->Arg(10);

void BM_AvailabilityAdvance(benchmark::State& state) {
  const auto scenario = bench_scenario(5, 2);
  platform::MarkovAvailability avail(scenario.platform, 3);
  for (auto _ : state) {
    avail.advance();
    benchmark::DoNotOptimize(avail.state(0));
  }
}
BENCHMARK(BM_AvailabilityAdvance);

// ---------------------------------------------------------------------------
// --emit_json mode: reduced-sweep fast-forward comparison.
// ---------------------------------------------------------------------------

// The thread-count-independent outcome digest lives in bench_common.hpp
// (shared with bench_sweep, whose shared-vs-live gate must cover exactly
// the same counters as this bench's on-vs-off gate).
using bench::DigestSink;

struct SweepTiming {
  double seconds = 0.0;
  long slots = 0;
  std::uint64_t digest = 0;
};

SweepTiming run_sweep(const api::ExperimentSpec& base, const std::string& heuristic,
                      bool fast_forward) {
  api::ExperimentSpec spec = base;
  spec.heuristics = {heuristic};
  spec.options.fast_forward = fast_forward;
  api::Session session(spec.options);
  DigestSink digest;
  const auto t0 = std::chrono::steady_clock::now();
  session.run(spec, {&digest});
  SweepTiming out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.slots = digest.slots();
  out.digest = digest.digest();
  return out;
}

int emit_json(const util::Cli& cli) {
  const std::string path = [&] {
    auto v = cli.value("emit_json");
    return (v && !v->empty()) ? *v : std::string("BENCH_engine.json");
  }();

  api::ExperimentSpec spec =
      api::ExperimentSpec::reduced(static_cast<int>(cli.get_long("m", 5)),
                                   cli.get_long("cap", 200'000));
  spec.grid.scenarios_per_cell =
      static_cast<int>(cli.get_long("scenarios", spec.grid.scenarios_per_cell));
  spec.trials = static_cast<int>(cli.get_long("trials", spec.trials));
  spec.options.threads = 1;  // timings must not depend on core count

  const std::vector<std::string> heuristics = {
      "IP", "IE", "IAY",              // passive
      "P-IE", "E-IE", "E-IAY", "Y-IE",  // memoized proactive
      "IY", "RANDOM",                 // per-slot by contract (no skipping)
  };

  namespace json = util::json;
  json::Array rows;
  bool all_identical = true;
  for (const std::string& name : heuristics) {
    const SweepTiming off = run_sweep(spec, name, false);
    const SweepTiming on = run_sweep(spec, name, true);
    const bool identical = on.digest == off.digest && on.slots == off.slots;
    all_identical = all_identical && identical;
    const double on_rate = static_cast<double>(on.slots) / on.seconds;
    const double off_rate = static_cast<double>(off.slots) / off.seconds;
    rows.push_back(json::Object{
        {"name", name},
        {"slots", on.slots},
        {"slots_per_sec_fast_forward", on_rate},
        {"slots_per_sec_per_slot", off_rate},
        {"speedup", on_rate / off_rate},
        {"identical", identical},
    });
    std::fprintf(stderr, "%-6s %9ld slots  ff %8.0f/s  per-slot %8.0f/s  x%.2f  %s\n",
                 name.c_str(), on.slots, on_rate, off_rate, on_rate / off_rate,
                 identical ? "identical" : "MISMATCH");
  }
  const json::Value artifact = json::Object{
      {"bench", "engine_fast_forward"},
      {"sweep",
       json::Object{{"m", spec.grid.ms[0]},
                    {"scenarios_per_cell", spec.grid.scenarios_per_cell},
                    {"trials", spec.trials},
                    {"slot_cap", spec.options.slot_cap}}},
      {"heuristics", std::move(rows)},
      {"all_identical", all_identical},
  };
  if (const int rc = bench::write_json_artifact("bench_engine", path, artifact); rc != 0) {
    return rc;
  }
  return all_identical ? 0 : 2;  // CI fails on any fast-forward divergence
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  if (cli.has("emit_json")) return emit_json(cli);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
