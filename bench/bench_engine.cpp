// Google-benchmark microbenchmarks of the simulation engine and the
// scheduling decision path: end-to-end runs per heuristic class (slots/sec)
// and a single incremental configuration build.
#include <benchmark/benchmark.h>

#include "api/api.hpp"
#include "platform/scenario.hpp"
#include "sched/incremental.hpp"
#include "sched/registry.hpp"

namespace {

using namespace tcgrid;

platform::ScenarioParams bench_params(int m, long wmin) {
  platform::ScenarioParams params;
  params.m = m;
  params.ncom = 5;
  params.wmin = wmin;
  params.seed = 11;
  return params;
}

platform::Scenario bench_scenario(int m, long wmin) {
  return platform::make_scenario(bench_params(m, wmin));
}

void run_heuristic_benchmark(benchmark::State& state, const char* name) {
  const auto params = bench_params(static_cast<int>(state.range(0)), state.range(1));
  api::Session session;
  // Warm the session's scenario+estimator cache outside the timed region so
  // iterations measure the engine, not one-time construction (matching the
  // pre-facade benchmark semantics).
  (void)session.run_trial(params, name, 0);
  long slots = 0;
  for (auto _ : state) {
    const auto r = session.run_trial(params, name, 0);
    slots += r.makespan;
    benchmark::DoNotOptimize(r.makespan);
  }
  state.counters["slots/s"] =
      benchmark::Counter(static_cast<double>(slots), benchmark::Counter::kIsRate);
}

void BM_Run_RANDOM(benchmark::State& state) { run_heuristic_benchmark(state, "RANDOM"); }
void BM_Run_IE(benchmark::State& state) { run_heuristic_benchmark(state, "IE"); }
void BM_Run_YIE(benchmark::State& state) { run_heuristic_benchmark(state, "Y-IE"); }
void BM_Run_EIAY(benchmark::State& state) { run_heuristic_benchmark(state, "E-IAY"); }

BENCHMARK(BM_Run_RANDOM)->Args({5, 2})->Args({10, 2});
BENCHMARK(BM_Run_IE)->Args({5, 2})->Args({10, 2});
BENCHMARK(BM_Run_YIE)->Args({5, 2})->Args({10, 2})->Args({5, 8});
BENCHMARK(BM_Run_EIAY)->Args({5, 2});

void BM_IncrementalBuild(benchmark::State& state) {
  const auto scenario = bench_scenario(static_cast<int>(state.range(0)), 2);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  sched::IncrementalBuilder builder(sched::Rule::IE, est);

  std::vector<markov::State> states(static_cast<std::size_t>(scenario.platform.size()),
                                    markov::State::Up);
  std::vector<model::Holdings> holdings(states.size());
  std::vector<long> comm(states.size(), 0);
  sim::SchedulerView view;
  view.platform = &scenario.platform;
  view.app = &scenario.app;
  view.states = states;
  view.holdings = holdings;
  view.comm_remaining = comm;

  for (auto _ : state) {
    benchmark::DoNotOptimize(builder.build(view));
  }
}
BENCHMARK(BM_IncrementalBuild)->Arg(5)->Arg(10);

void BM_AvailabilityAdvance(benchmark::State& state) {
  const auto scenario = bench_scenario(5, 2);
  platform::MarkovAvailability avail(scenario.platform, 3);
  for (auto _ : state) {
    avail.advance();
    benchmark::DoNotOptimize(avail.state(0));
  }
}
BENCHMARK(BM_AvailabilityAdvance);

}  // namespace

BENCHMARK_MAIN();
