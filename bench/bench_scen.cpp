// Scenario-subsystem bench: (1) availability stepping — the per-slot virtual
// pull (the engine's pre-block pattern: size()+1 virtual calls per slot)
// against the block-stepped fast path (one fill_block per 256 slots) for
// every built-in family, verifying the realizations are identical while
// timing them; (2) the engine-level effect of the block path on a reduced
// sweep; (3) the §VII-B cross-family mismatch sweep, end to end through the
// scen registry: the "weibull" family is the true availability process, a
// Markov model is fitted to its recorded traces (trace_io MLE), and the
// Markov heuristics run against the true process with only the flawed model.
//
// Knobs: --slots N (stepping slots), --scenarios N --trials N --cap N
// (mismatch sweep), --shape S (Weibull shape), --train N (training slots),
// --seed N, --check X (exit 1 unless the markov block speedup reaches Xx).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "api/api.hpp"
#include "expt/runner.hpp"
#include "platform/scenario.hpp"
#include "scen/scen.hpp"
#include "sched/registry.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace tcgrid;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Checksum of a pulled timeline so the two paths are verified identical (and
// the compiler cannot elide the pulls).
struct PullResult {
  double seconds = 0.0;
  std::uint64_t checksum = 0;
};

PullResult pull_per_slot(platform::AvailabilitySource& source, long slots) {
  PullResult out;
  const int p = source.size();
  std::vector<markov::State> states(static_cast<std::size_t>(p));
  const auto t0 = std::chrono::steady_clock::now();
  for (long t = 0; t < slots; ++t) {
    if (t > 0) source.advance();
    for (int q = 0; q < p; ++q) states[static_cast<std::size_t>(q)] = source.state(q);
    out.checksum = out.checksum * 1099511628211ULL +
                   static_cast<std::uint64_t>(states[static_cast<std::size_t>(t % p)]);
  }
  out.seconds = seconds_since(t0);
  return out;
}

PullResult pull_blocks(platform::AvailabilitySource& source, long slots, long block) {
  PullResult out;
  const auto p = static_cast<std::size_t>(source.size());
  std::vector<markov::State> buf(p * static_cast<std::size_t>(block));
  std::vector<markov::State> states(p);
  long pos = block;
  const auto t0 = std::chrono::steady_clock::now();
  for (long t = 0; t < slots; ++t) {
    if (pos == block) {
      source.fill_block(buf.data(), block);
      pos = 0;
    }
    std::copy_n(buf.data() + static_cast<std::size_t>(pos) * p, p, states.data());
    ++pos;
    out.checksum = out.checksum * 1099511628211ULL +
                   static_cast<std::uint64_t>(states[static_cast<std::size_t>(t) % p]);
  }
  out.seconds = seconds_since(t0);
  return out;
}

double best_of(int reps, const std::function<double()>& run) {
  double best = run();
  for (int i = 1; i < reps; ++i) best = std::min(best, run());
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli(argc, argv);
  const long slots = cli.get_long("slots", 1'000'000);
  const int scenarios = static_cast<int>(cli.get_long("scenarios", 2));
  const int trials = static_cast<int>(cli.get_long("trials", 2));
  const long cap = cli.get_long("cap", 200'000);
  const double shape = cli.get_double("shape", 0.7);
  const long train_slots = cli.get_long("train", 20'000);
  const auto seed = static_cast<std::uint64_t>(cli.get_long("seed", 42));

  // ---------------------------------------------------- 1. stepping speed ----
  std::cout << "== Availability stepping: per-slot virtual pull vs block path ==\n"
            << "p=20, " << slots << " slots per family (best of 3)\n\n";

  platform::ScenarioParams pparams;
  pparams.seed = seed;
  const auto scenario0 = platform::make_scenario(pparams);

  util::Table step_table(
      {"family", "per-slot ns/proc-slot", "block ns/proc-slot", "speedup", "identical"});
  double markov_speedup = 0.0;
  for (const char* name : {"markov", "weibull", "daynight"}) {
    const auto family = scen::availability_family(name);
    PullResult slow, fast;
    const double t_slow = best_of(3, [&] {
      auto src = family->make_source(scenario0.platform, seed + 1,
                                     platform::InitialStates::Stationary);
      slow = pull_per_slot(*src, slots);
      return slow.seconds;
    });
    const double t_fast = best_of(3, [&] {
      auto src = family->make_source(scenario0.platform, seed + 1,
                                     platform::InitialStates::Stationary);
      fast = pull_blocks(*src, slots, 256);
      return fast.seconds;
    });
    const double denom = static_cast<double>(slots) * scenario0.platform.size();
    const double speedup = t_slow / t_fast;
    if (std::string(name) == "markov") markov_speedup = speedup;
    step_table.add_row({name, util::Table::num(t_slow * 1e9 / denom, 2),
                        util::Table::num(t_fast * 1e9 / denom, 2),
                        util::Table::num(speedup, 2) + "x",
                        slow.checksum == fast.checksum ? "yes" : "NO (BUG)"});
  }
  std::cout << step_table.str() << "\n";

  // ------------------------------------------- 2. engine-level reduced sweep ----
  std::cout << "== Engine effect: reduced sweep, avail_block 1 vs 256 ==\n";
  auto sweep_with_block = [&](long block) {
    api::ExperimentSpec spec = api::ExperimentSpec::reduced(5, cap);
    spec.grid.ncoms = {5};
    spec.grid.wmins = {1, 4, 8};
    spec.heuristics = {"IE", "Y-IE", "P-IE"};
    spec.options.threads = 1;
    spec.options.seed = seed;
    spec.options.avail_block = block;
    long makespan_sum = 0;
    struct SumSink final : api::ResultSink {
      long* sum;
      explicit SumSink(long* s) : sum(s) {}
      void consume(const api::ResultRow& row) override { *sum += row.result->makespan; }
    } sink(&makespan_sum);
    const auto t0 = std::chrono::steady_clock::now();
    api::Session().run(spec, {&sink});
    return std::pair<double, long>(seconds_since(t0), makespan_sum);
  };
  const auto [t_b1, sum_b1] = sweep_with_block(1);
  const auto [t_b256, sum_b256] = sweep_with_block(256);
  std::cout << "  avail_block=1:   " << util::Table::num(t_b1, 2) << " s\n"
            << "  avail_block=256: " << util::Table::num(t_b256, 2) << " s ("
            << util::Table::num(t_b1 / t_b256, 2) << "x, results "
            << (sum_b1 == sum_b256 ? "identical" : "DIFFER (BUG)") << ")\n\n";

  // ----------------------------------------------- 3. cross-family mismatch ----
  std::cout << "== SVII-B mismatch sweep through the family registry ==\n"
            << scenarios << " scenario(s) x " << trials << " trial(s), shape " << shape
            << ", " << train_slots << "-slot training trace, cap " << cap << "\n\n";

  scen::register_availability_family(
      scen::make_weibull_family("weibull-bench", scen::WeibullFamilyParams{shape}));
  const auto truth_family = scen::availability_family("weibull-bench");
  const std::vector<std::string> heuristics = {"IE", "Y-IE", "P-IE", "E-IAY", "RANDOM"};

  std::vector<double> sum_a(heuristics.size(), 0.0), sum_b(heuristics.size(), 0.0);
  std::vector<int> count_a(heuristics.size(), 0), count_b(heuristics.size(), 0);
  api::Options options;
  options.slot_cap = cap;
  api::Session session(options);

  for (int sc = 0; sc < scenarios; ++sc) {
    platform::ScenarioParams params;
    params.wmin = 1 + 3 * sc;
    params.seed = seed + 100 + static_cast<std::uint64_t>(sc);
    const auto scenario = platform::make_scenario(params);

    // The flawed belief: a Markov chain fitted by MLE to the true process.
    const auto believed = scen::fit_markov_platform(scenario.platform, *truth_family,
                                                    train_slots, params.seed ^ 0xbeef);
    sched::Estimator fitted_est(believed, scenario.app, 1e-6);

    for (int trial = 0; trial < trials; ++trial) {
      for (std::size_t h = 0; h < heuristics.size(); ++h) {
        // World A: the paper's laboratory — Markov truth, true model.
        const auto ra = session.run_trial(params, heuristics[h], trial);
        if (ra.success) {
          sum_a[h] += static_cast<double>(ra.makespan);
          ++count_a[h];
        }
        // World B: semi-Markov truth via the registry, fitted (wrong) model.
        auto truth = truth_family->make_source(scenario.platform,
                                               expt::trial_seed(scenario, trial),
                                               platform::InitialStates::Stationary);
        auto scheduler = sched::make_scheduler(
            heuristics[h], fitted_est,
            util::derive_seed(params.seed, 2000 + static_cast<std::uint64_t>(trial)));
        const auto rb =
            session.run_custom(scenario.platform, scenario.app, *truth, *scheduler);
        if (rb.success) {
          sum_b[h] += static_cast<double>(rb.makespan);
          ++count_b[h];
        }
      }
    }
  }

  auto mean = [](double sum, int n) { return n > 0 ? sum / n : 0.0; };
  auto diff = [](double x, double ref) {
    return ref > 0.0 && x > 0.0 ? 100.0 * (x - ref) / std::min(x, ref) : 0.0;
  };
  const double ie_a = mean(sum_a[0], count_a[0]);
  const double ie_b = mean(sum_b[0], count_b[0]);
  util::Table mismatch({"heuristic", "markov world", "%diff", "weibull world", "%diff",
                        "fails A", "fails B"});
  const int total = scenarios * trials;
  for (std::size_t h = 0; h < heuristics.size(); ++h) {
    const double a = mean(sum_a[h], count_a[h]);
    const double b = mean(sum_b[h], count_b[h]);
    mismatch.add_row({heuristics[h], util::Table::num(a, 0),
                      util::Table::num(diff(a, ie_a)), util::Table::num(b, 0),
                      util::Table::num(diff(b, ie_b)),
                      std::to_string(total - count_a[h]),
                      std::to_string(total - count_b[h])});
  }
  std::cout << mismatch.str()
            << "\nReading: negative %diff in the weibull world means the heuristic's"
               "\nadvantage over IE survives model misspecification (paper SVII-B).\n";

  // --check X turns the speedup report into a gate (used by the acceptance
  // run; CI smoke-runs skip it to stay robust to noisy shared runners).
  const double min_speedup = cli.get_double("check", 0.0);
  if (markov_speedup < min_speedup) {
    std::cout << "\nFAIL: markov block-path speedup " << util::Table::num(markov_speedup, 2)
              << "x is below the required " << util::Table::num(min_speedup, 2) << "x.\n";
    return 1;
  }
  return 0;
}
