// Reproduces the paper's Figure 2: relative distance (%diff as a ratio) to
// the reference IE versus wmin, for m = 10 tasks and the best 8 heuristics.
//
// The published crossover: Y-IE is best (most negative) up to wmin ~ 8, then
// plain IE wins for the hardest instances; P-IE tracks Y-IE but degrades
// more gracefully. Optionally writes the series to CSV (--csv PATH).
#include <iostream>

#include "bench_common.hpp"
#include "sched/registry.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);
  auto spec = bench::spec_from_cli(cli, /*m=*/10, /*default_cap=*/150'000);
  spec.heuristics = sched::tableii_heuristic_names();
  bench::print_header("Figure 2: relative distance vs wmin (m = 10)", spec);

  const auto results = bench::run_and_aggregate(spec, cli);
  const auto series = expt::figure2_series(results, "IE");
  std::cout << expt::figure2_table(series).str()
            << "\n(values are mean relative distance to IE; negative = better"
               " than IE,\n matching Figure 2's y-axis)\n";

  if (cli.has("csv")) {
    const std::string path = cli.get("csv", "figure2.csv");
    util::CsvWriter csv({"heuristic", "wmin", "relative_distance"});
    for (const auto& [name, points] : series) {
      for (const auto& [wmin, v] : points) {
        csv.add_row({name, std::to_string(wmin), std::to_string(v)});
      }
    }
    std::cout << (csv.save(path) ? "wrote " : "FAILED to write ") << path << "\n";
  }
  return 0;
}
