// Reproduces the paper's Table I: all 17 heuristics at m = 5 tasks, compared
// to the reference heuristic IE by #fails / %diff / %wins / %wins30 / stdv.
//
// Default: reduced sweep (minutes on one core). `--full` runs the paper's
// exact scale: 3 ncom x 10 wmin x 10 scenarios x 10 trials = 3,000 instances
// per heuristic, 10^6-slot failure cap.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace tcgrid;
  util::Cli cli(argc, argv);
  const auto spec = bench::spec_from_cli(cli, /*m=*/5, /*default_cap=*/1'000'000);
  bench::print_header("Table I: results with m = 5 tasks", spec);

  const auto results = bench::run_and_aggregate(spec, cli);
  const auto summaries = expt::summarize_all(results, "IE");
  std::cout << bench::table_with_paper_column(summaries, bench::paper_table1_diff())
                   .str()
            << "\nExpected shape (paper): Y-IE and P-IE best (negative %diff);"
               "\nE-IAY/E-IY next; IE the most robust reference; E-IE poor"
               "\ndespite combining two good ideas; RANDOM worse by >10x.\n";
  return 0;
}
