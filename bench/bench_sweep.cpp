// Trial-major sweep bench: shared materialized realizations vs per-heuristic
// live generation (DESIGN.md §9).
//
// Runs the reduced sweep over a representative heuristic set TWICE with the
// same seeds — once with realization sharing on (the default budget), once
// with it disabled (realization_budget = 0, i.e. every heuristic run
// regenerates its availability stream) — verifies the outcomes are
// bit-identical via an order-independent digest over every per-trial
// counter, and writes wall time, rows/sec and the speedup to
// BENCH_sweep.json. The CI Release job runs this and uploads the artifact;
// the committed BENCH_sweep.json at the repo root is the tracked baseline.
// Exit codes: 0 ok, 2 on any shared/live divergence (CI fails on it).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "bench_common.hpp"
#include "markov/chain_stats.hpp"
#include "util/cli.hpp"

namespace {

using namespace tcgrid;
using bench::DigestSink;

struct SweepTiming {
  double seconds = 0.0;
  std::size_t rows = 0;
  long slots = 0;
  std::uint64_t digest = 0;
  markov::ChainStatsStore::Counters store{};  ///< chain-stats store stats
};

SweepTiming run_sweep(const api::ExperimentSpec& spec) {
  api::Session session(spec.options);
  DigestSink digest;
  const auto t0 = std::chrono::steady_clock::now();
  session.run(spec, {&digest});
  SweepTiming out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.rows = digest.rows();
  out.slots = digest.slots();
  out.digest = digest.digest();
  out.store = session.chain_store_counters();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string path = [&] {
    auto v = cli.value("emit_json");
    return (v && !v->empty()) ? *v : std::string("BENCH_sweep.json");
  }();

  // Default cap 50k, not bench_engine's 200k: this bench measures the
  // sharing lever, and a unit's materialization cost is set by its LONGEST
  // run. At 200k+ the sweep's wall time is mostly RANDOM simulating
  // cap-length failures — a single consumer of each realization's tail,
  // which no scheme can share — while 50k keeps failed runs bounded near
  // the longest successful makespans (tens of thousands of slots), so the
  // measurement reflects the mixed workload sweeps actually run.
  api::ExperimentSpec spec =
      api::ExperimentSpec::reduced(static_cast<int>(cli.get_long("m", 5)),
                                   cli.get_long("cap", 50'000));
  spec.grid.scenarios_per_cell =
      static_cast<int>(cli.get_long("scenarios", spec.grid.scenarios_per_cell));
  spec.trials = static_cast<int>(cli.get_long("trials", spec.trials));
  spec.options.threads = 1;  // timings must not depend on core count

  // The trial-major sharing lever scales with how many heuristics consume
  // one realization: use the same representative set bench_engine times
  // (all quiescence classes represented).
  spec.heuristics = {
      "IP", "IE", "IAY",                // passive
      "P-IE", "E-IE", "E-IAY", "Y-IE",  // memoized proactive
      "IY", "RANDOM",                   // per-slot by contract (no skipping)
  };

  api::ExperimentSpec live = spec;
  live.options.realization_budget = 0;  // per-heuristic live generation

  // Interleaved repetitions, best-of per mode: wall times on shared CI
  // runners jitter by tens of percent, and min-of-N against min-of-N is the
  // standard way to compare two deterministic computations under that noise.
  const long reps = std::max(1L, cli.get_long("reps", 5));
  SweepTiming live_t;
  SweepTiming shared_t;
  for (long r = 0; r < reps; ++r) {
    const SweepTiming l = run_sweep(live);
    const SweepTiming s = run_sweep(spec);
    if (r == 0) {
      live_t = l;
      shared_t = s;
    } else {
      if (l.digest != live_t.digest || s.digest != shared_t.digest) {
        std::fprintf(stderr, "bench_sweep: nondeterministic repetition digest\n");
        return 2;
      }
      live_t.seconds = std::min(live_t.seconds, l.seconds);
      shared_t.seconds = std::min(shared_t.seconds, s.seconds);
    }
  }

  const bool identical =
      shared_t.digest == live_t.digest && shared_t.rows == live_t.rows;
  const double shared_rate = static_cast<double>(shared_t.rows) / shared_t.seconds;
  const double live_rate = static_cast<double>(live_t.rows) / live_t.seconds;
  const double speedup = live_t.seconds / shared_t.seconds;

  // Chain-stats store statistics of the shared arm (both arms share the
  // store — realization sharing is the axis under test here), so the wall
  // times are attributable: how much series math the store deduplicated.
  const auto& cs = shared_t.store;
  const double set_hit_rate =
      cs.set_hits + cs.set_misses == 0
          ? 0.0
          : static_cast<double>(cs.set_hits) /
                static_cast<double>(cs.set_hits + cs.set_misses);

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "bench_sweep: cannot write %s\n", path.c_str());
    return 1;
  }
  char buf[1536];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"bench\": \"sweep_shared_realizations\",\n"
      "  \"sweep\": {\"m\": %d, \"scenarios_per_cell\": %d, \"trials\": %d, "
      "\"slot_cap\": %ld, \"heuristics\": %zu},\n"
      "  \"rows\": %zu,\n"
      "  \"slots\": %ld,\n"
      "  \"shared\": {\"seconds\": %.3f, \"rows_per_sec\": %.1f},\n"
      "  \"live\": {\"seconds\": %.3f, \"rows_per_sec\": %.1f},\n"
      "  \"speedup\": %.3f,\n"
      "  \"chain_store\": {\"chains\": %zu, \"intern_hits\": %zu, "
      "\"set_entries\": %zu, \"set_hits\": %zu, \"set_misses\": %zu, "
      "\"set_hit_rate\": %.3f, \"survival_entries\": %zu, \"bytes\": %zu},\n"
      "  \"identical\": %s\n"
      "}\n",
      spec.grid.ms[0], spec.grid.scenarios_per_cell, spec.trials,
      spec.options.slot_cap, spec.heuristics.size(), shared_t.rows, shared_t.slots,
      shared_t.seconds, shared_rate, live_t.seconds, live_rate, speedup, cs.chains,
      cs.intern_hits, cs.set_entries, cs.set_hits, cs.set_misses, set_hit_rate,
      cs.survival_entries, cs.bytes, identical ? "true" : "false");
  out << buf;
  std::fprintf(stderr,
               "bench_sweep: %zu rows  shared %.3fs (%.0f rows/s)  live %.3fs "
               "(%.0f rows/s)  speedup x%.2f  %s\n",
               shared_t.rows, shared_t.seconds, shared_rate, live_t.seconds,
               live_rate, speedup, identical ? "identical" : "MISMATCH");
  std::fprintf(stderr,
               "bench_sweep: chain store  %zu chains (+%zu dedup hits)  %zu set "
               "entries (%.1f%% hit rate)  %zu survival entries  %zu bytes\n",
               cs.chains, cs.intern_hits, cs.set_entries, 100.0 * set_hit_rate,
               cs.survival_entries, cs.bytes);
  std::fprintf(stderr, "bench_sweep: wrote %s\n", path.c_str());
  return identical ? 0 : 2;  // CI fails on shared/live divergence
}
