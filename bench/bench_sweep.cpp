// Trial-major sweep bench: shared materialized realizations vs per-heuristic
// live generation (DESIGN.md §9), plus the lockstep trial-batch executor
// (DESIGN.md §13).
//
// Runs the reduced sweep over a representative heuristic set FOUR ways
// with the same seeds — realization sharing on (the default budget),
// sharing disabled (realization_budget = 0, i.e. every heuristic run
// regenerates its availability stream), sharing on with the obs metrics
// layer enabled, and sharing on with `trial_batch` lockstep replay —
// verifies all outcomes are bit-identical via an order-independent digest
// over every per-trial counter, and writes wall times, rows/sec, the
// sharing speedup and the obs overhead ratio to BENCH_sweep.json. The CI
// Release job runs this and uploads the artifact; the committed
// BENCH_sweep.json at the repo root is the tracked baseline.
// The "obs" section is the enabled-path overhead measurement DESIGN.md §12
// cites (budget: < 2% on rows/sec); the other arms run with obs
// disabled, i.e. they also measure the disabled path at parity.
//
// All ratio-of-wall-time figures sit on top of machine noise: the artifact
// therefore records a `noise_floor` — the worst relative best-to-worst rep
// spread seen by any arm — and headline overheads are clamped at 0 (a
// negative overhead is indistinguishable from noise, not a real win). Raw
// unclamped ratios are kept alongside for honesty.
//
// --shards N (default 0 = off) adds a MULTI-PROCESS arm (DESIGN.md §15): a
// coordinator-mode server leasing units to N forked shard daemon processes
// over real unix sockets, timed submit -> final row. Its digest is an
// order-independent fold over the serve-protocol ROW BYTES, compared
// against the same fold computed by a RowDigestSink during a plain shared
// Session run — the sorted-union byte-identity gate, inside the same exit-2
// contract as the in-process digests. The artifact records rows/sec, the
// speedup over the single-process shared arm, the per-shard scaling
// efficiency and the host core count: the arm is CPU-bound, so wall-clock
// speedup needs >= shards+1 hardware threads — on fewer cores the shard
// processes timeshare and the honest expectation is ~1.0x, not >N x.
// Exit codes: 0 ok, 2 on any digest divergence (CI fails on it).
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/spec_json.hpp"
#include "bench_common.hpp"
#include "markov/chain_stats.hpp"
#include "obs/obs.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/cli.hpp"
#include "util/socket.hpp"

namespace {

using namespace tcgrid;
using bench::DigestSink;

struct SweepTiming {
  double seconds = 0.0;      ///< best (min) over repetitions
  double worst_seconds = 0.0;  ///< worst (max) over repetitions
  std::size_t rows = 0;
  long slots = 0;
  std::uint64_t digest = 0;
  markov::ChainStatsStore::Counters store{};  ///< chain-stats store stats
};

/// Best-to-worst rep spread of one arm, relative to its best time. The max
/// over arms is the run's noise floor: any ratio between two arms that is
/// smaller than this cannot be distinguished from scheduler jitter.
double rep_spread(const SweepTiming& t) {
  return t.seconds > 0.0 ? t.worst_seconds / t.seconds - 1.0 : 0.0;
}

/// Satellite of DESIGN.md §10: the warm-session pass. One Session runs the
/// SAME sweep twice; the second pass constructs fresh per-cell estimators
/// against the retained chain-stats store, so every chain interns into a
/// hit and every set quad is already memoized. Timings for both passes plus
/// the counter DELTAS of the second one (its hits alone, not the sweep
/// pair's) quantify the cross-request warmth the serve daemon banks on.
struct WarmPassTiming {
  double first_seconds = 0.0;
  double warm_seconds = 0.0;
  double worst_warm_seconds = 0.0;
  std::size_t rows = 0;
  std::uint64_t digest = 0;
  bool passes_identical = false;  ///< second-pass digest == first-pass digest
  markov::ChainStatsStore::Counters after_first{};
  markov::ChainStatsStore::Counters after_second{};
};

WarmPassTiming run_warm_pass(const api::ExperimentSpec& spec) {
  api::Session session(spec.options);
  WarmPassTiming out;
  DigestSink first;
  auto t0 = std::chrono::steady_clock::now();
  session.run(spec, {&first});
  out.first_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.after_first = session.chain_store_counters();
  // The resubmit shape: estimators are rebuilt, the chain store is retained.
  // Without this drop the second pass reuses the per-thread ScenarioEntry
  // caches and never consults the store at all (deltas of 0 — true, but
  // measuring cache retention, not store warmth).
  session.drop_estimator_caches();
  DigestSink warm;
  t0 = std::chrono::steady_clock::now();
  session.run(spec, {&warm});
  out.warm_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.worst_warm_seconds = out.warm_seconds;
  out.after_second = session.chain_store_counters();
  out.rows = warm.rows();
  out.digest = warm.digest();
  out.passes_identical = warm.digest() == first.digest() && warm.rows() == first.rows();
  return out;
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Order-independent digest over serve-protocol ROW BYTES. DigestSink folds
/// per-iteration stats that row lines do not carry, so it cannot gate the
/// sharded arm; this sink hashes exactly the bytes a daemon streams —
/// serve::row_line is the single serializer on both sides, which is what
/// makes the comparison a byte-identity claim and not a value claim.
class RowDigestSink final : public api::ResultSink {
 public:
  void consume(const api::ResultRow& row) override {
    digest_ ^= fnv1a(serve::row_line(row.scenario, row.trial, row.heuristic,
                                     *row.name, *row.family, *row.params,
                                     *row.result));
    ++rows_;
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

 private:
  std::uint64_t digest_ = 0;
  std::size_t rows_ = 0;
};

struct ShardedTiming {
  double seconds = 0.0;
  double worst_seconds = 0.0;
  std::size_t rows = 0;
  std::uint64_t digest = 0;
};

/// A stock shard daemon in its own forked process behind a unix listen
/// socket — the multi-process in the multi-process arm: real address-space
/// isolation, scheduled by the kernel like any external tcgrid_serve. The
/// child serves until the parent SIGKILLs it; that teardown is the
/// documented shard contract (shards hold nothing the merge needs — the
/// coordinator owns the durable checkpoint).
struct ShardProcess {
  ShardProcess(const serve::ServerOptions& opts, const std::string& socket_path) {
    pid = ::fork();
    if (pid == 0) {
      try {
        tcgrid::util::Fd listen_fd = tcgrid::util::listen_unix(socket_path);
        serve::Server server(opts);
        server.serve(listen_fd.get());
      } catch (...) {
      }
      ::_exit(0);
    }
    // The coordinator's monitor dials the address as soon as the fleet
    // starts: block until the child's socket actually accepts so daemon
    // startup cannot leak into the timed region as connect-retry latency.
    for (int i = 0; i < 200; ++i) {
      try {
        tcgrid::util::Fd probe = tcgrid::util::connect_unix(socket_path);
        return;
      } catch (const std::exception&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    std::fprintf(stderr, "bench_sweep: shard %s never came up\n", socket_path.c_str());
  }
  ~ShardProcess() {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
  pid_t pid = -1;
};

/// One sharded rep: fresh coordinator + `shards` single-threaded shard
/// daemon processes (cold tenant sessions, like every other arm's fresh
/// Session), timed from submit to the results stream's end record. Process
/// spawn and teardown stay outside the timed region.
ShardedTiming run_sharded(const api::ExperimentSpec& spec, long shards,
                          const std::filesystem::path& tmp, long rep) {
  namespace fs = std::filesystem;
  namespace serve = tcgrid::serve;
  const fs::path root = tmp / ("rep" + std::to_string(rep));
  fs::create_directories(root);
  ShardedTiming out;
  {
    std::vector<std::unique_ptr<ShardProcess>> fleet;
    serve::ServerOptions copts;
    copts.root = (root / "coord").string();
    copts.coordinator = true;
    for (long s = 0; s < shards; ++s) {
      serve::ServerOptions sopts;
      sopts.root = (root / ("shard" + std::to_string(s))).string();
      sopts.threads = 1;  // parallelism is the shard count, nothing hidden
      const std::string sock = (root / ("s" + std::to_string(s) + ".sock")).string();
      fleet.push_back(std::make_unique<ShardProcess>(sopts, sock));
      copts.shard.shards.push_back(sock);
    }
    serve::Server coord(copts);
    auto [client_end, server_end] = util::stream_socketpair();
    const int sfd = server_end.release();
    std::thread handler([&coord, sfd] {
      coord.serve_connection(sfd);
      ::close(sfd);
    });
    util::LineChannel ch(client_end.get());

    const auto t0 = std::chrono::steady_clock::now();
    bool ok = ch.write_line(
        serve::submit_request("bench", api::spec_to_json(spec), "bench"));
    std::string line;
    ok = ok && ch.read_line(line);
    if (!ok || line.find("\"ok\":true") == std::string::npos) {
      std::fprintf(stderr, "bench_sweep: sharded submit failed: %s\n", line.c_str());
    } else if (ch.write_line(serve::results_request("bench", 0, /*wait=*/true))) {
      while (ch.read_line(line)) {
        if (line.compare(0, 12, "{\"scenario\":") == 0) {
          out.digest ^= fnv1a(line);
          ++out.rows;
          continue;
        }
        break;  // the end record (or an error line, caught by the row gate)
      }
      out.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      out.worst_seconds = out.seconds;
    }
    client_end.reset();
    handler.join();
  }
  std::error_code ec;
  std::filesystem::remove_all(root, ec);
  return out;
}

SweepTiming run_sweep(const api::ExperimentSpec& spec) {
  api::Session session(spec.options);
  DigestSink digest;
  const auto t0 = std::chrono::steady_clock::now();
  session.run(spec, {&digest});
  SweepTiming out;
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  out.worst_seconds = out.seconds;
  out.rows = digest.rows();
  out.slots = digest.slots();
  out.digest = digest.digest();
  out.store = session.chain_store_counters();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string path = [&] {
    auto v = cli.value("emit_json");
    return (v && !v->empty()) ? *v : std::string("BENCH_sweep.json");
  }();

  // Default cap 50k, not bench_engine's 200k: this bench measures the
  // sharing lever, and a unit's materialization cost is set by its LONGEST
  // run. At 200k+ the sweep's wall time is mostly RANDOM simulating
  // cap-length failures — a single consumer of each realization's tail,
  // which no scheme can share — while 50k keeps failed runs bounded near
  // the longest successful makespans (tens of thousands of slots), so the
  // measurement reflects the mixed workload sweeps actually run.
  api::ExperimentSpec spec =
      api::ExperimentSpec::reduced(static_cast<int>(cli.get_long("m", 5)),
                                   cli.get_long("cap", 50'000));
  spec.grid.scenarios_per_cell =
      static_cast<int>(cli.get_long("scenarios", spec.grid.scenarios_per_cell));
  spec.trials = static_cast<int>(cli.get_long("trials", spec.trials));
  spec.options.threads = 1;  // timings must not depend on core count

  // The trial-major sharing lever scales with how many heuristics consume
  // one realization: use the same representative set bench_engine times
  // (all quiescence classes represented).
  spec.heuristics = {
      "IP", "IE", "IAY",                // passive
      "P-IE", "E-IE", "E-IAY", "Y-IE",  // memoized proactive
      "IY", "RANDOM",                   // per-slot by contract (no skipping)
  };

  api::ExperimentSpec live = spec;
  live.options.realization_budget = 0;  // per-heuristic live generation

  // Fourth arm: the lockstep trial-batch executor (§13) over the same
  // shared-realization config. The width clamps to the spec's trial count,
  // so with the default reduced sweep (trials = 2) this measures B = 2;
  // pass --trials to widen the batch (which also widens the other arms'
  // workload — compare like against like).
  api::ExperimentSpec batched = spec;
  batched.options.trial_batch =
      static_cast<int>(std::max(2L, cli.get_long("batch", 8)));

  // Interleaved repetitions, best-of per mode: wall times on shared CI
  // runners jitter by tens of percent, and min-of-N against min-of-N is the
  // standard way to compare two deterministic computations under that noise.
  // The max is kept too: the per-arm best-to-worst spread is the run's
  // measured noise floor, reported next to every ratio built from these
  // times.
  const long reps = std::max(1L, cli.get_long("reps", 5));
  const long shards = std::max(0L, cli.get_long("shards", 0));

  // Sharded-arm byte reference: the row-byte fold of one plain shared run.
  // Computed before the timed loop (the extra pass must not perturb it).
  std::uint64_t row_reference_digest = 0;
  std::size_t row_reference_rows = 0;
  std::filesystem::path shard_tmp;
  if (shards > 0) {
    api::Session session(spec.options);
    RowDigestSink row_digest;
    session.run(spec, {&row_digest});
    row_reference_digest = row_digest.digest();
    row_reference_rows = row_digest.rows();
    shard_tmp = std::filesystem::temp_directory_path() /
                ("tcgrid_bench_sweep_" + std::to_string(::getpid()));
    std::filesystem::remove_all(shard_tmp);
  }

  SweepTiming live_t;
  SweepTiming shared_t;
  SweepTiming obs_t;
  SweepTiming batch_t;
  WarmPassTiming warm_t;
  ShardedTiming sharded_t;
  for (long r = 0; r < reps; ++r) {
    const SweepTiming l = run_sweep(live);
    const SweepTiming s = run_sweep(spec);
    const SweepTiming b = run_sweep(batched);
    const WarmPassTiming w = run_warm_pass(spec);
    if (shards > 0) {
      const ShardedTiming sh = run_sharded(spec, shards, shard_tmp, r);
      if (sh.rows != row_reference_rows || sh.digest != row_reference_digest) {
        std::fprintf(stderr,
                     "bench_sweep: sharded arm diverged from the single-process "
                     "row bytes (%zu rows vs %zu)\n",
                     sh.rows, row_reference_rows);
        return 2;
      }
      if (r == 0) {
        sharded_t = sh;
      } else {
        sharded_t.seconds = std::min(sharded_t.seconds, sh.seconds);
        sharded_t.worst_seconds = std::max(sharded_t.worst_seconds, sh.seconds);
      }
    }
    // The shared sweep with obs metric updates enabled — the
    // instrumented-path overhead measurement. Interleaved with the other
    // arms so all four see the same machine noise.
    obs::configure({.enabled = true});
    const SweepTiming o = run_sweep(spec);
    obs::configure({});
    if (r == 0) {
      live_t = l;
      shared_t = s;
      obs_t = o;
      batch_t = b;
      warm_t = w;
    } else {
      if (l.digest != live_t.digest || s.digest != shared_t.digest ||
          o.digest != obs_t.digest || b.digest != batch_t.digest ||
          w.digest != warm_t.digest) {
        std::fprintf(stderr, "bench_sweep: nondeterministic repetition digest\n");
        return 2;
      }
      live_t.seconds = std::min(live_t.seconds, l.seconds);
      shared_t.seconds = std::min(shared_t.seconds, s.seconds);
      obs_t.seconds = std::min(obs_t.seconds, o.seconds);
      batch_t.seconds = std::min(batch_t.seconds, b.seconds);
      live_t.worst_seconds = std::max(live_t.worst_seconds, l.seconds);
      shared_t.worst_seconds = std::max(shared_t.worst_seconds, s.seconds);
      obs_t.worst_seconds = std::max(obs_t.worst_seconds, o.seconds);
      batch_t.worst_seconds = std::max(batch_t.worst_seconds, b.seconds);
      warm_t.first_seconds = std::min(warm_t.first_seconds, w.first_seconds);
      warm_t.warm_seconds = std::min(warm_t.warm_seconds, w.warm_seconds);
      warm_t.worst_warm_seconds =
          std::max(warm_t.worst_warm_seconds, w.warm_seconds);
      warm_t.passes_identical = warm_t.passes_identical && w.passes_identical;
    }
  }

  // The batched arm is the exactness gate DESIGN.md §13 promises: lockstep
  // replay must reproduce the sequential digest bit for bit.
  const bool identical =
      shared_t.digest == live_t.digest && shared_t.rows == live_t.rows &&
      obs_t.digest == shared_t.digest && obs_t.rows == shared_t.rows &&
      batch_t.digest == shared_t.digest && batch_t.rows == shared_t.rows &&
      warm_t.digest == shared_t.digest && warm_t.rows == shared_t.rows &&
      warm_t.passes_identical;
  const double shared_rate = static_cast<double>(shared_t.rows) / shared_t.seconds;
  const double live_rate = static_cast<double>(live_t.rows) / live_t.seconds;
  const double speedup = live_t.seconds / shared_t.seconds;

  // Chain-stats store statistics of the shared arm (both arms share the
  // store — realization sharing is the axis under test here), so the wall
  // times are attributable: how much series math the store deduplicated.
  const auto& cs = shared_t.store;
  const double set_hit_rate =
      cs.set_hits + cs.set_misses == 0
          ? 0.0
          : static_cast<double>(cs.set_hits) /
                static_cast<double>(cs.set_hits + cs.set_misses);

  const double obs_rate = static_cast<double>(obs_t.rows) / obs_t.seconds;
  // Raw ratio can land below zero when the instrumented run happens to draw
  // the quieter reps; the headline overhead is clamped at 0 so the artifact
  // never advertises instrumentation as a speedup. The noise floor says how
  // much of any small ratio is attributable to jitter.
  const double obs_overhead_raw = obs_t.seconds / shared_t.seconds - 1.0;
  const double obs_overhead = std::max(0.0, obs_overhead_raw);
  const double noise_floor =
      std::max(std::max(rep_spread(shared_t), rep_spread(live_t)),
               std::max(rep_spread(obs_t), rep_spread(batch_t)));

  const double batch_rate = static_cast<double>(batch_t.rows) / batch_t.seconds;
  const double batch_speedup = shared_t.seconds / batch_t.seconds;

  // Sharded arm: speedup over the SAME single-threaded shared arm, and
  // efficiency per shard (1.0 = perfect linear scaling).
  const double sharded_rate =
      sharded_t.seconds > 0.0 ? static_cast<double>(sharded_t.rows) / sharded_t.seconds
                              : 0.0;
  const double sharded_speedup =
      sharded_t.seconds > 0.0 ? shared_t.seconds / sharded_t.seconds : 0.0;
  const double scaling_efficiency =
      shards > 0 ? sharded_speedup / static_cast<double>(shards) : 0.0;

  // Warm-pass deltas: the second pass's own hits, with the first pass (the
  // population run) subtracted out.
  const auto& w1 = warm_t.after_first;
  const auto& w2 = warm_t.after_second;
  const std::size_t warm_intern_hits = w2.intern_hits - w1.intern_hits;
  const std::size_t warm_set_hits = w2.set_hits - w1.set_hits;
  const std::size_t warm_set_misses = w2.set_misses - w1.set_misses;
  const std::size_t warm_new_chains = w2.chains - w1.chains;
  const double warm_set_hit_rate =
      warm_set_hits + warm_set_misses == 0
          ? 0.0
          : static_cast<double>(warm_set_hits) /
                static_cast<double>(warm_set_hits + warm_set_misses);
  const double warm_rate = static_cast<double>(warm_t.rows) / warm_t.warm_seconds;
  const double warm_speedup = warm_t.first_seconds / warm_t.warm_seconds;

  namespace json = util::json;
  json::Object artifact_obj{
      {"bench", "sweep_shared_realizations"},
      {"sweep", json::Object{{"m", spec.grid.ms[0]},
                             {"scenarios_per_cell", spec.grid.scenarios_per_cell},
                             {"trials", spec.trials},
                             {"slot_cap", spec.options.slot_cap},
                             {"heuristics", spec.heuristics.size()}}},
      {"rows", shared_t.rows},
      {"slots", shared_t.slots},
      {"shared", json::Object{{"seconds", shared_t.seconds},
                              {"rows_per_sec", shared_rate}}},
      {"live",
       json::Object{{"seconds", live_t.seconds}, {"rows_per_sec", live_rate}}},
      {"speedup", speedup},
      {"batched", json::Object{{"seconds", batch_t.seconds},
                               {"rows_per_sec", batch_rate},
                               {"trial_batch", batched.options.trial_batch},
                               {"speedup_vs_shared", batch_speedup}}},
      {"obs", json::Object{{"seconds", obs_t.seconds},
                           {"rows_per_sec", obs_rate},
                           {"overhead", obs_overhead},
                           {"overhead_raw", obs_overhead_raw}}},
      {"warm_pass",
       json::Object{{"first_seconds", warm_t.first_seconds},
                    {"warm_seconds", warm_t.warm_seconds},
                    {"rows_per_sec", warm_rate},
                    {"speedup_vs_first", warm_speedup},
                    {"warm_intern_hits", warm_intern_hits},
                    {"warm_set_hits", warm_set_hits},
                    {"warm_set_misses", warm_set_misses},
                    {"warm_set_hit_rate", warm_set_hit_rate},
                    {"new_chains_second_pass", warm_new_chains}}},
      {"noise_floor", noise_floor},
      {"chain_store", json::Object{{"chains", cs.chains},
                                   {"intern_hits", cs.intern_hits},
                                   {"set_entries", cs.set_entries},
                                   {"set_hits", cs.set_hits},
                                   {"set_misses", cs.set_misses},
                                   {"set_hit_rate", set_hit_rate},
                                   {"survival_entries", cs.survival_entries},
                                   {"bytes", cs.bytes}}},
      {"identical", identical},
  };
  // Host hardware threads: the denominator the sharded speedup must be
  // read against — shard processes are CPU-bound, so on a host with fewer
  // than shards+1 cores they timeshare and ~1.0x is the expected (honest)
  // ceiling, while >= shards+1 cores is where speedup_vs_shared approaches
  // the shard count.
  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  if (shards > 0) {
    artifact_obj.emplace_back(
        "sharded", json::Object{{"shards", shards},
                                {"cores", cores},
                                {"seconds", sharded_t.seconds},
                                {"rows_per_sec", sharded_rate},
                                {"speedup_vs_shared", sharded_speedup},
                                {"scaling_efficiency", scaling_efficiency},
                                {"rows", sharded_t.rows},
                                {"digest_match", true}});
  }
  const json::Value artifact(std::move(artifact_obj));
  if (const int rc = bench::write_json_artifact("bench_sweep", path, artifact);
      rc != 0) {
    return rc;
  }
  std::fprintf(stderr,
               "bench_sweep: %zu rows  shared %.3fs (%.0f rows/s)  live %.3fs "
               "(%.0f rows/s)  speedup x%.2f  %s\n",
               shared_t.rows, shared_t.seconds, shared_rate, live_t.seconds,
               live_rate, speedup, identical ? "identical" : "MISMATCH");
  std::fprintf(stderr,
               "bench_sweep: batched (B=%d) %.3fs (%.0f rows/s)  x%.2f vs "
               "shared\n",
               batched.options.trial_batch, batch_t.seconds, batch_rate,
               batch_speedup);
  std::fprintf(stderr,
               "bench_sweep: obs enabled %.3fs (%.0f rows/s)  overhead %.2f%% "
               "(raw %+.2f%%, noise floor %.2f%%)\n",
               obs_t.seconds, obs_rate, 100.0 * obs_overhead,
               100.0 * obs_overhead_raw, 100.0 * noise_floor);
  std::fprintf(stderr,
               "bench_sweep: warm pass  first %.3fs  warm %.3fs (x%.2f, %.0f "
               "rows/s)  %zu intern hits  set hit rate %.1f%%  %zu new chains\n",
               warm_t.first_seconds, warm_t.warm_seconds, warm_speedup, warm_rate,
               warm_intern_hits, 100.0 * warm_set_hit_rate, warm_new_chains);
  std::fprintf(stderr,
               "bench_sweep: chain store  %zu chains (+%zu dedup hits)  %zu set "
               "entries (%.1f%% hit rate)  %zu survival entries  %zu bytes\n",
               cs.chains, cs.intern_hits, cs.set_entries, 100.0 * set_hit_rate,
               cs.survival_entries, cs.bytes);
  if (shards > 0) {
    std::fprintf(stderr,
                 "bench_sweep: sharded (%ld shards, %zu cores) %.3fs (%.0f "
                 "rows/s)  x%.2f vs shared  efficiency %.0f%%  row bytes "
                 "identical\n",
                 shards, cores, sharded_t.seconds, sharded_rate, sharded_speedup,
                 100.0 * scaling_efficiency);
    std::error_code ec;
    std::filesystem::remove_all(shard_tmp, ec);
  }
  return identical ? 0 : 2;  // CI fails on any digest divergence
}
