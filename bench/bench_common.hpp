// Shared plumbing for the table/figure reproduction benches: CLI ->
// api::ExperimentSpec, progress reporting, and the paper's published numbers
// for side-by-side comparison.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "expt/report.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace tcgrid::bench {

/// Scale knobs common to every reproduction bench.
///
/// Defaults are a reduced sweep that preserves the paper's factorial
/// structure (all ncom and wmin values) but runs in minutes on one core;
/// `--full` restores the paper's exact scale (10 scenarios x 10 trials,
/// 10^6-slot cap).
inline api::ExperimentSpec spec_from_cli(const util::Cli& cli, int m,
                                         long default_cap) {
  const bool full = cli.get_bool("full");
  api::ExperimentSpec spec = full ? api::ExperimentSpec::paper(m)
                                  : api::ExperimentSpec::reduced(m, default_cap);
  spec.grid.scenarios_per_cell =
      static_cast<int>(cli.get_long("scenarios", spec.grid.scenarios_per_cell));
  spec.trials = static_cast<int>(cli.get_long("trials", spec.trials));
  spec.options.slot_cap = cli.get_long("cap", spec.options.slot_cap);
  spec.options.eps = cli.get_double("eps", 1e-6);
  spec.options.seed = static_cast<std::uint64_t>(cli.get_long("seed", 42));
  spec.options.threads = static_cast<std::size_t>(cli.get_long("threads", 0));
  return spec;
}

inline void print_header(const std::string& what, const api::ExperimentSpec& spec) {
  std::cout << "== " << what << " ==\n"
            << "sweep: m=" << spec.grid.ms[0] << " ncom={5,10,20} wmin=1..10, "
            << spec.grid.scenarios_per_cell << " scenario(s)/cell x " << spec.trials
            << " trial(s), cap=" << spec.options.slot_cap
            << " slots, seed=" << spec.options.seed
            << "\n(paper scale: --full; knobs: --scenarios N --trials N --cap N"
               " --seed N --threads N;\n --jsonl PATH / --raw-csv PATH stream raw"
               " outcomes)\n\n";
}

inline std::function<void(std::size_t, std::size_t)> progress_printer() {
  return [](std::size_t done, std::size_t total) {
    if (done == total || done % 10 == 0) {
      std::fprintf(stderr, "\r  scenarios %zu/%zu", done, total);
      if (done == total) std::fprintf(stderr, "\n");
      std::fflush(stderr);
    }
  };
}

/// Run the sweep through the facade, aggregating in memory and optionally
/// streaming raw outcomes to CSV/JSONL files named on the command line
/// (--raw-csv PATH, --jsonl PATH).
inline expt::SweepResults run_and_aggregate(const api::ExperimentSpec& spec,
                                            const util::Cli& cli) {
  api::Session session;
  api::AggregateSink aggregate;
  try {
    std::vector<api::ResultSink*> sinks{&aggregate};

    std::optional<api::CsvSink> csv;
    if (cli.has("raw-csv")) {
      csv.emplace(cli.get("raw-csv", "outcomes.csv"));
      sinks.push_back(&*csv);
    }
    std::optional<api::JsonlSink> jsonl;
    if (cli.has("jsonl")) {
      jsonl.emplace(cli.get("jsonl", "outcomes.jsonl"));
      sinks.push_back(&*jsonl);
    }

    session.run(spec, sinks, progress_printer());
  } catch (const std::invalid_argument& e) {
    // Up-front spec validation failure (bad CLI values): report and exit
    // cleanly instead of aborting on an uncaught exception.
    std::cerr << "invalid experiment spec: " << e.what() << '\n';
    std::exit(2);
  } catch (const std::runtime_error& e) {
    // Sink construction failure (unwritable --raw-csv/--jsonl path).
    std::cerr << e.what() << '\n';
    std::exit(2);
  }
  return std::move(aggregate).take();
}

/// Write one BENCH_*.json CI artifact: canonical dump through util/json —
/// the same serializer the serve protocol and the obs exposition use —
/// replacing the per-bench hand-rolled snprintf emitters. Returns 0, or 1
/// (with a message on stderr) when the path is unwritable.
inline int write_json_artifact(const char* bench_name, const std::string& path,
                               const util::json::Value& artifact) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "%s: cannot write %s\n", bench_name, path.c_str());
    return 1;
  }
  out << util::json::dump(artifact) << '\n';
  std::fprintf(stderr, "%s: wrote %s\n", bench_name, path.c_str());
  return 0;
}

/// The %diff values published in the paper's Table I (m = 5).
inline const std::map<std::string, double>& paper_table1_diff() {
  static const std::map<std::string, double> v = {
      {"Y-IE", -11.82}, {"P-IE", -10.50},  {"E-IAY", -10.40}, {"E-IY", -3.40},
      {"IE", 0.00},     {"IAY", 13.59},    {"E-IP", 19.35},   {"IY", 24.22},
      {"IP", 52.03},    {"E-IE", 53.93},   {"Y-IAY", 99.75},  {"Y-IY", 113.01},
      {"P-IAY", 125.27},{"Y-IP", 145.05},  {"P-IY", 145.78},  {"P-IP", 176.92},
      {"RANDOM", 2124.42}};
  return v;
}

/// The %diff values published in the paper's Table II (m = 10, best 8).
inline const std::map<std::string, double>& paper_table2_diff() {
  static const std::map<std::string, double> v = {
      {"Y-IE", -10.33}, {"P-IE", -8.62}, {"E-IAY", -6.10}, {"E-IY", 8.04},
      {"E-IP", 29.68},  {"IAY", 136.65}, {"IY", 147.77},   {"IE", 0.00}};
  return v;
}

/// Thread-count-independent digest of a sweep's outcomes: per row, an FNV
/// hash over the coordinates and EVERY per-trial counter (iteration stats
/// included), XOR-folded so completion order cannot matter. The divergence
/// gates of bench_engine (fast-forward on vs off) and bench_sweep (shared
/// realizations vs live generation) both compare these digests — one
/// implementation, so a counter added to sim::SimulationResult is either
/// covered by both gates or by neither (grep for this class when extending
/// the result structs).
class DigestSink final : public api::ResultSink {
 public:
  void consume(const api::ResultRow& row) override {
    const sim::SimulationResult& r = *row.result;
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 1099511628211ULL;
    };
    mix(static_cast<std::uint64_t>(row.heuristic));
    mix(static_cast<std::uint64_t>(row.scenario));
    mix(static_cast<std::uint64_t>(row.trial));
    mix(static_cast<std::uint64_t>(r.makespan));
    mix(static_cast<std::uint64_t>(r.success ? 1 : 0));
    mix(static_cast<std::uint64_t>(r.total_restarts));
    mix(static_cast<std::uint64_t>(r.total_reconfigurations));
    mix(static_cast<std::uint64_t>(r.idle_slots));
    for (const auto& it : r.iterations) {
      mix(static_cast<std::uint64_t>(it.start_slot));
      mix(static_cast<std::uint64_t>(it.end_slot));
      mix(static_cast<std::uint64_t>(it.comm_slots));
      mix(static_cast<std::uint64_t>(it.stalled_slots));
      mix(static_cast<std::uint64_t>(it.compute_slots));
      mix(static_cast<std::uint64_t>(it.suspended_slots));
    }
    digest_ ^= h;  // order-independent fold
    ++rows_;
    slots_ += r.makespan;
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return digest_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] long slots() const noexcept { return slots_; }

 private:
  std::uint64_t digest_ = 0;
  std::size_t rows_ = 0;
  long slots_ = 0;
};

/// Render summaries with the paper's published %diff as an extra column.
inline util::Table table_with_paper_column(
    const std::vector<expt::HeuristicSummary>& summaries,
    const std::map<std::string, double>& paper) {
  util::Table table(
      {"Heuristic", "#fails", "%diff", "%wins", "%wins30", "stdv", "paper %diff"});
  for (const auto& s : summaries) {
    auto it = paper.find(s.name);
    table.add_row({s.name, std::to_string(s.fails), util::Table::num(s.pct_diff),
                   util::Table::num(s.pct_wins), util::Table::num(s.pct_wins30),
                   util::Table::num(s.stdv),
                   it == paper.end() ? "-" : util::Table::num(it->second)});
  }
  return table;
}

}  // namespace tcgrid::bench
