// Tests of the persistent content-addressed chain-statistics cache
// (markov::PersistentChainStats; DESIGN.md §14):
//
//   * round-trip: quads and survival tables flushed by one store are found
//     bit-identical by a fresh process-equivalent (new mapping, new store),
//     with survival served straight from the read-only mapping (pointer
//     equality) and growth past the mapped prefix resuming the exact
//     advance sequence;
//   * flushes are incremental (nothing new -> no file), the longest
//     survival prefix wins across generations, and refresh() picks up
//     generations published by other writers;
//   * crash safety: a flush killed before publish (torn temp, complete temp
//     never renamed) leaves no new generation and nothing broken; a torn
//     file that reached the final name (fault-injected short publish, or a
//     flipped byte) is skipped at load — counted, never fatal — and a real
//     kill -9 loop against a forked writer always leaves a loadable store;
//   * sweep bit-identity: run_trial for all 25 heuristics x 4 availability
//     families agrees bit for bit between no store, a cold store, a
//     warm-same-process store and a warm store read by a forked fresh
//     process;
//   * concurrent readers and writers on one cache (the TSan target);
//   * api::Session: clear_caches() flushes before dropping the heap, so an
//     evicted session re-reads its own warmth from disk.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "markov/chain_stats.hpp"
#include "markov/persistent_stats.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "scen/scen.hpp"
#include "sched/registry.hpp"
#include "util/mmap_file.hpp"

namespace tcgrid {
namespace {

namespace fs = std::filesystem;
using markov::ChainId;
using markov::ChainStatsStore;
using markov::CoupledStats;
using markov::PersistentChainStats;

constexpr double kEps = 1e-6;

/// Fresh store directory per test (removed up front, created by the store).
std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "tcgrid_persist_" + tag + "_" +
                          std::to_string(::getpid());
  fs::remove_all(dir);
  return dir;
}

markov::UrMatrix ur_of(double uu, double rr) {
  return markov::ur_submatrix(markov::TransitionMatrix::from_self_loops(uu, rr, 0.9));
}

std::array<std::uint64_t, 4> key_of(const markov::UrMatrix& m) {
  return {std::bit_cast<std::uint64_t>(m.uu), std::bit_cast<std::uint64_t>(m.ur),
          std::bit_cast<std::uint64_t>(m.ru), std::bit_cast<std::uint64_t>(m.rr)};
}

/// Exact-equality quad comparison: persisted doubles must round-trip bit
/// for bit, so plain == is the assertion, not a tolerance.
void expect_same_stats(const CoupledStats& a, const CoupledStats& b) {
  EXPECT_EQ(a.p_plus, b.p_plus);
  EXPECT_EQ(a.ec, b.ec);
  EXPECT_EQ(a.failure_free, b.failure_free);
  EXPECT_EQ(a.converged, b.converged);
}

// ---------------------------------------------------------------- round trip ----

TEST(PersistentStore, RoundTripChainAndSetQuads) {
  const std::string dir = fresh_dir("roundtrip");
  const auto a = ur_of(0.95, 0.90);
  const auto b = ur_of(0.80, 0.85);

  // Reference values from a plain in-memory store.
  ChainStatsStore ref(kEps);
  const ChainId ra = ref.intern(a);
  const ChainId rb = ref.intern(b);
  const CoupledStats ref_a = ref.chain_stats(ra);
  const std::array<ChainId, 3> ref_set{std::min(ra, rb), std::max(ra, rb),
                                       std::max(ra, rb)};
  const CoupledStats ref_ab = ref.set_stats(ref_set);

  {
    auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
    ChainStatsStore store(kEps, persist);
    const ChainId ia = store.intern(a);
    const ChainId ib = store.intern(b);
    (void)store.chain_stats(ia);
    (void)store.chain_stats(ib);
    const std::array<ChainId, 3> set{std::min(ia, ib), std::max(ia, ib),
                                     std::max(ia, ib)};
    (void)store.set_stats(set);
    EXPECT_GT(persist->flush_from(store), 0u);
  }

  // "Fresh process": a new mapping over the same directory.
  PersistentChainStats reopened(dir, kEps);
  const auto counters = reopened.counters();
  EXPECT_EQ(counters.generations, 1u);
  EXPECT_EQ(counters.chains, 2u);
  EXPECT_EQ(counters.sets, 1u);
  EXPECT_EQ(counters.skipped_generations, 0u);

  PersistentChainStats::ChainHit hit;
  ASSERT_TRUE(reopened.find_chain(key_of(a), hit));
  ASSERT_TRUE(hit.has_stats);
  expect_same_stats(hit.stats, ref_a);

  // Set key: content keys of the multiset {a, b, b}, sorted in content
  // order, 4 words per chain — exactly ExportedSet::key's layout.
  std::vector<std::pair<std::array<std::uint64_t, 4>, const markov::UrMatrix*>>
      members{{key_of(a), &a}, {key_of(b), &b}, {key_of(b), &b}};
  std::sort(members.begin(), members.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  std::vector<std::uint64_t> set_key;
  for (const auto& [k, m] : members) set_key.insert(set_key.end(), k.begin(), k.end());
  CoupledStats set_stats;
  ASSERT_TRUE(reopened.find_set(set_key, set_stats));
  expect_same_stats(set_stats, ref_ab);

  // And through a store layered over it: intern answers with seeded stats.
  auto persist2 = std::make_shared<PersistentChainStats>(dir, kEps);
  ChainStatsStore warm(kEps, persist2);
  const ChainId wa = warm.intern(a);
  expect_same_stats(warm.chain_stats(wa), ref_a);
  EXPECT_GT(persist2->counters().chain_hits, 0u);
}

TEST(PersistentStore, SurvivalServedFromMappingAndResumesExactly) {
  const std::string dir = fresh_dir("survival");
  const auto m = ur_of(0.97, 0.92);
  constexpr long kMapped = 200;
  constexpr long kDeep = 500;

  ChainStatsStore ref(kEps);
  markov::ChainSurvival& ref_surv = ref.survival(ref.intern(m));
  (void)ref_surv.grow_to(kDeep);

  {
    auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
    ChainStatsStore store(kEps, persist);
    const ChainId id = store.intern(m);
    (void)store.survival(id).grow_to(kMapped - 1);  // publishes 0..kMapped-1
    EXPECT_GT(persist->flush_from(store), 0u);
  }

  auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
  PersistentChainStats::ChainHit hit;
  ASSERT_TRUE(persist->find_chain(key_of(m), hit));
  ASSERT_EQ(hit.survival_len, kMapped);

  ChainStatsStore warm(kEps, persist);
  markov::ChainSurvival& surv = warm.survival(warm.intern(m));
  // The seeded table IS the mapping: same pointer, no copy, full prefix
  // published immediately.
  EXPECT_EQ(surv.published(), kMapped);
  EXPECT_EQ(surv.flat(), hit.survival);
  for (long t = 0; t < kMapped; ++t) {
    EXPECT_EQ(surv.at(t), ref_surv.at(t)) << "t=" << t;
  }
  // Growth past the mapped frontier resumes the exact advance sequence.
  EXPECT_EQ(surv.grow_to(kDeep - 1), ref_surv.at(kDeep - 1));
  for (long t = kMapped; t < kDeep; ++t) {
    EXPECT_EQ(surv.at(t), ref_surv.at(t)) << "t=" << t;
  }
}

TEST(PersistentStore, FlushIsIncrementalAndLongestSurvivalWins) {
  const std::string dir = fresh_dir("incremental");
  const auto m = ur_of(0.96, 0.91);

  auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
  {
    ChainStatsStore store(kEps, persist);
    (void)store.survival(store.intern(m)).grow_to(99);  // publishes 100
    EXPECT_GT(persist->flush_from(store), 0u);
    // Nothing new since: the second flush writes no generation.
    EXPECT_EQ(persist->flush_from(store), 0u);
    EXPECT_EQ(persist->counters().generations, 1u);
  }
  {
    // A second store grows the same chain deeper: the flush persists the
    // longer prefix (and only that — the chain is otherwise known).
    ChainStatsStore store(kEps, persist);
    (void)store.survival(store.intern(m)).grow_to(299);  // publishes 300
    EXPECT_GT(persist->flush_from(store), 0u);
    EXPECT_EQ(persist->counters().generations, 2u);
  }

  PersistentChainStats reopened(dir, kEps);
  PersistentChainStats::ChainHit hit;
  ASSERT_TRUE(reopened.find_chain(key_of(m), hit));
  EXPECT_EQ(hit.survival_len, 300);
  EXPECT_EQ(reopened.counters().skipped_generations, 0u);

  ChainStatsStore ref(kEps);
  markov::ChainSurvival& ref_surv = ref.survival(ref.intern(m));
  (void)ref_surv.grow_to(300);
  for (long t = 0; t < 300; ++t) EXPECT_EQ(hit.survival[t], ref_surv.at(t));
}

TEST(PersistentStore, RefreshSeesOtherWritersGenerations) {
  const std::string dir = fresh_dir("refresh");
  const auto m = ur_of(0.93, 0.88);

  PersistentChainStats reader(dir, kEps);
  PersistentChainStats::ChainHit hit;
  EXPECT_FALSE(reader.find_chain(key_of(m), hit));

  {
    // "Another process": a second object on the same directory.
    auto writer = std::make_shared<PersistentChainStats>(dir, kEps);
    ChainStatsStore store(kEps, writer);
    (void)store.chain_stats(store.intern(m));
    EXPECT_GT(writer->flush_from(store), 0u);
  }

  EXPECT_FALSE(reader.find_chain(key_of(m), hit));  // not yet refreshed
  EXPECT_EQ(reader.refresh(), 1u);
  EXPECT_TRUE(reader.find_chain(key_of(m), hit));
  EXPECT_TRUE(hit.has_stats);
}

TEST(PersistentStore, EpsMismatchedGenerationsAreSkipped) {
  const std::string dir = fresh_dir("eps");
  const auto m = ur_of(0.94, 0.89);
  {
    auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
    ChainStatsStore store(kEps, persist);
    (void)store.chain_stats(store.intern(m));
    EXPECT_GT(persist->flush_from(store), 0u);
  }
  // A store at another precision answers different questions: the
  // generation is skipped wholesale.
  PersistentChainStats other(dir, 1e-9);
  EXPECT_EQ(other.counters().chains, 0u);
  EXPECT_EQ(other.counters().skipped_generations, 1u);
}

// -------------------------------------------------------------- crash safety ----

/// Populate a store with a couple of computed chains for the fault tests.
void populate(ChainStatsStore& store) {
  const auto a = ur_of(0.95, 0.90);
  const auto b = ur_of(0.85, 0.80);
  (void)store.chain_stats(store.intern(a));
  (void)store.survival(store.intern(a)).grow_to(150);
  (void)store.chain_stats(store.intern(b));
}

std::size_t generation_files(const std::string& dir) {
  return tcgrid::util::list_dir(dir, "gen-", ".tcs").size();
}

TEST(CrashSafety, TornTempNeverPublishes) {
  const std::string dir = fresh_dir("torntemp");
  auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
  ChainStatsStore store(kEps, persist);
  populate(store);

  persist->set_flush_fault_for_test(
      {PersistentChainStats::FlushFault::Kind::TornTemp, /*keep_bytes=*/64});
  EXPECT_EQ(persist->flush_from(store), 0u);
  EXPECT_EQ(generation_files(dir), 0u);

  // The store is untouched for every other reader, and the next (healthy)
  // flush persists everything the torn one lost.
  {
    PersistentChainStats reopened(dir, kEps);
    EXPECT_EQ(reopened.counters().chains, 0u);
    EXPECT_EQ(reopened.counters().skipped_generations, 0u);
  }
  EXPECT_GT(persist->flush_from(store), 0u);
  PersistentChainStats healthy(dir, kEps);
  EXPECT_EQ(healthy.counters().chains, 2u);
  EXPECT_EQ(healthy.counters().skipped_generations, 0u);
}

TEST(CrashSafety, CrashBeforeRenameLeavesOnlyIgnoredTemp) {
  const std::string dir = fresh_dir("skippub");
  auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
  ChainStatsStore store(kEps, persist);
  populate(store);

  persist->set_flush_fault_for_test(
      {PersistentChainStats::FlushFault::Kind::SkipPublish, 0});
  EXPECT_EQ(persist->flush_from(store), 0u);
  EXPECT_EQ(generation_files(dir), 0u);  // the stray .tmp is not a generation

  PersistentChainStats reopened(dir, kEps);
  EXPECT_EQ(reopened.counters().chains, 0u);
  EXPECT_EQ(reopened.counters().skipped_generations, 0u);
}

TEST(CrashSafety, TruncatedPublishedGenerationIsSkippedAtEveryLength) {
  // A short write that reached the final name (the case the suffix footer
  // exists for): whatever the torn length — inside the header, inside the
  // records, just shy of the footer — the generation is skipped, counted,
  // and recovery is one healthy flush away.
  for (const long keep : {0L, 40L, 95L, 96L, 300L, -9L /* file size - 9 */}) {
    const std::string dir = fresh_dir("trunc" + std::to_string(keep));
    {
      auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
      ChainStatsStore store(kEps, persist);
      populate(store);
      persist->set_flush_fault_for_test(
          {PersistentChainStats::FlushFault::Kind::PublishTruncated, keep});
      EXPECT_EQ(persist->flush_from(store), 0u);
      EXPECT_EQ(persist->counters().skipped_generations, 1u)
          << "keep=" << keep;  // the writer re-indexes through the load path
    }
    ASSERT_EQ(generation_files(dir), 1u);

    PersistentChainStats reopened(dir, kEps);
    EXPECT_EQ(reopened.counters().chains, 0u) << "keep=" << keep;
    EXPECT_EQ(reopened.counters().skipped_generations, 1u) << "keep=" << keep;

    // Recovery: a healthy flush from a fresh computation repersists all.
    auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
    ChainStatsStore store(kEps, persist);
    populate(store);
    EXPECT_GT(persist->flush_from(store), 0u);
    PersistentChainStats healthy(dir, kEps);
    EXPECT_EQ(healthy.counters().chains, 2u) << "keep=" << keep;
  }
}

TEST(CrashSafety, FlippedByteFailsChecksumAndIsSkipped) {
  const std::string dir = fresh_dir("bitflip");
  {
    auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
    ChainStatsStore store(kEps, persist);
    populate(store);
    EXPECT_GT(persist->flush_from(store), 0u);
  }
  const auto names = tcgrid::util::list_dir(dir, "gen-", ".tcs");
  ASSERT_EQ(names.size(), 1u);
  const std::string path = dir + "/" + names[0];
  const auto size = fs::file_size(path);
  {
    // Flip one bit in the middle of the file (the record/blob region):
    // structure stays parseable, the checksum must catch it.
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }
  PersistentChainStats reopened(dir, kEps);
  EXPECT_EQ(reopened.counters().chains, 0u);
  EXPECT_EQ(reopened.counters().skipped_generations, 1u);
}

TEST(CrashSafety, KillNineMidFlushLoopLeavesLoadableStore) {
  // The real thing: a forked writer flushing generations in a tight loop,
  // kill -9'd at arbitrary points. The atomic-publish discipline promises
  // the directory NEVER holds a torn generation — every published file
  // loads, whatever the kill timing.
  const std::string dir = fresh_dir("kill9");
  const int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: distinct chains per iteration so every flush writes a fresh
      // generation with a survival blob big enough to tear.
      try {
        auto persist = std::make_shared<PersistentChainStats>(dir, kEps);
        for (int i = 0;; ++i) {
          ChainStatsStore store(kEps, persist);
          for (int c = 0; c < 4; ++c) {
            const double uu = 0.90 + 1e-5 * (round * 1000 + i * 10 + c);
            const ChainId id = store.intern(ur_of(uu, 0.85));
            (void)store.chain_stats(id);
            (void)store.survival(id).grow_to(2'000);
          }
          (void)persist->flush_from(store);
        }
      } catch (...) {
        _exit(3);
      }
    }
    // Parent: let the child get into the flush loop, then kill -9.
    ::usleep(20'000 + 30'000 * round);
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(wstatus));

    PersistentChainStats reopened(dir, kEps);
    // Whatever made it to a final name is whole; torn temps don't count.
    EXPECT_EQ(reopened.counters().skipped_generations, 0u) << "round " << round;
    EXPECT_EQ(reopened.counters().generations, generation_files(dir));
  }

  // The surviving entries are the exact doubles a clean computation yields.
  PersistentChainStats persisted(dir, kEps);
  if (persisted.counters().chains > 0) {
    const auto m = ur_of(0.90, 0.85);  // round 0, i 0, c 0
    PersistentChainStats::ChainHit hit;
    if (persisted.find_chain(key_of(m), hit) && hit.has_stats) {
      ChainStatsStore ref(kEps);
      expect_same_stats(hit.stats, ref.chain_stats(ref.intern(m)));
    }
  }
}

// --------------------------------------------------------- sweep bit-identity ----

/// The registered availability families plus a trace family (trace families
/// need a concrete timeline; registered once on first use).
const std::vector<std::string>& sweep_families() {
  static const std::vector<std::string> names = [] {
    platform::ScenarioParams params;
    params.seed = 61;
    const auto scenario = platform::make_scenario(params);
    auto src = scen::availability_family("markov")->make_source(
        scenario.platform, 777, platform::InitialStates::Stationary);
    auto timeline =
        std::make_shared<platform::StateTimeline>(platform::record(*src, 400));
    scen::register_availability_family(scen::make_trace_family(
        "persist-trace", scen::TraceFamilyParams{.timeline = std::move(timeline)}));
    return std::vector<std::string>{"markov", "weibull", "daynight", "persist-trace"};
  }();
  return names;
}

std::vector<std::string> all_heuristics() {
  std::vector<std::string> names = sched::all_heuristic_names();
  for (const auto& n : sched::extension_heuristic_names()) names.push_back(n);
  return names;
}

void expect_identical_results(const sim::SimulationResult& a,
                              const sim::SimulationResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.total_reconfigurations, b.total_reconfigurations);
  EXPECT_EQ(a.idle_slots, b.idle_slots);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].start_slot, b.iterations[i].start_slot);
    EXPECT_EQ(a.iterations[i].end_slot, b.iterations[i].end_slot);
    EXPECT_EQ(a.iterations[i].restarts, b.iterations[i].restarts);
  }
}

/// Order-sensitive digest over the fields expect_identical_results checks —
/// the cross-process comparison (a forked child can't run EXPECTs the
/// parent sees).
std::uint64_t fold_result(std::uint64_t h, const sim::SimulationResult& r) {
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  };
  mix(r.success ? 1 : 0);
  mix(static_cast<std::uint64_t>(r.makespan));
  mix(static_cast<std::uint64_t>(r.iterations_completed));
  mix(static_cast<std::uint64_t>(r.total_restarts));
  mix(static_cast<std::uint64_t>(r.total_reconfigurations));
  mix(static_cast<std::uint64_t>(r.idle_slots));
  for (const auto& it : r.iterations) {
    mix(static_cast<std::uint64_t>(it.start_slot));
    mix(static_cast<std::uint64_t>(it.end_slot));
    mix(static_cast<std::uint64_t>(it.restarts));
  }
  return h;
}

TEST(SweepBitIdentity, StoreColdWarmSameProcessAndWarmCrossProcess) {
  const std::string dir = fresh_dir("sweep");
  platform::ScenarioParams params;
  params.seed = 33;
  params.wmin = 2;
  params.iterations = 3;

  api::Options nostore_opts;
  nostore_opts.slot_cap = 100'000;
  api::Options store_opts = nostore_opts;
  store_opts.store_dir = dir;

  const auto heuristics = all_heuristics();
  std::uint64_t reference_digest = 0xcbf29ce484222325ull;

  for (const auto& family : sweep_families()) {
    scen::ScenarioSpace space;
    space.availability = family;
    api::Session nostore(nostore_opts);
    std::vector<sim::SimulationResult> reference;
    {
      // Cold store: the directory starts empty, everything computes and
      // interns exactly as without a store.
      api::Session cold(store_opts);
      for (const auto& heuristic : heuristics) {
        SCOPED_TRACE(family + " / " + heuristic + " (cold)");
        const auto a = nostore.run_trial(space, params, heuristic, 0);
        const auto b = cold.run_trial(space, params, heuristic, 0);
        expect_identical_results(a, b);
        reference_digest = fold_result(reference_digest, a);
        reference.push_back(a);
      }
      // Destruction flushes this family's chains as a generation.
    }
    {
      // Warm, same process: a brand-new session whose misses are answered
      // from the directory the cold session just flushed.
      api::Session warm(store_opts);
      for (std::size_t h = 0; h < heuristics.size(); ++h) {
        SCOPED_TRACE(family + " / " + heuristics[h] + " (warm)");
        expect_identical_results(warm.run_trial(space, params, heuristics[h], 0),
                                 reference[h]);
      }
      EXPECT_GT(warm.persistent_store_counters().chain_hits, 0u)
          << family << ": warm session never hit the store";
    }
  }

  // Warm, cross-process: a forked child re-runs the whole grid against the
  // populated directory and reports its digest over a pipe.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    std::uint64_t digest = 0xcbf29ce484222325ull;
    std::size_t hits = 0;
    try {
      for (const auto& family : sweep_families()) {
        scen::ScenarioSpace space;
        space.availability = family;
        api::Session warm(store_opts);
        for (const auto& heuristic : heuristics) {
          digest = fold_result(digest, warm.run_trial(space, params, heuristic, 0));
        }
        hits += warm.persistent_store_counters().chain_hits;
      }
    } catch (...) {
      _exit(3);
    }
    if (hits == 0) _exit(4);  // a "warm" child that never touched disk
    const ssize_t n = ::write(pipe_fds[1], &digest, sizeof digest);
    _exit(n == sizeof digest ? 0 : 5);
  }
  ::close(pipe_fds[1]);
  std::uint64_t child_digest = 0;
  ASSERT_EQ(::read(pipe_fds[0], &child_digest, sizeof child_digest),
            static_cast<ssize_t>(sizeof child_digest));
  ::close(pipe_fds[0]);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus));
  EXPECT_EQ(WEXITSTATUS(wstatus), 0);
  EXPECT_EQ(child_digest, reference_digest);
}

// ----------------------------------------------------------------- concurrency ----

TEST(Concurrency, ReadersAndWritersShareOneCache) {
  // The TSan target: writer threads computing and flushing overlapping
  // chain populations against ONE persistent cache, reader threads
  // concurrently constructing stores over it, interning, growing seeded
  // survival tables and doing raw lookups.
  const std::string dir = fresh_dir("concurrent");
  auto persist = std::make_shared<PersistentChainStats>(dir, kEps);

  constexpr int kWriters = 2;
  constexpr int kReaders = 2;
  constexpr int kIters = 12;
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kIters; ++i) {
        ChainStatsStore store(kEps, persist);
        // Overlapping populations: chain (i) is shared by both writers,
        // chain (w, i) is private — both dedup paths run concurrently.
        const ChainId shared_id = store.intern(ur_of(0.95, 0.90 + 1e-4 * i));
        const ChainId mine = store.intern(ur_of(0.90 + 1e-3 * w, 0.85 + 1e-4 * i));
        (void)store.chain_stats(shared_id);
        (void)store.survival(shared_id).grow_to(200 + 10 * i);
        (void)store.chain_stats(mine);
        const std::array<ChainId, 2> set{std::min(shared_id, mine),
                                         std::max(shared_id, mine)};
        (void)store.set_stats(set);
        (void)persist->flush_from(store);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        (void)persist->refresh();
        PersistentChainStats::ChainHit hit;
        const auto m = ur_of(0.95, 0.90 + 1e-4 * i);
        if (persist->find_chain(key_of(m), hit) && hit.survival_len > 0) {
          // Lock-free read of the mapped prefix through a seeded store.
          ChainStatsStore view(kEps, persist);
          markov::ChainSurvival& surv = view.survival(view.intern(m));
          EXPECT_GE(surv.published(), hit.survival_len);
          (void)surv.grow_to(400);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every distinct chain either writer computed is on disk, once.
  PersistentChainStats reopened(dir, kEps);
  EXPECT_EQ(reopened.counters().skipped_generations, 0u);
  EXPECT_GE(reopened.counters().chains, static_cast<std::size_t>(kIters));
}

// -------------------------------------------------------------------- session ----

TEST(Session, StoreDirRequiresSharedChainStats) {
  api::Options opts;
  opts.store_dir = fresh_dir("invalid");
  opts.shared_chain_stats = false;
  EXPECT_THROW(api::Session{opts}, std::invalid_argument);
}

TEST(Session, EvictionKeepsWarmthOnDisk) {
  // clear_caches() flushes BEFORE dropping the heap (the serve daemon's
  // DRAINING eviction rests on this): the next sweep re-interns against the
  // directory and answers from disk instead of recomputing.
  const std::string dir = fresh_dir("evict");
  platform::ScenarioParams params;
  params.seed = 7;
  params.iterations = 3;
  scen::ScenarioSpace space;

  api::Options opts;
  opts.slot_cap = 50'000;
  opts.store_dir = dir;
  api::Session session(opts);

  const auto first = session.run_trial(space, params, "IE", 0);
  const auto after_first = session.persistent_store_counters();
  EXPECT_EQ(after_first.chain_hits, 0u);  // cold directory: all misses

  session.clear_caches();  // evict; must flush first
  EXPECT_GT(session.persistent_store_counters().flushed_entries, 0u);

  const auto second = session.run_trial(space, params, "IE", 0);
  expect_identical_results(first, second);
  const auto after_second = session.persistent_store_counters();
  EXPECT_GT(after_second.chain_hits, 0u) << "post-eviction run never hit the store";
}

}  // namespace
}  // namespace tcgrid
