// Tests of the scheduling estimator (paper §V wired for decisions):
// communication-phase estimates under the ncom bound, survival tables,
// composition of the iteration estimate, and memoization behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "markov/spectral.hpp"
#include "platform/scenario.hpp"
#include "sched/estimator.hpp"

namespace tcgrid::sched {
namespace {

platform::Platform make_platform(int p, int ncom, double uu = 0.95) {
  std::vector<platform::Processor> procs;
  for (int q = 0; q < p; ++q) {
    platform::Processor pr;
    pr.speed = q + 1;
    pr.max_tasks = 8;
    pr.availability = markov::TransitionMatrix::from_self_loops(uu, 0.9, 0.9);
    procs.push_back(pr);
  }
  return platform::Platform(std::move(procs), ncom);
}

model::Application make_app(int m = 4, long t_prog = 10, long t_data = 2) {
  model::Application app;
  app.num_tasks = m;
  app.t_prog = t_prog;
  app.t_data = t_data;
  return app;
}

TEST(Estimator, RejectsBadEps) {
  auto plat = make_platform(2, 2);
  auto app = make_app();
  EXPECT_THROW(Estimator(plat, app, 0.0), std::invalid_argument);
  EXPECT_THROW(Estimator(plat, app, -1.0), std::invalid_argument);
}

TEST(Estimator, PNoDownMatchesSpectral) {
  auto plat = make_platform(3, 2);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const auto ur = markov::ur_submatrix(plat.proc(1).availability);
  for (long t : {0L, 1L, 5L, 17L, 64L, 200L}) {
    EXPECT_NEAR(est.p_no_down(1, t),
                markov::p_no_down(ur, static_cast<std::size_t>(t)), 1e-12);
  }
}

TEST(Estimator, PNoDownTableGrowsConsistently) {
  // Querying out of order must not corrupt the lazily grown table.
  auto plat = make_platform(2, 2);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const double big_first = est.p_no_down(0, 300);
  const double small = est.p_no_down(0, 10);
  Estimator fresh(plat, app, 1e-10);
  EXPECT_DOUBLE_EQ(small, fresh.p_no_down(0, 10));
  EXPECT_DOUBLE_EQ(big_first, fresh.p_no_down(0, 300));
}

TEST(Estimator, CommTimeIsMaxWhenUnderNcom) {
  auto plat = make_platform(3, /*ncom=*/3);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const Estimator::CommNeed needs[] = {{0, 4}, {1, 10}, {2, 2}};
  // |S| <= ncom: the estimate is the max of per-worker expected times.
  double expected = 0.0;
  for (const auto& n : needs) {
    expected = std::max(expected, est.proc_stats(n.proc).expected_time(n.slots));
  }
  EXPECT_DOUBLE_EQ(est.expected_comm_time(needs), expected);
}

TEST(Estimator, CommTimeIncludesBandwidthBoundOverNcom) {
  auto plat = make_platform(4, /*ncom=*/1);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const Estimator::CommNeed needs[] = {{0, 5}, {1, 5}, {2, 5}, {3, 5}};
  // sum/ncom = 20; individual expected times are near 5-7, so the bandwidth
  // term dominates.
  EXPECT_GE(est.expected_comm_time(needs), 20.0);
}

TEST(Estimator, ZeroNeedsZeroCommTime) {
  auto plat = make_platform(3, 1);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const Estimator::CommNeed needs[] = {{0, 0}, {1, 0}, {2, 0}};
  EXPECT_DOUBLE_EQ(est.expected_comm_time(needs), 0.0);
}

TEST(Estimator, EvaluateComposesCommAndCompute) {
  auto plat = make_platform(2, 2);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const int set[] = {0, 1};
  const Estimator::CommNeed needs[] = {{0, 3}, {1, 3}};
  const long w = 7;

  const auto full = est.evaluate(needs, set, w);
  const auto& st = est.set_stats(set);
  const double e_comm = est.expected_comm_time(needs);
  const long t = static_cast<long>(std::ceil(e_comm));
  const double p_comm = est.p_no_down(0, t) * est.p_no_down(1, t);
  EXPECT_NEAR(full.e_time, e_comm + st.expected_time(w), 1e-12);
  EXPECT_NEAR(full.p_success, p_comm * st.success_prob(w), 1e-12);
}

TEST(Estimator, NoCommNoSurvivalPenalty) {
  auto plat = make_platform(2, 2);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const int set[] = {0, 1};
  const Estimator::CommNeed needs[] = {{0, 0}, {1, 0}};
  const auto e = est.evaluate(needs, set, 1);
  EXPECT_DOUBLE_EQ(e.p_success, 1.0);  // W = 1: first slot is "now"
  EXPECT_DOUBLE_EQ(e.e_time, 1.0);
}

TEST(Estimator, LargerWorkloadIsWorse) {
  auto plat = make_platform(3, 3);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const int set[] = {0, 1, 2};
  const Estimator::CommNeed needs[] = {{0, 2}, {1, 2}, {2, 2}};
  const auto small = est.evaluate(needs, set, 3);
  const auto large = est.evaluate(needs, set, 30);
  EXPECT_GT(small.p_success, large.p_success);
  EXPECT_LT(small.e_time, large.e_time);
}

TEST(Estimator, SetStatsMemoized) {
  auto plat = make_platform(4, 2);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);
  const int a[] = {0, 2};
  const int b[] = {2, 0};  // same membership, different order
  (void)est.set_stats(a);
  const std::size_t after_first = est.cached_sets();
  (void)est.set_stats(b);
  EXPECT_EQ(est.cached_sets(), after_first);  // bitmask key: order-insensitive
  const int c[] = {0, 1, 2};
  (void)est.set_stats(c);
  EXPECT_EQ(est.cached_sets(), after_first + 1);
}

TEST(Estimator, UnreliableProcessorLowersSuccess) {
  // Same speeds; processor 1 has a much higher DOWN probability.
  std::vector<platform::Processor> procs(2);
  for (auto& pr : procs) {
    pr.speed = 2;
    pr.max_tasks = 4;
  }
  procs[0].availability = markov::TransitionMatrix::from_self_loops(0.98, 0.9, 0.9);
  procs[1].availability = markov::TransitionMatrix::from_self_loops(0.80, 0.9, 0.9);
  platform::Platform plat(std::move(procs), 2);
  auto app = make_app();
  Estimator est(plat, app, 1e-10);

  const int reliable[] = {0};
  const int flaky[] = {1};
  EXPECT_GT(est.set_stats(reliable).success_prob(10),
            est.set_stats(flaky).success_prob(10));
}

TEST(Estimator, PaperScenarioSmoke) {
  platform::ScenarioParams params;
  params.seed = 3;
  auto scenario = platform::make_scenario(params);
  Estimator est(scenario.platform, scenario.app, 1e-6);
  std::vector<int> set;
  std::vector<Estimator::CommNeed> needs;
  for (int q = 0; q < 6; ++q) {
    set.push_back(q);
    needs.push_back({q, scenario.app.t_prog + scenario.app.t_data});
  }
  const auto e = est.evaluate(needs, set, 25);
  EXPECT_GT(e.p_success, 0.0);
  EXPECT_LT(e.p_success, 1.0);
  EXPECT_GT(e.e_time, 25.0);
  EXPECT_TRUE(std::isfinite(e.e_time));
}

}  // namespace
}  // namespace tcgrid::sched
