// Cross-module integration tests: the data-loss-on-removal semantics of
// §III-C, the comm service-order ablation hook, and a deterministic
// mini-sweep pinning the paper's qualitative ordering.
#include <gtest/gtest.h>

#include "expt/report.hpp"
#include "expt/sweep.hpp"
#include "platform/availability.hpp"
#include "sim/engine.hpp"

namespace tcgrid {
namespace {

using markov::State;

platform::Platform uniform_platform(int p, int ncom) {
  std::vector<platform::Processor> procs(static_cast<std::size_t>(p));
  for (auto& pr : procs) {
    pr.speed = 1;
    pr.max_tasks = 8;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
  }
  return platform::Platform(std::move(procs), ncom);
}

/// Returns a fixed sequence of configurations, one per decision opportunity.
class SequenceScheduler final : public sim::Scheduler {
 public:
  explicit SequenceScheduler(std::vector<std::pair<long, model::Configuration>> plan)
      : plan_(std::move(plan)) {}

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override {
    if (next_ < plan_.size() && plan_[next_].first == view.slot) {
      return plan_[next_++].second;
    }
    return std::nullopt;
  }
  [[nodiscard]] std::string_view name() const override { return "sequence"; }

 private:
  std::vector<std::pair<long, model::Configuration>> plan_;
  std::size_t next_ = 0;
};

// ------------------------------------------------ §III-C data-loss rule ----

TEST(Integration, RemovedWorkerLosesDataButKeepsProgram) {
  // m = 2, Tprog = 4, Tdata = 2, ncom = 4. Plan:
  //   slot 0: enroll {P0, P1} -> both download program (4) + data (2) = 6 slots.
  //   slot 3: switch to {P0, P2} -> P1 is removed mid-download.
  //   slot 9: switch back to {P0, P1}.
  // P1 must re-receive its data, but NOT the program if it had completed it
  // before removal — here it had not (removed at slot 3 < Tprog), so it
  // restarts the program too. P0 stays enrolled throughout and keeps its
  // progress except for computation.
  auto plat = uniform_platform(3, 4);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 4;
  app.t_data = 2;
  app.iterations = 1;

  platform::FixedAvailability avail(
      {std::vector<State>(3, State::Up)});  // always UP

  SequenceScheduler sched({
      {0, model::Configuration({{0, 1}, {1, 1}})},
      {3, model::Configuration({{0, 1}, {2, 1}})},
      {9, model::Configuration({{0, 1}, {1, 1}})},
  });
  sim::EngineOptions opts;
  opts.record_trace = true;
  sim::Engine engine(plat, app, avail, sched, opts);
  const auto r = engine.run();
  EXPECT_TRUE(r.success);

  const auto& trace = engine.trace();
  // P1 transferred during slots 0-2, nothing during 3-8, and must be seen
  // transferring the *program* again at slot 9 (partial was lost).
  EXPECT_EQ(trace[0][1].action, sim::Action::Program);
  for (long t = 3; t < 9; ++t) {
    EXPECT_EQ(trace[static_cast<std::size_t>(t)][1].action, sim::Action::None) << t;
  }
  EXPECT_EQ(trace[9][1].action, sim::Action::Program);
}

TEST(Integration, RemovedWorkerWithCompleteProgramKeepsIt) {
  // Same shape, but the switch happens after P1 finished the program and its
  // first data message: on re-enrollment P1 must go straight to *data*
  // (program kept, data lost — the exact §III-C asymmetry).
  auto plat = uniform_platform(3, 4);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 4;
  app.t_data = 2;
  app.iterations = 1;

  platform::FixedAvailability avail({std::vector<State>(3, State::Up)});
  SequenceScheduler sched({
      {0, model::Configuration({{0, 1}, {1, 1}})},
      {6, model::Configuration({{0, 1}, {2, 1}})},  // P1 done (4+2=6 slots)
      {8, model::Configuration({{0, 1}, {1, 1}})},
  });
  sim::EngineOptions opts;
  opts.record_trace = true;
  sim::Engine engine(plat, app, avail, sched, opts);
  const auto r = engine.run();
  EXPECT_TRUE(r.success);

  const auto& trace = engine.trace();
  EXPECT_EQ(trace[8][1].action, sim::Action::Data);  // program survived
  // ... and the data really was re-sent (slot 8 and 9).
  EXPECT_EQ(trace[9][1].action, sim::Action::Data);
}

TEST(Integration, StayingEnrolledKeepsDataAcrossSwitch) {
  // P0 stays enrolled across the switch: its holdings survive, so after the
  // switch it is idle (everything already transferred) while P2 downloads.
  auto plat = uniform_platform(3, 4);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 2;
  app.t_data = 2;
  app.iterations = 1;

  platform::FixedAvailability avail({std::vector<State>(3, State::Up)});
  SequenceScheduler sched({
      {0, model::Configuration({{0, 1}, {1, 1}})},
      {4, model::Configuration({{0, 1}, {2, 1}})},  // P0 done at slot 3
  });
  sim::EngineOptions opts;
  opts.record_trace = true;
  sim::Engine engine(plat, app, avail, sched, opts);
  const auto r = engine.run();
  EXPECT_TRUE(r.success);
  const auto& trace = engine.trace();
  for (long t = 4; t < 8; ++t) {
    EXPECT_EQ(trace[static_cast<std::size_t>(t)][0].action, sim::Action::Idle) << t;
  }
}

// ------------------------------------------------------ comm order hook ----

TEST(Integration, CommOrderChangesServiceNotTotal) {
  // ncom = 1, two workers with unequal needs, all UP: the service order
  // permutes who goes first but cannot change the total communication time
  // (the compute phase is a barrier).
  // Unequal needs: m = 3 with {P0: 1 task, P1: 2 tasks}, Tdata = 1, no
  // program cost -> P0 needs 1 transfer slot, P1 needs 2.
  auto plat = uniform_platform(2, 1);
  model::Application app;
  app.num_tasks = 3;
  app.t_prog = 0;
  app.t_data = 1;
  app.iterations = 1;

  long makespans[3];
  sim::Action first_served[3];
  int i = 0;
  for (auto order : {sim::CommOrder::Enrollment, sim::CommOrder::FewestFirst,
                     sim::CommOrder::MostFirst}) {
    platform::FixedAvailability avail({std::vector<State>(2, State::Up)});
    SequenceScheduler sched({{0, model::Configuration({{0, 1}, {1, 2}})}});
    sim::EngineOptions opts;
    opts.record_trace = true;
    opts.comm_order = order;
    sim::Engine engine(plat, app, avail, sched, opts);
    const auto r = engine.run();
    EXPECT_TRUE(r.success);
    makespans[i] = r.makespan;
    first_served[i] = engine.trace()[0][1].action;
    ++i;
  }
  EXPECT_EQ(makespans[0], makespans[1]);
  EXPECT_EQ(makespans[1], makespans[2]);
  // Enrollment order serves P0 first (P1 idle at slot 0); most-first serves
  // P1 (2 messages) first.
  EXPECT_EQ(first_served[0], sim::Action::Idle);
  EXPECT_EQ(first_served[2], sim::Action::Data);
}

// --------------------------------------------------- qualitative sweep ----

TEST(Integration, MiniSweepPaperOrdering) {
  // Deterministic regression pin of the paper's coarsest claims on a small
  // but fixed sweep: RANDOM is by far the worst; the flagship proactive
  // heuristic Y-IE beats the passive probability-driven IP.
  expt::SweepConfig config;
  config.ms = {5};
  config.ncoms = {5};
  config.wmins = {1, 3};
  config.scenarios_per_cell = 4;
  config.trials = 3;
  config.iterations = 5;
  config.slot_cap = 200000;
  config.heuristics = {"RANDOM", "IP", "IE", "Y-IE"};
  config.threads = 1;

  const auto results = expt::run_sweep(config);
  const auto summaries = expt::summarize_all(results, "IE");
  double random_diff = 0, ip_diff = 0, yie_diff = 0;
  for (const auto& s : summaries) {
    if (s.name == "RANDOM") random_diff = s.pct_diff;
    if (s.name == "IP") ip_diff = s.pct_diff;
    if (s.name == "Y-IE") yie_diff = s.pct_diff;
  }
  EXPECT_GT(random_diff, 100.0);      // order-of-magnitude worse
  EXPECT_GT(random_diff, ip_diff);
  EXPECT_LT(yie_diff, ip_diff);       // flagship beats passive IP
}

}  // namespace
}  // namespace tcgrid
