// Unit tests for src/model: application, configuration, holdings.
#include <gtest/gtest.h>

#include "model/application.hpp"
#include "model/configuration.hpp"
#include "model/holdings.hpp"

namespace tcgrid::model {
namespace {

TEST(Application, ValidateAcceptsPaperDefaults) {
  Application app;
  app.num_tasks = 5;
  app.t_prog = 10;
  app.t_data = 2;
  app.iterations = 10;
  EXPECT_NO_THROW(app.validate());
}

TEST(Application, ValidateRejectsBadValues) {
  Application app;
  app.num_tasks = 0;
  EXPECT_THROW(app.validate(), std::invalid_argument);
  app.num_tasks = 1;
  app.t_data = -1;
  EXPECT_THROW(app.validate(), std::invalid_argument);
  app.t_data = 0;
  app.iterations = 0;
  EXPECT_THROW(app.validate(), std::invalid_argument);
}

TEST(Configuration, EmptyByDefault) {
  Configuration c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.total_tasks(), 0);
  EXPECT_EQ(c.tasks_on(3), 0);
  EXPECT_FALSE(c.enrolled(3));
}

TEST(Configuration, AddTaskEnrollsAndAccumulates) {
  Configuration c;
  c.add_task(2);
  c.add_task(2);
  c.add_task(5);
  EXPECT_EQ(c.total_tasks(), 3);
  EXPECT_EQ(c.tasks_on(2), 2);
  EXPECT_EQ(c.tasks_on(5), 1);
  EXPECT_TRUE(c.enrolled(2));
  EXPECT_EQ(c.size(), 2u);
  // Enrollment order preserved: first-enrolled first.
  EXPECT_EQ(c.assignments()[0].proc, 2);
  EXPECT_EQ(c.assignments()[1].proc, 5);
}

TEST(Configuration, ComputeSlotsIsMaxLoad) {
  // Paper's Figure 1: x = (2,2,1) on speeds (2,3,4) -> W = max(4,6,4) = 6.
  Configuration c({{1, 2}, {2, 2}, {3, 1}});
  const long speeds[] = {1, 2, 3, 4, 5};
  EXPECT_EQ(c.compute_slots(speeds), 6);
}

TEST(Configuration, EqualityIsOrderSensitive) {
  Configuration a({{1, 2}, {2, 1}});
  Configuration b({{1, 2}, {2, 1}});
  Configuration c({{2, 1}, {1, 2}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);  // enrollment order is semantically meaningful
}

TEST(Holdings, CrashLosesEverything) {
  Holdings h;
  h.has_program = true;
  h.data_messages = 3;
  h.partial_slots = 2;
  h.crash();
  EXPECT_FALSE(h.has_program);
  EXPECT_EQ(h.data_messages, 0);
  EXPECT_EQ(h.partial_slots, 0);
}

TEST(Holdings, UnenrollOnlyLosesPartial) {
  Holdings h;
  h.has_program = true;
  h.data_messages = 3;
  h.partial_slots = 2;
  h.unenroll();
  EXPECT_TRUE(h.has_program);
  EXPECT_EQ(h.data_messages, 3);
  EXPECT_EQ(h.partial_slots, 0);
}

TEST(Holdings, NextIterationKeepsProgramOnly) {
  Holdings h;
  h.has_program = true;
  h.data_messages = 3;
  h.partial_slots = 2;
  h.next_iteration();
  EXPECT_TRUE(h.has_program);
  EXPECT_EQ(h.data_messages, 0);
  EXPECT_EQ(h.partial_slots, 0);
}

}  // namespace
}  // namespace tcgrid::model
