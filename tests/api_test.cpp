// Tests of the tcgrid::api experiment facade: paired-trial equivalence with
// hand-wired Engine setup, streaming-sink correctness (CSV/JSONL round
// trips), up-front validation, and the thread-safety contract of sinks and
// progress callbacks.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "expt/runner.hpp"
#include "expt/sweep.hpp"
#include "platform/availability.hpp"
#include "sched/estimator.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace tcgrid::api {
namespace {

platform::ScenarioParams mini_params(std::uint64_t seed = 12) {
  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 1;
  params.seed = seed;
  params.iterations = 3;
  return params;
}

ExperimentSpec mini_spec() {
  ExperimentSpec spec;
  spec.grid.ms = {5};
  spec.grid.ncoms = {5};
  spec.grid.wmins = {1};
  spec.grid.scenarios_per_cell = 2;
  spec.grid.iterations = 3;
  spec.trials = 2;
  spec.heuristics = {"RANDOM", "IE", "Y-IE"};
  spec.options.slot_cap = 100'000;
  spec.options.threads = 1;
  return spec;
}

void expect_identical(const sim::SimulationResult& a, const sim::SimulationResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.total_reconfigurations, b.total_reconfigurations);
  EXPECT_EQ(a.idle_slots, b.idle_slots);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].start_slot, b.iterations[i].start_slot);
    EXPECT_EQ(a.iterations[i].end_slot, b.iterations[i].end_slot);
    EXPECT_EQ(a.iterations[i].comm_slots, b.iterations[i].comm_slots);
    EXPECT_EQ(a.iterations[i].compute_slots, b.iterations[i].compute_slots);
    EXPECT_EQ(a.iterations[i].suspended_slots, b.iterations[i].suspended_slots);
    EXPECT_EQ(a.iterations[i].restarts, b.iterations[i].restarts);
    EXPECT_EQ(a.iterations[i].reconfigurations, b.iterations[i].reconfigurations);
  }
}

// ---------------------------------------------------------- equivalence ----

// The facade must reproduce, byte for byte, what the manual wiring of
// examples/quickstart.cpp (pre-facade) produced: scenario -> estimator ->
// make_scheduler -> MarkovAvailability -> Engine.
TEST(Session, TrialMatchesManualEngineWiring) {
  const auto params = mini_params(7);
  const auto scenario = platform::make_scenario(params);
  sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);

  Options options;
  options.slot_cap = 100'000;
  Session session(options);

  for (const char* name : {"RANDOM", "IE", "Y-IE", "P-IE"}) {
    for (int trial = 0; trial < 2; ++trial) {
      platform::MarkovAvailability availability(
          scenario.platform, expt::trial_seed(scenario, trial),
          platform::InitialStates::Stationary);
      auto scheduler = sched::make_scheduler(
          name, estimator,
          util::derive_seed(params.seed, 2000 + static_cast<std::uint64_t>(trial)));
      sim::EngineOptions engine_options;
      engine_options.slot_cap = options.slot_cap;
      sim::Engine engine(scenario.platform, scenario.app, availability, *scheduler,
                         engine_options);
      const sim::SimulationResult manual = engine.run();

      const sim::SimulationResult facade = session.run_trial(params, name, trial);
      SCOPED_TRACE(std::string(name) + " trial " + std::to_string(trial));
      expect_identical(manual, facade);
    }
  }
}

// Session::run must match the legacy sweep path (expt::run_trial per
// scenario/heuristic/trial, shared per-scenario estimator) exactly.
TEST(Session, RunMatchesLegacyTrialLoop) {
  const auto spec = mini_spec();
  AggregateSink aggregate;
  Session().run(spec, {&aggregate});
  const auto& results = aggregate.results();

  const auto scenarios = spec.scenarios();
  expt::RunOptions legacy_options;
  legacy_options.slot_cap = spec.options.slot_cap;
  legacy_options.eps = spec.options.eps;
  for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
    const auto scenario = platform::make_scenario(scenarios[sc]);
    sched::Estimator estimator(scenario.platform, scenario.app, spec.options.eps);
    for (std::size_t h = 0; h < spec.heuristics.size(); ++h) {
      for (int trial = 0; trial < spec.trials; ++trial) {
        const auto legacy = expt::run_trial(scenario, estimator, spec.heuristics[h],
                                            trial, legacy_options);
        const auto& got = results.outcomes[h][sc][static_cast<std::size_t>(trial)];
        EXPECT_EQ(got.success, legacy.success);
        EXPECT_EQ(got.makespan, legacy.makespan);
      }
    }
  }
}

TEST(Session, ThreadCountDoesNotChangeResults) {
  auto spec = mini_spec();
  AggregateSink a1;
  Session().run(spec, {&a1});
  spec.options.threads = 4;
  AggregateSink a4;
  Session().run(spec, {&a4});
  const auto& r1 = a1.results();
  const auto& r4 = a4.results();
  for (std::size_t h = 0; h < r1.outcomes.size(); ++h) {
    for (std::size_t sc = 0; sc < r1.outcomes[h].size(); ++sc) {
      for (std::size_t t = 0; t < r1.outcomes[h][sc].size(); ++t) {
        EXPECT_EQ(r1.outcomes[h][sc][t].makespan, r4.outcomes[h][sc][t].makespan);
      }
    }
  }
}

// Estimator reuse across trials/heuristics (the cache-warmth rule) must not
// change decisions: a fresh session gives the same answer as a warmed one.
TEST(Session, EstimatorCacheDoesNotChangeDecisions) {
  const auto params = mini_params(31);
  Options options;
  options.slot_cap = 100'000;

  Session warm(options);
  (void)warm.run_trial(params, "IE", 0);      // warm the caches
  (void)warm.run_trial(params, "Y-IE", 0);
  const auto warmed = warm.run_trial(params, "Y-IE", 1);

  Session cold(options);
  const auto fresh = cold.run_trial(params, "Y-IE", 1);
  expect_identical(warmed, fresh);
}

// ---------------------------------------------------------------- sinks ----

TEST(Sinks, AggregateShapes) {
  const auto spec = mini_spec();
  AggregateSink aggregate;
  const auto stats = Session().run(spec, {&aggregate});
  EXPECT_EQ(stats.scenarios, 2u);
  EXPECT_EQ(stats.rows, 3u * 2u * 2u);
  const auto& r = aggregate.results();
  ASSERT_EQ(r.heuristics.size(), 3u);
  ASSERT_EQ(r.scenarios.size(), 2u);
  ASSERT_EQ(r.outcomes.size(), 3u);
  ASSERT_EQ(r.outcomes[0].size(), 2u);
  ASSERT_EQ(r.outcomes[0][0].size(), 2u);
  for (const auto& per_scenario : r.outcomes) {
    for (const auto& trials : per_scenario) {
      for (const auto& outcome : trials) EXPECT_GT(outcome.makespan, 0);
    }
  }
}

TEST(Sinks, CsvRoundTrip) {
  const auto spec = mini_spec();
  std::ostringstream out;
  CsvSink csv(out);
  AggregateSink aggregate;
  Session().run(spec, {&csv, &aggregate});

  std::istringstream in(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line,
            "heuristic,family,m,ncom,wmin,scenario_seed,trial,success,makespan,"
            "restarts,reconfigs,idle_slots");

  const auto& r = aggregate.results();
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    std::vector<std::string> fields;
    std::istringstream fs(line);
    std::string field;
    while (std::getline(fs, field, ',')) fields.push_back(field);
    ASSERT_EQ(fields.size(), 12u) << line;
    const int h = r.heuristic_index(fields[0]);
    ASSERT_GE(h, 0);
    EXPECT_EQ(fields[1], "markov") << line;  // the default scenario space
    // Locate the scenario by its seed and check the streamed makespan
    // against the aggregated tensor.
    int sc = -1;
    for (std::size_t i = 0; i < r.scenarios.size(); ++i) {
      if (std::to_string(r.scenarios[i].seed) == fields[5]) sc = static_cast<int>(i);
    }
    ASSERT_GE(sc, 0) << line;
    const int trial = std::stoi(fields[6]);
    const auto& outcome = r.outcomes[static_cast<std::size_t>(h)]
                                    [static_cast<std::size_t>(sc)]
                                    [static_cast<std::size_t>(trial)];
    EXPECT_EQ(std::to_string(outcome.makespan), fields[8]) << line;
    EXPECT_EQ(outcome.success ? "1" : "0", fields[7]) << line;
    ++rows;
  }
  EXPECT_EQ(rows, 3u * 2u * 2u);
}

TEST(Sinks, JsonlRoundTrip) {
  const auto spec = mini_spec();
  std::ostringstream out;
  JsonlSink jsonl(out);
  AggregateSink aggregate;
  Session().run(spec, {&jsonl, &aggregate});

  const auto& r = aggregate.results();
  std::istringstream in(out.str());
  std::string line;
  std::size_t rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"heuristic\":\""), std::string::npos);
    EXPECT_NE(line.find("\"makespan\":"), std::string::npos);
    ++rows;
  }
  EXPECT_EQ(rows, 3u * 2u * 2u);
  // Spot-check one value end-to-end.
  const std::string expected = "\"heuristic\":\"IE\",\"family\":\"markov\","
                               "\"m\":5,\"ncom\":5,\"wmin\":1,"
                               "\"scenario_seed\":" +
                               std::to_string(r.scenarios[0].seed) + ",\"trial\":0";
  EXPECT_NE(out.str().find(expected), std::string::npos);
}

TEST(Sinks, MultipleSinksSeeEveryRowOnce) {
  struct CountingSink final : ResultSink {
    std::set<std::tuple<std::size_t, std::size_t, int>> seen;
    std::size_t begins = 0, finishes = 0;
    bool in_consume = false;
    void begin(const ExperimentSpec&, const std::vector<platform::ScenarioParams>&,
               const std::vector<std::string>&) override {
      ++begins;
    }
    void consume(const ResultRow& row) override {
      // The serialization contract: never two concurrent consume calls.
      ASSERT_FALSE(in_consume);
      in_consume = true;
      EXPECT_TRUE(seen.emplace(row.heuristic, row.scenario, row.trial).second);
      in_consume = false;
    }
    void finish() override { ++finishes; }
  };

  auto spec = mini_spec();
  spec.options.threads = 4;  // exercise the worker-thread path
  CountingSink s1, s2;
  Session().run(spec, {&s1, &s2});
  for (const auto* s : {&s1, &s2}) {
    EXPECT_EQ(s->begins, 1u);
    EXPECT_EQ(s->finishes, 1u);
    EXPECT_EQ(s->seen.size(), 3u * 2u * 2u);
  }
}

// RFC-4180 parse of one CSV record (quotes, embedded commas/newlines).
std::vector<std::string> parse_csv_record(const std::string& text, std::size_t& pos) {
  std::vector<std::string> fields;
  std::string field;
  bool quoted = false;
  while (pos < text.size()) {
    const char c = text[pos];
    if (quoted) {
      if (c == '"' && pos + 1 < text.size() && text[pos + 1] == '"') {
        field += '"';
        ++pos;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      ++pos;
      fields.push_back(std::move(field));
      return fields;
    } else {
      field += c;
    }
    ++pos;
  }
  fields.push_back(std::move(field));
  return fields;
}

TEST(Sinks, HostileRegistryNamesRoundTripThroughCsvAndJsonl) {
  // Family names are caller-chosen; commas, quotes and newlines must
  // round-trip through the CSV sink and keep the JSONL stream one object
  // per line.
  const std::string evil = "evil \"family\", v1\nline2";
  auto timeline = std::make_shared<platform::StateTimeline>();
  timeline->assign(4, std::vector<markov::State>(20, markov::State::Up));
  scen::register_availability_family(scen::make_trace_family(evil, {timeline}));

  auto spec = mini_spec();
  spec.heuristics = {"IE"};
  spec.grid.scenarios_per_cell = 1;
  spec.trials = 1;
  spec.scenario_space.availability = evil;

  std::ostringstream csv, jsonl;
  CsvSink csv_sink(csv);
  JsonlSink jsonl_sink(jsonl);
  Session().run(spec, {&csv_sink, &jsonl_sink});

  std::size_t pos = 0;
  const std::string text = csv.str();
  const auto header = parse_csv_record(text, pos);
  ASSERT_EQ(header.size(), 12u);
  const auto row = parse_csv_record(text, pos);
  ASSERT_EQ(row.size(), 12u);
  EXPECT_EQ(row[0], "IE");
  EXPECT_EQ(row[1], evil);  // exact round-trip, newline and quotes included

  // JSONL: exactly one (logical) line, with the newline escaped inside the
  // JSON string rather than splitting the record.
  const std::string jl = jsonl.str();
  ASSERT_FALSE(jl.empty());
  EXPECT_EQ(std::count(jl.begin(), jl.end(), '\n'), 1);
  EXPECT_NE(jl.find(R"(\nline2)"), std::string::npos);
  EXPECT_NE(jl.find(R"(evil \"family\")"), std::string::npos);
}

TEST(Sinks, FileSinkOpenFailureThrows) {
  // A sweep must not run for hours into a sink that silently discards rows.
  EXPECT_THROW(CsvSink("/nonexistent-dir/out.csv"), std::runtime_error);
  EXPECT_THROW(JsonlSink("/nonexistent-dir/out.jsonl"), std::runtime_error);
}

// ----------------------------------------------------------- validation ----

TEST(Validation, UnknownHeuristicFailsUpFront) {
  struct NeverSink final : ResultSink {
    bool touched = false;
    void begin(const ExperimentSpec&, const std::vector<platform::ScenarioParams>&,
               const std::vector<std::string>&) override {
      touched = true;
    }
    void consume(const ResultRow&) override { touched = true; }
  };

  auto spec = mini_spec();
  spec.heuristics = {"IE", "NOT-A-HEURISTIC"};
  NeverSink sink;
  Session session;
  EXPECT_THROW(session.run(spec, {&sink}), std::invalid_argument);
  EXPECT_FALSE(sink.touched);  // validation precedes any sink/simulation work
}

TEST(Validation, SpecFieldChecks) {
  auto spec = mini_spec();
  spec.trials = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = mini_spec();
  spec.grid.wmins.clear();
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = mini_spec();
  spec.options.slot_cap = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = mini_spec();
  spec.options.eps = 0.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  spec = mini_spec();
  spec.options.avail_block = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  EXPECT_NO_THROW(mini_spec().validate());
}

TEST(Validation, RunTrialRejectsUnknownName) {
  Session session;
  EXPECT_THROW((void)session.run_trial(mini_params(), "nope", 0),
               std::invalid_argument);
}

TEST(OptionsMapping, FastForwardThreadsThroughToTheEngine) {
  // api::Options::fast_forward must reach sim::EngineOptions (default ON),
  // and toggling it through a Session must not change any outcome — the
  // event-horizon loop is bit-identical to the per-slot loop by contract.
  Options options;
  EXPECT_TRUE(options.engine().fast_forward);
  options.fast_forward = false;
  EXPECT_FALSE(options.engine().fast_forward);

  Options on;
  on.slot_cap = 100'000;
  Options off = on;
  off.fast_forward = false;
  Session fast(on);
  Session slow(off);
  const auto params = mini_params(3);
  for (const char* name : {"IE", "Y-IE", "RANDOM"}) {
    for (int trial = 0; trial < 2; ++trial) {
      SCOPED_TRACE(std::string(name) + " trial " + std::to_string(trial));
      expect_identical(fast.run_trial(params, name, trial),
                       slow.run_trial(params, name, trial));
    }
  }
}

// ----------------------------------------------------- spec resolution ----

TEST(Spec, ExplicitScenariosReplaceGrid) {
  ExperimentSpec spec;
  spec.explicit_scenarios = {mini_params(1), mini_params(2), mini_params(3)};
  EXPECT_EQ(spec.scenarios().size(), 3u);
  EXPECT_EQ(spec.scenarios()[1].seed, 2u);
}

TEST(Spec, GridMatchesLegacyScenarioGrid) {
  expt::SweepConfig config;
  config.ms = {5, 10};
  config.ncoms = {5, 20};
  config.wmins = {1, 3};
  config.scenarios_per_cell = 3;
  const auto legacy = expt::scenario_grid(config);
  const auto spec_grid = expt::to_spec(config).scenarios();
  ASSERT_EQ(legacy.size(), spec_grid.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i].seed, spec_grid[i].seed);
    EXPECT_EQ(legacy[i].m, spec_grid[i].m);
    EXPECT_EQ(legacy[i].ncom, spec_grid[i].ncom);
    EXPECT_EQ(legacy[i].wmin, spec_grid[i].wmin);
  }
}

TEST(Spec, DefaultHeuristicsAreThePapers17) {
  ExperimentSpec spec;
  EXPECT_EQ(spec.resolved_heuristics().size(), 17u);
}

TEST(Session, CooperativeStopReturnsPartialStats) {
  const ExperimentSpec spec = mini_spec();  // 2 scenarios x 2 trials = 4 units

  // Stop already set: no unit starts, but the run still finishes cleanly
  // (sinks flushed, counts consistent).
  {
    Session session(spec.options);
    AggregateSink agg;
    std::atomic<bool> stop{true};
    const auto stats = session.run(spec, {&agg}, nullptr, &stop);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_EQ(stats.units_total, 4u);
    EXPECT_EQ(stats.units_done, 0u);
    EXPECT_EQ(stats.rows, 0u);
  }

  // Stop raised from the progress callback after the first completed unit:
  // the flag is honored at unit boundaries, so completed units are whole
  // (rows a multiple of the heuristic count) and pending units are skipped.
  {
    Session session(spec.options);
    AggregateSink agg;
    std::atomic<bool> stop{false};
    const auto stats = session.run(
        spec, {&agg}, [&](std::size_t done, std::size_t) { if (done >= 1) stop = true; },
        &stop);
    EXPECT_TRUE(stats.cancelled);
    EXPECT_GE(stats.units_done, 1u);
    EXPECT_LT(stats.units_done, 4u);
    EXPECT_EQ(stats.rows, stats.units_done * spec.heuristics.size());
  }

  // Null stop (the default) is the uncancelled sweep.
  {
    Session session(spec.options);
    AggregateSink agg;
    const auto stats = session.run(spec, {&agg});
    EXPECT_FALSE(stats.cancelled);
    EXPECT_EQ(stats.units_done, 4u);
    EXPECT_EQ(stats.rows, 4u * spec.heuristics.size());
  }
}

TEST(Spec, GridSeedsNeverCollideAcrossCells) {
  // Regression guard for the additive-derivation collision: with more than
  // 1000 scenarios per cell, the old scheme reused cell c's seed 1000 as
  // cell c+1's seed 0. Every (cell, s) must now get a unique seed.
  ExperimentSpec spec;
  spec.grid.ms = {5};
  spec.grid.ncoms = {5, 10};
  spec.grid.wmins = {1, 2};
  spec.grid.scenarios_per_cell = 1500;
  const auto scenarios = spec.scenarios();
  ASSERT_EQ(scenarios.size(), 4u * 1500u);
  std::set<std::uint64_t> seeds;
  for (const auto& s : scenarios) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), scenarios.size());
}

}  // namespace
}  // namespace tcgrid::api
