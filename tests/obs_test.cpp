// tcgrid::obs registry and tracer tests.
//
// The concurrency tests are the contract the serve daemon leans on: many
// writer threads hammering shared handles while a scraper snapshots
// mid-flight must never tear a value (cells are 64-bit atomics) and must
// merge to EXACT totals once the writers join. Run under ASan/UBSan and
// TSan in CI (TCGRID_SANITIZE=ON / =thread).

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace obs = tcgrid::obs;
namespace json = tcgrid::util::json;

namespace {

/// Each test runs with obs enabled and a zeroed registry; disabled again on
/// exit so unrelated tests keep the (default) disabled hot path.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::configure({.enabled = true});
    obs::Registry::instance().reset_values();
  }
  void TearDown() override { obs::configure({.enabled = false}); }
};

TEST_F(ObsTest, CounterCountsAndSnapshotFinds) {
  obs::Counter c = obs::Registry::instance().counter("obs_test_basic_total");
  c.inc();
  c.inc(41);
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  const obs::MetricSnapshot* m = snap.find("obs_test_basic_total");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, obs::Kind::Counter);
  EXPECT_EQ(m->value, 42u);
}

TEST_F(ObsTest, RegistrationIsIdempotentByNameAndLabels) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter a = reg.counter("obs_test_idem_total", {{"t", "x"}});
  obs::Counter b = reg.counter("obs_test_idem_total", {{"t", "x"}});
  obs::Counter other = reg.counter("obs_test_idem_total", {{"t", "y"}});
  a.inc();
  b.inc();
  other.inc(7);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("obs_test_idem_total", {{"t", "x"}})->value, 2u);
  EXPECT_EQ(snap.find("obs_test_idem_total", {{"t", "y"}})->value, 7u);
  EXPECT_THROW(reg.histogram("obs_test_idem_total", {{"t", "x"}}),
               std::invalid_argument);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  obs::Gauge g = obs::Registry::instance().gauge("obs_test_depth");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(obs::Registry::instance().snapshot().find("obs_test_depth")->gauge, 7);
}

TEST_F(ObsTest, HistogramBucketBoundaries) {
  // Bucket 0 = {0}; bucket b>0 = [2^(b-1), 2^b - 1]; tail absorbs the rest.
  EXPECT_EQ(obs::Histogram::bucket_of(0), 0);
  EXPECT_EQ(obs::Histogram::bucket_of(1), 1);
  EXPECT_EQ(obs::Histogram::bucket_of(2), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(3), 2);
  EXPECT_EQ(obs::Histogram::bucket_of(4), 3);
  EXPECT_EQ(obs::Histogram::bucket_of(1023), 10);
  EXPECT_EQ(obs::Histogram::bucket_of(1024), 11);
  EXPECT_EQ(obs::Histogram::bucket_of(~0ull), obs::Histogram::kBuckets - 1);
  EXPECT_EQ(obs::Histogram::bucket_le(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_le(2), 3u);
  EXPECT_EQ(obs::Histogram::bucket_le(obs::Histogram::kBuckets - 1), ~0ull);
}

TEST_F(ObsTest, HistogramObserveAndMergeAgree) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Histogram direct = reg.histogram("obs_test_direct_us");
  obs::Histogram merged = reg.histogram("obs_test_merged_us");
  obs::LocalHistogram local;
  const std::uint64_t values[] = {0, 1, 5, 5, 129, 4096, 1u << 20};
  for (const std::uint64_t v : values) {
    direct.observe(v);
    local.observe(v);
  }
  merged.merge(local);
  const obs::Snapshot snap = reg.snapshot();
  const obs::MetricSnapshot* d = snap.find("obs_test_direct_us");
  const obs::MetricSnapshot* m = snap.find("obs_test_merged_us");
  ASSERT_NE(d, nullptr);
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(d->count, 7u);
  EXPECT_EQ(d->sum, m->sum);
  EXPECT_EQ(d->buckets, m->buckets);
}

TEST_F(ObsTest, DisabledUpdatesAreDropped) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter c = reg.counter("obs_test_gate_total");
  obs::Histogram h = reg.histogram("obs_test_gate_us");
  obs::configure({.enabled = false});
  c.inc(100);
  h.observe(100);
  obs::configure({.enabled = true});
  c.inc(1);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("obs_test_gate_total")->value, 1u);
  EXPECT_EQ(snap.find("obs_test_gate_us")->count, 0u);
}

// The load-bearing test: writers on shared handles from many threads, a
// scraper snapshotting continuously, merged totals exact at join.
TEST_F(ObsTest, ConcurrentUpdatesMergeExactlyAndScrapesNeverTear) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter counter = reg.counter("obs_test_mt_total");
  obs::Histogram hist = reg.histogram("obs_test_mt_us");
  obs::Gauge gauge = reg.gauge("obs_test_mt_inflight");

  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};

  std::thread scraper([&] {
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::Snapshot snap = reg.snapshot();
      const obs::MetricSnapshot* c = snap.find("obs_test_mt_total");
      const obs::MetricSnapshot* h = snap.find("obs_test_mt_us");
      ASSERT_NE(c, nullptr);
      ASSERT_NE(h, nullptr);
      // Monotone (counters only go up) and bounded — a torn 64-bit read
      // would blow past the writers' ceiling.
      ASSERT_GE(c->value, last);
      ASSERT_LE(c->value, kThreads * kPerThread);
      ASSERT_LE(h->count, kThreads * kPerThread);
      last = c->value;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.inc();
        hist.observe(i % 1024);
        if (i % 256 == 0) gauge.add(t % 2 == 0 ? 1 : -1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  scraper.join();

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("obs_test_mt_total")->value, kThreads * kPerThread);
  const obs::MetricSnapshot* h = snap.find("obs_test_mt_us");
  EXPECT_EQ(h->count, kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, h->count);
  EXPECT_EQ(snap.find("obs_test_mt_inflight")->gauge, 0);
}

// Registration racing updates: threads register fresh per-thread metrics
// (growing the cell space) while others hammer pre-existing handles.
TEST_F(ObsTest, RegistrationDuringUpdatesIsSafe) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter base = reg.counter("obs_test_grow_total");
  constexpr int kThreads = 6;
  constexpr std::uint64_t kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      obs::Histogram mine = reg.histogram(
          "obs_test_grow_us", {{"w", std::to_string(t)}});
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        base.inc();
        mine.observe(i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("obs_test_grow_total")->value, kThreads * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    const obs::MetricSnapshot* m =
        snap.find("obs_test_grow_us", {{"w", std::to_string(t)}});
    ASSERT_NE(m, nullptr);
    EXPECT_EQ(m->count, kPerThread);
  }
}

TEST_F(ObsTest, PrometheusExpositionShape) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("obs_test_prom_total", {{"tenant", "alice"}}).inc(3);
  reg.gauge("obs_test_prom_depth").set(5);
  obs::Histogram h = reg.histogram("obs_test_prom_us", {{"tenant", "a\"b"}});
  h.observe(0);
  h.observe(3);
  h.observe(3);
  const std::string text = obs::Registry::instance().snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE obs_test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_total{tenant=\"alice\"} 3"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_depth 5"), std::string::npos);
  // Escaped label value, cumulative buckets, _sum/_count series.
  EXPECT_NE(text.find("obs_test_prom_us_bucket{tenant=\"a\\\"b\",le=\"0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_bucket{tenant=\"a\\\"b\",le=\"3\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_bucket{tenant=\"a\\\"b\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_sum{tenant=\"a\\\"b\"} 6"), std::string::npos);
  EXPECT_NE(text.find("obs_test_prom_us_count{tenant=\"a\\\"b\"} 3"),
            std::string::npos);
}

TEST_F(ObsTest, JsonExpositionRoundTrips) {
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("obs_test_json_total").inc(9);
  obs::Histogram h = reg.histogram("obs_test_json_us");
  h.observe(100);
  const json::Value doc =
      json::parse(json::dump(reg.snapshot().to_json()));
  ASSERT_TRUE(doc.is_array());
  bool saw_counter = false;
  bool saw_hist = false;
  for (const json::Value& m : doc.as_array()) {
    const std::string& name = m.find("name")->as_string();
    if (name == "obs_test_json_total") {
      saw_counter = true;
      EXPECT_EQ(m.find("value")->as_uint(), 9u);
    }
    if (name == "obs_test_json_us") {
      saw_hist = true;
      EXPECT_EQ(m.find("count")->as_uint(), 1u);
      EXPECT_EQ(m.find("sum")->as_uint(), 100u);
      ASSERT_EQ(m.find("buckets")->as_array().size(), 1u);
      EXPECT_EQ(m.find("buckets")->as_array()[0].find("le")->as_string(), "127");
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_hist);
}

TEST_F(ObsTest, TracerWritesCanonicalJsonlAndSpansMeasure) {
  const std::string path =
      ::testing::TempDir() + "/obs_trace_test.jsonl";
  std::remove(path.c_str());
  obs::configure({.enabled = true, .trace_path = path});
  {
    obs::Span span("unit");
    span.field("tenant", "alice");
    span.field("unit", 7);
  }
  obs::Tracer::instance().emit("evict", {{"tenant", "bob"}});
  obs::configure({.enabled = true});  // empty trace_path closes the tracer

  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  const json::Value span_ev = json::parse(lines[0]);
  EXPECT_EQ(span_ev.find("ev")->as_string(), "unit");
  EXPECT_EQ(span_ev.find("tenant")->as_string(), "alice");
  EXPECT_EQ(span_ev.find("unit")->as_uint(), 7u);
  ASSERT_NE(span_ev.find("ts_us"), nullptr);
  ASSERT_NE(span_ev.find("us"), nullptr);  // duration attached on finish
  const json::Value evict_ev = json::parse(lines[1]);
  EXPECT_EQ(evict_ev.find("ev")->as_string(), "evict");
  EXPECT_EQ(evict_ev.find("tenant")->as_string(), "bob");
  std::remove(path.c_str());
}

TEST_F(ObsTest, SpanIsInertWhenTracerInactive) {
  obs::Span span("never");  // tracer closed: every method must be a no-op
  EXPECT_FALSE(span.active());
  span.field("k", 1);
  span.finish();
}

}  // namespace
