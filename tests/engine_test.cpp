// Tests of the time-slot simulation engine (paper §III-C semantics):
// communication under the ncom bound, lock-step computation, RECLAIMED
// suspension, DOWN restarts, holdings reuse, and a Figure-1-style
// walk-through pinned slot by slot.
#include <gtest/gtest.h>

#include "platform/availability.hpp"
#include "sim/engine.hpp"
#include "sim/gantt.hpp"

namespace tcgrid {
namespace {

using markov::State;

/// Installs one fixed configuration whenever none is active and all its
/// workers are UP; otherwise waits.
class ScriptedScheduler final : public sim::Scheduler {
 public:
  explicit ScriptedScheduler(model::Configuration config) : config_(std::move(config)) {}

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override {
    if (view.has_config()) return std::nullopt;
    for (const auto& a : config_.assignments()) {
      if (view.states[static_cast<std::size_t>(a.proc)] != State::Up) {
        return std::nullopt;
      }
    }
    return config_;
  }
  [[nodiscard]] std::string_view name() const override { return "scripted"; }

 private:
  model::Configuration config_;
};

platform::Platform make_platform(std::vector<long> speeds, int ncom, int mu = 8) {
  std::vector<platform::Processor> procs;
  for (long s : speeds) {
    platform::Processor pr;
    pr.speed = s;
    pr.max_tasks = mu;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
    procs.push_back(pr);
  }
  return platform::Platform(std::move(procs), ncom);
}

model::Application make_app(int m, long t_prog, long t_data, int iterations) {
  model::Application app;
  app.num_tasks = m;
  app.t_prog = t_prog;
  app.t_data = t_data;
  app.iterations = iterations;
  return app;
}

/// All-UP availability forever.
platform::FixedAvailability always_up(int p) {
  return platform::FixedAvailability({std::vector<State>(static_cast<std::size_t>(p),
                                                         State::Up)});
}

// ------------------------------------------------ basic comm/compute ----

TEST(Engine, SerializedCommunicationUnderNcom1) {
  auto plat = make_platform({1, 1}, /*ncom=*/1);
  auto app = make_app(/*m=*/2, /*t_prog=*/2, /*t_data=*/1, /*iterations=*/1);
  auto avail = always_up(2);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  // Each worker needs 3 comm slots; ncom=1 serializes: 6 comm slots, then
  // W = 1 compute slot -> makespan 7.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 7);
  ASSERT_EQ(r.iterations.size(), 1u);
  EXPECT_EQ(r.iterations[0].comm_slots, 6);
  EXPECT_EQ(r.iterations[0].compute_slots, 1);
}

TEST(Engine, ParallelCommunicationUnderNcom2) {
  auto plat = make_platform({1, 1}, /*ncom=*/2);
  auto app = make_app(2, 2, 1, 1);
  auto avail = always_up(2);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  // Both transfers in parallel: 3 comm slots + 1 compute -> makespan 4.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 4);
}

TEST(Engine, ProgramPersistsAcrossIterations) {
  auto plat = make_platform({1, 1}, 2);
  auto app = make_app(2, 2, 1, /*iterations=*/2);
  auto avail = always_up(2);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  // Iter 1: 3 comm + 1 compute = 4 slots. Iter 2: program already held,
  // 1 data slot + 1 compute = 2 slots. Total 6.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 6);
  ASSERT_EQ(r.iterations.size(), 2u);
  EXPECT_EQ(r.iterations[1].comm_slots, 1);
}

TEST(Engine, ZeroCommCostsSkipCommPhase) {
  auto plat = make_platform({2, 2}, 2);
  auto app = make_app(2, /*t_prog=*/0, /*t_data=*/0, 1);
  auto avail = always_up(2);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 2);  // W = 2 compute slots only
}

TEST(Engine, ComputeSlotsEqualMaxLoad) {
  auto plat = make_platform({3, 5}, 2);
  auto app = make_app(3, 0, 0, 1);
  auto avail = always_up(2);
  // Loads: 2*3=6 on P0, 1*5=5 on P1 -> W = 6.
  ScriptedScheduler sched(model::Configuration({{0, 2}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 6);
  EXPECT_EQ(r.iterations[0].compute_slots, 6);
}

// ------------------------------------------------------- suspension ----

TEST(Engine, ReclaimedWorkerSuspendsEveryone) {
  // P1 reclaimed at slots 1-2 during the compute phase (no comm costs).
  std::vector<std::vector<State>> script = {
      {State::Up, State::Up},
      {State::Up, State::Reclaimed},
      {State::Up, State::Reclaimed},
      {State::Up, State::Up},
  };
  platform::FixedAvailability avail(script);
  auto plat = make_platform({2, 2}, 2);
  auto app = make_app(2, 0, 0, 1);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  // W = 2: compute at slot 0, suspended 1-2, compute at slot 3 -> makespan 4.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 4);
  EXPECT_EQ(r.iterations[0].suspended_slots, 2);
  EXPECT_EQ(r.iterations[0].compute_slots, 2);
  EXPECT_EQ(r.total_restarts, 0);
}

TEST(Engine, ReclaimedPausesOnlyItsTransfer) {
  // P0 reclaimed during comm: P1's transfer proceeds; P0 resumes later
  // without losing partial progress.
  std::vector<std::vector<State>> script = {
      {State::Up, State::Up},
      {State::Reclaimed, State::Up},
      {State::Up, State::Up},
  };
  platform::FixedAvailability avail(script);
  auto plat = make_platform({1, 1}, 2);
  auto app = make_app(2, 2, 1, 1);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  // P1: slots 0,1,2 -> done at end of slot 2. P0: slot 0 (prog 1/2), slot 1
  // reclaimed, slots 2,3 -> prog done end of 2 (1 slot in 0 + 1 in 2)...
  // P0 needs 3 comm slots total: serves at 0, 2, 3. Compute at 4 -> makespan 5.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 5);
}

// ---------------------------------------------------------- failures ----

TEST(Engine, DownDuringComputeRestartsIteration) {
  // Both UP long enough to finish comm (none) and one compute slot of W=2,
  // then P1 goes DOWN for one slot.
  std::vector<std::vector<State>> script = {
      {State::Up, State::Up},   // compute slot 1/2
      {State::Up, State::Down}, // abort
      {State::Up, State::Up},   // re-install, compute 1/2
      {State::Up, State::Up},   // compute 2/2
  };
  platform::FixedAvailability avail(script);
  auto plat = make_platform({2, 2}, 2);
  auto app = make_app(2, 0, 0, 1);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 4);
  EXPECT_EQ(r.total_restarts, 1);
  EXPECT_EQ(r.iterations[0].restarts, 1);
}

TEST(Engine, DownLosesProgramAndDataOfThatWorkerOnly) {
  // With comm costs: after the iteration aborts, the crashed worker must
  // re-receive program+data while the survivor reuses what it holds.
  std::vector<std::vector<State>> script = {
      {State::Up, State::Up},  // slot 0: both receive program (1/2)
      {State::Up, State::Up},  // slot 1: program done
      {State::Up, State::Up},  // slot 2: data done (both) -> comm complete
      {State::Up, State::Down},  // slot 3: abort; P1 loses everything
      {State::Up, State::Up},  // slot 4: reinstall; P1 re-receives prog (1/2)
      {State::Up, State::Up},  // slot 5: P1 prog done
      {State::Up, State::Up},  // slot 6: P1 data done
      {State::Up, State::Up},  // slot 7: compute 1/1
  };
  platform::FixedAvailability avail(script);
  auto plat = make_platform({1, 1}, 2);
  auto app = make_app(2, 2, 1, 1);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::EngineOptions opts;
  opts.record_trace = true;
  sim::Engine engine(plat, app, avail, sched, opts);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 8);
  EXPECT_EQ(r.total_restarts, 1);
  // Survivor P0 must not transfer anything after the restart.
  const auto& trace = engine.trace();
  for (long t = 4; t < 8; ++t) {
    const auto a = trace[static_cast<std::size_t>(t)][0].action;
    EXPECT_TRUE(a == sim::Action::Idle || a == sim::Action::Compute)
        << "slot " << t;
  }
}

TEST(Engine, CapHitMeansFailure) {
  // P1 permanently DOWN (for longer than the cap): the scripted config can
  // never be installed.
  std::vector<std::vector<State>> long_script(100, {State::Up, State::Down});
  platform::FixedAvailability avail2(long_script);
  auto plat = make_platform({1, 1}, 2);
  auto app = make_app(2, 0, 0, 1);
  ScriptedScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::EngineOptions opts;
  opts.slot_cap = 50;
  sim::Engine engine(plat, app, avail2, sched, opts);
  auto r = engine.run();
  EXPECT_FALSE(r.success);
  EXPECT_EQ(r.makespan, 50);
  EXPECT_EQ(r.iterations_completed, 0);
  EXPECT_EQ(r.idle_slots, 50);
}

// --------------------------------------------------------- validation ----

class BadScheduler final : public sim::Scheduler {
 public:
  explicit BadScheduler(model::Configuration cfg) : cfg_(std::move(cfg)) {}
  std::optional<model::Configuration> decide(const sim::SchedulerView&) override {
    return cfg_;
  }
  [[nodiscard]] std::string_view name() const override { return "bad"; }

 private:
  model::Configuration cfg_;
};

TEST(Engine, RejectsEnrollingDownWorker) {
  std::vector<std::vector<State>> script(10, {State::Up, State::Down});
  platform::FixedAvailability avail(script);
  auto plat = make_platform({1, 1}, 2);
  auto app = make_app(2, 0, 0, 1);
  BadScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

TEST(Engine, RejectsWrongTaskTotal) {
  auto plat = make_platform({1, 1}, 2);
  auto app = make_app(2, 0, 0, 1);
  auto avail = always_up(2);
  BadScheduler sched(model::Configuration({{0, 1}}));  // 1 task, m = 2
  sim::Engine engine(plat, app, avail, sched);
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

TEST(Engine, RejectsMuViolation) {
  auto plat = make_platform({1, 1}, 2, /*mu=*/1);
  auto app = make_app(2, 0, 0, 1);
  auto avail = always_up(2);
  BadScheduler sched(model::Configuration({{0, 2}}));  // 2 tasks on mu=1
  sim::Engine engine(plat, app, avail, sched);
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

TEST(Engine, RejectsDuplicateWorker) {
  auto plat = make_platform({1, 1}, 2);
  auto app = make_app(2, 0, 0, 1);
  auto avail = always_up(2);
  BadScheduler sched(model::Configuration({{0, 1}, {0, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

// --------------------------------------------- Figure 1 walk-through ----

TEST(Engine, Figure1StyleWalkthrough) {
  // The paper's example (Fig. 1): speeds w_i = i, ncom = 2, Tprog = 2,
  // Tdata = 1, m = 5 tasks mapped as 2 on P2, 2 on P3, 1 on P4 (W = 6).
  // P1/P5 unavailable throughout; P3 reclaimed during comm; P2 and P3
  // reclaimed mid-computation. Slot-exact pin of the engine's semantics.
  std::vector<std::vector<State>> script(15, {State::Down, State::Up, State::Up,
                                              State::Up, State::Down});
  script[2][2] = State::Reclaimed;   // P3 reclaimed slots 2-3
  script[3][2] = State::Reclaimed;
  script[9][1] = State::Reclaimed;   // P2 reclaimed slots 9-10
  script[10][1] = State::Reclaimed;
  script[9][2] = State::Reclaimed;   // P3 reclaimed slots 9-11
  script[10][2] = State::Reclaimed;
  script[11][2] = State::Reclaimed;

  platform::FixedAvailability avail(script);
  auto plat = make_platform({1, 2, 3, 4, 5}, /*ncom=*/2);
  auto app = make_app(5, /*t_prog=*/2, /*t_data=*/1, 1);
  ScriptedScheduler sched(model::Configuration({{1, 2}, {2, 2}, {3, 1}}));
  sim::EngineOptions opts;
  opts.record_trace = true;
  sim::Engine engine(plat, app, avail, sched, opts);
  auto r = engine.run();

  // Hand-derived schedule: comm occupies slots 0-5, computation runs at
  // slots 6,7,8 then suspends 9-11 (reclaimed) and finishes 12,13,14.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 15);
  ASSERT_EQ(r.iterations.size(), 1u);
  EXPECT_EQ(r.iterations[0].comm_slots, 6);
  EXPECT_EQ(r.iterations[0].compute_slots, 6);
  EXPECT_EQ(r.iterations[0].suspended_slots, 3);
  EXPECT_EQ(r.total_restarts, 0);

  const auto& trace = engine.trace();
  // Slot 0: P2 and P3 receive the program; P4 waits for bandwidth.
  EXPECT_EQ(trace[0][1].action, sim::Action::Program);
  EXPECT_EQ(trace[0][2].action, sim::Action::Program);
  EXPECT_EQ(trace[0][3].action, sim::Action::Idle);
  // Slot 2: P3 reclaimed; P2 gets data, P4 starts its program.
  EXPECT_EQ(trace[2][1].action, sim::Action::Data);
  EXPECT_EQ(trace[2][3].action, sim::Action::Program);
  EXPECT_EQ(trace[2][2].state, State::Reclaimed);
  // Slot 6: everyone computes.
  for (int q : {1, 2, 3}) {
    EXPECT_EQ(trace[6][static_cast<std::size_t>(q)].action, sim::Action::Compute);
  }
  // Slot 9: computation suspended.
  EXPECT_EQ(trace[9][3].action, sim::Action::Idle);

  // The Gantt renderer covers the whole run.
  const std::string gantt = sim::render_gantt(engine.trace());
  EXPECT_NE(gantt.find('C'), std::string::npos);
  EXPECT_NE(gantt.find('~'), std::string::npos);
  EXPECT_NE(gantt.find('#'), std::string::npos);
}

// -------------------------------------------------------- determinism ----

TEST(Engine, MarkovRunsAreReproducible) {
  auto plat = make_platform({1, 2, 3}, 2);
  auto app = make_app(3, 2, 1, 3);
  ScriptedScheduler sched1(model::Configuration({{0, 1}, {1, 1}, {2, 1}}));
  ScriptedScheduler sched2(model::Configuration({{0, 1}, {1, 1}, {2, 1}}));
  platform::MarkovAvailability a1(plat, 321), a2(plat, 321);
  sim::Engine e1(plat, app, a1, sched1);
  sim::Engine e2(plat, app, a2, sched2);
  auto r1 = e1.run();
  auto r2 = e2.run();
  EXPECT_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.success, r2.success);
  EXPECT_EQ(r1.total_restarts, r2.total_restarts);
}

}  // namespace
}  // namespace tcgrid
