// Tests of the canonical chain-statistics store (DESIGN.md §10):
//
//   * interning is by bit content: identical UR sub-matrices share one
//     ChainId, and per-chain quantities are computed once per chain;
//   * shared survival tables are bit-identical to direct UrRow tabulation,
//     resume across callers, and honour the subnormal cut / exact-zero cap;
//   * set-level statistics are keyed by the sorted multiset of chain ids —
//     on a homogeneous platform every k-subset of workers hits ONE store
//     entry per k — and evaluated in content order, so shared and private
//     stores produce bit-identical doubles;
//   * sched::Estimator resolves identically through a shared and a private
//     store (p_no_down, proc/set stats, full evaluate), for the paper's
//     heterogeneous platform and for clustered platforms;
//   * full sweep bit-identity: Options::shared_chain_stats on vs off gives
//     equal rows for all 25 heuristics across every availability family,
//     and for the heterogeneous "clusters" platform family;
//   * eviction of the estimator's set front cache and build memo is
//     epoch-safe: references held across a cap-triggered eviction keep
//     reading their values (the historical clear()-dangle hazard);
//   * api::Session observability: chain_store_counters() populates during
//     runs, resets with clear_caches(), and stays zero when ablated.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "markov/chain_stats.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "scen/scen.hpp"
#include "sched/registry.hpp"

namespace tcgrid {
namespace {

using markov::ChainId;
using markov::ChainStatsStore;

markov::UrMatrix ur_of(double uu, double rr) {
  return markov::ur_submatrix(markov::TransitionMatrix::from_self_loops(uu, rr, 0.9));
}

platform::Platform homogeneous_platform(int p, int ncom = 5, double uu = 0.95) {
  std::vector<platform::Processor> procs;
  for (int q = 0; q < p; ++q) {
    platform::Processor pr;
    pr.speed = 2;
    pr.max_tasks = 8;
    pr.availability = markov::TransitionMatrix::from_self_loops(uu, 0.9, 0.9);
    procs.push_back(pr);
  }
  return platform::Platform(std::move(procs), ncom);
}

model::Application small_app(int m = 4) {
  model::Application app;
  app.num_tasks = m;
  app.t_prog = 10;
  app.t_data = 2;
  return app;
}

// ------------------------------------------------------------------- store ----

TEST(ChainStatsStore, InternsByBitContent) {
  ChainStatsStore store(1e-9);
  const auto a = ur_of(0.95, 0.90);
  const auto b = ur_of(0.95, 0.90);  // same content, separate object
  const auto c = ur_of(0.80, 0.90);
  const ChainId ia = store.intern(a);
  const ChainId ib = store.intern(b);
  const ChainId ic = store.intern(c);
  EXPECT_EQ(ia, ib);
  EXPECT_NE(ia, ic);
  const auto counters = store.counters();
  EXPECT_EQ(counters.chains, 2u);
  EXPECT_EQ(counters.intern_hits, 1u);
  EXPECT_GT(counters.bytes, 0u);
}

TEST(ChainStatsStore, RejectsBadEps) {
  EXPECT_THROW(ChainStatsStore(0.0), std::invalid_argument);
  EXPECT_THROW(ChainStatsStore(-1e-6), std::invalid_argument);
}

TEST(ChainStatsStore, ChainStatsMatchDirectComputation) {
  ChainStatsStore store(1e-10);
  const auto m = ur_of(0.93, 0.88);
  const ChainId id = store.intern(m);
  const markov::UrMatrix procs[] = {m};
  const auto direct = markov::coupled_stats(procs, 1e-10);
  const auto stored = store.chain_stats(id);
  EXPECT_EQ(stored.p_plus, direct.p_plus);  // bit-identical, not just near
  EXPECT_EQ(stored.ec, direct.ec);
  EXPECT_EQ(stored.failure_free, direct.failure_free);
}

TEST(ChainStatsStore, SetStatsEvaluateInContentOrderRegardlessOfIdOrder) {
  // Intern in one order, query in another: the quad must be the one content
  // order produces, independent of intern ids or the caller's spelling.
  const auto a = ur_of(0.97, 0.85);
  const auto b = ur_of(0.91, 0.92);
  const auto c = ur_of(0.84, 0.88);
  ChainStatsStore forward(1e-9);
  const std::vector<ChainId> f = {forward.intern(a), forward.intern(b),
                                  forward.intern(c)};
  ChainStatsStore backward(1e-9);
  const std::vector<ChainId> r = {backward.intern(c), backward.intern(b),
                                  backward.intern(a)};
  std::vector<ChainId> fs = f;
  std::sort(fs.begin(), fs.end());
  std::vector<ChainId> rs = r;
  std::sort(rs.begin(), rs.end());
  const auto sf = forward.set_stats(fs);
  const auto sr = backward.set_stats(rs);
  EXPECT_EQ(sf.p_plus, sr.p_plus);
  EXPECT_EQ(sf.ec, sr.ec);
  // And one store answers a repeat query from the entry (a hit).
  const auto before = forward.counters();
  (void)forward.set_stats(fs);
  const auto after = forward.counters();
  EXPECT_EQ(after.set_entries, before.set_entries);
  EXPECT_EQ(after.set_hits, before.set_hits + 1);
}

TEST(ChainStatsStore, SurvivalMatchesDirectTabulationAndResumes) {
  ChainStatsStore store(1e-9);
  const auto m = ur_of(0.9, 0.9);
  const ChainId id = store.intern(m);
  markov::ChainSurvival& surv = store.survival(id);

  // Direct reference: the exact advance sequence the estimator tables ran.
  markov::UrRow row;
  std::vector<double> ref = {1.0};
  for (int t = 1; t <= 600; ++t) {
    row.advance(m);
    ref.push_back(row.survival());
  }

  // Grow in two stages: the resume must continue the identical sequence.
  EXPECT_EQ(surv.grow_to(100), ref[100]);
  EXPECT_EQ(surv.published(), 101);
  EXPECT_EQ(surv.grow_to(600), ref[600]);
  for (long t : {0L, 1L, 57L, 100L, 101L, 599L}) {
    EXPECT_EQ(surv.at(t), ref[static_cast<std::size_t>(t)]) << "t=" << t;
  }
  const auto counters = store.counters();
  EXPECT_EQ(counters.survival_entries, 601u);
}

TEST(ChainStatsStore, SurvivalTerminalZeroCapsTheTable) {
  ChainStatsStore store(1e-9);
  // A very flaky chain underflows quickly.
  const ChainId id = store.intern(ur_of(0.10, 0.10));
  markov::ChainSurvival& surv = store.survival(id);
  EXPECT_EQ(surv.grow_to(5'000'000), 0.0);
  // The table stopped at its terminal zero instead of materializing 5M
  // entries...
  const long n = surv.published();
  EXPECT_LT(n, 100'000);
  EXPECT_EQ(surv.at(n - 1), 0.0);
  // ...and later, larger queries answer 0.0 without growing it.
  EXPECT_EQ(surv.grow_to(10'000'000), 0.0);
  EXPECT_EQ(surv.published(), n);
}

// --------------------------------------------------- estimator as a view ----

TEST(ChainStatsView, HomogeneousKSubsetsHitOneMultisetEntry) {
  const auto plat = homogeneous_platform(8);
  const auto app = small_app();
  auto store = std::make_shared<ChainStatsStore>(1e-9);
  sched::Estimator est(plat, app, 1e-9, store);

  EXPECT_EQ(store->counters().chains, 1u);  // 8 processors, one chain

  // Every k-subset of workers must resolve to the SAME multiset entry: walk
  // several distinct subsets per k and count store entries.
  std::vector<std::vector<int>> subsets = {
      {0},    {3},    {7},            // k = 1
      {0, 1}, {2, 5}, {6, 7}, {1, 4},  // k = 2
      {0, 1, 2}, {3, 5, 7}, {1, 2, 6},  // k = 3
      {0, 2, 4, 6}, {1, 3, 5, 7},       // k = 4
  };
  double per_k[5] = {0, 0, 0, 0, 0};
  for (const auto& s : subsets) {
    const auto& st = est.set_stats(s);
    double& expected = per_k[s.size()];
    if (expected == 0.0) {
      expected = st.p_plus;
    } else {
      EXPECT_EQ(st.p_plus, expected) << "subset size " << s.size();
    }
  }
  // One store entry per distinct k — not one per bitmask.
  EXPECT_EQ(store->counters().set_entries, 4u);
  // The view's front cache still keys by bitmask (one per distinct subset).
  EXPECT_EQ(est.cached_sets(), subsets.size());
}

TEST(ChainStatsView, SharedAndPrivateStoresAreBitIdentical) {
  // Paper platform: every processor a distinct chain. Clusters platform:
  // chains genuinely shared between processors.
  platform::ScenarioParams params;
  params.seed = 21;
  const auto paper = platform::make_scenario(params);
  const auto clusters =
      scen::platform_family("clusters")->make(params);

  for (const platform::Scenario* scenario : {&paper, &clusters}) {
    auto shared_store = std::make_shared<ChainStatsStore>(1e-6);
    sched::Estimator with_store(scenario->platform, scenario->app, 1e-6, shared_store);
    sched::Estimator private_store(scenario->platform, scenario->app, 1e-6);

    for (int q = 0; q < scenario->platform.size(); ++q) {
      EXPECT_EQ(with_store.proc_stats(q).p_plus, private_store.proc_stats(q).p_plus);
      EXPECT_EQ(with_store.proc_stats(q).ec, private_store.proc_stats(q).ec);
      for (long t : {1L, 9L, 64L, 511L}) {
        EXPECT_EQ(with_store.p_no_down(q, t), private_store.p_no_down(q, t))
            << "q=" << q << " t=" << t;
      }
    }
    // Worker sets in deliberately non-canonical orders.
    const std::vector<std::vector<int>> sets = {
        {0, 1}, {5, 2}, {7, 3, 1}, {9, 0, 4, 2}, {19, 11, 6}, {2, 12}};
    std::vector<sched::Estimator::CommNeed> needs;
    for (const auto& s : sets) {
      needs.clear();
      for (int q : s) needs.push_back({q, 12});
      const auto a = with_store.evaluate(needs, s, 20);
      const auto b = private_store.evaluate(needs, s, 20);
      EXPECT_EQ(a.p_success, b.p_success);
      EXPECT_EQ(a.e_time, b.e_time);
    }
  }
}

TEST(ChainStatsView, ClustersPlatformDedupsChains) {
  platform::ScenarioParams params;
  params.seed = 7;
  const auto scenario = scen::platform_family("clusters")->make(params);
  auto store = std::make_shared<ChainStatsStore>(1e-6);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6, store);
  // The default clusters family draws far fewer chains than processors; the
  // store saw each once.
  const auto counters = store->counters();
  EXPECT_LT(counters.chains, static_cast<std::size_t>(scenario.platform.size()));
  EXPECT_EQ(counters.chains + counters.intern_hits,
            static_cast<std::size_t>(scenario.platform.size()));
  // Processors of one cluster share a survival table: growing through one
  // is visible through the other.
  int a = -1, b = -1;
  for (int q = 1; q < scenario.platform.size() && a < 0; ++q) {
    if (est.chain_id(q) == est.chain_id(0)) {
      a = 0;
      b = q;
    }
  }
  ASSERT_GE(a, 0) << "clusters scenario with no shared chain?";
  const double via_a = est.p_no_down(a, 333);
  EXPECT_EQ(est.p_no_down(b, 333), via_a);
}

TEST(ChainStatsView, SharedStoreEpsMismatchThrows) {
  const auto plat = homogeneous_platform(2);
  const auto app = small_app();
  auto store = std::make_shared<ChainStatsStore>(1e-6);
  EXPECT_THROW(sched::Estimator(plat, app, 1e-9, store), std::invalid_argument);
  EXPECT_NO_THROW(sched::Estimator(plat, app, 1e-6, store));
}

// -------------------------------------------------- epoch-safe eviction ----

TEST(Eviction, SetStatsReferenceSurvivesCapEviction) {
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  est.set_eviction_caps_for_test(/*sets=*/4, /*builds=*/4);

  const std::vector<int> held_set = {0, 1, 2};
  const markov::CoupledStats& held = est.set_stats(held_set);
  const double p_plus = held.p_plus;
  const double ec = held.ec;

  // Push well past the cap: several evictions would fire under an eager
  // clear(); with epoch retirement the reference must keep reading its
  // (unchanged) values through the FIRST eviction after it was returned.
  std::size_t evictions = 0;
  std::size_t last_size = est.cached_sets();
  for (int q = 3; q < 9 && evictions == 0; ++q) {
    for (int r = q + 1; r < 12; ++r) {
      const std::vector<int> s = {q, r};
      (void)est.set_stats(s);
      if (est.cached_sets() < last_size) ++evictions;
      last_size = est.cached_sets();
      if (evictions > 0) break;
    }
  }
  ASSERT_GT(evictions, 0u) << "test cap never triggered an eviction";
  EXPECT_EQ(held.p_plus, p_plus);  // still alive, still the same doubles
  EXPECT_EQ(held.ec, ec);

  // A re-query after eviction recomputes the identical statistics.
  const markov::CoupledStats& again = est.set_stats(held_set);
  EXPECT_EQ(again.p_plus, p_plus);
  EXPECT_EQ(again.ec, ec);
}

TEST(Eviction, BuildMemoReferenceSurvivesCapEviction) {
  platform::ScenarioParams params;
  params.seed = 5;
  const auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  est.set_eviction_caps_for_test(/*sets=*/std::size_t{1} << 22, /*builds=*/3);

  auto& memo = est.build_memo();
  sched::MemoizedBuild& held = memo.insert(101);
  held.estimate = {0.25, 42.0};
  // Each build_memo() access past the cap evicts; insert through it the way
  // IncrementalBuilder does.
  for (std::uint64_t key = 200; key < 204; ++key) {
    est.build_memo().insert(key).estimate = {0.5, 1.0};
  }
  // `held` survived at least one eviction epoch.
  EXPECT_EQ(held.estimate.p_success, 0.25);
  EXPECT_EQ(held.estimate.e_time, 42.0);
  // The evicted key is gone from the index (a re-find misses).
  EXPECT_EQ(est.build_memo().find(101), nullptr);
}

// ------------------------------------------------- sweep bit-identity ----

/// Index-addressed collector of FULL simulation results (sweep bit-identity
/// must compare every counter).
class CollectSink final : public api::ResultSink {
 public:
  void begin(const api::ExperimentSpec& spec,
             const std::vector<platform::ScenarioParams>& scenarios,
             const std::vector<std::string>& heuristics) override {
    (void)spec;
    results_.assign(heuristics.size(),
                    std::vector<std::vector<sim::SimulationResult>>(scenarios.size()));
  }
  void consume(const api::ResultRow& row) override {
    auto& per_scenario = results_[row.heuristic][row.scenario];
    if (per_scenario.size() <= static_cast<std::size_t>(row.trial)) {
      per_scenario.resize(static_cast<std::size_t>(row.trial) + 1);
    }
    per_scenario[static_cast<std::size_t>(row.trial)] = *row.result;
  }
  [[nodiscard]] const std::vector<std::vector<std::vector<sim::SimulationResult>>>&
  results() const {
    return results_;
  }

 private:
  std::vector<std::vector<std::vector<sim::SimulationResult>>> results_;
};

void expect_identical_results(const sim::SimulationResult& a,
                              const sim::SimulationResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.total_reconfigurations, b.total_reconfigurations);
  EXPECT_EQ(a.idle_slots, b.idle_slots);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].start_slot, b.iterations[i].start_slot);
    EXPECT_EQ(a.iterations[i].end_slot, b.iterations[i].end_slot);
    EXPECT_EQ(a.iterations[i].comm_slots, b.iterations[i].comm_slots);
    EXPECT_EQ(a.iterations[i].compute_slots, b.iterations[i].compute_slots);
    EXPECT_EQ(a.iterations[i].stalled_slots, b.iterations[i].stalled_slots);
    EXPECT_EQ(a.iterations[i].suspended_slots, b.iterations[i].suspended_slots);
    EXPECT_EQ(a.iterations[i].restarts, b.iterations[i].restarts);
  }
}

/// The registered availability families plus a trace family (registered on
/// first use — trace families need a concrete timeline).
const std::vector<std::string>& sweep_families() {
  static const std::vector<std::string> names = [] {
    platform::ScenarioParams params;
    params.seed = 61;
    const auto scenario = platform::make_scenario(params);
    auto src = scen::availability_family("markov")->make_source(
        scenario.platform, 777, platform::InitialStates::Stationary);
    auto timeline =
        std::make_shared<platform::StateTimeline>(platform::record(*src, 400));
    scen::register_availability_family(scen::make_trace_family(
        "cs-trace", scen::TraceFamilyParams{.timeline = std::move(timeline)}));
    return std::vector<std::string>{"markov", "weibull", "daynight", "cs-trace"};
  }();
  return names;
}

/// All 25 registered heuristics (the paper's 17 plus the extensions).
std::vector<std::string> all_heuristics() {
  std::vector<std::string> names = sched::all_heuristic_names();
  for (const auto& n : sched::extension_heuristic_names()) names.push_back(n);
  return names;
}

TEST(SweepBitIdentity, SharedOnVsOffAllHeuristicsAllFamilies) {
  // Every heuristic x availability family, one paired trial each: the
  // shared store and the per-estimator private stores must produce the
  // identical simulation.
  platform::ScenarioParams params;
  params.seed = 33;
  params.wmin = 2;
  params.iterations = 3;

  api::Options on;
  on.slot_cap = 100'000;
  api::Options off = on;
  off.shared_chain_stats = false;

  const auto heuristics = all_heuristics();
  for (const auto& family : sweep_families()) {
    scen::ScenarioSpace space;
    space.availability = family;
    api::Session shared(on);
    api::Session ablated(off);
    for (const auto& heuristic : heuristics) {
      SCOPED_TRACE(family + " / " + heuristic);
      const auto a = shared.run_trial(space, params, heuristic, 0);
      const auto b = ablated.run_trial(space, params, heuristic, 0);
      expect_identical_results(a, b);
    }
    EXPECT_GT(shared.chain_store_counters().chains, 0u);
    EXPECT_EQ(ablated.chain_store_counters().chains, 0u);  // ablated: no store
  }
}

TEST(SweepBitIdentity, ClustersPlatformSweepOnVsOff) {
  // Heterogeneous platform family where chains genuinely repeat across
  // processors: a full (grid) sweep, shared on vs off, equal rows.
  api::ExperimentSpec spec;
  spec.grid.ms = {5};
  spec.grid.ncoms = {5};
  spec.grid.wmins = {1, 2};
  spec.grid.scenarios_per_cell = 2;
  spec.grid.iterations = 3;
  spec.trials = 2;
  spec.heuristics = {"RANDOM", "IE", "Y-IE", "E-IAY", "IY"};
  spec.options.slot_cap = 100'000;
  spec.options.threads = 2;
  spec.scenario_space.platform = "clusters";

  CollectSink on_sink;
  {
    api::Session session(spec.options);
    session.run(spec, {&on_sink});
    const auto counters = session.chain_store_counters();
    EXPECT_GT(counters.chains, 0u);
    EXPECT_GT(counters.intern_hits, counters.chains);  // clusters: chains repeat
    EXPECT_GT(counters.set_hits, 0u);
  }
  api::ExperimentSpec off = spec;
  off.options.shared_chain_stats = false;
  CollectSink off_sink;
  {
    api::Session session(off.options);
    session.run(off, {&off_sink});
  }

  ASSERT_EQ(on_sink.results().size(), off_sink.results().size());
  for (std::size_t h = 0; h < on_sink.results().size(); ++h) {
    ASSERT_EQ(on_sink.results()[h].size(), off_sink.results()[h].size());
    for (std::size_t sc = 0; sc < on_sink.results()[h].size(); ++sc) {
      ASSERT_EQ(on_sink.results()[h][sc].size(), 2u);
      for (std::size_t t = 0; t < 2; ++t) {
        SCOPED_TRACE("h" + std::to_string(h) + " sc" + std::to_string(sc) + " t" +
                     std::to_string(t));
        expect_identical_results(on_sink.results()[h][sc][t],
                                 off_sink.results()[h][sc][t]);
      }
    }
  }
}

// ------------------------------------------------------- observability ----

TEST(Observability, SessionCountersPopulateAndClearCachesResets) {
  api::ExperimentSpec spec;
  spec.grid.ms = {5};
  spec.grid.ncoms = {5};
  spec.grid.wmins = {1};
  spec.grid.scenarios_per_cell = 2;
  spec.grid.iterations = 3;
  spec.trials = 1;
  spec.heuristics = {"IE", "Y-IE"};
  spec.options.slot_cap = 50'000;
  spec.options.threads = 1;

  api::Session session(spec.options);
  EXPECT_EQ(session.chain_store_counters().chains, 0u);
  CollectSink sink;
  session.run(spec, {&sink});

  const auto counters = session.chain_store_counters();
  // Two paper scenarios x 20 distinct chains each.
  EXPECT_EQ(counters.chains, 40u);
  EXPECT_GT(counters.set_entries, 0u);
  EXPECT_GT(counters.set_misses, 0u);
  EXPECT_GT(counters.survival_entries, 0u);
  EXPECT_GT(counters.bytes, 0u);
  EXPECT_GT(session.cached_entries(), 0u);

  session.clear_caches();
  EXPECT_EQ(session.cached_entries(), 0u);
  const auto reset = session.chain_store_counters();
  EXPECT_EQ(reset.chains, 0u);
  EXPECT_EQ(reset.bytes, 0u);
}

}  // namespace
}  // namespace tcgrid
