// Tests of the §VI metric/criterion scores: sign conventions, the yield's
// dependence on elapsed time, and name round-trips.
#include <gtest/gtest.h>

#include "sched/criteria.hpp"

namespace tcgrid::sched {
namespace {

TEST(Criteria, Names) {
  EXPECT_EQ(to_string(Rule::IP), "IP");
  EXPECT_EQ(to_string(Rule::IE), "IE");
  EXPECT_EQ(to_string(Rule::IY), "IY");
  EXPECT_EQ(to_string(Rule::IAY), "IAY");
  EXPECT_EQ(to_string(Criterion::P), "P");
  EXPECT_EQ(to_string(Criterion::E), "E");
  EXPECT_EQ(to_string(Criterion::Y), "Y");
}

TEST(Criteria, IPIsProbability) {
  IterationEstimate est{0.42, 100.0};
  EXPECT_DOUBLE_EQ(rule_score(Rule::IP, est, 17), 0.42);
}

TEST(Criteria, IENegatesTime) {
  IterationEstimate fast{0.1, 10.0};
  IterationEstimate slow{0.9, 50.0};
  // Larger score must mean better: the faster config wins under IE even with
  // a lower success probability.
  EXPECT_GT(rule_score(Rule::IE, fast, 0), rule_score(Rule::IE, slow, 0));
}

TEST(Criteria, YieldDividesByElapsedPlusExpected) {
  IterationEstimate est{0.5, 10.0};
  EXPECT_DOUBLE_EQ(rule_score(Rule::IY, est, 0), 0.05);
  EXPECT_DOUBLE_EQ(rule_score(Rule::IY, est, 40), 0.01);
  // Apparent yield ignores the sunk time.
  EXPECT_DOUBLE_EQ(rule_score(Rule::IAY, est, 40), 0.05);
}

TEST(Criteria, YieldDecreasesWithElapsedTime) {
  IterationEstimate est{0.5, 10.0};
  double prev = rule_score(Rule::IY, est, 0);
  for (long t = 1; t <= 100; t += 7) {
    const double cur = rule_score(Rule::IY, est, t);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(Criteria, CriterionDelegatesToMatchingRule) {
  IterationEstimate est{0.3, 25.0};
  for (long t : {0L, 5L, 50L}) {
    EXPECT_DOUBLE_EQ(criterion_score(Criterion::P, est, t),
                     rule_score(Rule::IP, est, t));
    EXPECT_DOUBLE_EQ(criterion_score(Criterion::E, est, t),
                     rule_score(Rule::IE, est, t));
    EXPECT_DOUBLE_EQ(criterion_score(Criterion::Y, est, t),
                     rule_score(Rule::IY, est, t));
  }
}

TEST(Criteria, DegenerateEstimatesAreFinite) {
  IterationEstimate zero{1.0, 0.0};
  EXPECT_TRUE(std::isfinite(rule_score(Rule::IAY, zero, 0)));
  EXPECT_TRUE(std::isfinite(rule_score(Rule::IY, zero, 0)));
}

TEST(Criteria, ProgressImprovesEveryCriterion) {
  // The §VI-B stability requirement in miniature: as an iteration progresses
  // (remaining E shrinks, remaining P grows), the updated score must not get
  // worse for any criterion, even as elapsed time grows.
  IterationEstimate before{0.4, 60.0};
  IterationEstimate after{0.6, 40.0};  // 20 slots later, work banked
  EXPECT_GE(criterion_score(Criterion::P, after, 20),
            criterion_score(Criterion::P, before, 0));
  EXPECT_GE(criterion_score(Criterion::E, after, 20),
            criterion_score(Criterion::E, before, 0));
  EXPECT_GE(criterion_score(Criterion::Y, after, 20),
            criterion_score(Criterion::Y, before, 0));
}

}  // namespace
}  // namespace tcgrid::sched
