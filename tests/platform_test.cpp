// Unit tests for src/platform: platform construction, the paper's scenario
// generator, availability sources, trace I/O, and the semi-Markov extension.
#include <gtest/gtest.h>

#include <sstream>

#include "platform/availability.hpp"
#include "platform/platform.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "platform/trace_io.hpp"

namespace tcgrid::platform {
namespace {

Platform tiny_platform(int p = 3, int ncom = 2) {
  std::vector<Processor> procs;
  for (int q = 0; q < p; ++q) {
    Processor pr;
    pr.speed = q + 1;
    pr.max_tasks = 4;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
    procs.push_back(pr);
  }
  return Platform(std::move(procs), ncom);
}

// ----------------------------------------------------------- platform ----

TEST(Platform, AssignsIdsAndExposesSpeeds) {
  auto plat = tiny_platform(4);
  EXPECT_EQ(plat.size(), 4);
  for (int q = 0; q < 4; ++q) {
    EXPECT_EQ(plat.proc(q).id, q);
    EXPECT_EQ(plat.speeds()[static_cast<std::size_t>(q)], q + 1);
  }
}

TEST(Platform, RejectsBadNcomAndProcessors) {
  std::vector<Processor> procs(1);
  procs[0].speed = 1;
  procs[0].max_tasks = 1;
  EXPECT_THROW(Platform(std::vector<Processor>(procs), 0), std::invalid_argument);
  procs[0].speed = 0;
  EXPECT_THROW(Platform(std::move(procs), 1), std::invalid_argument);
}

TEST(Platform, CapacitySums) {
  auto plat = tiny_platform(3);
  const int ids[] = {0, 2};
  EXPECT_EQ(plat.capacity(ids), 8);
}

// ----------------------------------------------------------- scenario ----

TEST(Scenario, PaperParameterization) {
  ScenarioParams params;
  params.m = 10;
  params.ncom = 10;
  params.wmin = 4;
  params.seed = 5;
  auto s = make_scenario(params);
  EXPECT_EQ(s.platform.size(), 20);
  EXPECT_EQ(s.platform.ncom(), 10);
  EXPECT_EQ(s.app.num_tasks, 10);
  EXPECT_EQ(s.app.t_data, 4);
  EXPECT_EQ(s.app.t_prog, 20);
  EXPECT_EQ(s.app.iterations, 10);
  for (const auto& pr : s.platform.procs()) {
    EXPECT_GE(pr.speed, 4);
    EXPECT_LE(pr.speed, 40);
    EXPECT_EQ(pr.max_tasks, 10);
    for (auto st : markov::kAllStates) {
      EXPECT_GE(pr.availability.prob(st, st), 0.90);
      EXPECT_LT(pr.availability.prob(st, st), 0.99);
    }
  }
}

TEST(Scenario, DeterministicInSeed) {
  ScenarioParams params;
  params.seed = 77;
  auto a = make_scenario(params);
  auto b = make_scenario(params);
  for (int q = 0; q < a.platform.size(); ++q) {
    EXPECT_EQ(a.platform.proc(q).speed, b.platform.proc(q).speed);
  }
  params.seed = 78;
  auto c = make_scenario(params);
  bool any_diff = false;
  for (int q = 0; q < a.platform.size(); ++q) {
    if (a.platform.proc(q).speed != c.platform.proc(q).speed) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Scenario, RejectsInvalidParams) {
  ScenarioParams params;
  params.m = 0;
  EXPECT_THROW(make_scenario(params), std::invalid_argument);
}

// ------------------------------------------------------- availability ----

TEST(MarkovAvailability, DeterministicPerSeed) {
  auto plat = tiny_platform();
  MarkovAvailability a(plat, 9), b(plat, 9);
  for (int t = 0; t < 200; ++t) {
    for (int q = 0; q < plat.size(); ++q) EXPECT_EQ(a.state(q), b.state(q));
    a.advance();
    b.advance();
  }
}

TEST(MarkovAvailability, DifferentSeedsDiverge) {
  auto plat = tiny_platform();
  MarkovAvailability a(plat, 1), b(plat, 2);
  int diffs = 0;
  for (int t = 0; t < 200; ++t) {
    for (int q = 0; q < plat.size(); ++q) {
      if (a.state(q) != b.state(q)) ++diffs;
    }
    a.advance();
    b.advance();
  }
  EXPECT_GT(diffs, 0);
}

TEST(MarkovAvailability, AllUpModeStartsUp) {
  auto plat = tiny_platform();
  MarkovAvailability a(plat, 3, InitialStates::AllUp);
  for (int q = 0; q < plat.size(); ++q) EXPECT_EQ(a.state(q), markov::State::Up);
}

TEST(MarkovAvailability, StationaryInitIsDeterministic) {
  auto plat = tiny_platform();
  MarkovAvailability a(plat, 3), b(plat, 3);
  for (int q = 0; q < plat.size(); ++q) EXPECT_EQ(a.state(q), b.state(q));
}

TEST(FixedAvailability, FollowsScriptThenAllUp) {
  using markov::State;
  FixedAvailability fixed({{State::Down, State::Up},
                           {State::Reclaimed, State::Down}});
  EXPECT_EQ(fixed.state(0), State::Down);
  EXPECT_EQ(fixed.state(1), State::Up);
  fixed.advance();
  EXPECT_EQ(fixed.state(0), State::Reclaimed);
  EXPECT_EQ(fixed.state(1), State::Down);
  fixed.advance();  // beyond horizon
  EXPECT_EQ(fixed.state(0), State::Up);
  EXPECT_EQ(fixed.state(1), State::Up);
}

TEST(FixedAvailability, RejectsEmptyOrRagged) {
  EXPECT_THROW(FixedAvailability({}), std::invalid_argument);
  EXPECT_THROW(FixedAvailability({{markov::State::Up}, {}}), std::invalid_argument);
}

// ----------------------------------------------------------- trace io ----

TEST(TraceIo, RoundTrip) {
  using markov::State;
  StateTimeline t{{State::Up, State::Reclaimed}, {State::Down, State::Up}};
  std::ostringstream out;
  write_trace(out, t);
  std::istringstream in(out.str());
  EXPECT_EQ(read_trace(in), t);
}

TEST(TraceIo, SkipsCommentsAndBlank) {
  std::istringstream in("# header\n\nud\nru\n");
  auto t = read_trace(in);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0][0], markov::State::Up);
  EXPECT_EQ(t[1][0], markov::State::Reclaimed);
}

TEST(TraceIo, RejectsBadCharactersAndRagged) {
  std::istringstream bad("ux\n");
  EXPECT_THROW(read_trace(bad), std::runtime_error);
  std::istringstream ragged("uu\nu\n");
  EXPECT_THROW(read_trace(ragged), std::runtime_error);
}

TEST(TraceIo, ToleratesCrlfBomAndMissingTrailingNewline) {
  using markov::State;
  const StateTimeline expected{{State::Up, State::Reclaimed},
                               {State::Down, State::Up},
                               {State::Up, State::Up}};
  // A file as a Windows editor would save it: UTF-8 BOM, CRLF endings,
  // indented comment, blank CR-only line, and no newline after the last row.
  std::istringstream in(
      "\xEF\xBB\xBF# exported trace\r\n  # indented comment\r\n\r\nur\r\ndu\r\nuu");
  EXPECT_EQ(read_trace(in), expected);
}

TEST(TraceIo, RoundTripPreservesTimelineWithCommentsInInput) {
  using markov::State;
  std::istringstream commented("# header comment\nur\n# interior comment\ndu\nuu\n");
  const StateTimeline parsed = read_trace(commented);
  ASSERT_EQ(parsed.size(), 3u);

  // write_trace(read_trace(x)) re-reads to the identical timeline (comments
  // are annotation, not data, so they are dropped — not corrupted).
  std::ostringstream out;
  write_trace(out, parsed);
  EXPECT_EQ(out.str().find('#'), std::string::npos);
  std::istringstream in(out.str());
  EXPECT_EQ(read_trace(in), parsed);
}

TEST(TraceIo, FitRecoversTransitionMatrix) {
  // Sample a long trajectory from a known chain; the MLE fit converges.
  auto truth = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.92);
  std::vector<Processor> procs(1);
  procs[0].speed = 1;
  procs[0].max_tasks = 1;
  procs[0].availability = truth;
  Platform plat(std::move(procs), 1);

  MarkovAvailability source(plat, 21);
  auto timeline = record(source, 200000);
  auto fit = fit_transition_matrix(timeline, 0);
  for (auto from : markov::kAllStates) {
    for (auto to : markov::kAllStates) {
      EXPECT_NEAR(fit.prob(from, to), truth.prob(from, to), 0.02);
    }
  }
}

TEST(TraceIo, FitHandlesUnseenState) {
  using markov::State;
  StateTimeline t{{State::Up}, {State::Up}, {State::Up}};
  auto fit = fit_transition_matrix(t, 0);
  EXPECT_DOUBLE_EQ(fit.prob(State::Up, State::Up), 1.0);
  EXPECT_DOUBLE_EQ(fit.prob(State::Down, State::Down), 1.0);  // inert row
}

// -------------------------------------------------------- semi-markov ----

TEST(SemiMarkov, HoldsStatesForSampledSojourns) {
  SemiMarkovParams params;
  params.scale = {50.0, 20.0, 20.0};
  SemiMarkovAvailability source({params}, 5);
  // Over a long window we should see all three states and multi-slot runs.
  int transitions = 0;
  markov::State prev = source.state(0);
  bool seen[3] = {false, false, false};
  for (int t = 0; t < 5000; ++t) {
    source.advance();
    const auto s = source.state(0);
    seen[static_cast<int>(s)] = true;
    if (s != prev) ++transitions;
    prev = s;
  }
  EXPECT_TRUE(seen[0]);
  EXPECT_TRUE(seen[1]);
  EXPECT_TRUE(seen[2]);
  EXPECT_GT(transitions, 10);
  // Far fewer transitions than slots: sojourns really hold.
  EXPECT_LT(transitions, 2500);
}

TEST(SemiMarkov, DeterministicPerSeed) {
  SemiMarkovParams params;
  SemiMarkovAvailability a({params}, 11), b({params}, 11);
  for (int t = 0; t < 500; ++t) {
    EXPECT_EQ(a.state(0), b.state(0));
    a.advance();
    b.advance();
  }
}

TEST(SemiMarkov, RecordShapes) {
  SemiMarkovParams params;
  SemiMarkovAvailability source({params, params}, 13);
  auto timeline = record(source, 100);
  ASSERT_EQ(timeline.size(), 100u);
  EXPECT_EQ(timeline.front().size(), 2u);
}

}  // namespace
}  // namespace tcgrid::platform
