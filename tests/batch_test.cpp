// Lockstep trial-batch engine (DESIGN.md §13) bit-identity suite:
//
//   * sim::TrialBatch reproduces B sequential Engine runs exactly — results
//     AND per-slot traces — for every heuristic (paper 17 + extensions)
//     across all four availability families, including a ragged batch
//     (batch wider than some lanes live) and width 1;
//   * api::Session::run with options.trial_batch > 1 streams row-for-row
//     identical sweeps to the sequential executor — ragged trial ranges
//     (trials % B != 0), B == 1 degenerate, B > trials clamp — preserving
//     the contiguous unit row-ordering guarantee and the (scenario, trial)
//     progress/RunStats accounting;
//   * per-lane budget overflow falls back to live generation without
//     disturbing the other lanes' artifacts (results still identical);
//   * cooperative cancellation abandons in-flight batches at a round
//     boundary — sinks never see a torn range, RunStats reports the
//     partial unit count.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "expt/runner.hpp"
#include "platform/realization.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "scen/scen.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"
#include "sim/trial_batch.hpp"
#include "util/rng.hpp"

namespace tcgrid {
namespace {

using platform::Realization;

platform::Scenario test_scenario(std::uint64_t seed = 77, int m = 5, long wmin = 2) {
  platform::ScenarioParams params;
  params.m = m;
  params.ncom = 5;
  params.wmin = wmin;
  params.seed = seed;
  return platform::make_scenario(params);
}

/// The four availability families: the three registered laws plus a scripted
/// trace registered on first use (same pattern as realization_test.cpp).
const std::vector<std::string>& families() {
  static const std::vector<std::string> names = [] {
    const auto scenario = test_scenario(99);
    auto src = scen::availability_family("markov")->make_source(
        scenario.platform, 4242, platform::InitialStates::Stationary);
    auto timeline =
        std::make_shared<platform::StateTimeline>(platform::record(*src, 400));
    scen::register_availability_family(scen::make_trace_family(
        "batch-trace", scen::TraceFamilyParams{.timeline = std::move(timeline)}));
    return std::vector<std::string>{"markov", "weibull", "daynight", "batch-trace"};
  }();
  return names;
}

/// Every heuristic make_scheduler accepts: the paper's 17 + the extensions.
std::vector<std::string> every_heuristic() {
  std::vector<std::string> names = sched::all_heuristic_names();
  const auto& ext = sched::extension_heuristic_names();
  names.insert(names.end(), ext.begin(), ext.end());
  return names;
}

void expect_identical_results(const sim::SimulationResult& a,
                              const sim::SimulationResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.total_reconfigurations, b.total_reconfigurations);
  EXPECT_EQ(a.idle_slots, b.idle_slots);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const auto& x = a.iterations[i];
    const auto& y = b.iterations[i];
    EXPECT_EQ(x.start_slot, y.start_slot) << "iteration " << i;
    EXPECT_EQ(x.end_slot, y.end_slot) << "iteration " << i;
    EXPECT_EQ(x.comm_slots, y.comm_slots) << "iteration " << i;
    EXPECT_EQ(x.stalled_slots, y.stalled_slots) << "iteration " << i;
    EXPECT_EQ(x.compute_slots, y.compute_slots) << "iteration " << i;
    EXPECT_EQ(x.suspended_slots, y.suspended_slots) << "iteration " << i;
    EXPECT_EQ(x.restarts, y.restarts) << "iteration " << i;
    EXPECT_EQ(x.reconfigurations, y.reconfigurations) << "iteration " << i;
  }
}

void expect_identical_traces(const sim::ActivityTrace& a, const sim::ActivityTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size());
    for (std::size_t q = 0; q < a[t].size(); ++q) {
      ASSERT_TRUE(a[t][q].state == b[t][q].state && a[t][q].action == b[t][q].action)
          << "slot " << t << " proc " << q;
    }
  }
}

// ------------------------------------------------------- TrialBatch direct ----

/// One (scenario, heuristic) cell, B trials: the lockstep batch against B
/// sequential replay engines over identically-seeded realizations. Traces
/// on, so the comparison covers the per-slot action stream, not just the
/// aggregate counters.
void check_cell(const std::string& family, const std::string& heuristic, int b,
                long slot_cap = 100'000) {
  const auto scenario = test_scenario();
  const sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);
  const auto& fam = *scen::availability_family(family);

  sim::EngineOptions eopts;
  eopts.slot_cap = slot_cap;
  eopts.record_trace = true;

  auto make_realization = [&](int trial) {
    return std::make_unique<Realization>(fam.make_source(
        scenario.platform, expt::trial_seed(scenario, trial),
        platform::InitialStates::Stationary));
  };
  auto make_sched = [&](int trial) {
    return sched::make_scheduler(
        heuristic, estimator,
        util::derive_seed(scenario.params.seed,
                          2000 + static_cast<std::uint64_t>(trial)));
  };

  // Sequential reference: one replay engine per trial, each over its own
  // realization (replay ≡ live is realization_test's theorem; batched ≡
  // replay is this suite's).
  std::vector<sim::SimulationResult> want(static_cast<std::size_t>(b));
  std::vector<sim::ActivityTrace> want_traces(static_cast<std::size_t>(b));
  for (int t = 0; t < b; ++t) {
    auto realization = make_realization(t);
    auto scheduler = make_sched(t);
    sim::Engine engine(scenario.platform, scenario.app, *realization, *scheduler,
                       eopts);
    want[static_cast<std::size_t>(t)] = engine.run();
    want_traces[static_cast<std::size_t>(t)] = engine.trace();
  }

  std::vector<std::unique_ptr<Realization>> reals;
  std::vector<std::unique_ptr<sim::Scheduler>> scheds;
  std::vector<sim::TrialBatch::Lane> lanes;
  for (int t = 0; t < b; ++t) {
    reals.push_back(make_realization(t));
    scheds.push_back(make_sched(t));
    lanes.push_back({reals.back().get(), scheds.back().get()});
  }
  sim::TrialBatch batch(scenario.platform, scenario.app, std::move(lanes), eopts);
  const auto outcome = batch.run();

  EXPECT_FALSE(outcome.cancelled);
  for (int t = 0; t < b; ++t) {
    SCOPED_TRACE("trial " + std::to_string(t));
    const auto lane = static_cast<std::size_t>(t);
    ASSERT_TRUE(outcome.completed[lane]);
    EXPECT_FALSE(outcome.budget_exceeded[lane]);
    expect_identical_results(outcome.results[lane], want[lane]);
    expect_identical_traces(batch.engine(t).trace(), want_traces[lane]);
  }
}

TEST(TrialBatch, BitIdenticalAcrossEveryHeuristicAndFamily) {
  for (const auto& family : families()) {
    for (const auto& heuristic : every_heuristic()) {
      SCOPED_TRACE(family + " / " + heuristic);
      check_cell(family, heuristic, 3);
    }
  }
}

TEST(TrialBatch, WidthOneDegenerate) {
  check_cell("markov", "IE", 1);
  check_cell("markov", "RANDOM", 1);
}

TEST(TrialBatch, BatchTelemetryCountsRoundsAndWidths) {
  const auto scenario = test_scenario();
  const sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);
  const auto& fam = *scen::availability_family("markov");
  constexpr int kB = 4;
  std::vector<std::unique_ptr<Realization>> reals;
  std::vector<std::unique_ptr<sim::Scheduler>> scheds;
  std::vector<sim::TrialBatch::Lane> lanes;
  for (int t = 0; t < kB; ++t) {
    reals.push_back(std::make_unique<Realization>(fam.make_source(
        scenario.platform, expt::trial_seed(scenario, t),
        platform::InitialStates::Stationary)));
    scheds.push_back(sched::make_scheduler("IE", estimator));
    lanes.push_back({reals.back().get(), scheds.back().get()});
  }
  sim::TrialBatch batch(scenario.platform, scenario.app, std::move(lanes), {});
  const auto outcome = batch.run();
  for (int t = 0; t < kB; ++t) {
    EXPECT_TRUE(outcome.completed[static_cast<std::size_t>(t)]);
  }
  const sim::RunTelemetry& telem = batch.batch_telemetry();
  EXPECT_GT(telem.batch_rounds, 0);
  // The width histogram samples once per round, and the first round sees
  // every lane live.
  EXPECT_EQ(telem.batch_width.count(),
            static_cast<std::uint64_t>(telem.batch_rounds));
  EXPECT_GE(telem.batch_width.sum(), static_cast<std::uint64_t>(telem.batch_rounds));
}

TEST(TrialBatch, StopFlagCancelsAtRoundBoundary) {
  const auto scenario = test_scenario();
  const sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);
  const auto& fam = *scen::availability_family("markov");
  auto realization = std::make_unique<Realization>(fam.make_source(
      scenario.platform, expt::trial_seed(scenario, 0),
      platform::InitialStates::Stationary));
  auto scheduler = sched::make_scheduler("IE", estimator);
  sim::TrialBatch batch(scenario.platform, scenario.app,
                        {{realization.get(), scheduler.get()}}, {});
  const std::atomic<bool> stop{true};  // raised before the first round
  const auto outcome = batch.run(&stop);
  EXPECT_TRUE(outcome.cancelled);
  EXPECT_FALSE(outcome.completed[0]);
  EXPECT_FALSE(outcome.budget_exceeded[0]);
}

// ------------------------------------------------------------ Session sweep ----

api::ExperimentSpec mini_spec() {
  api::ExperimentSpec spec;
  spec.grid.ms = {5};
  spec.grid.ncoms = {5};
  spec.grid.wmins = {1, 2};
  spec.grid.scenarios_per_cell = 2;
  spec.trials = 5;  // deliberately not a multiple of the batch widths below
  spec.grid.iterations = 3;
  spec.heuristics = {"RANDOM", "IE", "Y-IE"};
  spec.options.slot_cap = 100'000;
  spec.options.threads = 2;
  return spec;
}

/// Index-addressed collector of FULL simulation results (sweep bit-identity
/// must compare every counter, not an aggregate).
class CollectSink final : public api::ResultSink {
 public:
  void begin(const api::ExperimentSpec& spec,
             const std::vector<platform::ScenarioParams>& scenarios,
             const std::vector<std::string>& heuristics) override {
    (void)spec;
    results_.assign(heuristics.size(),
                    std::vector<std::vector<sim::SimulationResult>>(scenarios.size()));
  }
  void consume(const api::ResultRow& row) override {
    auto& per_scenario = results_[row.heuristic][row.scenario];
    if (per_scenario.size() <= static_cast<std::size_t>(row.trial)) {
      per_scenario.resize(static_cast<std::size_t>(row.trial) + 1);
    }
    per_scenario[static_cast<std::size_t>(row.trial)] = *row.result;
  }
  [[nodiscard]] const std::vector<std::vector<std::vector<sim::SimulationResult>>>&
  results() const {
    return results_;
  }

 private:
  std::vector<std::vector<std::vector<sim::SimulationResult>>> results_;
};

struct SweepOutcome {
  std::vector<std::vector<std::vector<sim::SimulationResult>>> results;
  api::Session::RunStats stats;
};

SweepOutcome sweep(int trial_batch, std::size_t budget = 64u << 20) {
  api::ExperimentSpec spec = mini_spec();
  spec.options.trial_batch = trial_batch;
  spec.options.realization_budget = budget;
  api::Session session(spec.options);
  CollectSink sink;
  const auto stats = session.run(spec, {&sink});
  return {sink.results(), stats};
}

void expect_identical_sweeps(const SweepOutcome& a, const SweepOutcome& b) {
  EXPECT_EQ(a.stats.rows, b.stats.rows);
  EXPECT_EQ(a.stats.units_total, b.stats.units_total);
  EXPECT_EQ(a.stats.units_done, b.stats.units_done);
  EXPECT_EQ(a.stats.cancelled, b.stats.cancelled);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t h = 0; h < a.results.size(); ++h) {
    ASSERT_EQ(a.results[h].size(), b.results[h].size());
    for (std::size_t sc = 0; sc < a.results[h].size(); ++sc) {
      ASSERT_EQ(a.results[h][sc].size(), b.results[h][sc].size());
      for (std::size_t t = 0; t < a.results[h][sc].size(); ++t) {
        SCOPED_TRACE("h" + std::to_string(h) + " sc" + std::to_string(sc) + " t" +
                     std::to_string(t));
        expect_identical_results(a.results[h][sc][t], b.results[h][sc][t]);
      }
    }
  }
}

TEST(BatchedSweep, IdenticalToSequentialIncludingRaggedTail) {
  const auto sequential = sweep(1);
  EXPECT_EQ(sequential.stats.rows, 4u * 5u * 3u);
  // 5 trials: batch widths cutting ragged (2, 3), even (5) and clamped (8).
  for (const int b : {2, 3, 5, 8}) {
    SCOPED_TRACE("trial_batch " + std::to_string(b));
    expect_identical_sweeps(sweep(b), sequential);
  }
}

TEST(BatchedSweep, PerLaneBudgetFallbackPreservesResults) {
  const auto sequential = sweep(1);
  // 4 KiB: every lane's realization overflows mid-run and falls back to
  // live generation, trial by trial.
  expect_identical_sweeps(sweep(3, 4096), sequential);
  // Budget 0: sharing disabled, every lane live from the start.
  expect_identical_sweeps(sweep(3, 0), sequential);
}

/// Checks the documented row-ordering guarantee under batching: each
/// (scenario, trial) unit's rows still arrive contiguously in spec
/// heuristic order (a range emits as B back-to-back units).
class GroupingSink final : public api::ResultSink {
 public:
  void begin(const api::ExperimentSpec& spec,
             const std::vector<platform::ScenarioParams>&,
             const std::vector<std::string>& heuristics) override {
    (void)spec;
    h_count_ = heuristics.size();
  }
  void consume(const api::ResultRow& row) override {
    const std::size_t in_group = seen_ % h_count_;
    if (row.heuristic != in_group) ordered_ = false;
    if (in_group == 0) {
      scenario_ = row.scenario;
      trial_ = row.trial;
    } else if (row.scenario != scenario_ || row.trial != trial_) {
      contiguous_ = false;
    }
    ++seen_;
  }
  [[nodiscard]] bool ordered() const { return ordered_; }
  [[nodiscard]] bool contiguous() const { return contiguous_; }
  [[nodiscard]] std::size_t seen() const { return seen_; }

 private:
  std::size_t h_count_ = 1;
  std::size_t seen_ = 0;
  std::size_t scenario_ = 0;
  int trial_ = 0;
  bool ordered_ = true;
  bool contiguous_ = true;
};

TEST(BatchedSweep, RowsStillArriveUnitContiguousInHeuristicOrder) {
  api::ExperimentSpec spec = mini_spec();
  spec.options.trial_batch = 2;
  api::Session session(spec.options);
  GroupingSink sink;
  const auto stats = session.run(spec, {&sink});
  EXPECT_TRUE(sink.ordered());
  EXPECT_TRUE(sink.contiguous());
  EXPECT_EQ(sink.seen(), stats.rows);
  EXPECT_EQ(stats.rows, 4u * 5u * 3u);
}

TEST(BatchedSweep, ProgressCountsSequentialUnitsAndBatchTicks) {
  api::ExperimentSpec spec = mini_spec();
  spec.options.trial_batch = 2;
  api::Session session(spec.options);
  api::AggregateSink sink;
  std::size_t calls = 0, last = 0, total = 0;
  session.run(spec, {&sink}, [&](std::size_t done, std::size_t n) {
    ++calls;
    last = std::max(last, done);
    total = n;
  });
  EXPECT_EQ(total, 4u * 5u);  // (scenario, trial) units, as sequential
  EXPECT_EQ(last, 4u * 5u);
  // One tick per (scenario, trial-range) item: 5 trials at width 2 = 3
  // ranges per scenario.
  EXPECT_EQ(calls, 4u * 3u);
}

TEST(BatchedSweep, MidSweepCancellationReportsPartialUnits) {
  api::ExperimentSpec spec = mini_spec();
  spec.options.trial_batch = 2;
  spec.options.threads = 1;  // deterministic: items run in order
  api::Session session(spec.options);
  api::AggregateSink sink;
  std::atomic<bool> stop{false};
  const auto stats = session.run(
      spec, {&sink},
      [&](std::size_t, std::size_t) { stop.store(true); },  // after first range
      &stop);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(stats.units_total, 4u * 5u);
  // Exactly the first range's trials completed (the in-flight item finished
  // and streamed; everything else was skipped at the item boundary).
  EXPECT_EQ(stats.units_done, 2u);
  EXPECT_EQ(stats.rows, 2u * 3u);
}

}  // namespace
}  // namespace tcgrid
