// Unit tests for src/util: rng, cli, table, csv, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace tcgrid {
namespace {

// ---------------------------------------------------------------- rng ----

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, SpawnStreamsAreDecorrelatedAndDeterministic) {
  util::Rng parent(7);
  util::Rng c1 = parent.spawn(1);
  util::Rng c2 = parent.spawn(2);
  util::Rng c1_again = util::Rng(7).spawn(1);
  EXPECT_DOUBLE_EQ(c1.uniform01(), c1_again.uniform01());
  // distinct streams: first values should not coincide
  EXPECT_NE(util::Rng(7).spawn(1).uniform01(), util::Rng(7).spawn(2).uniform01());
  (void)c2;
}

TEST(Rng, UniformRangeRespected) {
  util::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(0.90, 0.99);
    EXPECT_GE(v, 0.90);
    EXPECT_LT(v, 0.99);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  util::Rng rng(4);
  std::set<long> seen;
  for (int i = 0; i < 2000; ++i) {
    const long v = rng.uniform_int(2, 20);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 20);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 19u);  // all values hit over 2000 draws
}

TEST(Rng, IndexCoversRange) {
  util::Rng rng(5);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(7));
  EXPECT_EQ(seen.size(), 7u);
  for (std::size_t v : seen) EXPECT_LT(v, 7u);
}

TEST(Rng, DeriveSeedIsInjectiveish) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 100; ++s) {
    for (std::uint64_t st = 0; st < 100; ++st) {
      seeds.insert(util::derive_seed(s, st));
    }
  }
  EXPECT_EQ(seeds.size(), 10000u);  // no collisions in a small grid
}

TEST(Rng, DeriveSeed2CellsNeverCollide) {
  // The scenario grid derives seeds with derive_seed2(seed, cell, s); unlike
  // the old additive scheme (cell * 1000 + s), no (cell, s) pair may alias a
  // neighbouring cell's stream even when s exceeds 1000.
  std::set<std::uint64_t> seen;
  for (std::uint64_t cell = 0; cell < 40; ++cell) {
    for (std::uint64_t s = 0; s < 1500; ++s) {
      EXPECT_TRUE(seen.insert(util::derive_seed2(42, cell, s)).second)
          << "collision at cell=" << cell << " s=" << s;
    }
  }
  // The exact aliasing pair of the old scheme: (cell, 1000) vs (cell+1, 0).
  EXPECT_NE(util::derive_seed2(42, 0, 1000), util::derive_seed2(42, 1, 0));
}

TEST(Rng, Uniform01MatchesDocumentedBitMapping) {
  // uniform01 is pinned to u01_from_bits(engine draw): one draw per call,
  // portable across standard libraries.
  util::Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = a.uniform01();
    EXPECT_EQ(u, util::u01_from_bits(b.engine()()));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01CutIsExactForAllCutpoints) {
  // The fast-path contract: u01_from_bits(x) < c  <=>  min(x, kU01Top) <
  // uniform01_cut(c), for every draw x — including the degenerate cut points
  // c = 0 (never) and c = 1 (always) and values straddling the rounding
  // boundary near 2^64.
  std::vector<double> cuts = {0.0,  1e-300, 0x1p-64, 0.25, 0.5,
                              0.95, 1.0 - 0x1p-53,   1.0,  1.0 + 1e-9};
  util::Rng rng(3);
  for (int i = 0; i < 200; ++i) cuts.push_back(rng.uniform01());

  std::vector<std::uint64_t> draws = {0,       1,       2,       ~0ULL,
                                      ~0ULL - 1, ~0ULL - 1024, ~0ULL - 2048};
  for (int i = 0; i < 2000; ++i) draws.push_back(rng.engine()());

  for (double c : cuts) {
    const std::uint64_t cut = util::uniform01_cut(c);
    for (std::uint64_t x : draws) {
      const bool reference = util::u01_from_bits(x) < c;
      const bool fast = std::min(x, util::kU01Top) < cut;
      EXPECT_EQ(reference, fast) << "c=" << c << " x=" << x;
    }
  }
}

TEST(Rng, WeibullPositive) {
  util::Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.weibull(0.7, 10.0), 0.0);
}

// ---------------------------------------------------------------- cli ----

TEST(Cli, ParsesSeparateValueForm) {
  const char* argv[] = {"prog", "--m", "10", "--name", "Y-IE"};
  util::Cli cli(5, argv);
  EXPECT_EQ(cli.get_long("m", 0), 10);
  EXPECT_EQ(cli.get("name", ""), "Y-IE");
}

TEST(Cli, ParsesEqualsForm) {
  const char* argv[] = {"prog", "--wmin=3", "--eps=0.5"};
  util::Cli cli(3, argv);
  EXPECT_EQ(cli.get_long("wmin", 0), 3);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0.0), 0.5);
}

TEST(Cli, BareFlagIsTrue) {
  const char* argv[] = {"prog", "--full"};
  util::Cli cli(2, argv);
  EXPECT_TRUE(cli.get_bool("full"));
  EXPECT_FALSE(cli.get_bool("other"));
}

TEST(Cli, FlagFollowedByFlagHasEmptyValue) {
  const char* argv[] = {"prog", "--a", "--b", "1"};
  util::Cli cli(4, argv);
  EXPECT_TRUE(cli.has("a"));
  EXPECT_EQ(cli.value("a").value(), "");
  EXPECT_EQ(cli.get_long("b", 0), 1);
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "input.txt", "--k", "2", "more"};
  util::Cli cli(5, argv);
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.txt");
  EXPECT_EQ(cli.positional()[1], "more");
}

TEST(Cli, FallbacksUsedWhenAbsent) {
  const char* argv[] = {"prog"};
  util::Cli cli(1, argv);
  EXPECT_EQ(cli.get("x", "def"), "def");
  EXPECT_EQ(cli.get_long("x", 9), 9);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
}

TEST(Cli, BoolValueForms) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=off"};
  util::Cli cli(5, argv);
  EXPECT_TRUE(cli.get_bool("a"));
  EXPECT_FALSE(cli.get_bool("b"));
  EXPECT_TRUE(cli.get_bool("c"));
  EXPECT_FALSE(cli.get_bool("d"));
}

// -------------------------------------------------------------- table ----

TEST(Table, AlignsAndRenders) {
  util::Table t({"name", "value"});
  t.add_row({"alpha", "1.00"});
  t.add_row({"b", "-23.50"});
  const std::string s = t.str();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-23.50"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(util::Table::num(1.23456), "1.23");
  EXPECT_EQ(util::Table::num(-1.0, 1), "-1.0");
  EXPECT_EQ(util::Table::num(2.0, 0), "2");
}

// ---------------------------------------------------------------- csv ----

TEST(Csv, WritesHeaderAndRows) {
  util::CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  EXPECT_EQ(csv.str(), "a,b\n1,2\n");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(util::CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(util::CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(util::CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, ArityMismatchThrows) {
  util::CsvWriter csv({"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), std::invalid_argument);
}

// -------------------------------------------------------- thread pool ----

TEST(ThreadPool, RunsAllTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelFor, CoversAllIndicesOnce) {
  std::vector<std::atomic<int>> hits(257);
  util::parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SequentialWhenOneThread) {
  std::vector<int> order;
  util::parallel_for(10, [&](std::size_t i) { order.push_back(static_cast<int>(i)); }, 1);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelFor, HandlesZeroItems) {
  bool ran = false;
  util::parallel_for(0, [&](std::size_t) { ran = true; }, 4);
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace tcgrid
