// Tests of the ExperimentSpec JSON round trip (api/spec_json.hpp): identity
// of the canonical form, exactness of full-range uint64 seeds, survival of
// hostile strings, and field-naming errors for every rejection path.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "api/spec_json.hpp"
#include "util/json.hpp"

namespace api = tcgrid::api;
namespace json = tcgrid::util::json;

namespace {

/// Parse must throw std::invalid_argument whose message contains `needle`
/// (the dotted field path or the diagnostic text).
void expect_field_error(const std::string& text, const std::string& needle) {
  try {
    (void)api::spec_from_json_string(text);
    FAIL() << "expected std::invalid_argument containing '" << needle << "' for "
           << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error was: " << e.what();
  }
}

/// A spec exercising every field with non-default values.
api::ExperimentSpec full_spec() {
  api::ExperimentSpec spec;
  spec.grid.ms = {3, 7};
  spec.grid.ncoms = {4};
  spec.grid.wmins = {2, 9};
  spec.grid.scenarios_per_cell = 3;
  spec.grid.p = 12;
  spec.grid.iterations = 5;
  spec.scenario_space.availability = "markov";
  spec.scenario_space.platform = "paper";
  tcgrid::platform::ScenarioParams s;
  s.m = 4;
  s.ncom = 6;
  s.wmin = 3;
  s.p = 10;
  s.iterations = 7;
  s.seed = 0x9E3779B97F4A7C15ull;  // > 2^63: dies if routed through double
  spec.explicit_scenarios = {s};
  spec.heuristics = {"MCT", "MaxMinStar"};
  spec.trials = 4;
  spec.options.slot_cap = 123456;
  spec.options.comm_order = tcgrid::sim::CommOrder::MostFirst;
  spec.options.record_trace = true;
  spec.options.avail_block = 17;
  spec.options.fast_forward = false;
  spec.options.trial_batch = 8;
  spec.options.realization_budget = (1ull << 33) + 5;  // > 32 bits
  spec.options.eps = 1e-4;
  spec.options.shared_chain_stats = false;
  spec.options.init = tcgrid::platform::InitialStates::AllUp;
  spec.options.threads = 3;
  spec.options.seed = std::numeric_limits<std::uint64_t>::max();
  return spec;
}

TEST(SpecJson, CanonicalFormIsAFixedPoint) {
  for (const api::ExperimentSpec& spec :
       {api::ExperimentSpec{}, api::ExperimentSpec::reduced(5, 200'000), full_spec()}) {
    const std::string once = api::spec_to_json_string(spec);
    const std::string twice = api::spec_to_json_string(api::spec_from_json_string(once));
    EXPECT_EQ(once, twice);
  }
}

TEST(SpecJson, EveryFieldSurvivesTheRoundTrip) {
  const api::ExperimentSpec spec = full_spec();
  const api::ExperimentSpec back =
      api::spec_from_json_string(api::spec_to_json_string(spec));

  EXPECT_EQ(back.grid.ms, spec.grid.ms);
  EXPECT_EQ(back.grid.ncoms, spec.grid.ncoms);
  EXPECT_EQ(back.grid.wmins, spec.grid.wmins);
  EXPECT_EQ(back.grid.scenarios_per_cell, spec.grid.scenarios_per_cell);
  EXPECT_EQ(back.grid.p, spec.grid.p);
  EXPECT_EQ(back.grid.iterations, spec.grid.iterations);
  EXPECT_EQ(back.scenario_space.availability, spec.scenario_space.availability);
  EXPECT_EQ(back.scenario_space.platform, spec.scenario_space.platform);
  ASSERT_EQ(back.explicit_scenarios.size(), 1u);
  EXPECT_EQ(back.explicit_scenarios[0].m, 4);
  EXPECT_EQ(back.explicit_scenarios[0].ncom, 6);
  EXPECT_EQ(back.explicit_scenarios[0].wmin, 3);
  EXPECT_EQ(back.explicit_scenarios[0].p, 10);
  EXPECT_EQ(back.explicit_scenarios[0].iterations, 7);
  EXPECT_EQ(back.explicit_scenarios[0].seed, 0x9E3779B97F4A7C15ull);
  EXPECT_EQ(back.heuristics, spec.heuristics);
  EXPECT_EQ(back.trials, spec.trials);
  EXPECT_EQ(back.options.slot_cap, spec.options.slot_cap);
  EXPECT_EQ(back.options.comm_order, spec.options.comm_order);
  EXPECT_EQ(back.options.record_trace, spec.options.record_trace);
  EXPECT_EQ(back.options.avail_block, spec.options.avail_block);
  EXPECT_EQ(back.options.fast_forward, spec.options.fast_forward);
  EXPECT_EQ(back.options.trial_batch, spec.options.trial_batch);
  EXPECT_EQ(back.options.realization_budget, spec.options.realization_budget);
  EXPECT_EQ(back.options.eps, spec.options.eps);
  EXPECT_EQ(back.options.shared_chain_stats, spec.options.shared_chain_stats);
  EXPECT_EQ(back.options.init, spec.options.init);
  EXPECT_EQ(back.options.threads, spec.options.threads);
  EXPECT_EQ(back.options.seed, spec.options.seed);
}

TEST(SpecJson, FullRangeSeedsAreBitExact) {
  // 2^53 is where doubles start dropping integer bits; seeds beyond it must
  // still round-trip exactly, including UINT64_MAX.
  const std::vector<std::uint64_t> seeds = {
      (std::uint64_t{1} << 53) + 1, (std::uint64_t{1} << 63) + 12345,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t seed : seeds) {
    api::ExperimentSpec spec;
    spec.options.seed = seed;
    const api::ExperimentSpec back =
        api::spec_from_json_string(api::spec_to_json_string(spec));
    EXPECT_EQ(back.options.seed, seed);
  }
}

TEST(SpecJson, HostileStringsSurvive) {
  // Names never sanitized away: quotes, backslashes, control characters,
  // multi-byte UTF-8 and a JSON-looking payload.
  const std::vector<std::string> hostile = {
      "quote\"back\\slash",
      "newline\ntab\tbell\x07",
      "\x01\x02\x1f",
      "π≈3, 漢字, emoji \xF0\x9F\x98\x80",
      "{\"op\":\"submit\"}",
  };
  api::ExperimentSpec spec;
  spec.heuristics = hostile;
  spec.scenario_space.availability = hostile[0];
  spec.scenario_space.platform = hostile[3];
  const api::ExperimentSpec back =
      api::spec_from_json_string(api::spec_to_json_string(spec));
  EXPECT_EQ(back.heuristics, hostile);
  EXPECT_EQ(back.scenario_space.availability, hostile[0]);
  EXPECT_EQ(back.scenario_space.platform, hostile[3]);
}

TEST(SpecJson, EmptyObjectIsTheDefaultSpec) {
  const api::ExperimentSpec def;
  EXPECT_EQ(api::spec_to_json_string(api::spec_from_json_string("{}")),
            api::spec_to_json_string(def));
}

TEST(SpecJson, ErrorsNameTheOffendingField) {
  expect_field_error(R"({"bogus": 1})", "spec.bogus");
  expect_field_error(R"({"bogus": 1})", "unknown field");
  expect_field_error(R"({"options": {"slot_capp": 1}})", "spec.options.slot_capp");
  expect_field_error(R"({"trials": "ten"})", "spec.trials");
  expect_field_error(R"({"trials": "ten"})", "expected an integer");
  expect_field_error(R"({"grid": {"ms": [1, "two"]}})", "spec.grid.ms[1]");
  expect_field_error(R"({"explicit_scenarios": [{"m": 1}, {"seed": -4}]})",
                     "spec.explicit_scenarios[1].seed");
  expect_field_error(R"({"options": {"comm_order": "alphabetical"}})",
                     "spec.options.comm_order");
  expect_field_error(R"({"options": {"comm_order": "alphabetical"}})", "fewest_first");
  expect_field_error(R"({"options": {"init": "warm"}})", "stationary | all_up");
  expect_field_error(R"({"options": {"eps": true}})", "expected a number");
  expect_field_error(R"({"options": 3})", "spec.options");
  expect_field_error(R"({"options": 3})", "expected a JSON object");
  expect_field_error(R"({"heuristics": "MCT"})", "expected an array");
  expect_field_error(R"({"trials": 99999999999999999999})", "spec.trials");
}

TEST(SpecJson, IntegerRangeIsEnforced) {
  // An int32 field must reject values that only fit in 64 bits.
  expect_field_error(R"({"trials": 4294967296})", "outside");
  // A seed is unsigned: negatives are rejected, not wrapped.
  expect_field_error(R"({"options": {"seed": -1}})", "spec.options.seed");
  // A lockstep batch has at least one lane: 0 and negatives fail at the
  // wire with the dotted path, before a spec object exists.
  expect_field_error(R"({"options": {"trial_batch": 0}})",
                     "spec.options.trial_batch");
  expect_field_error(R"({"options": {"trial_batch": -3}})", "outside");
}

TEST(SpecJson, SyntaxErrorsCarryTheOffset) {
  try {
    (void)api::spec_from_json_string(R"({"trials": )");
    FAIL() << "expected a parse error";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << "error was: " << e.what();
  }
  EXPECT_THROW((void)api::spec_from_json_string(R"({"trials": 1} trailing)"),
               std::invalid_argument);
  EXPECT_THROW((void)api::spec_from_json_string(R"({"trials": 1, "trials": 2})"),
               std::invalid_argument);
}

TEST(SpecJson, ValidateStillAppliesAfterParse) {
  // spec_from_json is structural; semantic checks stay in validate().
  api::ExperimentSpec spec =
      api::spec_from_json_string(R"({"heuristics": ["NoSuchHeuristic"]})");
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

}  // namespace
