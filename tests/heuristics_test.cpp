// Tests of the 17 heuristics (§VI): registry, incremental builders' choices
// (speed vs reliability trade-offs), the RANDOM baseline, passivity, and
// proactive switching / stability / caching equivalence.
#include <gtest/gtest.h>

#include <set>

#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "sched/heuristics.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace tcgrid::sched {
namespace {

using markov::State;

/// Owns everything a SchedulerView points into, for driving builders and
/// schedulers without an engine.
struct ViewFixture {
  platform::Platform plat;
  model::Application app;
  std::vector<State> states;
  std::vector<model::Holdings> holdings;
  std::vector<long> comm_rem;

  ViewFixture(platform::Platform p, model::Application a)
      : plat(std::move(p)),
        app(a),
        states(static_cast<std::size_t>(plat.size()), State::Up),
        holdings(static_cast<std::size_t>(plat.size())),
        comm_rem(static_cast<std::size_t>(plat.size()), 0) {}

  [[nodiscard]] sim::SchedulerView view(const model::Configuration* config = nullptr,
                                        long elapsed = 0, long w_total = 0,
                                        long w_done = 0) {
    sim::SchedulerView v;
    v.slot = elapsed;
    v.platform = &plat;
    v.app = &app;
    v.states = states;
    v.holdings = holdings;
    v.config = config;
    v.iteration_elapsed = elapsed;
    v.compute_total = w_total;
    v.compute_done = w_done;
    v.comm_remaining = comm_rem;
    return v;
  }
};

platform::Platform heterogeneous_platform() {
  // P0: fast & reliable; P1: slow & reliable; P2: fast & flaky; P3: slow & flaky.
  std::vector<platform::Processor> procs(4);
  procs[0].speed = 2;
  procs[1].speed = 10;
  procs[2].speed = 2;
  procs[3].speed = 10;
  for (auto& pr : procs) pr.max_tasks = 8;
  procs[0].availability = markov::TransitionMatrix::from_self_loops(0.99, 0.9, 0.9);
  procs[1].availability = markov::TransitionMatrix::from_self_loops(0.99, 0.9, 0.9);
  procs[2].availability = markov::TransitionMatrix::from_self_loops(0.70, 0.9, 0.9);
  procs[3].availability = markov::TransitionMatrix::from_self_loops(0.70, 0.9, 0.9);
  return platform::Platform(std::move(procs), 2);
}

model::Application small_app(int m, long t_prog = 4, long t_data = 1) {
  model::Application app;
  app.num_tasks = m;
  app.t_prog = t_prog;
  app.t_data = t_data;
  app.iterations = 10;
  return app;
}

// ------------------------------------------------------------ registry ----

TEST(Registry, SeventeenNames) {
  const auto& names = all_heuristic_names();
  EXPECT_EQ(names.size(), 17u);
  EXPECT_EQ(names.front(), "RANDOM");
  std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), 17u);
}

TEST(Registry, MakeSchedulerRoundTripsNames) {
  auto plat = heterogeneous_platform();
  auto app = small_app(3);
  Estimator est(plat, app, 1e-8);
  for (const auto& name : all_heuristic_names()) {
    auto s = make_scheduler(name, est, 1);
    EXPECT_EQ(s->name(), name);
    EXPECT_TRUE(is_heuristic_name(name));
  }
}

TEST(Registry, UnknownNameThrows) {
  auto plat = heterogeneous_platform();
  auto app = small_app(3);
  Estimator est(plat, app, 1e-8);
  EXPECT_THROW((void)make_scheduler("Z-IE", est), std::invalid_argument);
  EXPECT_THROW((void)make_scheduler("IEE", est), std::invalid_argument);
  EXPECT_THROW((void)make_scheduler("", est), std::invalid_argument);
  EXPECT_FALSE(is_heuristic_name("nope"));
}

TEST(Registry, TableIINamesAreValid) {
  EXPECT_EQ(tableii_heuristic_names().size(), 8u);
  for (const auto& n : tableii_heuristic_names()) EXPECT_TRUE(is_heuristic_name(n));
}

// -------------------------------------------------- incremental builder ----

TEST(IncrementalBuilder, MapsExactlyMTasks) {
  ViewFixture fx(heterogeneous_platform(), small_app(5));
  Estimator est(fx.plat, fx.app, 1e-8);
  for (Rule rule : {Rule::IP, Rule::IE, Rule::IY, Rule::IAY}) {
    IncrementalBuilder builder(rule, est);
    auto built = builder.build(fx.view());
    ASSERT_FALSE(built.config.empty()) << to_string(rule);
    EXPECT_EQ(built.config.total_tasks(), 5);
    EXPECT_GT(built.estimate.p_success, 0.0);
    EXPECT_GT(built.estimate.e_time, 0.0);
  }
}

TEST(IncrementalBuilder, IEPrefersFastReliableWorker) {
  ViewFixture fx(heterogeneous_platform(), small_app(1));
  Estimator est(fx.plat, fx.app, 1e-8);
  IncrementalBuilder ie(Rule::IE, est);
  auto built = ie.build(fx.view());
  ASSERT_EQ(built.config.size(), 1u);
  EXPECT_EQ(built.config.assignments()[0].proc, 0);  // fast & reliable
}

TEST(IncrementalBuilder, IPPrefersReliabilityOverSpeed) {
  // Make the reliable workers slow and the flaky ones fast; IP should still
  // enroll a reliable one, IE the fast flaky one (shorter expected time can
  // tolerate some risk — exact preference pinned by construction).
  std::vector<platform::Processor> procs(2);
  procs[0].speed = 20;  // slow, never fails
  procs[0].max_tasks = 4;
  procs[0].availability = markov::TransitionMatrix::from_self_loops(1.0, 0.9, 0.9);
  procs[1].speed = 1;  // fast, flaky
  procs[1].max_tasks = 4;
  procs[1].availability = markov::TransitionMatrix::from_self_loops(0.7, 0.9, 0.9);
  platform::Platform plat(std::move(procs), 2);
  ViewFixture fx(std::move(plat), small_app(1, /*t_prog=*/0, /*t_data=*/0));
  Estimator est(fx.plat, fx.app, 1e-8);

  auto ip = IncrementalBuilder(Rule::IP, est).build(fx.view());
  ASSERT_EQ(ip.config.size(), 1u);
  EXPECT_EQ(ip.config.assignments()[0].proc, 0);
  EXPECT_DOUBLE_EQ(ip.estimate.p_success, 1.0);

  auto ie = IncrementalBuilder(Rule::IE, est).build(fx.view());
  ASSERT_EQ(ie.config.size(), 1u);
  EXPECT_EQ(ie.config.assignments()[0].proc, 1);
}

TEST(IncrementalBuilder, RespectsMuBound) {
  std::vector<platform::Processor> procs(2);
  for (auto& pr : procs) {
    pr.speed = 1;
    pr.max_tasks = 2;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
  }
  platform::Platform plat(std::move(procs), 2);
  ViewFixture fx(std::move(plat), small_app(4));
  Estimator est(fx.plat, fx.app, 1e-8);
  auto built = IncrementalBuilder(Rule::IE, est).build(fx.view());
  ASSERT_FALSE(built.config.empty());
  for (const auto& a : built.config.assignments()) EXPECT_LE(a.tasks, 2);
  EXPECT_EQ(built.config.total_tasks(), 4);
}

TEST(IncrementalBuilder, EmptyWhenInsufficientCapacity) {
  std::vector<platform::Processor> procs(2);
  for (auto& pr : procs) {
    pr.speed = 1;
    pr.max_tasks = 1;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
  }
  platform::Platform plat(std::move(procs), 2);
  ViewFixture fx(std::move(plat), small_app(4));  // m = 4 > capacity 2
  Estimator est(fx.plat, fx.app, 1e-8);
  EXPECT_TRUE(IncrementalBuilder(Rule::IE, est).build(fx.view()).config.empty());
}

TEST(IncrementalBuilder, SkipsNonUpWorkers) {
  ViewFixture fx(heterogeneous_platform(), small_app(2));
  fx.states[0] = State::Down;
  fx.states[1] = State::Reclaimed;
  Estimator est(fx.plat, fx.app, 1e-8);
  auto built = IncrementalBuilder(Rule::IE, est).build(fx.view());
  ASSERT_FALSE(built.config.empty());
  for (const auto& a : built.config.assignments()) {
    EXPECT_TRUE(a.proc == 2 || a.proc == 3);
  }
}

TEST(IncrementalBuilder, CreditsHeldProgramAndData) {
  // P1 is slightly slower but already holds the program: with a large
  // program cost IE should prefer it over an otherwise identical worker.
  std::vector<platform::Processor> procs(2);
  for (auto& pr : procs) {
    pr.max_tasks = 4;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.97, 0.9, 0.9);
  }
  procs[0].speed = 3;
  procs[1].speed = 4;
  platform::Platform plat(std::move(procs), 2);
  ViewFixture fx(std::move(plat), small_app(1, /*t_prog=*/50, /*t_data=*/1));
  fx.holdings[1].has_program = true;
  Estimator est(fx.plat, fx.app, 1e-8);
  auto built = IncrementalBuilder(Rule::IE, est).build(fx.view());
  ASSERT_EQ(built.config.size(), 1u);
  EXPECT_EQ(built.config.assignments()[0].proc, 1);
}

TEST(IncrementalBuilder, EstimateFreshMatchesBuildEstimate) {
  ViewFixture fx(heterogeneous_platform(), small_app(3));
  Estimator est(fx.plat, fx.app, 1e-8);
  IncrementalBuilder builder(Rule::IAY, est);
  auto built = builder.build(fx.view());
  ASSERT_FALSE(built.config.empty());
  auto re = builder.estimate_fresh(fx.view(), built.config);
  EXPECT_NEAR(re.p_success, built.estimate.p_success, 1e-12);
  EXPECT_NEAR(re.e_time, built.estimate.e_time, 1e-12);
}

// -------------------------------------------------------------- RANDOM ----

TEST(Random, DeterministicPerSeed) {
  ViewFixture fx(heterogeneous_platform(), small_app(4));
  RandomScheduler a(9), b(9);
  auto ca = a.decide(fx.view());
  auto cb = b.decide(fx.view());
  ASSERT_TRUE(ca.has_value());
  ASSERT_TRUE(cb.has_value());
  EXPECT_TRUE(*ca == *cb);
}

TEST(Random, UsesOnlyUpWorkersAndAllTasks) {
  ViewFixture fx(heterogeneous_platform(), small_app(4));
  fx.states[2] = State::Down;
  RandomScheduler s(10);
  auto c = s.decide(fx.view());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->total_tasks(), 4);
  EXPECT_FALSE(c->enrolled(2));
}

TEST(Random, PassiveWhenConfigExists) {
  ViewFixture fx(heterogeneous_platform(), small_app(4));
  model::Configuration current({{0, 4}});
  RandomScheduler s(11);
  EXPECT_FALSE(s.decide(fx.view(&current)).has_value());
}

TEST(Random, VariesAcrossSeeds) {
  ViewFixture fx(heterogeneous_platform(), small_app(4));
  std::set<int> first_procs;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    RandomScheduler s(seed);
    auto c = s.decide(fx.view());
    ASSERT_TRUE(c.has_value());
    first_procs.insert(c->assignments()[0].proc);
  }
  EXPECT_GT(first_procs.size(), 1u);
}

TEST(Random, NulloptWhenNoCapacity) {
  ViewFixture fx(heterogeneous_platform(), small_app(4));
  for (auto& s : fx.states) s = State::Down;
  RandomScheduler s(12);
  EXPECT_FALSE(s.decide(fx.view()).has_value());
}

// ------------------------------------------------------------- passive ----

TEST(Passive, OnlyProposesWithoutConfig) {
  ViewFixture fx(heterogeneous_platform(), small_app(3));
  Estimator est(fx.plat, fx.app, 1e-8);
  PassiveScheduler s(Rule::IE, est);
  auto first = s.decide(fx.view());
  ASSERT_TRUE(first.has_value());
  model::Configuration current = *first;
  EXPECT_FALSE(s.decide(fx.view(&current, 5, 10, 2)).has_value());
}

// ----------------------------------------------------------- proactive ----

TEST(Proactive, StableOnStaticPlatform) {
  // Nothing changes -> after the initial install there is never a strictly
  // better candidate, so no reconfigurations (the §VI-B stability property).
  auto plat = heterogeneous_platform();
  auto app = small_app(3);
  Estimator est(plat, app, 1e-8);
  ProactiveScheduler sched(Criterion::Y, Rule::IE, est);
  platform::FixedAvailability avail(
      {std::vector<State>(static_cast<std::size_t>(plat.size()), State::Up)});
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.total_reconfigurations, 0);
}

TEST(Proactive, SwitchesWhenBetterWorkersAppear) {
  // Only the two flaky-slow workers are UP at first; the good workers come
  // up at slot 3. A proactive Y-IE should abandon the initial configuration.
  std::vector<platform::Processor> procs(4);
  procs[0].speed = 1;
  procs[1].speed = 1;
  procs[2].speed = 30;
  procs[3].speed = 30;
  for (auto& pr : procs) pr.max_tasks = 8;
  procs[0].availability = markov::TransitionMatrix::from_self_loops(0.99, 0.99, 0.9);
  procs[1].availability = markov::TransitionMatrix::from_self_loops(0.99, 0.99, 0.9);
  procs[2].availability = markov::TransitionMatrix::from_self_loops(0.80, 0.9, 0.9);
  procs[3].availability = markov::TransitionMatrix::from_self_loops(0.80, 0.9, 0.9);
  platform::Platform plat(std::move(procs), 4);

  auto app = small_app(2, /*t_prog=*/2, /*t_data=*/1);
  app.iterations = 1;

  std::vector<std::vector<State>> script(
      3, {State::Reclaimed, State::Reclaimed, State::Up, State::Up});
  // After slot 3 everything is UP (beyond-horizon default).
  Estimator est(plat, app, 1e-8);
  ProactiveScheduler proactive(Criterion::Y, Rule::IE, est);
  platform::FixedAvailability avail1(script);
  sim::Engine e1(plat, app, avail1, proactive, {});
  auto r1 = e1.run();
  EXPECT_TRUE(r1.success);
  EXPECT_GE(r1.total_reconfigurations, 1);

  PassiveScheduler passive(Rule::IE, est);
  platform::FixedAvailability avail2(script);
  sim::Engine e2(plat, app, avail2, passive, {});
  auto r2 = e2.run();
  EXPECT_TRUE(r2.success);
  EXPECT_EQ(r2.total_reconfigurations, 0);
  // The proactive run moved to the fast workers and finished sooner.
  EXPECT_LT(r1.makespan, r2.makespan);
}

TEST(Proactive, CachingDoesNotChangeSchedules) {
  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 2;
  params.seed = 17;
  auto scenario = platform::make_scenario(params);
  Estimator est(scenario.platform, scenario.app, 1e-6);

  for (auto [crit, rule] : {std::pair{Criterion::P, Rule::IE},
                            std::pair{Criterion::E, Rule::IAY},
                            std::pair{Criterion::Y, Rule::IP}}) {
    long makespans[2] = {0, 0};
    for (int pass = 0; pass < 2; ++pass) {
      ProactiveScheduler sched(crit, rule, est);
      sched.set_caching(pass == 0);
      platform::MarkovAvailability avail(scenario.platform, 555);
      sim::EngineOptions opts;
      opts.slot_cap = 100000;
      sim::Engine engine(scenario.platform, scenario.app, avail, sched, opts);
      makespans[pass] = engine.run().makespan;
    }
    EXPECT_EQ(makespans[0], makespans[1])
        << to_string(crit) << "-" << to_string(rule);
  }
}

// All 17 heuristics drive a full scenario without violating engine
// invariants, deterministically.
class AllHeuristics : public ::testing::TestWithParam<std::string> {};

TEST_P(AllHeuristics, RunsCleanAndDeterministic) {
  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 1;
  params.seed = 23;
  params.iterations = 3;
  auto scenario = platform::make_scenario(params);
  Estimator est(scenario.platform, scenario.app, 1e-6);

  long makespans[2];
  for (int pass = 0; pass < 2; ++pass) {
    auto sched = make_scheduler(GetParam(), est, 77);
    platform::MarkovAvailability avail(scenario.platform, 999);
    sim::EngineOptions opts;
    opts.slot_cap = 200000;
    sim::Engine engine(scenario.platform, scenario.app, avail, *sched, opts);
    auto r = engine.run();
    makespans[pass] = r.makespan;
    if (r.success) {
      EXPECT_EQ(r.iterations_completed, 3);
      EXPECT_EQ(r.iterations.size(), 3u);
      for (const auto& it : r.iterations) {
        EXPECT_GT(it.compute_slots, 0);
        EXPECT_GE(it.end_slot, it.start_slot);
      }
    }
  }
  EXPECT_EQ(makespans[0], makespans[1]);
}

INSTANTIATE_TEST_SUITE_P(Registry, AllHeuristics,
                         ::testing::ValuesIn(all_heuristic_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace tcgrid::sched
