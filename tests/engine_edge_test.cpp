// Additional engine edge cases: single-task applications, mu saturation,
// iteration bookkeeping, trace integrity, holdings visibility through the
// SchedulerView, multi-iteration data reset semantics, and the event-horizon
// fast-forward loop (consult skipping, stalled-slot accounting, scripted
// equivalence with the per-slot reference).
#include <gtest/gtest.h>

#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "sched/estimator.hpp"
#include "sched/heuristics.hpp"
#include "sim/engine.hpp"

namespace tcgrid {
namespace {

using markov::State;

platform::Platform make_platform(std::vector<long> speeds, int ncom, int mu = 8) {
  std::vector<platform::Processor> procs;
  for (long s : speeds) {
    platform::Processor pr;
    pr.speed = s;
    pr.max_tasks = mu;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
    procs.push_back(pr);
  }
  return platform::Platform(std::move(procs), ncom);
}

class PinScheduler final : public sim::Scheduler {
 public:
  explicit PinScheduler(model::Configuration config) : config_(std::move(config)) {}
  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override {
    last_view_holdings_.assign(view.holdings.begin(), view.holdings.end());
    last_elapsed_ = view.iteration_elapsed;
    last_compute_done_ = view.compute_done;
    if (view.has_config()) return std::nullopt;
    for (const auto& a : config_.assignments()) {
      if (view.states[static_cast<std::size_t>(a.proc)] != State::Up) {
        return std::nullopt;
      }
    }
    return config_;
  }
  [[nodiscard]] std::string_view name() const override { return "pin"; }

  std::vector<model::Holdings> last_view_holdings_;
  long last_elapsed_ = -1;
  long last_compute_done_ = -1;

 private:
  model::Configuration config_;
};

TEST(EngineEdge, SingleTaskSingleWorker) {
  auto plat = make_platform({4}, 1);
  model::Application app;
  app.num_tasks = 1;
  app.t_prog = 1;
  app.t_data = 1;
  app.iterations = 2;
  platform::FixedAvailability avail({{State::Up}});
  PinScheduler sched(model::Configuration({{0, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  // Iter 1: 2 comm + 4 compute = 6; iter 2: 1 comm (program held) + 4 = 5.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 11);
}

TEST(EngineEdge, MuSaturatedStacking) {
  // One worker runs all m = 3 tasks (mu = 4): W = 3 * speed.
  auto plat = make_platform({2}, 1, /*mu=*/4);
  model::Application app;
  app.num_tasks = 3;
  app.t_prog = 0;
  app.t_data = 0;
  app.iterations = 1;
  platform::FixedAvailability avail({{State::Up}});
  PinScheduler sched(model::Configuration({{0, 3}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 6);
}

TEST(EngineEdge, IterationStatsAreContiguousAndOrdered) {
  auto plat = make_platform({1, 2}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 1;
  app.t_data = 1;
  app.iterations = 4;
  platform::MarkovAvailability avail(plat, 5);
  PinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::EngineOptions opts;
  opts.slot_cap = 100000;
  sim::Engine engine(plat, app, avail, sched, opts);
  auto r = engine.run();
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.iterations.size(), 4u);
  long prev_end = -1;
  for (const auto& it : r.iterations) {
    EXPECT_EQ(it.start_slot, prev_end + 1);  // iterations tile the timeline
    EXPECT_GE(it.end_slot, it.start_slot);
    prev_end = it.end_slot;
  }
  EXPECT_EQ(r.iterations.back().end_slot, r.makespan - 1);
}

TEST(EngineEdge, TraceLengthEqualsMakespan) {
  auto plat = make_platform({1, 1}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 1;
  app.t_data = 1;
  app.iterations = 2;
  platform::FixedAvailability avail({std::vector<State>(2, State::Up)});
  PinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::EngineOptions opts;
  opts.record_trace = true;
  sim::Engine engine(plat, app, avail, sched, opts);
  auto r = engine.run();
  EXPECT_EQ(static_cast<long>(engine.trace().size()), r.makespan);
}

TEST(EngineEdge, ViewExposesHoldingsAndProgress) {
  auto plat = make_platform({2, 2}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 2;
  app.t_data = 1;
  app.iterations = 1;
  platform::FixedAvailability avail({std::vector<State>(2, State::Up)});
  PinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  // Last decide happened at the final compute slot: program held, one data
  // message banked, and compute_done reflects banked progress.
  ASSERT_EQ(sched.last_view_holdings_.size(), 2u);
  EXPECT_TRUE(sched.last_view_holdings_[0].has_program);
  EXPECT_EQ(sched.last_view_holdings_[0].data_messages, 1);
  EXPECT_EQ(sched.last_elapsed_, r.makespan - 1);
  EXPECT_EQ(sched.last_compute_done_, 1);  // W = 2; final slot banks the 2nd
}

TEST(EngineEdge, DataResetBetweenIterationsButProgramKept) {
  auto plat = make_platform({1, 1}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 3;
  app.t_data = 2;
  app.iterations = 3;
  platform::FixedAvailability avail({std::vector<State>(2, State::Up)});
  PinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.iterations.size(), 3u);
  // First iteration pays program + data; later iterations pay data only.
  EXPECT_EQ(r.iterations[0].comm_slots, 5);
  EXPECT_EQ(r.iterations[1].comm_slots, 2);
  EXPECT_EQ(r.iterations[2].comm_slots, 2);
}

TEST(EngineEdge, DownOfUnenrolledWorkerIsHarmless) {
  // P2 flaps DOWN while only P0/P1 are enrolled: no restart.
  std::vector<std::vector<State>> script(
      10, {State::Up, State::Up, State::Down});
  platform::FixedAvailability avail(script);
  auto plat = make_platform({1, 1, 1}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 1;
  app.t_data = 1;
  app.iterations = 1;
  PinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.total_restarts, 0);
}

TEST(EngineEdge, RejectsBadConstructionParameters) {
  auto plat = make_platform({1, 1}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.iterations = 1;
  platform::FixedAvailability small({{State::Up}});  // 1 proc vs platform 2
  PinScheduler sched(model::Configuration({{0, 2}}));
  EXPECT_THROW(sim::Engine(plat, app, small, sched), std::invalid_argument);

  platform::FixedAvailability ok({std::vector<State>(2, State::Up)});
  sim::EngineOptions opts;
  opts.slot_cap = 0;
  EXPECT_THROW(sim::Engine(plat, app, ok, sched, opts), std::invalid_argument);

  platform::FixedAvailability ok2({std::vector<State>(2, State::Up)});
  sim::EngineOptions bad_block;
  bad_block.avail_block = 0;
  EXPECT_THROW(sim::Engine(plat, app, ok2, sched, bad_block), std::invalid_argument);
}

TEST(EngineEdge, AvailabilityBlockSizeDoesNotChangeResults) {
  // The engine consumes availability through fill_block; any block size must
  // yield the identical simulation (block = 1 is the per-slot layout).
  auto plat = make_platform({2, 3, 1}, 2);
  model::Application app;
  app.num_tasks = 3;
  app.t_data = 2;
  app.t_prog = 4;
  app.iterations = 3;

  sim::SimulationResult reference{};
  for (long block : {1L, 3L, 256L}) {
    platform::MarkovAvailability avail(plat, 97);
    PinScheduler sched(model::Configuration({{0, 2}, {1, 1}}));
    sim::EngineOptions opts;
    opts.slot_cap = 50'000;
    opts.avail_block = block;
    sim::Engine engine(plat, app, avail, sched, opts);
    const auto r = engine.run();
    if (block == 1) {
      reference = r;
      continue;
    }
    EXPECT_EQ(r.makespan, reference.makespan) << "block=" << block;
    EXPECT_EQ(r.success, reference.success) << "block=" << block;
    EXPECT_EQ(r.total_restarts, reference.total_restarts) << "block=" << block;
    EXPECT_EQ(r.idle_slots, reference.idle_slots) << "block=" << block;
  }
}

TEST(EngineEdge, StalledSlotsCountCommPhaseFreezes) {
  // Comm phase with every pending worker RECLAIMED: the slot progresses
  // nothing and must be accounted as stalled (not comm, compute or idle).
  std::vector<std::vector<State>> script = {
      {State::Up, State::Up},
      {State::Reclaimed, State::Reclaimed},
      {State::Reclaimed, State::Reclaimed},
      {State::Up, State::Up},
  };
  platform::FixedAvailability avail(script);
  auto plat = make_platform({1, 1}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 1;
  app.t_data = 1;
  app.iterations = 1;
  PinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.iterations.size(), 1u);
  // Slots 0 and 3 transfer (2 messages each in parallel), 1-2 are frozen,
  // slot 4 computes: 5 = 2 comm + 2 stalled + 1 compute.
  EXPECT_EQ(r.iterations[0].comm_slots, 2);
  EXPECT_EQ(r.iterations[0].stalled_slots, 2);
  EXPECT_EQ(r.iterations[0].compute_slots, 1);
  EXPECT_EQ(r.iterations[0].suspended_slots, 0);
  EXPECT_EQ(r.makespan, 5);
}

/// A scheduler that pins one configuration but reports WhileConfigured, so
/// the engine may skip every consult while it is installed.
class QuiescentPinScheduler final : public sim::Scheduler {
 public:
  explicit QuiescentPinScheduler(model::Configuration config)
      : config_(std::move(config)) {}
  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override {
    ++decides_;
    q_.kind = sim::Quiescence::Kind::WhileConfigured;
    if (view.has_config()) return std::nullopt;
    for (const auto& a : config_.assignments()) {
      if (view.states[static_cast<std::size_t>(a.proc)] != State::Up) {
        // Waiting for a pinned worker to come UP: exactly the UntilEvent
        // "some processor joins the UP set" wake-up condition.
        q_.kind = sim::Quiescence::Kind::UntilEvent;
        q_.horizon = sim::Quiescence::kUnbounded;
        q_.watched.clear();
        return std::nullopt;
      }
    }
    return config_;
  }
  [[nodiscard]] const sim::Quiescence& quiescence() const override { return q_; }
  [[nodiscard]] std::string_view name() const override { return "quiescent-pin"; }

  long decides_ = 0;

 private:
  model::Configuration config_;
  sim::Quiescence q_;
};

TEST(EngineEdge, WhileConfiguredSkipsConsultsWithIdenticalResults) {
  auto plat = make_platform({1, 2}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 2;
  app.t_data = 2;
  app.iterations = 6;

  sim::SimulationResult results[2];
  long decides[2] = {0, 0};
  long consults[2] = {0, 0};
  for (bool ff : {false, true}) {
    platform::MarkovAvailability avail(plat, 29);
    QuiescentPinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
    sim::EngineOptions opts;
    opts.slot_cap = 100'000;
    opts.fast_forward = ff;
    sim::Engine engine(plat, app, avail, sched, opts);
    results[ff ? 1 : 0] = engine.run();
    decides[ff ? 1 : 0] = sched.decides_;
    consults[ff ? 1 : 0] = engine.consults();
  }
  ASSERT_TRUE(results[0].success);
  EXPECT_EQ(results[0].makespan, results[1].makespan);
  EXPECT_EQ(results[0].total_restarts, results[1].total_restarts);
  EXPECT_EQ(results[0].idle_slots, results[1].idle_slots);
  // The per-slot loop consults every slot; the event-horizon loop only at
  // event slots.
  EXPECT_EQ(consults[0], results[0].makespan);
  EXPECT_LT(consults[1], consults[0] / 2);
  EXPECT_EQ(decides[0], consults[0]);
  EXPECT_EQ(decides[1], consults[1]);
}

TEST(EngineEdge, FastForwardMatchesPerSlotOnScriptedRestarts) {
  // A script exercising every event type: suspensions mid-compute, an
  // enrolled DOWN (restart), un-enrolled DOWNs (crash only), and recovery —
  // driven by a real passive heuristic so the WhileConfigured, restart and
  // idle paths all engage. Results and traces must be bit-identical.
  std::vector<std::vector<State>> script;
  auto row = [](State a, State b, State c) { return std::vector<State>{a, b, c}; };
  for (int i = 0; i < 4; ++i) script.push_back(row(State::Up, State::Up, State::Up));
  script.push_back(row(State::Up, State::Reclaimed, State::Down));
  script.push_back(row(State::Up, State::Reclaimed, State::Down));
  script.push_back(row(State::Up, State::Down, State::Up));  // enrolled DOWN
  for (int i = 0; i < 3; ++i) script.push_back(row(State::Down, State::Down, State::Down));
  for (int i = 0; i < 30; ++i) script.push_back(row(State::Up, State::Up, State::Reclaimed));

  platform::ScenarioParams params;
  params.p = 3;
  params.seed = 9;
  auto scenario = platform::make_scenario(params);
  model::Application app;
  app.num_tasks = 3;
  app.t_prog = 2;
  app.t_data = 1;
  app.iterations = 3;

  sim::SimulationResult results[2];
  sim::ActivityTrace traces[2];
  for (bool ff : {false, true}) {
    platform::FixedAvailability avail(script);
    sched::Estimator estimator(scenario.platform, app, 1e-6);
    sched::PassiveScheduler sched(sched::Rule::IE, estimator);
    sim::EngineOptions opts;
    opts.slot_cap = 10'000;
    opts.record_trace = true;
    opts.avail_block = 4;  // force refills inside bulk runs
    opts.fast_forward = ff;
    sim::Engine engine(scenario.platform, app, avail, sched, opts);
    results[ff ? 1 : 0] = engine.run();
    traces[ff ? 1 : 0] = engine.trace();
  }
  EXPECT_EQ(results[0].success, results[1].success);
  EXPECT_EQ(results[0].makespan, results[1].makespan);
  EXPECT_EQ(results[0].total_restarts, results[1].total_restarts);
  EXPECT_EQ(results[0].idle_slots, results[1].idle_slots);
  ASSERT_EQ(results[0].iterations.size(), results[1].iterations.size());
  for (std::size_t i = 0; i < results[0].iterations.size(); ++i) {
    EXPECT_EQ(results[0].iterations[i].comm_slots, results[1].iterations[i].comm_slots);
    EXPECT_EQ(results[0].iterations[i].stalled_slots,
              results[1].iterations[i].stalled_slots);
    EXPECT_EQ(results[0].iterations[i].compute_slots,
              results[1].iterations[i].compute_slots);
    EXPECT_EQ(results[0].iterations[i].suspended_slots,
              results[1].iterations[i].suspended_slots);
  }
  ASSERT_EQ(traces[0].size(), traces[1].size());
  for (std::size_t t = 0; t < traces[0].size(); ++t) {
    for (std::size_t q = 0; q < traces[0][t].size(); ++q) {
      ASSERT_TRUE(traces[0][t][q].state == traces[1][t][q].state &&
                  traces[0][t][q].action == traces[1][t][q].action)
          << "slot " << t << " proc " << q;
    }
  }
}

TEST(EngineEdge, SuspendedCommWholeConfigReclaimed) {
  // Everyone RECLAIMED during the comm phase: nothing progresses, nothing
  // is lost; transfers resume afterwards.
  std::vector<std::vector<State>> script = {
      {State::Up, State::Up},
      {State::Reclaimed, State::Reclaimed},
      {State::Reclaimed, State::Reclaimed},
      {State::Up, State::Up},
  };
  platform::FixedAvailability avail(script);
  auto plat = make_platform({1, 1}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 1;
  app.t_data = 1;
  app.iterations = 1;
  PinScheduler sched(model::Configuration({{0, 1}, {1, 1}}));
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  // Comm slots 0, 3 (2 each in parallel); compute at 4 -> makespan 5.
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.makespan, 5);
  EXPECT_EQ(r.total_restarts, 0);
}

}  // namespace
}  // namespace tcgrid
