// Tests of coordinator-mode serving (serve/shard.hpp, DESIGN.md §15): the
// shard verbs on a stock daemon (register / heartbeat / lease streaming,
// and the no-checkpoint contract for leased units), the coordinator's
// merge — byte-identical to a single-process run, with the merged commit
// order equal to rows.jsonl order so `results --from=N` offsets stay
// stable — exactly-once commit under duplicate (stolen) lease completion,
// lease expiry + re-dispatch when a shard dies mid-job, and coordinator
// restart resuming a sharded job on the same checkpoint root.
//
// Shards here are real in-process Servers behind real unix listen sockets
// — the coordinator's fleet connects through the same connect_address path
// the daemon uses, so the full transport (framing, spec resend, row
// streaming, fd shutdown on death) is exercised, not a mock.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/spec_json.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace api = tcgrid::api;
namespace serve = tcgrid::serve;
namespace util = tcgrid::util;
namespace json = tcgrid::util::json;

namespace {

std::string fresh_root(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "tcgrid_shard_" + tag + "_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  return root;
}

/// Same shape as serve_test's tiny sweep: (2 * wmin_count) scenarios x
/// `trials` trials x 2 heuristics, 2 rows per unit.
api::ExperimentSpec tiny_spec(int trials = 2, int wmin_count = 2) {
  api::ExperimentSpec spec;
  spec.grid.ms = {3};
  spec.grid.ncoms = {5};
  spec.grid.wmins.clear();
  for (long w = 1; w <= wmin_count; ++w) spec.grid.wmins.push_back(w);
  spec.grid.scenarios_per_cell = 2;
  spec.grid.p = 8;
  spec.grid.iterations = 5;
  spec.heuristics = {"RANDOM", "IE"};
  spec.trials = trials;
  spec.options.slot_cap = 50'000;
  return spec;
}

/// An in-process daemon behind a real unix listen socket — what a shard (or
/// a coordinator reached over its socket) is in production. kill() has hard
/// kill -9 semantics for everything in flight: connections die, nothing
/// uncommitted survives, and the socket starts refusing connects.
struct Daemon {
  Daemon(const serve::ServerOptions& opts, std::string socket_path)
      : socket(std::move(socket_path)),
        server(std::make_unique<serve::Server>(opts)),
        listen_fd(util::listen_unix(socket)) {
    acceptor = std::thread([this] { server->serve(listen_fd.get()); });
  }
  ~Daemon() { kill(); }

  void kill() {
    if (server == nullptr) return;
    server->hard_stop();
    acceptor.join();
    listen_fd.reset();  // connects now fail: the death is visible, not hung
    server.reset();
  }

  std::string socket;
  std::unique_ptr<serve::Server> server;
  util::Fd listen_fd;
  std::thread acceptor;
};

/// One client connection over the daemon's real socket.
class Client {
 public:
  explicit Client(const std::string& socket_path)
      : fd_(util::connect_address(socket_path)), ch_(fd_.get()) {}

  json::Value roundtrip(const std::string& request) {
    EXPECT_TRUE(ch_.write_line(request));
    std::string line;
    EXPECT_TRUE(ch_.read_line(line));
    return json::parse(line);
  }

  std::pair<std::vector<std::string>, json::Value> stream_results(
      const std::string& job, std::size_t from = 0, bool wait = true) {
    EXPECT_TRUE(ch_.write_line(serve::results_request(job, from, wait)));
    std::vector<std::string> rows;
    std::string line;
    while (ch_.read_line(line)) {
      const json::Value v = json::parse(line);
      if (const json::Value* type = v.find("type");
          type != nullptr && type->is_string() && type->as_string() == "end") {
        return {std::move(rows), v};
      }
      rows.push_back(line);
    }
    ADD_FAILURE() << "stream ended without an end record";
    return {std::move(rows), json::Value()};
  }

  json::Value submit(const api::ExperimentSpec& spec, const std::string& tenant,
                     const std::string& job = "") {
    return roundtrip(serve::submit_request(tenant, api::spec_to_json(spec), job));
  }

  /// Drive the lease verb by hand: returns unit -> raw row lines. Fails the
  /// test on anything but clean unit streams + lease_done.
  std::map<std::size_t, std::vector<std::string>> lease(
      const std::string& ref, const std::string& tenant,
      const std::vector<std::size_t>& units, const std::string& spec_json) {
    EXPECT_TRUE(ch_.write_line(serve::lease_request(ref, tenant, units, spec_json)));
    std::map<std::size_t, std::vector<std::string>> out;
    std::string line;
    while (ch_.read_line(line)) {
      const json::Value v = json::parse(line);
      const json::Value* type = v.find("type");
      const std::string kind =
          type != nullptr && type->is_string() ? type->as_string() : "";
      if (kind == "lease_done") return out;
      if (kind != "unit") {
        ADD_FAILURE() << "unexpected lease response: " << line;
        return out;
      }
      const std::size_t unit = static_cast<std::size_t>(v.find("unit")->as_uint());
      const std::size_t n = static_cast<std::size_t>(v.find("rows")->as_uint());
      std::vector<std::string> rows;
      for (std::size_t i = 0; i < n; ++i) {
        std::string row;
        EXPECT_TRUE(ch_.read_line(row));
        rows.push_back(std::move(row));
      }
      out.emplace(unit, std::move(rows));
    }
    ADD_FAILURE() << "lease stream ended without lease_done";
    return out;
  }

 private:
  util::Fd fd_;
  util::LineChannel ch_;
};

bool is_ok(const json::Value& v) {
  const json::Value* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_of(const json::Value& v) {
  const json::Value* e = v.find("error");
  return e != nullptr && e->is_string() ? e->as_string() : "";
}

std::vector<std::string> sorted(std::vector<std::string> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

std::vector<std::string> file_rows(const std::string& path) {
  std::vector<std::string> rows;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) rows.push_back(line);
  }
  return rows;
}

/// Single-process reference run of `spec`: the byte-set every sharded
/// arrangement must reproduce.
std::vector<std::string> reference_rows(const api::ExperimentSpec& spec,
                                        const std::string& tag) {
  serve::ServerOptions opts;
  opts.root = fresh_root(tag);
  opts.threads = 2;
  Daemon daemon(opts, fresh_root(tag + "_sock") + ".sock");
  Client client(daemon.socket);
  const json::Value ack = client.submit(spec, "alice", "ref");
  EXPECT_TRUE(is_ok(ack)) << error_of(ack);
  return sorted(client.stream_results("ref").first);
}

serve::ServerOptions shard_opts(const std::string& tag) {
  serve::ServerOptions opts;
  opts.root = fresh_root(tag);
  opts.threads = 2;
  return opts;
}

serve::ServerOptions coordinator_opts(const std::string& tag,
                                      std::vector<std::string> shards) {
  serve::ServerOptions opts;
  opts.root = fresh_root(tag);
  opts.coordinator = true;
  opts.shard.shards = std::move(shards);
  opts.shard.heartbeat_interval_ms = 100;
  opts.shard.heartbeat_timeout_ms = 500;
  return opts;
}

TEST(Shard, StockServerSpeaksTheShardVerbs) {
  serve::ServerOptions opts = shard_opts("verbs");
  Daemon shard(opts, fresh_root("verbs_sock") + ".sock");
  Client client(shard.socket);

  // register: the slot-sizing handshake (no "shard" field = not a
  // fleet-join; that form needs a coordinator and is rejected here).
  json::Value resp = client.roundtrip(serve::register_request());
  ASSERT_TRUE(is_ok(resp)) << error_of(resp);
  EXPECT_EQ(resp.find("type")->as_string(), "registered");
  EXPECT_EQ(resp.find("threads")->as_uint(), 2u);
  EXPECT_FALSE(resp.find("coordinator")->as_bool());

  resp = client.roundtrip(serve::register_request("unix:/nowhere.sock"));
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("coordinator"), std::string::npos) << error_of(resp);

  resp = client.roundtrip(serve::heartbeat_request());
  ASSERT_TRUE(is_ok(resp)) << error_of(resp);
  EXPECT_EQ(resp.find("type")->as_string(), "pong");

  // lease with an unknown reference and no spec: the error carries the
  // need_spec hint the coordinator's resend path keys on.
  const api::ExperimentSpec spec = tiny_spec();
  resp = client.roundtrip(serve::lease_request("leasejob", "alice", {0}));
  EXPECT_FALSE(is_ok(resp));
  EXPECT_TRUE(resp.find("need_spec") != nullptr &&
              resp.find("need_spec")->as_bool())
      << json::dump(resp);

  // With the spec attached, every leased unit streams its rows — and the
  // full lease reproduces exactly the rows a local submit of the same spec
  // computes, because both are the same pure function of (spec, unit).
  const std::string spec_json = json::dump(api::spec_to_json(spec));
  const std::size_t units = spec.unit_count();
  ASSERT_EQ(units, 8u);
  std::vector<std::size_t> all_units(units);
  for (std::size_t u = 0; u < units; ++u) all_units[u] = u;
  const auto leased = client.lease("leasejob", "alice", all_units, spec_json);
  ASSERT_EQ(leased.size(), units);
  std::vector<std::string> lease_rows;
  for (const auto& [unit, rows] : leased) {
    EXPECT_EQ(rows.size(), 2u) << "unit " << unit;  // 2 heuristics
    lease_rows.insert(lease_rows.end(), rows.begin(), rows.end());
  }
  // Spec is cached per connection: a follow-up lease without it works.
  const auto again = client.lease("leasejob", "alice", {0}, "");
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(again.at(0), leased.at(0));

  const json::Value ack = client.submit(spec, "alice", "local");
  ASSERT_TRUE(is_ok(ack)) << error_of(ack);
  const auto [local_rows, end] = client.stream_results("local");
  EXPECT_EQ(end.find("state")->as_string(), "done");
  EXPECT_EQ(sorted(lease_rows), sorted(local_rows));

  // Leased units are the coordinator's to checkpoint, never the shard's:
  // no job directory appeared under the shard's root for the lease ref.
  EXPECT_FALSE(std::filesystem::exists(opts.root + "/leasejob"));

  // Out-of-range unit ids are named at the wire.
  resp = client.roundtrip(serve::lease_request("leasejob", "alice", {units}));
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("out of range"), std::string::npos) << error_of(resp);
}

TEST(Shard, CoordinatorMergesByteIdenticalToSingleProcess) {
  const api::ExperimentSpec spec = tiny_spec(/*trials=*/4, /*wmin_count=*/3);
  const std::vector<std::string> reference = reference_rows(spec, "merge_ref");
  ASSERT_EQ(reference.size(), 48u);

  Daemon shard1(shard_opts("merge_s1"), fresh_root("merge_s1_sock") + ".sock");
  Daemon shard2(shard_opts("merge_s2"), fresh_root("merge_s2_sock") + ".sock");
  serve::ServerOptions copts =
      coordinator_opts("merge_coord", {shard1.socket, shard2.socket});
  Daemon coord(copts, fresh_root("merge_coord_sock") + ".sock");
  Client client(coord.socket);

  const json::Value ack = client.submit(spec, "alice", "sweep");
  ASSERT_TRUE(is_ok(ack)) << error_of(ack);
  const auto [rows, end] = client.stream_results("sweep");
  EXPECT_EQ(end.find("state")->as_string(), "done");
  EXPECT_EQ(sorted(rows), reference);

  // The merge layer preserves the §11 offset invariant: the streamed
  // (in-memory) order IS the rows.jsonl commit order, so `results --from=N`
  // indexes one well-defined sequence.
  EXPECT_EQ(rows, file_rows(copts.root + "/sweep/rows.jsonl"));

  // Both shards actually served (work stealing pulls from both), and the
  // counters verb exposes the coordinator block.
  const serve::ShardFleet::Counters c = coord.server->shard_fleet()->counters();
  EXPECT_EQ(c.shards, 2u);
  EXPECT_GE(c.leased_units, 24u);
  const json::Value counters = client.roundtrip(serve::counters_request());
  ASSERT_TRUE(is_ok(counters));
  const json::Value* coord_block = counters.find("coordinator");
  ASSERT_NE(coord_block, nullptr);
  EXPECT_EQ(coord_block->find("shards")->as_uint(), 2u);
  EXPECT_GE(coord_block->find("leased_units")->as_uint(), 24u);
}

TEST(Shard, DuplicateLeaseCompletionCommitsExactlyOnce) {
  // Drive the dispatch surface directly: claim every unit, steal one (a
  // second lease on an in-flight unit), complete BOTH leases with the same
  // rows. Exactly one commit lands; the loser reports Duplicate and the
  // checkpoint holds each row once.
  const api::ExperimentSpec spec = tiny_spec();  // 8 units
  const std::size_t units = spec.unit_count();

  // A stock daemon computes the rows for us via the lease verb — the same
  // bytes any shard would stream.
  Daemon shard(shard_opts("dup_rows"), fresh_root("dup_rows_sock") + ".sock");
  Client shard_client(shard.socket);
  std::vector<std::size_t> all_units(units);
  for (std::size_t u = 0; u < units; ++u) all_units[u] = u;
  const auto rows_of = shard_client.lease("ref", "alice", all_units,
                                          json::dump(api::spec_to_json(spec)));
  ASSERT_EQ(rows_of.size(), units);

  serve::ServerOptions copts = coordinator_opts("dup_coord", {});
  Daemon coord(copts, fresh_root("dup_coord_sock") + ".sock");
  Client client(coord.socket);
  const json::Value ack = client.submit(spec, "alice", "sweep");
  ASSERT_TRUE(is_ok(ack)) << error_of(ack);

  // No shards are attached, so these claims are the only dispatch path.
  std::vector<serve::Server::Lease> leases;
  for (std::size_t i = 0; i < units; ++i) {
    auto lease = coord.server->claim_for_dispatch(/*allow_steal=*/false);
    ASSERT_TRUE(lease.has_value());
    EXPECT_FALSE(lease->stolen);
    leases.push_back(std::move(*lease));
  }
  EXPECT_FALSE(coord.server->try_claim_for_dispatch().has_value());

  auto stolen = coord.server->claim_for_dispatch(/*allow_steal=*/true);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_TRUE(stolen->stolen);
  const std::size_t victim = stolen->unit;

  // The stolen (duplicate) lease wins the race; the original must dedup.
  EXPECT_EQ(coord.server->commit_remote_unit(*stolen, rows_of.at(victim), 0),
            serve::Server::RemoteCommit::Committed);
  for (const auto& lease : leases) {
    const auto rc =
        coord.server->commit_remote_unit(lease, rows_of.at(lease.unit), 0);
    EXPECT_EQ(rc, lease.unit == victim ? serve::Server::RemoteCommit::Duplicate
                                       : serve::Server::RemoteCommit::Committed);
  }

  const auto status = coord.server->wait_job("sweep");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, "done");
  const auto [rows, end] = client.stream_results("sweep");
  EXPECT_EQ(end.find("state")->as_string(), "done");
  EXPECT_EQ(rows.size(), units * 2);
  // Every row exactly once — in memory and in the checkpoint.
  std::set<std::string> unique(rows.begin(), rows.end());
  EXPECT_EQ(unique.size(), rows.size());
  EXPECT_EQ(rows, file_rows(copts.root + "/sweep/rows.jsonl"));

  // A return after completion is a no-op, not a resurrection.
  coord.server->return_lease(leases.front());
  EXPECT_EQ(coord.server->job_status("sweep")->state, "done");
}

TEST(Shard, SiblingClaimsStayInsideTheScenario) {
  // Scenario-affine batching: try_claim_sibling hands out the remaining
  // trials of the held lease's scenario — and nothing else — so whole
  // scenarios travel to one shard (their estimator is built once there).
  const api::ExperimentSpec spec = tiny_spec(/*trials=*/4);  // 4 scenarios
  Daemon coord(coordinator_opts("sibling", {}), fresh_root("sibling_sock") + ".sock");
  Client client(coord.socket);
  ASSERT_TRUE(is_ok(client.submit(spec, "alice", "sweep")));

  auto first = coord.server->claim_for_dispatch(/*allow_steal=*/false);
  ASSERT_TRUE(first.has_value());
  const std::size_t scenario = api::unit_scenario(first->unit, spec.trials);

  // Exactly trials-1 siblings, every one from the same scenario.
  std::vector<serve::Server::Lease> held{std::move(*first)};
  for (std::size_t i = 1; i < static_cast<std::size_t>(spec.trials); ++i) {
    auto sib = coord.server->try_claim_sibling(held.back());
    ASSERT_TRUE(sib.has_value()) << "sibling " << i;
    EXPECT_EQ(api::unit_scenario(sib->unit, spec.trials), scenario);
    EXPECT_FALSE(sib->stolen);
    held.push_back(std::move(*sib));
  }
  // The scenario is exhausted: no fourth sibling, even though other
  // scenarios still have pending units (a fresh claim finds one).
  EXPECT_FALSE(coord.server->try_claim_sibling(held.back()).has_value());
  auto next = coord.server->try_claim_for_dispatch();
  ASSERT_TRUE(next.has_value());
  EXPECT_NE(api::unit_scenario(next->unit, spec.trials), scenario);

  // Returned leases re-dispatch; the job still runs to completion through
  // the normal surface (no fleet attached, so claims are the only path).
  coord.server->return_lease(*next);
  for (const auto& lease : held) coord.server->return_lease(lease);
  EXPECT_EQ(coord.server->job_status("sweep")->state, "running");
}

TEST(Shard, ShardDeathMidJobExpiresLeasesAndStaysByteIdentical) {
  const api::ExperimentSpec spec = tiny_spec(/*trials=*/8, /*wmin_count=*/3);
  const std::vector<std::string> reference = reference_rows(spec, "kill_ref");
  ASSERT_EQ(reference.size(), 96u);

  Daemon shard1(shard_opts("kill_s1"), fresh_root("kill_s1_sock") + ".sock");
  Daemon shard2(shard_opts("kill_s2"), fresh_root("kill_s2_sock") + ".sock");
  serve::ServerOptions copts =
      coordinator_opts("kill_coord", {shard1.socket, shard2.socket});
  Daemon coord(copts, fresh_root("kill_coord_sock") + ".sock");
  Client client(coord.socket);

  const json::Value ack = client.submit(spec, "alice", "sweep");
  ASSERT_TRUE(is_ok(ack)) << error_of(ack);

  // Kill one shard once the job is moving but nowhere near done. Its slot
  // connections die mid-lease; the coordinator re-queues what it held and
  // the surviving shard absorbs the rest.
  coord.server->wait_units("sweep", 4);
  shard1.kill();

  const auto status = coord.server->wait_job("sweep");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, "done") << "job did not survive the shard death";

  const auto [rows, end] = client.stream_results("sweep");
  EXPECT_EQ(end.find("state")->as_string(), "done");
  EXPECT_EQ(sorted(rows), reference);
  EXPECT_EQ(rows, file_rows(copts.root + "/sweep/rows.jsonl"));

  const serve::ShardFleet::Counters c = coord.server->shard_fleet()->counters();
  EXPECT_GT(c.redispatched_units, 0u) << "the kill expired no leases";
}

TEST(Shard, CoordinatorRestartResumesMergedJobWithStableOffsets) {
  const api::ExperimentSpec spec = tiny_spec(/*trials=*/6, /*wmin_count=*/3);
  const std::vector<std::string> reference = reference_rows(spec, "resume_ref");
  ASSERT_EQ(reference.size(), 72u);

  // Shards are stateless and outlive the coordinator: the same pair serves
  // both coordinator lifetimes.
  Daemon shard1(shard_opts("resume_s1"), fresh_root("resume_s1_sock") + ".sock");
  Daemon shard2(shard_opts("resume_s2"), fresh_root("resume_s2_sock") + ".sock");
  serve::ServerOptions copts =
      coordinator_opts("resume_coord", {shard1.socket, shard2.socket});

  std::vector<std::string> before_kill;
  {
    Daemon coord(copts, fresh_root("resume_coord_sock1") + ".sock");
    Client client(coord.socket);
    const json::Value ack = client.submit(spec, "alice", "sweep");
    ASSERT_TRUE(is_ok(ack)) << error_of(ack);
    coord.server->wait_units("sweep", 2);
    before_kill = client.stream_results("sweep", 0, /*wait=*/false).first;
    coord.kill();  // hard stop: in-flight leases die uncommitted
  }

  Daemon coord(copts, fresh_root("resume_coord_sock2") + ".sock");
  const auto at_restart = coord.server->job_status("sweep");
  ASSERT_TRUE(at_restart.has_value());
  EXPECT_GE(at_restart->units_done, 2u);
  EXPECT_LT(at_restart->units_done, 36u)
      << "job finished before the kill; nothing was resumed";
  const auto status = coord.server->wait_job("sweep");
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, "done");

  Client client(coord.socket);
  const auto [rows, end] = client.stream_results("sweep");
  EXPECT_EQ(end.find("state")->as_string(), "done");
  EXPECT_EQ(sorted(rows), reference);

  // The offset contract across restarts: the restart rebuilt job->rows in
  // rows.jsonl order, committed-prefix rows kept their indexes, and a
  // --from=N re-read returns exactly the tail of the same sequence.
  EXPECT_EQ(rows, file_rows(copts.root + "/sweep/rows.jsonl"));
  ASSERT_GE(before_kill.size(), 1u);
  EXPECT_TRUE(std::equal(before_kill.begin(), before_kill.end(), rows.begin()))
      << "committed prefix changed order across the restart";
  const auto [tail, tail_end] = client.stream_results("sweep", rows.size() - 5);
  EXPECT_EQ(tail, std::vector<std::string>(rows.end() - 5, rows.end()));
  EXPECT_EQ(tail_end.find("rows")->as_uint(), rows.size());
}

}  // namespace
