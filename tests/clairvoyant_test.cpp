// Tests of the clairvoyant reference scheduler and its deterministic replay.
#include <gtest/gtest.h>

#include "offline/clairvoyant.hpp"
#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace tcgrid::offline {
namespace {

using markov::State;

platform::Platform make_platform(std::vector<long> speeds, int ncom) {
  std::vector<platform::Processor> procs;
  for (long s : speeds) {
    platform::Processor pr;
    pr.speed = s;
    pr.max_tasks = 8;
    pr.availability = markov::TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
    procs.push_back(pr);
  }
  return platform::Platform(std::move(procs), ncom);
}

TEST(Replay, MatchesEngineOnFixedSchedule) {
  // Same scenario as the Figure 1 engine test: the replay must predict the
  // exact completion slot the engine produces.
  std::vector<std::vector<State>> script(15, {State::Down, State::Up, State::Up,
                                              State::Up, State::Down});
  script[2][2] = State::Reclaimed;
  script[3][2] = State::Reclaimed;
  script[9][1] = State::Reclaimed;
  script[10][1] = State::Reclaimed;
  script[9][2] = State::Reclaimed;
  script[10][2] = State::Reclaimed;
  script[11][2] = State::Reclaimed;

  auto plat = make_platform({1, 2, 3, 4, 5}, 2);
  model::Application app;
  app.num_tasks = 5;
  app.t_prog = 2;
  app.t_data = 1;
  app.iterations = 1;

  std::vector<model::Holdings> holdings(5);
  model::Configuration cfg({{1, 2}, {2, 2}, {3, 1}});
  EXPECT_EQ(replay_completion(plat, app, script, holdings, cfg, 0, 100), 14);
}

TEST(Replay, AbortsOnDown) {
  std::vector<std::vector<State>> script(10, {State::Up, State::Up});
  script[3][1] = State::Down;
  auto plat = make_platform({2, 2}, 2);
  model::Application app;
  app.num_tasks = 2;
  app.t_prog = 2;
  app.t_data = 1;
  app.iterations = 1;
  std::vector<model::Holdings> holdings(2);
  model::Configuration cfg({{0, 1}, {1, 1}});
  EXPECT_EQ(replay_completion(plat, app, script, holdings, cfg, 0, 100), -1);
}

TEST(Replay, CreditsHoldings) {
  std::vector<std::vector<State>> script(1, {State::Up});
  auto plat = make_platform({3}, 1);
  model::Application app;
  app.num_tasks = 1;
  app.t_prog = 5;
  app.t_data = 2;
  app.iterations = 1;
  std::vector<model::Holdings> holdings(1);
  model::Configuration cfg({{0, 1}});
  // Cold: 7 comm slots + 3 compute -> finishes at slot 9.
  EXPECT_EQ(replay_completion(plat, app, script, holdings, cfg, 0, 100), 9);
  // Program held: 2 comm + 3 compute -> slot 4.
  holdings[0].has_program = true;
  EXPECT_EQ(replay_completion(plat, app, script, holdings, cfg, 0, 100), 4);
  // Data held too: straight to compute -> slot 2.
  holdings[0].data_messages = 1;
  EXPECT_EQ(replay_completion(plat, app, script, holdings, cfg, 0, 100), 2);
}

TEST(Replay, RespectsHorizon) {
  std::vector<std::vector<State>> script(4, {State::Reclaimed});
  auto plat = make_platform({1}, 1);
  model::Application app;
  app.num_tasks = 1;
  app.t_prog = 0;
  app.t_data = 0;
  app.iterations = 1;
  std::vector<model::Holdings> holdings(1);
  model::Configuration cfg({{0, 1}});
  EXPECT_EQ(replay_completion(plat, app, script, holdings, cfg, 0, 3), -1);
  // Beyond the script everything is UP, so a longer horizon succeeds.
  EXPECT_EQ(replay_completion(plat, app, script, holdings, cfg, 0, 10), 4);
}

TEST(Clairvoyant, AvoidsWorkerThatWillCrash) {
  // Two identical workers; P0 crashes at slot 5. The clairvoyant must put
  // the single task on P1 even though both look identical right now.
  std::vector<std::vector<State>> script(12, {State::Up, State::Up});
  script[5][0] = State::Down;
  auto plat = make_platform({2, 2}, 2);
  model::Application app;
  app.num_tasks = 1;
  app.t_prog = 2;
  app.t_data = 1;
  app.iterations = 1;

  ClairvoyantScheduler sched(plat, app, script);
  platform::FixedAvailability avail(script);
  sim::Engine engine(plat, app, avail, sched);
  auto r = engine.run();
  EXPECT_TRUE(r.success);
  EXPECT_EQ(r.total_restarts, 0);  // never surprised by the crash
}

TEST(Clairvoyant, NeverLosesToOnlineHeuristicsOnAverage) {
  // Across several recorded Markov trials, the clairvoyant's mean makespan
  // must not exceed the best on-line heuristic's (it sees the future; ties
  // are possible on easy traces).
  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 2;
  params.seed = 13;
  params.iterations = 5;
  auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);

  double clair_total = 0.0, online_best_total = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    platform::MarkovAvailability source(
        scenario.platform, util::derive_seed(params.seed, 1000 + trial));
    auto timeline = platform::record(source, 30000);

    ClairvoyantScheduler clair(scenario.platform, scenario.app, timeline);
    platform::FixedAvailability avail1(timeline);
    sim::EngineOptions opts;
    opts.slot_cap = 30000;
    sim::Engine e1(scenario.platform, scenario.app, avail1, clair, opts);
    const auto rc = e1.run();
    ASSERT_TRUE(rc.success);
    clair_total += static_cast<double>(rc.makespan);

    long best = std::numeric_limits<long>::max();
    for (const char* name : {"IE", "Y-IE"}) {
      platform::FixedAvailability avail2(timeline);
      auto sched = sched::make_scheduler(name, est, 1);
      sim::Engine e2(scenario.platform, scenario.app, avail2, *sched, opts);
      const auto r = e2.run();
      if (r.success) best = std::min(best, r.makespan);
    }
    ASSERT_NE(best, std::numeric_limits<long>::max());
    online_best_total += static_cast<double>(best);
  }
  EXPECT_LE(clair_total, online_best_total);
}

}  // namespace
}  // namespace tcgrid::offline
