// Tests of the serve subsystem (serve/server.hpp) driven over in-process
// socketpairs: the full submit → stream → complete protocol, field-naming
// rejection of malformed specs, per-tenant quota enforcement (realization
// budget clamp + chain-store draining/eviction), mid-sweep cancellation,
// and the headline durability contract — a hard-stopped server restarted on
// the same checkpoint root finishes every job with a row set byte-identical
// to an uninterrupted run's.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/spec_json.hpp"
#include "obs/obs.hpp"
#include "serve/checkpoint.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace api = tcgrid::api;
namespace serve = tcgrid::serve;
namespace util = tcgrid::util;
namespace json = tcgrid::util::json;

namespace {

/// Fresh checkpoint root per test under gtest's temp dir.
std::string fresh_root(const std::string& tag) {
  const std::string root = ::testing::TempDir() + "tcgrid_serve_" + tag + "_" +
                           std::to_string(::getpid());
  std::filesystem::remove_all(root);
  return root;
}

/// A small sweep: 4 scenarios x `trials` trials x 2 heuristics. RANDOM is
/// estimator-free; IE exercises the chain-statistics store (the quota tests
/// need its bytes to grow).
api::ExperimentSpec tiny_spec(int trials = 2, int wmin_count = 2) {
  api::ExperimentSpec spec;
  spec.grid.ms = {3};
  spec.grid.ncoms = {5};
  spec.grid.wmins.clear();
  for (long w = 1; w <= wmin_count; ++w) spec.grid.wmins.push_back(w);
  spec.grid.scenarios_per_cell = 2;
  spec.grid.p = 8;
  spec.grid.iterations = 5;
  spec.heuristics = {"RANDOM", "IE"};
  spec.trials = trials;
  spec.options.slot_cap = 50'000;
  return spec;
}

/// One client connection served by a dedicated in-process handler thread,
/// exactly as the daemon runs one per accepted socket.
class Client {
 public:
  explicit Client(serve::Server& server) {
    auto [client_end, server_end] = util::stream_socketpair();
    fd_ = std::move(client_end);
    const int sfd = server_end.release();
    handler_ = std::thread([&server, sfd] {
      server.serve_connection(sfd);
      ::close(sfd);
    });
    ch_ = std::make_unique<util::LineChannel>(fd_.get());
  }

  ~Client() {
    fd_.reset();  // EOF unblocks the handler
    if (handler_.joinable()) handler_.join();
  }

  json::Value roundtrip(const std::string& request) {
    EXPECT_TRUE(ch_->write_line(request));
    std::string line;
    EXPECT_TRUE(ch_->read_line(line));
    return json::parse(line);
  }

  /// `results` streaming: returns (rows, end record).
  std::pair<std::vector<std::string>, json::Value> stream_results(
      const std::string& job, std::size_t from = 0, bool wait = true) {
    EXPECT_TRUE(ch_->write_line(serve::results_request(job, from, wait)));
    std::vector<std::string> rows;
    std::string line;
    while (ch_->read_line(line)) {
      const json::Value v = json::parse(line);
      if (const json::Value* type = v.find("type");
          type != nullptr && type->is_string() && type->as_string() == "end") {
        return {std::move(rows), v};
      }
      rows.push_back(line);
    }
    ADD_FAILURE() << "stream ended without an end record";
    return {std::move(rows), json::Value()};
  }

  json::Value submit(const api::ExperimentSpec& spec, const std::string& tenant,
                     const std::string& job = "") {
    return roundtrip(serve::submit_request(tenant, api::spec_to_json(spec), job));
  }

 private:
  util::Fd fd_;
  std::unique_ptr<util::LineChannel> ch_;
  std::thread handler_;
};

bool is_ok(const json::Value& v) {
  const json::Value* ok = v.find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

std::string error_of(const json::Value& v) {
  const json::Value* e = v.find("error");
  return e != nullptr && e->is_string() ? e->as_string() : "";
}

std::vector<std::string> sorted(std::vector<std::string> rows) {
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(Serve, SubmitStreamComplete) {
  serve::ServerOptions opts;
  opts.root = fresh_root("basic");
  opts.threads = 2;
  serve::Server server(opts);
  Client client(server);

  const api::ExperimentSpec spec = tiny_spec();
  const json::Value ack = client.submit(spec, "alice");
  ASSERT_TRUE(is_ok(ack)) << error_of(ack);
  const std::string job = ack.find("job")->as_string();
  const std::size_t units = static_cast<std::size_t>(ack.find("units")->as_uint());
  const std::size_t expected =
      static_cast<std::size_t>(ack.find("rows_expected")->as_uint());
  EXPECT_EQ(units, 8u);       // 4 scenarios x 2 trials
  EXPECT_EQ(expected, 16u);   // x 2 heuristics

  const auto [rows, end] = client.stream_results(job);
  EXPECT_EQ(rows.size(), expected);
  EXPECT_EQ(end.find("state")->as_string(), "done");

  // Every (scenario, trial, heuristic) coordinate exactly once, and every
  // row is well-formed JSON carrying the documented fields.
  std::set<std::string> coords;
  for (const std::string& row : rows) {
    const json::Value v = json::parse(row);
    for (const char* key : {"scenario", "trial", "h", "heuristic", "family", "m",
                            "ncom", "wmin", "scenario_seed", "success", "makespan"}) {
      EXPECT_NE(v.find(key), nullptr) << "row missing " << key << ": " << row;
    }
    coords.insert(json::dump(*v.find("scenario")) + "/" + json::dump(*v.find("trial")) +
                  "/" + json::dump(*v.find("h")));
  }
  EXPECT_EQ(coords.size(), expected);

  // Incremental re-read from an offset returns the tail only.
  const auto [tail, tail_end] = client.stream_results(job, rows.size() - 3);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail_end.find("rows")->as_uint(), expected);
}

TEST(Serve, TrialBatchRoundTripsAndZeroWidthIsNamedAtTheWire) {
  serve::ServerOptions opts;
  opts.root = fresh_root("batch");
  opts.threads = 2;
  serve::Server server(opts);
  Client client(server);

  // A lockstep-width spec survives the wire round-trip and completes; its
  // rows are the SAME pure functions of (scenario, trial, heuristic) the
  // sequential executor produces (the daemon schedules per-unit, and
  // Session bit-identity guarantees the widths agree — batch_test.cpp),
  // so the two jobs' row sets must match exactly.
  api::ExperimentSpec spec = tiny_spec(3);
  const json::Value seq_ack = client.submit(spec, "alice", "seq");
  ASSERT_TRUE(is_ok(seq_ack)) << error_of(seq_ack);
  spec.options.trial_batch = 2;  // ragged against 3 trials
  const json::Value bat_ack = client.submit(spec, "alice", "bat");
  ASSERT_TRUE(is_ok(bat_ack)) << error_of(bat_ack);

  const auto [seq_rows, seq_end] = client.stream_results("seq");
  const auto [bat_rows, bat_end] = client.stream_results("bat");
  EXPECT_EQ(seq_end.find("state")->as_string(), "done");
  EXPECT_EQ(bat_end.find("state")->as_string(), "done");
  EXPECT_EQ(sorted(bat_rows), sorted(seq_rows));

  // Zero / negative widths die at the wire with the dotted path (there is
  // no spec object to validate yet).
  std::string text = api::spec_to_json_string(tiny_spec());
  const std::size_t at = text.find("\"trial_batch\":1");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 15, "\"trial_batch\":0");
  const json::Value resp =
      client.roundtrip(serve::submit_request("alice", json::parse(text), ""));
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("spec.options.trial_batch"), std::string::npos)
      << error_of(resp);
}

TEST(Serve, MalformedRequestsAndSpecsAreRejectedByName) {
  serve::ServerOptions opts;
  opts.root = fresh_root("reject");
  opts.threads = 1;
  serve::Server server(opts);
  Client client(server);

  // Unknown field, dotted path into options (rename slot_cap in the wire
  // form — the typo'd key must be named, not silently defaulted).
  api::ExperimentSpec spec = tiny_spec();
  std::string text = api::spec_to_json_string(spec);
  const std::size_t at = text.find("\"slot_cap\":");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 11, "\"slot_capp\":");
  json::Value resp = client.roundtrip(serve::submit_request("alice", json::parse(text), ""));
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("spec.options.slot_capp"), std::string::npos)
      << error_of(resp);

  // Unregistered heuristic (semantic validation, post-parse).
  spec = tiny_spec();
  spec.heuristics = {"NoSuchHeuristic"};
  resp = client.submit(spec, "alice");
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("NoSuchHeuristic"), std::string::npos);

  // Session-level knobs the daemon pins.
  spec = tiny_spec();
  spec.options.record_trace = true;
  resp = client.submit(spec, "alice");
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("record_trace"), std::string::npos);

  spec = tiny_spec();
  spec.options.eps = 1e-3;
  resp = client.submit(spec, "alice");
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("eps"), std::string::npos);

  // Bad tenant / bad job id / unknown job / non-JSON line.
  resp = client.roundtrip(serve::submit_request("bad tenant!", api::spec_to_json(tiny_spec()), ""));
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("tenant"), std::string::npos);

  resp = client.roundtrip(serve::status_request("nope"));
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("unknown job"), std::string::npos);

  resp = client.roundtrip("this is not json");
  EXPECT_FALSE(is_ok(resp));

  resp = client.roundtrip(R"({"op": "frobnicate"})");
  EXPECT_FALSE(is_ok(resp));
  EXPECT_NE(error_of(resp).find("frobnicate"), std::string::npos);
}

TEST(Serve, TenantQuotasEnforcedAndVisible) {
  serve::ServerOptions opts;
  opts.root = fresh_root("quota");
  opts.threads = 2;
  // "small" gets a chain store bound of 1 byte — every committed unit that
  // grew the store triggers a drain + eviction — and a zero realization
  // budget (all units fall back to live generation).
  opts.tenant_quotas["small"] = serve::TenantQuota{0, 1};
  serve::Server server(opts);
  Client client(server);

  const api::ExperimentSpec spec = tiny_spec();
  const json::Value ack_small = client.submit(spec, "small");
  const json::Value ack_big = client.submit(spec, "big");
  ASSERT_TRUE(is_ok(ack_small)) << error_of(ack_small);
  ASSERT_TRUE(is_ok(ack_big)) << error_of(ack_big);
  const std::string job_small = ack_small.find("job")->as_string();
  const std::string job_big = ack_big.find("job")->as_string();

  const auto [rows_small, end_small] = client.stream_results(job_small);
  const auto [rows_big, end_big] = client.stream_results(job_big);
  EXPECT_EQ(end_small.find("state")->as_string(), "done");
  EXPECT_EQ(end_big.find("state")->as_string(), "done");

  // Quotas trade warmth, never results: both tenants computed the same rows.
  EXPECT_EQ(sorted(rows_small), sorted(rows_big));

  // The starved tenant was evicted at least once; the default tenant never.
  EXPECT_GT(server.tenant_evictions("small"), 0u);
  EXPECT_EQ(server.tenant_evictions("big"), 0u);

  // Per-tenant accounting is visible over the wire.
  const json::Value counters = client.roundtrip(serve::counters_request());
  ASSERT_TRUE(is_ok(counters));
  const json::Value* tenants = counters.find("tenants");
  ASSERT_NE(tenants, nullptr);
  const json::Value* small = tenants->find("small");
  const json::Value* big = tenants->find("big");
  ASSERT_NE(small, nullptr);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(small->find("quota")->find("chain_store_bytes")->as_uint(), 1u);
  EXPECT_EQ(small->find("quota")->find("realization_budget")->as_uint(), 0u);
  EXPECT_GT(small->find("evictions")->as_uint(), 0u);
  EXPECT_EQ(small->find("units_done")->as_uint(), 8u);
  EXPECT_EQ(big->find("units_done")->as_uint(), 8u);
  EXPECT_EQ(big->find("rows")->as_uint(), 16u);
  // The unstarved store retained its chains; bytes are live and positive.
  EXPECT_GT(big->find("chain_store")->find("bytes")->as_uint(), 0u);
}

TEST(Serve, QuotaEvictionWithStoreDirKeepsWarmthAndRowsIdentical) {
  // DESIGN.md §14: with --store-dir, the DRAINING eviction trades memory
  // but NOT warmth — clear_caches() flushes the tenant store to disk before
  // dropping the heap, and a resubmission's re-interned chains are served
  // from the shared persistent cache instead of recomputed.
  serve::ServerOptions opts;
  opts.root = fresh_root("store_evict");
  opts.store_dir = fresh_root("store_evict_cache");
  opts.threads = 2;
  // 1-byte chain-store bound: every unit that grew the store evicts.
  opts.tenant_quotas["small"] = serve::TenantQuota{64ull << 20, 1};
  serve::Server server(opts);
  Client client(server);

  const api::ExperimentSpec spec = tiny_spec();
  const json::Value ack1 = client.submit(spec, "small");
  ASSERT_TRUE(is_ok(ack1)) << error_of(ack1);
  const auto [rows1, end1] =
      client.stream_results(ack1.find("job")->as_string());
  EXPECT_EQ(end1.find("state")->as_string(), "done");
  EXPECT_GT(server.tenant_evictions("small"), 0u);

  // Resubmit the same sweep: the evicted session recomputes nothing the
  // cache holds — and the rows are byte-identical to the first pass.
  const json::Value ack2 = client.submit(spec, "small");
  ASSERT_TRUE(is_ok(ack2)) << error_of(ack2);
  const auto [rows2, end2] =
      client.stream_results(ack2.find("job")->as_string());
  EXPECT_EQ(end2.find("state")->as_string(), "done");
  EXPECT_EQ(sorted(rows1), sorted(rows2));

  // The persistent section is visible over the wire, with real hits.
  const json::Value counters = client.roundtrip(serve::counters_request());
  ASSERT_TRUE(is_ok(counters));
  const json::Value* small = counters.find("tenants")->find("small");
  ASSERT_NE(small, nullptr);
  const json::Value* persistent = small->find("persistent");
  ASSERT_NE(persistent, nullptr);
  EXPECT_GT(persistent->find("generations")->as_uint(), 0u);
  EXPECT_GT(persistent->find("chain_hits")->as_uint(), 0u);
  EXPECT_GT(persistent->find("flushed_entries")->as_uint(), 0u);
}

TEST(Serve, CancelMidSweepReturnsPartialAndSticksAcrossRestart) {
  serve::ServerOptions opts;
  opts.root = fresh_root("cancel");
  opts.threads = 1;  // serialize units so the cancel lands mid-sweep
  auto server = std::make_unique<serve::Server>(opts);
  Client client(*server);

  const api::ExperimentSpec spec = tiny_spec(/*trials=*/4, /*wmin_count=*/3);
  const json::Value ack = client.submit(spec, "alice");
  ASSERT_TRUE(is_ok(ack)) << error_of(ack);
  const std::string job = ack.find("job")->as_string();
  const std::size_t units = static_cast<std::size_t>(ack.find("units")->as_uint());
  ASSERT_EQ(units, 24u);

  server->wait_units(job, 1);
  const json::Value resp = client.roundtrip(serve::cancel_request(job));
  ASSERT_TRUE(is_ok(resp)) << error_of(resp);

  const auto status = server->wait_job(job);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->state, "cancelled");
  EXPECT_GE(status->units_done, 1u);
  EXPECT_LT(status->units_done, units);
  // Partial rows stream normally; the end record says cancelled.
  const auto [rows, end] = client.stream_results(job);
  EXPECT_EQ(rows.size(), status->units_done * 2);  // 2 heuristics per unit
  EXPECT_EQ(end.find("state")->as_string(), "cancelled");

  // A cancelled job stays cancelled across a daemon restart.
  server.reset();
  serve::Server restarted(opts);
  const auto after = restarted.job_status(job);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->state, "cancelled");
}

TEST(Serve, HardStopResumeMatchesUninterruptedRun) {
  const api::ExperimentSpec spec = tiny_spec(/*trials=*/4, /*wmin_count=*/3);

  // Reference: one uninterrupted run.
  std::vector<std::string> reference;
  {
    serve::ServerOptions opts;
    opts.root = fresh_root("ref");
    opts.threads = 2;
    serve::Server server(opts);
    Client client(server);
    const json::Value ack = client.submit(spec, "alice", "sweep");
    ASSERT_TRUE(is_ok(ack)) << error_of(ack);
    reference = sorted(client.stream_results("sweep").first);
    ASSERT_EQ(reference.size(), 48u);
  }

  // Interrupted: hard-stop (kill -9 semantics: in-flight units abandoned,
  // nothing uncommitted becomes durable) after a couple of units, restart
  // on the same root, let the resumed job finish.
  serve::ServerOptions opts;
  opts.root = fresh_root("resume");
  opts.threads = 2;
  std::vector<std::string> streamed_before_kill;
  {
    auto server = std::make_unique<serve::Server>(opts);
    Client client(*server);
    const json::Value ack = client.submit(spec, "alice", "sweep");
    ASSERT_TRUE(is_ok(ack)) << error_of(ack);
    server->wait_units("sweep", 2);
    // Whatever has streamed so far is part of the cross-lifetime union.
    streamed_before_kill = client.stream_results("sweep", 0, /*wait=*/false).first;
    server->hard_stop();
  }

  serve::Server restarted(opts);
  const auto at_restart = restarted.job_status("sweep");
  ASSERT_TRUE(at_restart.has_value());
  EXPECT_GE(at_restart->units_done, 2u);
  EXPECT_LT(at_restart->units_done, 24u) << "job finished before the kill; "
                                            "nothing was actually resumed";

  Client client(restarted);
  const auto [rows_after, end] = client.stream_results("sweep");
  EXPECT_EQ(end.find("state")->as_string(), "done");

  // In-memory publication order equals rows.jsonl commit order — `results
  // --from=N` offsets must index the same sequence before and after a
  // restart, and the restart rebuilds job->rows in file order.
  std::vector<std::string> file_rows;
  {
    std::ifstream in(opts.root + "/sweep/rows.jsonl");
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) file_rows.push_back(line);
    }
  }
  EXPECT_EQ(rows_after, file_rows);

  // Union of everything streamed across both daemon lifetimes, deduped
  // (the restart re-streams committed rows), sorted: byte-identical to the
  // uninterrupted run.
  std::vector<std::string> all = streamed_before_kill;
  all.insert(all.end(), rows_after.begin(), rows_after.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  EXPECT_EQ(all, reference);
}

TEST(Serve, CheckpointFiltersTornAndUncommittedRows) {
  const std::string root = fresh_root("torn");
  {
    serve::JobCheckpoint ckpt(root, "job");
    ckpt.write_manifest(R"({"job":"job"})");
    ckpt.commit_unit(3, {R"({"scenario":1,"trial":1,"x":1})",
                         R"({"scenario":1,"trial":1,"x":2})"});
  }
  // Simulate a kill between the rows fsync and the units.log append: valid
  // rows whose unit never committed, plus torn tails in both files.
  {
    std::ofstream rows(root + "/job/rows.jsonl", std::ios::app);
    rows << R"({"scenario":0,"trial":1,"x":3})" << "\n";  // unit 1: uncommitted
    rows << R"({"scenario":2,"trial)";                    // torn mid-row
  }
  {
    // Torn commit record: a prefix of "41 ok\n". Without the " ok" suffix
    // check this would read as committed unit 4 — whose rows are absent —
    // and the resumed job would silently lose them.
    std::ofstream units(root + "/job/units.log", std::ios::app);
    units << "4";
  }

  serve::JobCheckpoint reload(root, "job");
  const auto loaded = reload.load_rows(/*trials=*/2);
  ASSERT_EQ(loaded.completed_units.size(), 1u);
  EXPECT_EQ(loaded.completed_units[0], 3u);
  ASSERT_EQ(loaded.rows.size(), 2u);
  EXPECT_NE(loaded.rows[0].find("\"x\":1"), std::string::npos);
  EXPECT_NE(loaded.rows[1].find("\"x\":2"), std::string::npos);

  // The rewrite left a clean file: a second load sees the same state.
  serve::JobCheckpoint again(root, "job");
  const auto reloaded = again.load_rows(/*trials=*/2);
  EXPECT_EQ(reloaded.rows, loaded.rows);
}

TEST(Serve, TornUnitsTailCannotMergeWithNextCommit) {
  const std::string root = fresh_root("torntail");
  {
    serve::JobCheckpoint ckpt(root, "job");
    ckpt.write_manifest(R"({"job":"job"})");
    ckpt.commit_unit(3, {R"({"scenario":1,"trial":1,"x":1})"});
  }
  // kill -9 mid-append can tear a commit record down to a bare digit prefix
  // with no newline. units.log is reopened O_APPEND on resume, so without
  // the load-time rewrite this tail would concatenate with the next record
  // ("1" + "1 ok\n" -> "11 ok") and mark never-run unit 11 committed.
  {
    std::ofstream units(root + "/job/units.log", std::ios::app | std::ios::binary);
    units << "1";
  }
  {
    serve::JobCheckpoint ckpt(root, "job");
    const auto loaded = ckpt.load_rows(/*trials=*/2);
    EXPECT_EQ(loaded.completed_units, std::vector<std::size_t>{3});
    ckpt.commit_unit(1, {R"({"scenario":0,"trial":1,"x":2})"});
  }
  serve::JobCheckpoint again(root, "job");
  const auto reloaded = again.load_rows(/*trials=*/2);
  const std::set<std::size_t> committed(reloaded.completed_units.begin(),
                                        reloaded.completed_units.end());
  EXPECT_EQ(committed, (std::set<std::size_t>{1, 3}));
  EXPECT_EQ(reloaded.rows.size(), 2u);
}

TEST(Serve, StaleOnDiskDirectoriesAreNotReused) {
  serve::ServerOptions opts;
  opts.root = fresh_root("stale");
  opts.threads = 1;
  // Two leftovers a fresh daemon cannot load: a corrupt manifest (listed at
  // startup, skipped) and an orphaned units.log with no manifest at all.
  // Both hold committed-unit state that must never merge into a new job.
  std::filesystem::create_directories(opts.root + "/stale");
  std::filesystem::create_directories(opts.root + "/job-1");
  {
    std::ofstream manifest(opts.root + "/stale/manifest.json");
    manifest << "not json";
    std::ofstream units(opts.root + "/stale/units.log");
    units << "0 ok\n";
    std::ofstream orphan(opts.root + "/job-1/units.log");
    orphan << "0 ok\n";
  }
  serve::Server server(opts);
  Client client(server);

  const json::Value rejected = client.submit(tiny_spec(), "alice", "stale");
  EXPECT_FALSE(is_ok(rejected));
  EXPECT_NE(error_of(rejected).find("already exists"), std::string::npos)
      << error_of(rejected);

  // Generated ids skip over on-disk leftovers too.
  const json::Value ack = client.submit(tiny_spec(), "alice");
  ASSERT_TRUE(is_ok(ack)) << error_of(ack);
  EXPECT_NE(ack.find("job")->as_string(), "job-1");
  const auto [rows, end] = client.stream_results(ack.find("job")->as_string());
  EXPECT_EQ(end.find("state")->as_string(), "done");
  EXPECT_EQ(rows.size(), 16u);
}

TEST(Serve, DuplicateJobIdsAreRejected) {
  serve::ServerOptions opts;
  opts.root = fresh_root("dup");
  opts.threads = 1;
  serve::Server server(opts);
  Client client(server);

  const json::Value first = client.submit(tiny_spec(), "alice", "myjob");
  ASSERT_TRUE(is_ok(first)) << error_of(first);
  const json::Value second = client.submit(tiny_spec(), "alice", "myjob");
  EXPECT_FALSE(is_ok(second));
  EXPECT_NE(error_of(second).find("already exists"), std::string::npos);
}

TEST(Serve, MetricsVerbReportsPerTenantSeries) {
  // The metrics verb is the acceptance surface of the obs layer: two
  // tenants run a full sweep each, and the scrape must carry per-tenant
  // unit-service histograms with EXACT unit counts plus the fleet gauges
  // and checkpoint fsync series the CI smoke asserts on.
  tcgrid::obs::configure({.enabled = true});
  tcgrid::obs::Registry::instance().reset_values();

  serve::ServerOptions opts;
  opts.root = fresh_root("metrics");
  opts.threads = 2;
  {
    serve::Server server(opts);
    Client client(server);

    const api::ExperimentSpec spec = tiny_spec();  // 8 units per job
    const json::Value ack_a = client.submit(spec, "ten-a");
    ASSERT_TRUE(is_ok(ack_a)) << error_of(ack_a);
    const json::Value ack_b = client.submit(spec, "ten-b");
    ASSERT_TRUE(is_ok(ack_b)) << error_of(ack_b);
    ASSERT_TRUE(server.wait_job(ack_a.find("job")->as_string()).has_value());
    ASSERT_TRUE(server.wait_job(ack_b.find("job")->as_string()).has_value());
    // Pop every row so the stream-latency series gets populated too.
    const auto [rows_a, end_a] = client.stream_results(ack_a.find("job")->as_string());
    EXPECT_EQ(rows_a.size(), 16u);

    const json::Value resp = client.roundtrip(serve::metrics_request());
    ASSERT_TRUE(is_ok(resp)) << error_of(resp);
    EXPECT_EQ(resp.find("type")->as_string(), "metrics");
    EXPECT_TRUE(resp.find("enabled")->as_bool());
    const json::Value* metrics = resp.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->is_array());

    const auto find_metric = [&](const std::string& name,
                                 const std::string& tenant) -> const json::Value* {
      for (const json::Value& m : metrics->as_array()) {
        if (m.find("name")->as_string() != name) continue;
        const json::Value* labels = m.find("labels");
        const json::Value* t = labels != nullptr ? labels->find("tenant") : nullptr;
        if (tenant.empty() && (t == nullptr)) return &m;
        if (t != nullptr && t->as_string() == tenant) return &m;
      }
      return nullptr;
    };

    // Per-tenant unit service histograms: exactly 8 observed units each.
    for (const char* tenant : {"ten-a", "ten-b"}) {
      const json::Value* h = find_metric("tcgrid_serve_unit_service_us", tenant);
      ASSERT_NE(h, nullptr) << "no unit_service series for " << tenant;
      EXPECT_EQ(h->find("kind")->as_string(), "histogram");
      EXPECT_EQ(h->find("count")->as_uint(), 8u) << tenant;
    }
    // Stream latency: ten-a's 16 rows were popped above; ten-b's were not.
    const json::Value* lat =
        find_metric("tcgrid_serve_results_stream_latency_us", "ten-a");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->find("count")->as_uint(), 16u);
    // Fleet gauges exist and read an idle fleet.
    const json::Value* depth = find_metric("tcgrid_serve_queue_depth", "");
    ASSERT_NE(depth, nullptr);
    EXPECT_EQ(depth->find("kind")->as_string(), "gauge");
    EXPECT_EQ(depth->find("value")->as_int(), 0);
    const json::Value* inflight = find_metric("tcgrid_serve_inflight_units", "");
    ASSERT_NE(inflight, nullptr);
    EXPECT_EQ(inflight->find("value")->as_int(), 0);
    // Checkpoint durability: 2 fsyncs per committed unit, 16 units total.
    const json::Value* fsync = find_metric("tcgrid_serve_checkpoint_fsync_us", "");
    ASSERT_NE(fsync, nullptr);
    EXPECT_EQ(fsync->find("count")->as_uint(), 32u);

    // Prometheus form carries the same series as text exposition.
    const json::Value prom = client.roundtrip(serve::metrics_request("prometheus"));
    ASSERT_TRUE(is_ok(prom)) << error_of(prom);
    const std::string text = prom.find("prometheus")->as_string();
    EXPECT_NE(text.find("# TYPE tcgrid_serve_unit_service_us histogram"),
              std::string::npos);
    EXPECT_NE(text.find("tcgrid_serve_unit_service_us_count{tenant=\"ten-a\"} 8"),
              std::string::npos);
    EXPECT_NE(text.find("tcgrid_serve_unit_service_us_count{tenant=\"ten-b\"} 8"),
              std::string::npos);
    EXPECT_NE(text.find("tcgrid_serve_queue_depth 0"), std::string::npos);

    // Bad format names the field.
    const json::Value bad = client.roundtrip(serve::metrics_request("xml"));
    EXPECT_FALSE(is_ok(bad));
    EXPECT_NE(error_of(bad).find("format"), std::string::npos);
  }
  tcgrid::obs::configure({});
}

}  // namespace
