// Tests of the experiment harness (§VII-A): metrics arithmetic, the scenario
// grid, the trial runner's pairing guarantee, and a miniature end-to-end
// sweep with the paper's qualitative expectations.
#include <gtest/gtest.h>

#include <algorithm>

#include "expt/metrics.hpp"
#include "expt/report.hpp"
#include "expt/runner.hpp"
#include "expt/sweep.hpp"

namespace tcgrid::expt {
namespace {

// -------------------------------------------------------------- metrics ----

TEST(Metrics, RelativeDiffBasics) {
  ScenarioOutcomes h{{true, 120}, {true, 80}};
  ScenarioOutcomes ref{{true, 100}, {true, 100}};
  double d = 0.0;
  ASSERT_TRUE(scenario_relative_diff(h, ref, d));
  EXPECT_DOUBLE_EQ(d, 0.0);  // means equal (100 vs 100)
}

TEST(Metrics, RelativeDiffSignConvention) {
  // H slower than the reference -> positive; faster -> negative, normalized
  // by the better (smaller) makespan.
  ScenarioOutcomes slow{{true, 150}};
  ScenarioOutcomes fast{{true, 50}};
  ScenarioOutcomes ref{{true, 100}};
  double d = 0.0;
  ASSERT_TRUE(scenario_relative_diff(slow, ref, d));
  EXPECT_DOUBLE_EQ(d, 0.5);
  ASSERT_TRUE(scenario_relative_diff(fast, ref, d));
  EXPECT_DOUBLE_EQ(d, -1.0);
}

TEST(Metrics, RelativeDiffSkipsFailedTrials) {
  ScenarioOutcomes h{{false, 999999}, {true, 100}};
  ScenarioOutcomes ref{{true, 50}, {true, 50}};
  double d = 0.0;
  ASSERT_TRUE(scenario_relative_diff(h, ref, d));
  EXPECT_DOUBLE_EQ(d, 1.0);  // only the second trial is compared
}

TEST(Metrics, RelativeDiffFalseWhenNoComparableTrial) {
  ScenarioOutcomes h{{false, 1}};
  ScenarioOutcomes ref{{true, 1}};
  double d = 0.0;
  EXPECT_FALSE(scenario_relative_diff(h, ref, d));
}

TEST(Metrics, MismatchedTrialCountsThrow) {
  ScenarioOutcomes h{{true, 1}};
  ScenarioOutcomes ref{{true, 1}, {true, 2}};
  double d = 0.0;
  EXPECT_THROW((void)scenario_relative_diff(h, ref, d), std::invalid_argument);
}

TEST(Metrics, SummarizeCountsWinsAndFails) {
  // Scenario 1: H wins trial 0 (90 <= 100), loses trial 1 but within 30%.
  // Scenario 2: H fails trial 0, wins trial 1 exactly.
  std::vector<ScenarioOutcomes> h{
      {{true, 90}, {true, 120}},
      {{false, 100000}, {true, 100}},
  };
  std::vector<ScenarioOutcomes> ref{
      {{true, 100}, {true, 100}},
      {{true, 100}, {true, 100}},
  };
  auto s = summarize("H", h, ref);
  EXPECT_EQ(s.fails, 1);
  EXPECT_DOUBLE_EQ(s.pct_wins, 50.0);     // 2 wins of 4 trials
  EXPECT_DOUBLE_EQ(s.pct_wins30, 75.0);   // 3 of 4 within +30%
  EXPECT_EQ(s.scenarios_compared, 2);
}

TEST(Metrics, SummarizeAgainstSelfIsPerfect) {
  std::vector<ScenarioOutcomes> h{{{true, 90}, {true, 120}}, {{true, 55}}};
  auto s = summarize("self", h, h);
  EXPECT_EQ(s.fails, 0);
  EXPECT_DOUBLE_EQ(s.pct_diff, 0.0);
  EXPECT_DOUBLE_EQ(s.pct_wins, 100.0);
  EXPECT_DOUBLE_EQ(s.pct_wins30, 100.0);
  EXPECT_DOUBLE_EQ(s.stdv, 0.0);
}

TEST(Metrics, WinAgainstFailedReference) {
  std::vector<ScenarioOutcomes> h{{{true, 500}}};
  std::vector<ScenarioOutcomes> ref{{{false, 1000}}};
  auto s = summarize("H", h, ref);
  EXPECT_DOUBLE_EQ(s.pct_wins, 100.0);
  EXPECT_EQ(s.scenarios_compared, 0);  // no paired successes -> no %diff data
}

// ------------------------------------------------------------- scenario ----

TEST(Grid, SizeAndDeterminism) {
  SweepConfig c;
  c.ms = {5, 10};
  c.ncoms = {5, 20};
  c.wmins = {1, 3};
  c.scenarios_per_cell = 3;
  auto grid1 = scenario_grid(c);
  auto grid2 = scenario_grid(c);
  EXPECT_EQ(grid1.size(), 2u * 2u * 2u * 3u);
  for (std::size_t i = 0; i < grid1.size(); ++i) {
    EXPECT_EQ(grid1[i].seed, grid2[i].seed);
  }
  // All seeds distinct.
  std::set<std::uint64_t> seeds;
  for (const auto& p : grid1) seeds.insert(p.seed);
  EXPECT_EQ(seeds.size(), grid1.size());
}

TEST(Grid, CarriesParameters) {
  SweepConfig c;
  c.ms = {7};
  c.ncoms = {9};
  c.wmins = {4};
  c.scenarios_per_cell = 1;
  c.iterations = 5;
  c.p = 12;
  auto grid = scenario_grid(c);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_EQ(grid[0].m, 7);
  EXPECT_EQ(grid[0].ncom, 9);
  EXPECT_EQ(grid[0].wmin, 4);
  EXPECT_EQ(grid[0].iterations, 5);
  EXPECT_EQ(grid[0].p, 12);
}

// --------------------------------------------------------------- runner ----

TEST(Runner, SameTrialSameHeuristicIsDeterministic) {
  platform::ScenarioParams params;
  params.seed = 12;
  params.iterations = 3;
  auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  RunOptions opts;
  opts.slot_cap = 100000;
  auto a = run_trial(scenario, est, "Y-IE", 0, opts);
  auto b = run_trial(scenario, est, "Y-IE", 0, opts);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
}

TEST(Runner, DifferentTrialsDiffer) {
  platform::ScenarioParams params;
  params.seed = 12;
  params.iterations = 3;
  auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);
  RunOptions opts;
  opts.slot_cap = 100000;
  std::set<long> makespans;
  for (int trial = 0; trial < 5; ++trial) {
    makespans.insert(run_trial(scenario, est, "IE", trial, opts).makespan);
  }
  EXPECT_GT(makespans.size(), 1u);
}

TEST(Runner, TrialSeedIndependentOfHeuristic) {
  platform::ScenarioParams params;
  params.seed = 99;
  auto scenario = platform::make_scenario(params);
  EXPECT_EQ(trial_seed(scenario, 3), trial_seed(scenario, 3));
  EXPECT_NE(trial_seed(scenario, 3), trial_seed(scenario, 4));
}

// ---------------------------------------------------------------- sweep ----

SweepConfig mini_config() {
  SweepConfig c;
  c.ms = {5};
  c.ncoms = {5};
  c.wmins = {1};
  c.scenarios_per_cell = 2;
  c.trials = 2;
  c.iterations = 3;
  c.slot_cap = 100000;
  c.heuristics = {"RANDOM", "IE", "Y-IE"};
  c.threads = 1;
  return c;
}

TEST(Sweep, ShapesAndDeterminism) {
  auto config = mini_config();
  auto r1 = run_sweep(config);
  EXPECT_EQ(r1.heuristics.size(), 3u);
  EXPECT_EQ(r1.scenarios.size(), 2u);
  ASSERT_EQ(r1.outcomes.size(), 3u);
  ASSERT_EQ(r1.outcomes[0].size(), 2u);
  ASSERT_EQ(r1.outcomes[0][0].size(), 2u);

  auto r2 = run_sweep(config);
  for (std::size_t h = 0; h < 3; ++h) {
    for (std::size_t sc = 0; sc < 2; ++sc) {
      for (std::size_t t = 0; t < 2; ++t) {
        EXPECT_EQ(r1.outcomes[h][sc][t].makespan, r2.outcomes[h][sc][t].makespan);
      }
    }
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  auto config = mini_config();
  config.threads = 1;
  auto r1 = run_sweep(config);
  config.threads = 4;
  auto r2 = run_sweep(config);
  for (std::size_t h = 0; h < r1.outcomes.size(); ++h) {
    for (std::size_t sc = 0; sc < r1.outcomes[h].size(); ++sc) {
      for (std::size_t t = 0; t < r1.outcomes[h][sc].size(); ++t) {
        EXPECT_EQ(r1.outcomes[h][sc][t].makespan, r2.outcomes[h][sc][t].makespan);
      }
    }
  }
}

TEST(Sweep, ProgressCallbackReachesTotal) {
  auto config = mini_config();
  std::size_t last = 0, total = 0;
  std::size_t calls = 0;
  (void)run_sweep(config, [&](std::size_t done, std::size_t n) {
    last = std::max(last, done);
    total = n;
    ++calls;
  });
  // Trial-major sweeps tick once per (scenario, trial) unit: 2 scenarios x
  // 2 trials (the adapter inherits the api::Session progress contract).
  EXPECT_EQ(last, 4u);
  EXPECT_EQ(total, 4u);
  EXPECT_EQ(calls, 4u);
}

TEST(Sweep, HeuristicIndexLookup) {
  auto config = mini_config();
  auto r = run_sweep(config);
  EXPECT_EQ(r.heuristic_index("IE"), 1);
  // Contract: unknown names throw (the index addresses `outcomes`, so a
  // sentinel would invite out-of-bounds use); try_heuristic_index probes.
  EXPECT_THROW((void)r.heuristic_index("nope"), std::invalid_argument);
  EXPECT_EQ(r.try_heuristic_index("Y-IE"), 2);
  EXPECT_EQ(r.try_heuristic_index("nope"), -1);
}

TEST(Sweep, UnknownHeuristicNameFailsBeforeRunning) {
  auto config = mini_config();
  config.heuristics = {"IE", "TYPO-IE"};
  // Validated up front by the api facade underneath run_sweep — the sweep
  // must throw before simulating anything, not die mid-run.
  EXPECT_THROW((void)run_sweep(config), std::invalid_argument);
}

// --------------------------------------------------------------- report ----

TEST(Report, SummariesSortedAndReferenceIsZero) {
  auto config = mini_config();
  auto results = run_sweep(config);
  auto summaries = summarize_all(results, "IE");
  ASSERT_EQ(summaries.size(), 3u);
  for (std::size_t i = 1; i < summaries.size(); ++i) {
    EXPECT_LE(summaries[i - 1].pct_diff, summaries[i].pct_diff);
  }
  for (const auto& s : summaries) {
    if (s.name == "IE") {
      EXPECT_DOUBLE_EQ(s.pct_diff, 0.0);
      EXPECT_DOUBLE_EQ(s.pct_wins, 100.0);
    }
    if (s.name == "RANDOM") {
      // The paper's headline: RANDOM is far worse than the informed
      // heuristics, on every sweep size.
      EXPECT_GT(s.pct_diff, 0.0);
    }
  }
  auto table = paper_table(summaries);
  EXPECT_EQ(table.rows(), 3u);
  EXPECT_NE(table.str().find("RANDOM"), std::string::npos);
}

TEST(Report, OutcomesCsvShape) {
  auto config = mini_config();
  auto results = run_sweep(config);
  const std::string csv = outcomes_csv(results);
  // Header + 3 heuristics x 2 scenarios x 2 trials = 13 lines.
  EXPECT_EQ(static_cast<int>(std::count(csv.begin(), csv.end(), '\n')), 13);
  EXPECT_EQ(csv.rfind("heuristic,m,ncom,wmin,", 0), 0u);
  EXPECT_NE(csv.find("Y-IE,5,5,1,"), std::string::npos);
}

TEST(Report, Figure2SeriesCoversWmins) {
  auto config = mini_config();
  config.wmins = {1, 2};
  auto results = run_sweep(config);
  auto series = figure2_series(results, "IE");
  ASSERT_EQ(series.size(), 3u);
  for (const auto& [name, points] : series) {
    EXPECT_EQ(points.size(), 2u) << name;
    EXPECT_EQ(points[0].first, 1);
    EXPECT_EQ(points[1].first, 2);
  }
  // Reference series is identically zero.
  for (const auto& [wmin, v] : series.at("IE")) EXPECT_DOUBLE_EQ(v, 0.0);
  auto table = figure2_table(series);
  EXPECT_EQ(table.rows(), 2u);
}

}  // namespace
}  // namespace tcgrid::expt
