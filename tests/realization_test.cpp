// Tests of materialized availability realizations (DESIGN.md §9):
//
//   * platform::Realization expands rows bit-identical to live fill_block
//     generation for every registered availability family, and its digest
//     bitsets match the engine's per-block digest definitions;
//   * RealizationView is a faithful AvailabilitySource (per-slot == block
//     pulls == the live source), and position() tracks consumption on every
//     source;
//   * the engine's replay path — window refills AND the change-to-change
//     jump loops — is bit-identical to live generation for every heuristic
//     across families, traces included;
//   * the byte budget throws, and api::Session falls back to live
//     generation with identical sweep results (shared / tiny-budget /
//     disabled all agree);
//   * trial-major Session::run: per-unit progress, contiguous per-unit row
//     groups, and clear_caches() releasing per-thread estimator entries.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "expt/runner.hpp"
#include "platform/realization.hpp"
#include "platform/scenario.hpp"
#include "platform/semi_markov.hpp"
#include "scen/scen.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace tcgrid {
namespace {

using platform::Realization;
using platform::RealizationView;
using State = markov::State;

platform::Scenario test_scenario(std::uint64_t seed = 33, int m = 5, long wmin = 2) {
  platform::ScenarioParams params;
  params.m = m;
  params.ncom = 5;
  params.wmin = wmin;
  params.seed = seed;
  return platform::make_scenario(params);
}

/// Families exercised everywhere below. "rzn-trace" is registered on first
/// use (trace families need a concrete timeline).
const std::vector<std::string>& families() {
  static const std::vector<std::string> names = [] {
    const auto scenario = test_scenario(99);
    auto src = scen::availability_family("markov")->make_source(
        scenario.platform, 4242, platform::InitialStates::Stationary);
    auto timeline =
        std::make_shared<platform::StateTimeline>(platform::record(*src, 400));
    scen::register_availability_family(scen::make_trace_family(
        "rzn-trace", scen::TraceFamilyParams{.timeline = std::move(timeline)}));
    return std::vector<std::string>{"markov", "weibull", "daynight", "rzn-trace"};
  }();
  return names;
}

std::unique_ptr<platform::AvailabilitySource> make_source(const std::string& family,
                                                          const platform::Platform& p,
                                                          std::uint64_t seed) {
  return scen::availability_family(family)->make_source(
      p, seed, platform::InitialStates::Stationary);
}

void expect_identical_results(const sim::SimulationResult& a,
                              const sim::SimulationResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.total_reconfigurations, b.total_reconfigurations);
  EXPECT_EQ(a.idle_slots, b.idle_slots);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const auto& x = a.iterations[i];
    const auto& y = b.iterations[i];
    EXPECT_EQ(x.start_slot, y.start_slot) << "iteration " << i;
    EXPECT_EQ(x.end_slot, y.end_slot) << "iteration " << i;
    EXPECT_EQ(x.comm_slots, y.comm_slots) << "iteration " << i;
    EXPECT_EQ(x.stalled_slots, y.stalled_slots) << "iteration " << i;
    EXPECT_EQ(x.compute_slots, y.compute_slots) << "iteration " << i;
    EXPECT_EQ(x.suspended_slots, y.suspended_slots) << "iteration " << i;
    EXPECT_EQ(x.restarts, y.restarts) << "iteration " << i;
    EXPECT_EQ(x.reconfigurations, y.reconfigurations) << "iteration " << i;
  }
}

void expect_identical_traces(const sim::ActivityTrace& a, const sim::ActivityTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size());
    for (std::size_t q = 0; q < a[t].size(); ++q) {
      ASSERT_TRUE(a[t][q].state == b[t][q].state && a[t][q].action == b[t][q].action)
          << "slot " << t << " proc " << q;
    }
  }
}

// ---------------------------------------------------------------- sources ----

TEST(Position, TracksAdvanceAndFillBlock) {
  const auto scenario = test_scenario();
  for (const auto& family : families()) {
    SCOPED_TRACE(family);
    auto src = make_source(family, scenario.platform, 7);
    EXPECT_EQ(src->position(), 0);
    src->advance();
    src->advance();
    EXPECT_EQ(src->position(), 2);
    std::vector<State> buf(static_cast<std::size_t>(src->size()) * 10);
    src->fill_block(buf.data(), 10);
    EXPECT_EQ(src->position(), 12);
  }
  platform::FixedAvailability fixed({{State::Up, State::Down}});
  EXPECT_EQ(fixed.position(), 0);
  fixed.advance();
  EXPECT_EQ(fixed.position(), 1);
}

// ------------------------------------------------------------- realization ----

TEST(Realization, ExpandsRowsBitIdenticalToLiveGeneration) {
  const auto scenario = test_scenario();
  const auto p = static_cast<std::size_t>(scenario.platform.size());
  constexpr long kSlots = 1500;
  for (const auto& family : families()) {
    SCOPED_TRACE(family);
    // Live reference: one fill_block pull of the whole range.
    std::vector<State> live(p * kSlots);
    make_source(family, scenario.platform, 11)->fill_block(live.data(), kSlots);

    Realization real(make_source(family, scenario.platform, 11));
    real.ensure(kSlots);
    EXPECT_GE(real.frontier(), kSlots);
    EXPECT_GT(real.bytes(), 0u);

    // Expand in deliberately awkward chunks (and re-expand from the start:
    // replays rewind).
    for (const long chunk : {1L, 7L, 64L, kSlots}) {
      std::vector<State> got(p * kSlots);
      for (long t = 0; t < kSlots; t += chunk) {
        const long hi = std::min(kSlots, t + chunk);
        real.expand_rows(t, hi, got.data() + static_cast<std::size_t>(t) * p);
      }
      ASSERT_EQ(got, live) << "chunk " << chunk;
    }
  }
}

TEST(Realization, DigestsMatchEngineDefinitions) {
  const auto scenario = test_scenario();
  const auto p = static_cast<std::size_t>(scenario.platform.size());
  constexpr long kSlots = 1200;
  for (const auto& family : families()) {
    SCOPED_TRACE(family);
    Realization real(make_source(family, scenario.platform, 13));
    real.ensure(kSlots);
    std::vector<State> rows(p * kSlots);
    real.expand_rows(0, kSlots, rows.data());

    std::vector<unsigned char> chg(kSlots), gain(kSlots), ndown(kSlots);
    real.copy_digests(0, kSlots, chg.data(), gain.data(), ndown.data());

    auto is_up = [](State s) { return s == State::Up; };
    for (long t = 0; t < kSlots; ++t) {
      bool r_chg = true, r_gain = true, r_ndown = true;  // slot 0: conservative
      if (t > 0) {
        r_chg = r_gain = r_ndown = false;
        const State* prev = rows.data() + static_cast<std::size_t>(t - 1) * p;
        const State* row = rows.data() + static_cast<std::size_t>(t) * p;
        for (std::size_t q = 0; q < p; ++q) {
          r_chg |= is_up(prev[q]) != is_up(row[q]);
          r_gain |= !is_up(prev[q]) && is_up(row[q]);
          r_ndown |= row[q] == State::Down && prev[q] != State::Down;
        }
      }
      ASSERT_EQ(static_cast<bool>(chg[t]), r_chg) << "slot " << t;
      ASSERT_EQ(static_cast<bool>(gain[t]), r_gain) << "slot " << t;
      ASSERT_EQ(static_cast<bool>(ndown[t]), r_ndown) << "slot " << t;
      ASSERT_EQ(real.up_changed_at(t), r_chg) << "slot " << t;
      ASSERT_EQ(real.up_gain_at(t), r_gain) << "slot " << t;
      ASSERT_EQ(real.new_down_at(t), r_ndown) << "slot " << t;
    }
  }
}

TEST(Realization, NextChangeMatchesNaiveScan) {
  const auto scenario = test_scenario();
  constexpr long kSlots = 900;
  Realization real(make_source("markov", scenario.platform, 17));
  real.ensure(kSlots);
  auto naive = [&](long from, long limit) {
    for (long t = from; t < limit; ++t) {
      if (real.up_changed_at(t) || real.new_down_at(t)) return t;
    }
    return limit;
  };
  for (long from : {0L, 1L, 63L, 64L, 65L, 130L, 500L, 897L}) {
    for (long limit : {from, from + 1, from + 50, from + 200, kSlots}) {
      if (limit < from || limit > kSlots) continue;
      EXPECT_EQ(real.next_change(from, limit), naive(from, limit))
          << "from " << from << " limit " << limit;
    }
  }
  // next_change extends the frontier on demand: scanning from the frontier
  // itself must materialize at least one more chunk.
  const long old_frontier = real.frontier();
  const long next = real.next_change(old_frontier, old_frontier + 100);
  EXPECT_GT(real.frontier(), old_frontier);
  EXPECT_GE(next, old_frontier);
  EXPECT_LE(next, old_frontier + 100);
}

TEST(Realization, ViewIsAFaithfulSource) {
  const auto scenario = test_scenario();
  const auto p = static_cast<std::size_t>(scenario.platform.size());
  constexpr long kSlots = 600;
  for (const auto& family : families()) {
    SCOPED_TRACE(family);
    auto live = make_source(family, scenario.platform, 19);
    Realization real(make_source(family, scenario.platform, 19));
    RealizationView view(real);
    EXPECT_EQ(view.size(), static_cast<int>(p));

    std::vector<State> live_block(p * 32);
    for (long t = 0; t < kSlots; ++t) {
      if (t % 5 == 0 && t + 32 <= kSlots) {
        // Alternate pull styles mid-stream; the view must not care.
        std::vector<State> view_block(p * 32);
        live->fill_block(live_block.data(), 32);
        view.fill_block(view_block.data(), 32);
        ASSERT_EQ(view_block, live_block) << "slot " << t;
        t += 31;
        continue;
      }
      for (int q = 0; q < static_cast<int>(p); ++q) {
        ASSERT_EQ(view.state(q), live->state(q)) << "slot " << t << " proc " << q;
      }
      live->advance();
      view.advance();
    }
    EXPECT_EQ(view.position(), live->position());
  }
}

TEST(Realization, BudgetOverflowThrows) {
  const auto scenario = test_scenario();
  Realization real(make_source("markov", scenario.platform, 23), 2048);
  EXPECT_THROW(real.ensure(200'000), platform::RealizationBudgetExceeded);
  try {
    Realization again(make_source("markov", scenario.platform, 23), 2048);
    again.ensure(200'000);
  } catch (const platform::RealizationBudgetExceeded& e) {
    EXPECT_GT(e.bytes(), e.budget());
    EXPECT_EQ(e.budget(), 2048u);
  }
}

TEST(Realization, RejectsAdvancedSource) {
  const auto scenario = test_scenario();
  auto src = make_source("markov", scenario.platform, 29);
  src->advance();
  EXPECT_THROW(Realization{std::move(src)}, std::invalid_argument);
}

// ------------------------------------------------------------ engine replay ----

/// Live vs replayed runs for one (scenario, family, heuristic, trial):
/// untraced (exercising the change-to-change jump loops) and traced
/// (exercising the replay window path) — all three bit-identical.
void expect_replay_identical(const platform::Scenario& scenario,
                             const sched::Estimator& estimator,
                             Realization& realization, const std::string& family,
                             const std::string& heuristic, int trial,
                             bool fast_forward = true) {
  api::Options options;
  options.slot_cap = 50'000;
  options.fast_forward = fast_forward;
  const std::uint64_t sched_seed = util::derive_seed(
      scenario.params.seed, 2000 + static_cast<std::uint64_t>(trial));
  const std::uint64_t avail_seed = expt::trial_seed(scenario, trial);

  auto run = [&](bool replay, bool trace,
                 sim::ActivityTrace* out) -> sim::SimulationResult {
    auto scheduler = sched::make_scheduler(heuristic, estimator, sched_seed);
    const sim::EngineOptions eopts = options.engine(trace);
    sim::SimulationResult r;
    if (replay) {
      sim::Engine engine(scenario.platform, scenario.app, realization, *scheduler,
                         eopts);
      r = engine.run();
      if (out != nullptr) *out = engine.trace();
    } else {
      auto source = make_source(family, scenario.platform, avail_seed);
      sim::Engine engine(scenario.platform, scenario.app, *source, *scheduler, eopts);
      r = engine.run();
      if (out != nullptr) *out = engine.trace();
    }
    return r;
  };

  sim::ActivityTrace live_trace;
  sim::ActivityTrace replay_trace;
  const auto live = run(false, true, &live_trace);
  const auto replay_jump = run(true, false, nullptr);
  const auto replay_window = run(true, true, &replay_trace);
  expect_identical_results(live, replay_jump);
  expect_identical_results(live, replay_window);
  expect_identical_traces(live_trace, replay_trace);
}

TEST(Replay, BitIdenticalForEveryHeuristicAndFamily) {
  std::vector<std::string> heuristics = sched::all_heuristic_names();
  for (const auto& n : sched::extension_heuristic_names()) heuristics.push_back(n);
  const auto scenario = test_scenario();
  const sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);

  for (const auto& family : families()) {
    // ONE realization shared by every heuristic — the trial-major usage.
    Realization realization(
        make_source(family, scenario.platform, expt::trial_seed(scenario, 0)));
    for (const auto& heuristic : heuristics) {
      SCOPED_TRACE(family + " / " + heuristic);
      expect_replay_identical(scenario, estimator, realization, family, heuristic, 0);
    }
  }
}

TEST(Replay, FrozenRealizationContinuesLiveBitIdentically) {
  // Session freezes a unit's realization when its LAST heuristic starts:
  // the engine replays the materialized prefix, then switches to live
  // continuation on the embedded source. The stream is one unbroken
  // sequence, so results and traces must not move — whether the frontier
  // sits mid-run or at zero (single-heuristic degenerate case).
  const auto scenario = test_scenario();
  const sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);
  api::Options options;
  options.slot_cap = 50'000;
  for (const auto& family : families()) {
    for (const long prefix : {0L, 64L}) {
      SCOPED_TRACE(family + " prefix " + std::to_string(prefix));
      for (const char* heuristic : {"IE", "RANDOM", "Y-IE", "IY"}) {
        SCOPED_TRACE(heuristic);
        const std::uint64_t avail_seed = expt::trial_seed(scenario, 0);
        const std::uint64_t sched_seed = util::derive_seed(scenario.params.seed, 2000);

        auto live_sched = sched::make_scheduler(heuristic, estimator, sched_seed);
        auto live_src = make_source(family, scenario.platform, avail_seed);
        sim::Engine live_engine(scenario.platform, scenario.app, *live_src,
                                *live_sched, options.engine(true));
        const auto live = live_engine.run();

        Realization real(make_source(family, scenario.platform, avail_seed));
        if (prefix > 0) real.ensure(prefix);
        real.freeze();
        auto frozen_sched = sched::make_scheduler(heuristic, estimator, sched_seed);
        sim::Engine frozen_engine(scenario.platform, scenario.app, real,
                                  *frozen_sched, options.engine(true));
        const auto frozen = frozen_engine.run();

        expect_identical_results(live, frozen);
        expect_identical_traces(live_engine.trace(), frozen_engine.trace());
      }
    }
  }
}

TEST(Replay, BitIdenticalOnPerSlotEngineLoop) {
  // fast_forward = false replays through the plain window path only.
  const auto scenario = test_scenario(77, 5, 3);
  const sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);
  for (const auto& family : families()) {
    Realization realization(
        make_source(family, scenario.platform, expt::trial_seed(scenario, 1)));
    for (const char* heuristic : {"IE", "RANDOM", "Y-IE", "E-IAY"}) {
      SCOPED_TRACE(family + std::string(" / ") + heuristic);
      expect_replay_identical(scenario, estimator, realization, family, heuristic, 1,
                              /*fast_forward=*/false);
    }
  }
}

// ------------------------------------------------------------ trial-major api ----

api::ExperimentSpec mini_spec() {
  api::ExperimentSpec spec;
  spec.grid.ms = {5};
  spec.grid.ncoms = {5};
  spec.grid.wmins = {1, 2};
  spec.grid.scenarios_per_cell = 2;
  spec.trials = 2;
  spec.grid.iterations = 3;
  spec.heuristics = {"RANDOM", "IE", "Y-IE"};
  spec.options.slot_cap = 100'000;
  spec.options.threads = 2;
  return spec;
}

/// Index-addressed collector of FULL simulation results (AggregateSink only
/// keeps success+makespan; sweep bit-identity must compare every counter).
class CollectSink final : public api::ResultSink {
 public:
  void begin(const api::ExperimentSpec& spec,
             const std::vector<platform::ScenarioParams>& scenarios,
             const std::vector<std::string>& heuristics) override {
    (void)spec;
    scenarios_ = scenarios.size();
    results_.assign(heuristics.size(),
                    std::vector<std::vector<sim::SimulationResult>>(scenarios_));
  }
  void consume(const api::ResultRow& row) override {
    auto& per_scenario = results_[row.heuristic][row.scenario];
    if (per_scenario.size() <= static_cast<std::size_t>(row.trial)) {
      per_scenario.resize(static_cast<std::size_t>(row.trial) + 1);
    }
    per_scenario[static_cast<std::size_t>(row.trial)] = *row.result;
  }
  [[nodiscard]] const std::vector<std::vector<std::vector<sim::SimulationResult>>>&
  results() const {
    return results_;
  }

 private:
  std::size_t scenarios_ = 0;
  std::vector<std::vector<std::vector<sim::SimulationResult>>> results_;
};

std::vector<std::vector<std::vector<sim::SimulationResult>>> sweep_with_budget(
    std::size_t budget) {
  api::ExperimentSpec spec = mini_spec();
  spec.options.realization_budget = budget;
  api::Session session(spec.options);
  CollectSink sink;
  session.run(spec, {&sink});
  return sink.results();
}

TEST(TrialMajor, SharedTinyBudgetAndDisabledSweepsAllIdentical) {
  const auto shared = sweep_with_budget(64u << 20);
  const auto live = sweep_with_budget(0);      // sharing disabled
  const auto tiny = sweep_with_budget(4096);   // every unit overflows mid-run
  ASSERT_EQ(shared.size(), live.size());
  for (std::size_t h = 0; h < shared.size(); ++h) {
    for (std::size_t sc = 0; sc < shared[h].size(); ++sc) {
      ASSERT_EQ(shared[h][sc].size(), 2u);
      for (std::size_t t = 0; t < shared[h][sc].size(); ++t) {
        SCOPED_TRACE("h" + std::to_string(h) + " sc" + std::to_string(sc) + " t" +
                     std::to_string(t));
        expect_identical_results(shared[h][sc][t], live[h][sc][t]);
        expect_identical_results(shared[h][sc][t], tiny[h][sc][t]);
      }
    }
  }
}

/// Checks the documented row-ordering guarantee: each (scenario, trial)
/// unit's rows arrive contiguously, in spec heuristic order.
class GroupingSink final : public api::ResultSink {
 public:
  void begin(const api::ExperimentSpec& spec,
             const std::vector<platform::ScenarioParams>&,
             const std::vector<std::string>& heuristics) override {
    (void)spec;
    h_count_ = heuristics.size();
  }
  void consume(const api::ResultRow& row) override {
    const std::size_t in_group = seen_ % h_count_;
    if (row.heuristic != in_group) ordered_ = false;
    if (in_group == 0) {
      scenario_ = row.scenario;
      trial_ = row.trial;
    } else if (row.scenario != scenario_ || row.trial != trial_) {
      contiguous_ = false;
    }
    ++seen_;
  }
  [[nodiscard]] bool ordered() const { return ordered_; }
  [[nodiscard]] bool contiguous() const { return contiguous_; }
  [[nodiscard]] std::size_t seen() const { return seen_; }

 private:
  std::size_t h_count_ = 1;
  std::size_t seen_ = 0;
  std::size_t scenario_ = 0;
  int trial_ = 0;
  bool ordered_ = true;
  bool contiguous_ = true;
};

TEST(TrialMajor, RowsOfAUnitArriveContiguouslyInHeuristicOrder) {
  const api::ExperimentSpec spec = mini_spec();  // threads = 2: racy unless held
  api::Session session(spec.options);
  GroupingSink sink;
  const auto stats = session.run(spec, {&sink});
  EXPECT_TRUE(sink.ordered());
  EXPECT_TRUE(sink.contiguous());
  EXPECT_EQ(sink.seen(), stats.rows);
  EXPECT_EQ(stats.rows, 4u * 2u * 3u);  // scenarios x trials x heuristics
}

TEST(TrialMajor, ProgressTicksOncePerScenarioTrialUnit) {
  const api::ExperimentSpec spec = mini_spec();
  api::Session session(spec.options);
  api::AggregateSink sink;
  std::size_t calls = 0, last = 0, total = 0;
  session.run(spec, {&sink}, [&](std::size_t done, std::size_t n) {
    ++calls;
    last = std::max(last, done);
    total = n;
  });
  EXPECT_EQ(total, 8u);  // 4 scenarios x 2 trials
  EXPECT_EQ(last, 8u);
  EXPECT_EQ(calls, 8u);
}

TEST(TrialMajor, ClearCachesReleasesPerThreadEstimators) {
  api::ExperimentSpec cell_a = mini_spec();
  cell_a.options.threads = 1;
  api::ExperimentSpec cell_b = cell_a;
  cell_b.grid.wmins = {3, 4};

  api::Session session(cell_a.options);
  api::AggregateSink a1;
  session.run(cell_a, {&a1});
  // One entry per scenario the (single) worker touched.
  EXPECT_EQ(session.cached_entries(), 4u);

  session.clear_caches();
  EXPECT_EQ(session.cached_entries(), 0u);

  // A long sweep over many cells stays bounded when cleared between cells:
  // after clearing, only cell B's scenarios are retained — nothing from A.
  api::AggregateSink b1;
  session.run(cell_b, {&b1});
  EXPECT_EQ(session.cached_entries(), 4u);

  // Chunked dispatch keeps every trial of a scenario on one worker, so even
  // a multi-threaded sweep builds exactly one estimator per scenario (not
  // one per scenario per thread).
  session.clear_caches();
  api::ExperimentSpec mt = cell_a;
  mt.options.threads = 2;
  api::AggregateSink m1;
  session.run(mt, {&m1});
  EXPECT_EQ(session.cached_entries(), 4u);

  // And the session still computes the same results after a clear.
  session.clear_caches();
  api::AggregateSink a2;
  session.run(cell_a, {&a2});
  const auto r1 = std::move(a1).take();
  const auto r2 = std::move(a2).take();
  for (std::size_t h = 0; h < r1.outcomes.size(); ++h) {
    for (std::size_t sc = 0; sc < r1.outcomes[h].size(); ++sc) {
      for (std::size_t t = 0; t < r1.outcomes[h][sc].size(); ++t) {
        EXPECT_EQ(r1.outcomes[h][sc][t].makespan, r2.outcomes[h][sc][t].makespan);
        EXPECT_EQ(r1.outcomes[h][sc][t].success, r2.outcomes[h][sc][t].success);
      }
    }
  }
}

TEST(TrialMajor, RunCustomReportsSourcePosition) {
  const auto scenario = test_scenario();
  api::Options options;
  options.slot_cap = 50'000;
  api::Session session(options);
  const sched::Estimator estimator(scenario.platform, scenario.app, 1e-6);
  auto scheduler = sched::make_scheduler("IE", estimator, 1);
  auto source = make_source("markov", scenario.platform, 5);
  const auto result =
      session.run_custom(scenario.platform, scenario.app, *source, *scheduler);
  // The documented post-run window: past the last simulated slot by less
  // than one prefetch block.
  EXPECT_GE(source->position(), result.makespan);
  EXPECT_LT(source->position(), result.makespan + options.avail_block);
}

}  // namespace
}  // namespace tcgrid
