// Tests of the off-line module (§IV): bitset machinery, the exact bi-clique
// solver, the mu = 1 / mu = inf decision procedures, and — the executable
// content of Theorem 4.1 — equivalence of the ENCD reductions against a
// brute-force ENCD oracle on random graphs.
#include <gtest/gtest.h>

#include "offline/encd.hpp"
#include "offline/exact_solver.hpp"
#include "offline/instance.hpp"
#include "util/rng.hpp"

namespace tcgrid::offline {
namespace {

// -------------------------------------------------------------- SlotSet ----

TEST(SlotSet, SetTestCount) {
  SlotSet s(130);
  EXPECT_EQ(s.count(), 0u);
  s.set(0);
  s.set(64);
  s.set(129);
  EXPECT_TRUE(s.test(0));
  EXPECT_TRUE(s.test(64));
  EXPECT_TRUE(s.test(129));
  EXPECT_FALSE(s.test(1));
  EXPECT_EQ(s.count(), 3u);
  EXPECT_EQ(s.indices(), (std::vector<int>{0, 64, 129}));
}

TEST(SlotSet, Intersect) {
  SlotSet a(70), b(70);
  a.set(3);
  a.set(65);
  a.set(69);
  b.set(65);
  b.set(69);
  b.set(1);
  a.intersect(b);
  EXPECT_EQ(a.indices(), (std::vector<int>{65, 69}));
}

// ------------------------------------------------------------- biclique ----

OfflineInstance diagonal_instance() {
  // 4 procs x 6 slots; procs 0-2 share slots {0,1,2}; proc 3 only slot 5.
  OfflineInstance inst(4, 6);
  for (int q = 0; q < 3; ++q) {
    for (int t = 0; t < 3; ++t) inst.set_up(q, t);
  }
  inst.set_up(0, 4);
  inst.set_up(3, 5);
  return inst;
}

TEST(Biclique, FindsKnownSubmatrix) {
  auto inst = diagonal_instance();
  auto r = find_biclique(inst, 3, 3);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.procs, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(r.slots.size(), 3u);
  for (int q : r.procs) {
    for (int t : r.slots) EXPECT_TRUE(inst.up(q, t));
  }
}

TEST(Biclique, RejectsInfeasible) {
  auto inst = diagonal_instance();
  EXPECT_FALSE(find_biclique(inst, 4, 1).found);  // proc 3 shares nothing
  EXPECT_FALSE(find_biclique(inst, 3, 4).found);
  EXPECT_FALSE(find_biclique(inst, 5, 1).found);  // a > p
  EXPECT_FALSE(find_biclique(inst, 1, 7).found);  // b > N
  EXPECT_FALSE(find_biclique(inst, 0, 1).found);  // degenerate
}

TEST(Biclique, CertificateIsAlwaysValid) {
  util::Rng rng(31);
  for (int trial = 0; trial < 30; ++trial) {
    OfflineInstance inst(8, 12);
    for (int q = 0; q < 8; ++q) {
      for (int t = 0; t < 12; ++t) {
        if (rng.uniform01() < 0.6) inst.set_up(q, t);
      }
    }
    auto r = find_biclique(inst, 3, 4);
    if (!r.found) continue;
    EXPECT_EQ(r.procs.size(), 3u);
    EXPECT_EQ(r.slots.size(), 4u);
    for (int q : r.procs) {
      for (int t : r.slots) EXPECT_TRUE(inst.up(q, t));
    }
  }
}

// --------------------------------------------------------- exact solver ----

TEST(ExactSolver, Mu1MatchesBiclique) {
  auto inst = diagonal_instance();
  EXPECT_TRUE(solve_mu1(inst, 3, 3).found);
  EXPECT_FALSE(solve_mu1(inst, 3, 4).found);
}

TEST(ExactSolver, MuInfStacksTasks) {
  // 2 procs UP during 6 common slots. m = 4 tasks, w = 3: infeasible with one
  // task per worker (needs 4 procs), feasible with j = 2 (2 procs, 6 slots).
  OfflineInstance inst(2, 6);
  for (int q = 0; q < 2; ++q) {
    for (int t = 0; t < 6; ++t) inst.set_up(q, t);
  }
  EXPECT_FALSE(solve_mu1(inst, 4, 3).found);
  auto r = solve_muinf(inst, 4, 3);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.tasks_per_worker, 2);
  EXPECT_EQ(r.certificate.procs.size(), 2u);
  EXPECT_EQ(r.certificate.slots.size(), 6u);
}

TEST(ExactSolver, MuInfAtLeastAsPermissiveAsMu1) {
  util::Rng rng(37);
  for (int trial = 0; trial < 20; ++trial) {
    OfflineInstance inst(6, 10);
    for (int q = 0; q < 6; ++q) {
      for (int t = 0; t < 10; ++t) {
        if (rng.uniform01() < 0.5) inst.set_up(q, t);
      }
    }
    for (int m = 1; m <= 4; ++m) {
      for (int w = 1; w <= 4; ++w) {
        if (solve_mu1(inst, m, w).found) {
          EXPECT_TRUE(solve_muinf(inst, m, w).found) << "m=" << m << " w=" << w;
        }
      }
    }
  }
}

TEST(ExactSolver, MaxCoupledSlotsBinarySearch) {
  auto inst = diagonal_instance();
  EXPECT_EQ(max_coupled_slots(inst, 3), 3);
  EXPECT_EQ(max_coupled_slots(inst, 1), 4);  // proc 0 alone: slots {0,1,2,4}
  EXPECT_EQ(max_coupled_slots(inst, 4), 0);
}

TEST(ExactSolver, MaxCoupledSlotsMonotoneInM) {
  util::Rng rng(41);
  OfflineInstance inst(8, 16);
  for (int q = 0; q < 8; ++q) {
    for (int t = 0; t < 16; ++t) {
      if (rng.uniform01() < 0.7) inst.set_up(q, t);
    }
  }
  int prev = max_coupled_slots(inst, 1);
  for (int m = 2; m <= 8; ++m) {
    const int cur = max_coupled_slots(inst, m);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

// ----------------------------------------------------------------- ENCD ----

TEST(Encd, BruteForceOnKnownGraph) {
  // Complete bipartite K_{2,3} plus an isolated left vertex.
  BipartiteGraph g(3, 3);
  for (int v = 0; v < 2; ++v) {
    for (int w = 0; w < 3; ++w) g.add_edge(v, w);
  }
  EXPECT_TRUE(encd_brute_force(g, 2, 3));
  EXPECT_TRUE(encd_brute_force(g, 1, 3));
  EXPECT_FALSE(encd_brute_force(g, 3, 1));  // vertex 2 has no edges
  EXPECT_FALSE(encd_brute_force(g, 2, 4));  // b > |W|
}

TEST(Encd, TimelineShapesOfReductions) {
  BipartiteGraph g(4, 5);
  auto mu1 = encd_to_offline_mu1(g);
  EXPECT_EQ(mu1.procs(), 4);
  EXPECT_EQ(mu1.slots(), 5);
  auto muinf = encd_to_offline_muinf(g);
  EXPECT_EQ(muinf.procs(), 4);
  EXPECT_EQ(muinf.slots(), 2 * 5 + 1);
  // The appended slots are all-UP for every processor.
  for (int q = 0; q < 4; ++q) {
    for (int t = 5; t < muinf.slots(); ++t) EXPECT_TRUE(muinf.up(q, t));
  }
}

// Theorem 4.1, executable: on random graphs, the ENCD oracle agrees with the
// reduced OFFLINE-COUPLED instances, for both reductions.
class EncdEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(EncdEquivalence, Mu1ReductionAgreesWithOracle) {
  util::Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
  const auto g = BipartiteGraph::random(6, 6, 0.55, rng);
  const auto inst = encd_to_offline_mu1(g);
  for (int a = 1; a <= 4; ++a) {
    for (int b = 1; b <= 4; ++b) {
      EXPECT_EQ(encd_brute_force(g, a, b), solve_mu1(inst, a, b).found)
          << "a=" << a << " b=" << b;
    }
  }
}

TEST_P(EncdEquivalence, MuInfReductionAgreesWithOracle) {
  util::Rng rng(static_cast<std::uint64_t>(900 + GetParam()));
  const auto g = BipartiteGraph::random(5, 5, 0.55, rng);
  const auto inst = encd_to_offline_muinf(g);
  // Theorem 4.1 (ii): ENCD(a, b) iff OFFLINE-COUPLED(mu=inf) with m = a and
  // w = b + |W| + 1 on the extended instance.
  for (int a = 1; a <= 3; ++a) {
    for (int b = 1; b <= 3; ++b) {
      const int w = b + g.right() + 1;
      EXPECT_EQ(encd_brute_force(g, a, b), solve_muinf(inst, a, w).found)
          << "a=" << a << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, EncdEquivalence, ::testing::Range(0, 15));

TEST(OfflineInstance, FromTimeline) {
  using markov::State;
  std::vector<std::vector<State>> timeline{
      {State::Up, State::Down},
      {State::Reclaimed, State::Up},
  };
  auto inst = OfflineInstance::from_timeline(timeline);
  EXPECT_EQ(inst.procs(), 2);
  EXPECT_EQ(inst.slots(), 2);
  EXPECT_TRUE(inst.up(0, 0));
  EXPECT_FALSE(inst.up(1, 0));
  EXPECT_FALSE(inst.up(0, 1));  // RECLAIMED is not UP
  EXPECT_TRUE(inst.up(1, 1));
}

}  // namespace
}  // namespace tcgrid::offline
