// Unit + property tests for src/markov: transition matrices, chain sampling,
// the UR sub-chain, and the Theorem 5.1 series (validated three ways:
// closed-form truncation, renewal recursion, Monte-Carlo).
#include <gtest/gtest.h>

#include <cmath>

#include "markov/chain.hpp"
#include "markov/series.hpp"
#include "markov/spectral.hpp"
#include "markov/state.hpp"
#include "markov/transition_matrix.hpp"
#include "util/rng.hpp"

namespace tcgrid::markov {
namespace {

// -------------------------------------------------------------- state ----

TEST(State, CodesRoundTrip) {
  for (State s : kAllStates) {
    EXPECT_TRUE(is_state_code(code(s)));
    EXPECT_EQ(state_from_code(code(s)), s);
  }
  EXPECT_FALSE(is_state_code('x'));
}

TEST(State, Names) {
  EXPECT_EQ(to_string(State::Up), "UP");
  EXPECT_EQ(to_string(State::Reclaimed), "RECLAIMED");
  EXPECT_EQ(to_string(State::Down), "DOWN");
}

// -------------------------------------------------- transition matrix ----

TEST(TransitionMatrix, DefaultStaysUp) {
  TransitionMatrix m;
  EXPECT_DOUBLE_EQ(m.prob(State::Up, State::Up), 1.0);
  EXPECT_TRUE(m.failure_free());
}

TEST(TransitionMatrix, RejectsNonStochasticRows) {
  EXPECT_THROW(TransitionMatrix({{{0.5, 0.2, 0.2}, {0, 1, 0}, {0, 0, 1}}}),
               std::invalid_argument);
  EXPECT_THROW(TransitionMatrix({{{1.2, -0.2, 0.0}, {0, 1, 0}, {0, 0, 1}}}),
               std::invalid_argument);
}

TEST(TransitionMatrix, FromSelfLoopsSplitsEvenly) {
  auto m = TransitionMatrix::from_self_loops(0.9, 0.92, 0.94);
  EXPECT_DOUBLE_EQ(m.prob(State::Up, State::Up), 0.9);
  EXPECT_DOUBLE_EQ(m.prob(State::Up, State::Reclaimed), 0.05);
  EXPECT_DOUBLE_EQ(m.prob(State::Up, State::Down), 0.05);
  EXPECT_DOUBLE_EQ(m.prob(State::Reclaimed, State::Reclaimed), 0.92);
  EXPECT_DOUBLE_EQ(m.prob(State::Down, State::Down), 0.94);
}

TEST(TransitionMatrix, PaperRandomInRange) {
  util::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    auto m = TransitionMatrix::paper_random(rng);
    for (State s : kAllStates) {
      const double self = m.prob(s, s);
      EXPECT_GE(self, 0.90);
      EXPECT_LT(self, 0.99);
      double row = 0.0;
      for (State t : kAllStates) row += m.prob(s, t);
      EXPECT_NEAR(row, 1.0, 1e-12);
    }
    EXPECT_FALSE(m.failure_free());
  }
}

// Stationary distribution: pi * P == pi and sums to 1, for many random chains.
class StationaryTest : public ::testing::TestWithParam<int> {};

TEST_P(StationaryTest, FixedPointProperty) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto m = TransitionMatrix::paper_random(rng);
  const auto pi = m.stationary();
  double sum = 0.0;
  for (int j = 0; j < 3; ++j) {
    double balance = 0.0;
    for (int i = 0; i < 3; ++i) {
      balance += pi[static_cast<std::size_t>(i)] *
                 m.prob(static_cast<State>(i), static_cast<State>(j));
    }
    EXPECT_NEAR(balance, pi[static_cast<std::size_t>(j)], 1e-10);
    EXPECT_GE(pi[static_cast<std::size_t>(j)], 0.0);
    sum += pi[static_cast<std::size_t>(j)];
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, StationaryTest, ::testing::Range(0, 25));

TEST(TransitionMatrix, StationaryMatchesEmpiricalFrequencies) {
  util::Rng rng(99);
  auto m = TransitionMatrix::paper_random(rng);
  const auto pi = m.stationary();
  // Long trajectory: empirical state frequencies approach pi.
  util::Rng sampler(123);
  auto traj = trajectory(m, State::Up, 200000, sampler);
  std::array<double, 3> freq{};
  for (State s : traj) freq[static_cast<std::size_t>(s)] += 1.0;
  for (auto& f : freq) f /= static_cast<double>(traj.size());
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(freq[i], pi[i], 0.02);
}

// -------------------------------------------------------------- chain ----

TEST(Chain, StepMatchesRowDistribution) {
  auto m = TransitionMatrix::from_self_loops(0.9, 0.95, 0.92);
  util::Rng rng(5);
  std::array<int, 3> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(step(m, State::Up, rng))];
  }
  EXPECT_NEAR(counts[0] / double(n), 0.90, 0.01);
  EXPECT_NEAR(counts[1] / double(n), 0.05, 0.005);
  EXPECT_NEAR(counts[2] / double(n), 0.05, 0.005);
}

TEST(Chain, TrajectoryStartsAtInitialAndHasLength) {
  auto m = TransitionMatrix::from_self_loops(0.9, 0.9, 0.9);
  util::Rng rng(1);
  auto t = trajectory(m, State::Reclaimed, 50, rng);
  ASSERT_EQ(t.size(), 50u);
  EXPECT_EQ(t.front(), State::Reclaimed);
}

TEST(Chain, TrajectoryDeterministicPerSeed) {
  auto m = TransitionMatrix::from_self_loops(0.9, 0.9, 0.9);
  util::Rng a(7), b(7);
  EXPECT_EQ(trajectory(m, State::Up, 100, a), trajectory(m, State::Up, 100, b));
}

// ----------------------------------------------------------- spectral ----

TEST(Spectral, UrSubmatrixExtraction) {
  auto m = TransitionMatrix::from_self_loops(0.9, 0.92, 0.94);
  auto ur = ur_submatrix(m);
  EXPECT_DOUBLE_EQ(ur.uu, 0.9);
  EXPECT_DOUBLE_EQ(ur.ur, 0.05);
  EXPECT_DOUBLE_EQ(ur.ru, 0.04);
  EXPECT_DOUBLE_EQ(ur.rr, 0.92);
  EXPECT_FALSE(ur.failure_free());
}

TEST(Spectral, Lambda1OfDiagonalMatrix) {
  UrMatrix m{0.8, 0.0, 0.0, 0.6};
  EXPECT_DOUBLE_EQ(m.lambda1(), 0.8);
}

TEST(Spectral, Lambda1BoundsPuu) {
  // g(t) = (M^t)[u][u] <= lambda1^t — the tail bound of Theorem 5.1.
  util::Rng rng(13);
  auto tm = TransitionMatrix::paper_random(rng);
  auto m = ur_submatrix(tm);
  const double l1 = m.lambda1();
  for (std::size_t t = 1; t <= 50; ++t) {
    EXPECT_LE(p_up_to_up(m, t), std::pow(l1, static_cast<double>(t)) + 1e-12);
  }
}

TEST(Spectral, PuuNoReclaimIsGeometric) {
  // With no RECLAIMED path, (M^t)[u][u] = uu^t exactly.
  UrMatrix m{0.95, 0.0, 0.0, 0.0};
  for (std::size_t t = 0; t <= 20; ++t) {
    EXPECT_NEAR(p_up_to_up(m, t), std::pow(0.95, static_cast<double>(t)), 1e-12);
  }
}

TEST(Spectral, SurvivalDecreasesMonotonically) {
  util::Rng rng(17);
  auto m = ur_submatrix(TransitionMatrix::paper_random(rng));
  double prev = 1.0;
  for (std::size_t t = 1; t <= 100; ++t) {
    const double s = p_no_down(m, t);
    EXPECT_LE(s, prev + 1e-15);
    prev = s;
  }
}

TEST(Spectral, StochasticUrIsFailureFree) {
  UrMatrix m{0.9, 0.1, 0.2, 0.8};
  EXPECT_TRUE(m.failure_free());
  EXPECT_NEAR(m.lambda1(), 1.0, 1e-12);
}

// ------------------------------------------------------------- series ----

TEST(Series, SingleProcessorNoReclaimAnalytic) {
  // puu(t) = s^t: Eu = s/(1-s), A = s/(1-s)^2, P+ = s, Ec = s.
  const double s = 0.9;
  UrMatrix m{s, 0.0, 0.0, 0.0};
  auto sums = up_series({&m, 1}, 1e-12);
  EXPECT_TRUE(sums.converged);
  EXPECT_NEAR(sums.eu, s / (1 - s), 1e-9);
  EXPECT_NEAR(sums.a, s / ((1 - s) * (1 - s)), 1e-7);

  auto st = coupled_stats({&m, 1}, 1e-12);
  EXPECT_NEAR(st.p_plus, s, 1e-9);
  EXPECT_NEAR(st.ec, s, 1e-7);
}

TEST(Series, PPlusIdentityAgainstRenewal) {
  // Closed form P+ = Eu/(1+Eu) must match the renewal deconvolution.
  util::Rng rng(23);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<UrMatrix> set;
    const int k = 1 + trial % 4;
    for (int i = 0; i < k; ++i) {
      set.push_back(ur_submatrix(TransitionMatrix::paper_random(rng)));
    }
    auto st = coupled_stats(set, 1e-12);
    auto rn = renewal_first_return(set, 4000);
    EXPECT_NEAR(st.p_plus, rn.p_plus, 1e-6) << "set size " << k;
    EXPECT_NEAR(st.ec, rn.ec_uncond, 1e-4) << "set size " << k;
  }
}

TEST(Series, PPlusAgainstMonteCarlo) {
  util::Rng rng(29);
  auto tm = TransitionMatrix::paper_random(rng);
  auto m = ur_submatrix(tm);
  auto st = coupled_stats({&m, 1}, 1e-10);

  // Monte-Carlo estimate of P+: from UP, will the chain be UP again before
  // hitting DOWN?
  util::Rng sampler(31);
  const int n = 200000;
  int success = 0;
  for (int i = 0; i < n; ++i) {
    State cur = State::Up;
    for (;;) {
      cur = step(tm, cur, sampler);
      if (cur == State::Up) {
        ++success;
        break;
      }
      if (cur == State::Down) break;
    }
  }
  EXPECT_NEAR(st.p_plus, success / double(n), 0.005);
}

TEST(Series, FailureFreeSetHasPPlusOne) {
  // No DOWN transitions: P+ = 1 and Ec equals the mean first-return time.
  UrMatrix m{0.9, 0.1, 0.2, 0.8};
  auto st = coupled_stats({&m, 1}, 1e-10);
  EXPECT_TRUE(st.failure_free);
  EXPECT_DOUBLE_EQ(st.p_plus, 1.0);
  EXPECT_GT(st.ec, 1.0);  // sometimes reclaimed, so strictly > 1
  // Analytic check: f(1) = 0.9; return via k >= 1 reclaimed slots:
  // f(k+1) = 0.1 * 0.8^(k-1) * 0.2 -> Ec = sum t f(t).
  double expect = 0.9;
  for (int k = 1; k <= 2000; ++k) {
    expect += (k + 1) * 0.1 * std::pow(0.8, k - 1) * 0.2;
  }
  EXPECT_NEAR(st.ec, expect, 1e-6);
}

TEST(Series, EmptySetIsTrivial) {
  auto st = coupled_stats({}, 1e-10);
  EXPECT_DOUBLE_EQ(st.p_plus, 1.0);
  EXPECT_DOUBLE_EQ(st.expected_time(5), 1.0 + 4.0 * st.ec);
}

TEST(Series, ExpectedTimeBasics) {
  util::Rng rng(37);
  auto m = ur_submatrix(TransitionMatrix::paper_random(rng));
  auto st = coupled_stats({&m, 1}, 1e-10);
  EXPECT_DOUBLE_EQ(st.expected_time(0), 0.0);
  EXPECT_DOUBLE_EQ(st.expected_time(1), 1.0);
  // Monotone increasing in W.
  double prev = 0.0;
  for (long w = 1; w <= 50; ++w) {
    const double e = st.expected_time(w);
    EXPECT_GT(e, prev);
    prev = e;
  }
  // success_prob decreasing in W.
  EXPECT_DOUBLE_EQ(st.success_prob(1), 1.0);
  EXPECT_GT(st.success_prob(2), st.success_prob(10));
}

TEST(Series, MoreProcessorsLowerPPlus) {
  // Adding a processor can only make "all UP again before any DOWN" harder.
  util::Rng rng(41);
  std::vector<UrMatrix> set{ur_submatrix(TransitionMatrix::paper_random(rng))};
  double prev = coupled_stats(set, 1e-10).p_plus;
  for (int i = 0; i < 5; ++i) {
    set.push_back(ur_submatrix(TransitionMatrix::paper_random(rng)));
    const double p = coupled_stats(set, 1e-10).p_plus;
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(Series, TruncationRespectsEpsilon) {
  // Tighter eps can only add (nonnegative) terms.
  util::Rng rng(43);
  std::vector<UrMatrix> set;
  for (int i = 0; i < 3; ++i) {
    set.push_back(ur_submatrix(TransitionMatrix::paper_random(rng)));
  }
  auto coarse = up_series(set, 1e-3);
  auto fine = up_series(set, 1e-12);
  EXPECT_LE(coarse.eu, fine.eu + 1e-15);
  EXPECT_LE(fine.eu - coarse.eu, 1e-3 + 1e-12);
  EXPECT_LE(fine.a - coarse.a, 1e-3 + 1e-9);
  EXPECT_GE(fine.terms, coarse.terms);
}

// Parameterized cross-validation: closed-form vs renewal recursion on many
// random sets (the executable content of Theorem 5.1's "arbitrary epsilon").
class SeriesCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(SeriesCrossCheck, ClosedFormMatchesRenewal) {
  util::Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  std::vector<UrMatrix> set;
  const int k = 1 + GetParam() % 6;
  for (int i = 0; i < k; ++i) {
    set.push_back(ur_submatrix(TransitionMatrix::paper_random(rng)));
  }
  auto st = coupled_stats(set, 1e-12);
  auto rn = renewal_first_return(set, 3000);
  EXPECT_NEAR(st.p_plus, rn.p_plus, 1e-5);
  EXPECT_NEAR(st.ec, rn.ec_uncond, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(RandomSets, SeriesCrossCheck, ::testing::Range(0, 20));

TEST(Series, MonteCarloExpectedTimeSingleProc) {
  // E(W) approximation vs simulated conditional completion time: they should
  // land in the same ballpark (the paper's formula is an approximation, so
  // we allow generous tolerance; see DESIGN.md).
  auto tm = TransitionMatrix::from_self_loops(0.95, 0.9, 0.9);
  auto m = ur_submatrix(tm);
  auto st = coupled_stats({&m, 1}, 1e-10);
  const long w = 10;

  util::Rng sampler(47);
  double total = 0.0;
  int successes = 0;
  for (int i = 0; i < 50000; ++i) {
    State cur = State::Up;
    long done = 1, slots = 1;
    bool failed = false;
    while (done < w) {
      cur = step(tm, cur, sampler);
      ++slots;
      if (cur == State::Down) {
        failed = true;
        break;
      }
      if (cur == State::Up) ++done;
    }
    if (!failed) {
      total += static_cast<double>(slots);
      ++successes;
    }
  }
  ASSERT_GT(successes, 0);
  const double mc = total / successes;
  const double approx = st.expected_time(w);
  // Paper's approximation overestimates (divides by P+^{W-1}); require the
  // right order of magnitude and the correct side.
  EXPECT_GE(approx, mc * 0.9);
  EXPECT_LE(approx, mc * 3.0);
}

}  // namespace
}  // namespace tcgrid::markov
