// Tests of the ASCII Gantt renderer (Figure 1 style).
#include <gtest/gtest.h>

#include "sim/gantt.hpp"

namespace tcgrid::sim {
namespace {

using markov::State;

ActivityTrace tiny_trace() {
  // 3 slots x 2 procs.
  return {
      {{State::Up, Action::Program}, {State::Down, Action::None}},
      {{State::Up, Action::Compute}, {State::Reclaimed, Action::None}},
      {{State::Up, Action::None}, {State::Up, Action::Idle}},
  };
}

TEST(Gantt, RendersAllCellKinds) {
  const std::string s = render_gantt(tiny_trace());
  // Row P1: P C .   Row P2: # ~ I
  EXPECT_NE(s.find("P1"), std::string::npos);
  EXPECT_NE(s.find("P2"), std::string::npos);
  EXPECT_NE(s.find("PC."), std::string::npos);
  EXPECT_NE(s.find("#~I"), std::string::npos);
}

TEST(Gantt, EmptyTrace) {
  EXPECT_EQ(render_gantt({}), "(empty trace)\n");
}

TEST(Gantt, RangeSelection) {
  const std::string s = render_gantt(tiny_trace(), 1, 2);
  // Only slot 1 rendered: P1 shows 'C', no 'P' action anywhere.
  EXPECT_NE(s.find('C'), std::string::npos);
  EXPECT_EQ(s.find("PC"), std::string::npos);
}

TEST(Gantt, RangeClamped) {
  // Out-of-bounds ranges must not crash and clamp sanely.
  const std::string all = render_gantt(tiny_trace(), -5, 100);
  EXPECT_NE(all.find("PC."), std::string::npos);
  const std::string none = render_gantt(tiny_trace(), 3, 2);
  EXPECT_NE(none.find("P1"), std::string::npos);  // rows exist, no cells
}

TEST(Gantt, LegendMentionsEveryGlyph) {
  const std::string l = gantt_legend();
  for (const char* token : {"P=", "D=", "C=", "I=", "~", "#"}) {
    EXPECT_NE(l.find(token), std::string::npos) << token;
  }
}

TEST(Gantt, TimeRulerPresent) {
  // 12-slot trace: the tens ruler row must contain a '1'.
  ActivityTrace t(12, {{State::Up, Action::None}});
  const std::string s = render_gantt(t);
  const auto first_newline = s.find('\n');
  EXPECT_NE(s.substr(0, first_newline).find('1'), std::string::npos);
}

}  // namespace
}  // namespace tcgrid::sim
