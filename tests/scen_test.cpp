// Tests of the scenario-model subsystem: family registry semantics,
// per-family determinism (same seed -> identical timeline), equivalence of
// the per-slot and block-stepped pulls, ScenarioSpace integration through
// api::Session (paper-space bit-identity, cross-family pairing), and the
// §VII-B fit helper.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "expt/runner.hpp"
#include "platform/cyclostationary.hpp"
#include "platform/replay.hpp"
#include "platform/scenario.hpp"
#include "scen/scen.hpp"
#include "sched/registry.hpp"

namespace tcgrid {
namespace {

using platform::StateTimeline;
using State = markov::State;

platform::Platform small_platform(int p = 4, std::uint64_t seed = 5) {
  platform::ScenarioParams params;
  params.p = p;
  params.seed = seed;
  return platform::make_scenario(params).platform;
}

StateTimeline pull_per_slot(platform::AvailabilitySource& source, long slots) {
  StateTimeline out;
  for (long t = 0; t < slots; ++t) {
    std::vector<State> row(static_cast<std::size_t>(source.size()));
    for (int q = 0; q < source.size(); ++q) row[static_cast<std::size_t>(q)] = source.state(q);
    out.push_back(std::move(row));
    source.advance();
  }
  return out;
}

StateTimeline pull_blocks(platform::AvailabilitySource& source, long slots, long block) {
  StateTimeline out;
  const auto p = static_cast<std::size_t>(source.size());
  std::vector<State> buf(p * static_cast<std::size_t>(block));
  long pulled = 0;
  while (pulled < slots) {
    source.fill_block(buf.data(), block);
    for (long i = 0; i < block && pulled < slots; ++i, ++pulled) {
      out.emplace_back(buf.begin() + static_cast<long>(p) * i,
                       buf.begin() + static_cast<long>(p) * (i + 1));
    }
  }
  return out;
}

std::shared_ptr<const StateTimeline> checkerboard_trace(int p, long slots) {
  auto timeline = std::make_shared<StateTimeline>();
  for (long t = 0; t < slots; ++t) {
    std::vector<State> row;
    for (int q = 0; q < p; ++q) {
      row.push_back((t + q) % 3 == 0 ? State::Up
                    : (t + q) % 3 == 1 ? State::Reclaimed
                                       : State::Down);
    }
    timeline->push_back(std::move(row));
  }
  return timeline;
}

// -------------------------------------------------------------- registry ----

TEST(Registry, BuiltinsAreRegistered) {
  for (const char* name : {"markov", "weibull", "daynight"}) {
    EXPECT_TRUE(scen::is_availability_family(name)) << name;
    EXPECT_EQ(scen::availability_family(name)->name(), name);
  }
  for (const char* name : {"paper", "clusters"}) {
    EXPECT_TRUE(scen::is_platform_family(name)) << name;
    EXPECT_EQ(scen::platform_family(name)->name(), name);
  }
}

TEST(Registry, UnknownNamesThrowListingAlternatives) {
  try {
    (void)scen::availability_family("no-such-family");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("markov"), std::string::npos);
  }
  EXPECT_THROW((void)scen::platform_family("no-such-family"), std::invalid_argument);
  EXPECT_FALSE(scen::is_availability_family("no-such-family"));
}

TEST(Registry, CustomFamiliesRegisterAndRebind) {
  scen::register_availability_family(
      scen::make_trace_family("scen-test-trace", {checkerboard_trace(4, 50)}));
  EXPECT_TRUE(scen::is_availability_family("scen-test-trace"));
  const auto names = scen::availability_family_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "scen-test-trace"), names.end());

  // Re-binding a name replaces the family; sources from the old binding
  // stay valid (shared ownership).
  const auto old_family = scen::availability_family("scen-test-trace");
  const auto plat = small_platform(4);
  auto old_source = old_family->make_source(plat, 1, platform::InitialStates::Stationary);
  scen::register_availability_family(
      scen::make_trace_family("scen-test-trace", {checkerboard_trace(4, 7)}));
  auto new_source = scen::availability_family("scen-test-trace")
                        ->make_source(plat, 1, platform::InitialStates::Stationary);
  (void)pull_per_slot(*old_source, 60);  // exercises the 50-row timeline
  (void)pull_per_slot(*new_source, 10);
}

TEST(Registry, DayNightFamilyRejectsBadParamsUpFront) {
  // An amplifying night factor would only overflow rows for SOME platforms;
  // it must fail at family construction, not mid-sweep.
  EXPECT_THROW((void)scen::make_daynight_family(
                   "bad", scen::DayNightFamilyParams{.night_calm = 3.0}),
               std::invalid_argument);
  EXPECT_THROW((void)scen::make_daynight_family(
                   "bad", scen::DayNightFamilyParams{.period = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)scen::make_daynight_family(
          "bad", scen::DayNightFamilyParams{.period = 10, .day_slots = 11}),
      std::invalid_argument);
}

TEST(Registry, TraceFamilyValidatesShape) {
  EXPECT_THROW((void)scen::make_trace_family("bad", {nullptr}), std::invalid_argument);
  EXPECT_THROW((void)scen::make_trace_family(
                   "bad", {std::make_shared<StateTimeline>()}),
               std::invalid_argument);
  // Width mismatch surfaces at make_source time with both widths named.
  scen::register_availability_family(
      scen::make_trace_family("scen-test-narrow", {checkerboard_trace(3, 10)}));
  const auto plat = small_platform(4);
  EXPECT_THROW((void)scen::availability_family("scen-test-narrow")
                   ->make_source(plat, 0, platform::InitialStates::Stationary),
               std::invalid_argument);
}

// ----------------------------------------------- determinism per family ----

TEST(Families, SameSeedSameTimeline) {
  scen::register_availability_family(
      scen::make_trace_family("scen-test-det", {checkerboard_trace(4, 97)}));
  const auto plat = small_platform(4);
  for (const char* name : {"markov", "weibull", "daynight", "scen-test-det"}) {
    const auto family = scen::availability_family(name);
    auto a = family->make_source(plat, 77, platform::InitialStates::Stationary);
    auto b = family->make_source(plat, 77, platform::InitialStates::Stationary);
    EXPECT_EQ(pull_per_slot(*a, 400), pull_per_slot(*b, 400)) << name;
  }
}

TEST(Families, DifferentSeedsDiverge) {
  const auto plat = small_platform(6);
  for (const char* name : {"markov", "weibull", "daynight"}) {
    const auto family = scen::availability_family(name);
    auto a = family->make_source(plat, 1, platform::InitialStates::Stationary);
    auto b = family->make_source(plat, 2, platform::InitialStates::Stationary);
    EXPECT_NE(pull_per_slot(*a, 400), pull_per_slot(*b, 400)) << name;
  }
}

// The block-stepping contract: however availability is pulled — slot by
// slot, or in blocks of any size — the realization is identical.
TEST(Families, BlockPullMatchesPerSlotPull) {
  scen::register_availability_family(
      scen::make_trace_family("scen-test-blk", {checkerboard_trace(5, 61)}));
  const auto plat = small_platform(5, 11);
  for (const char* name : {"markov", "weibull", "daynight", "scen-test-blk"}) {
    const auto family = scen::availability_family(name);
    auto ref = family->make_source(plat, 99, platform::InitialStates::Stationary);
    const StateTimeline expected = pull_per_slot(*ref, 1000);
    for (long block : {1L, 7L, 256L}) {
      auto src = family->make_source(plat, 99, platform::InitialStates::Stationary);
      EXPECT_EQ(pull_blocks(*src, 1000, block), expected)
          << name << " block=" << block;
    }
  }
}

// Degenerate chain rows must survive the integer-cut fast path: a
// failure-free identity chain (P_up,up = 1) and a row that can never return
// to UP exercise the cut construction at c = 1.0 and c = 0.0.
TEST(Families, BlockPullHandlesDegenerateChains) {
  std::vector<platform::Processor> procs(3);
  procs[0].speed = 1;
  procs[0].max_tasks = 5;
  procs[0].availability = markov::TransitionMatrix();  // identity: Up forever
  procs[1] = procs[0];
  procs[1].availability = markov::TransitionMatrix(
      {{{0.0, 0.5, 0.5}, {0.0, 0.9, 0.1}, {0.0, 0.1, 0.9}}});  // never Up again
  procs[2] = procs[0];
  procs[2].availability = markov::TransitionMatrix::from_self_loops(0.5, 0.5, 0.5);
  const platform::Platform plat(std::move(procs), 1);

  platform::MarkovAvailability ref(plat, 123, platform::InitialStates::AllUp);
  const StateTimeline expected = pull_per_slot(ref, 2000);
  platform::MarkovAvailability blk(plat, 123, platform::InitialStates::AllUp);
  EXPECT_EQ(pull_blocks(blk, 2000, 64), expected);
  for (const auto& row : expected) EXPECT_EQ(row[0], State::Up);  // identity chain
  for (std::size_t t = 1; t < expected.size(); ++t) {
    EXPECT_NE(expected[t][1], State::Up);  // row 1 left Up and never returns
  }
}

// ----------------------------------------------------- family behaviour ----

TEST(Families, DayNightCalmEqualsPlainMarkov) {
  // night_calm = 1 makes night == day; the cyclostationary source must then
  // reproduce MarkovAvailability draw for draw (cross-validates the integer
  // cuts against markov::step's double compares).
  const auto plat = small_platform(5, 21);
  const auto family = scen::make_daynight_family(
      "calm", scen::DayNightFamilyParams{.period = 10, .day_slots = 5, .night_calm = 1.0});
  auto cyclo = family->make_source(plat, 4242, platform::InitialStates::Stationary);
  platform::MarkovAvailability plain(plat, 4242, platform::InitialStates::Stationary);
  EXPECT_EQ(pull_per_slot(*cyclo, 3000), pull_per_slot(plain, 3000));
}

TEST(Families, DayNightNightIsCalmer) {
  // With a tiny night_calm, state changes should be rarer at night.
  const auto plat = small_platform(8, 3);
  platform::CyclostationaryAvailability src(plat, 9, 200, 100, 0.05,
                                            platform::InitialStates::Stationary);
  const auto timeline = pull_per_slot(src, 20000);
  long day_changes = 0, night_changes = 0, day_slots = 0, night_slots = 0;
  for (std::size_t t = 1; t < timeline.size(); ++t) {
    const bool day = static_cast<long>(t) % 200 < 100;
    for (std::size_t q = 0; q < timeline[t].size(); ++q) {
      const bool changed = timeline[t][q] != timeline[t - 1][q];
      (day ? day_changes : night_changes) += changed ? 1 : 0;
    }
    (day ? day_slots : night_slots) += 1;
  }
  ASSERT_GT(day_slots, 0);
  ASSERT_GT(night_slots, 0);
  const double day_rate = static_cast<double>(day_changes) / day_slots;
  const double night_rate = static_cast<double>(night_changes) / night_slots;
  EXPECT_LT(night_rate, 0.5 * day_rate);
}

TEST(Families, TraceReplayWrapsAndRotates) {
  const auto trace = checkerboard_trace(3, 10);
  platform::TraceReplayAvailability fixed(trace, 0, /*rotate=*/false);
  const auto t1 = pull_per_slot(fixed, 25);
  for (long t = 0; t < 25; ++t) {
    EXPECT_EQ(t1[static_cast<std::size_t>(t)], (*trace)[static_cast<std::size_t>(t % 10)]);
  }
  // Rotation: some seed starts at a non-zero offset, and all replays are
  // rotations of the source trace.
  std::set<std::size_t> offsets;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    platform::TraceReplayAvailability r(trace, seed);
    offsets.insert(r.row());
  }
  EXPECT_GT(offsets.size(), 1u);
}

TEST(Families, ClusterPlatformSharesSpeedAndChainWithinClusters) {
  platform::ScenarioParams params;
  params.p = 10;
  params.wmin = 4;
  params.seed = 31;
  const auto family = scen::make_cluster_platform_family(
      "c2", scen::ClusterPlatformParams{.clusters = 2});
  const auto scenario = family->make(params);
  ASSERT_EQ(scenario.platform.size(), 10);
  // Two contiguous clusters of 5: identical speed/chain within, and (with
  // overwhelming probability under distinct draws) different across.
  auto chain_prob = [&](int q) {
    return scenario.platform.proc(q).availability.prob(State::Up, State::Up);
  };
  for (int q = 1; q < 5; ++q) {
    EXPECT_EQ(scenario.platform.proc(q).speed, scenario.platform.proc(0).speed);
    EXPECT_EQ(chain_prob(q), chain_prob(0));
  }
  for (int q = 6; q < 10; ++q) {
    EXPECT_EQ(scenario.platform.proc(q).speed, scenario.platform.proc(5).speed);
    EXPECT_EQ(chain_prob(q), chain_prob(5));
  }
  EXPECT_NE(chain_prob(0), chain_prob(5));
  // Application parameterization matches the paper family.
  EXPECT_EQ(scenario.app.t_data, 4);
  EXPECT_EQ(scenario.app.t_prog, 20);
}

TEST(Families, PaperPlatformFamilyMatchesMakeScenario) {
  platform::ScenarioParams params;
  params.seed = 77;
  params.wmin = 3;
  const auto via_family = scen::platform_family("paper")->make(params);
  const auto direct = platform::make_scenario(params);
  ASSERT_EQ(via_family.platform.size(), direct.platform.size());
  for (int q = 0; q < direct.platform.size(); ++q) {
    EXPECT_EQ(via_family.platform.proc(q).speed, direct.platform.proc(q).speed);
    for (State f : markov::kAllStates) {
      for (State t : markov::kAllStates) {
        EXPECT_EQ(via_family.platform.proc(q).availability.prob(f, t),
                  direct.platform.proc(q).availability.prob(f, t));
      }
    }
  }
}

// ------------------------------------------------------- api integration ----

api::ExperimentSpec tiny_spec() {
  api::ExperimentSpec spec;
  spec.grid.ms = {5};
  spec.grid.ncoms = {5};
  spec.grid.wmins = {1};
  spec.grid.scenarios_per_cell = 2;
  spec.grid.iterations = 3;
  spec.trials = 2;
  spec.heuristics = {"IE", "Y-IE"};
  spec.options.slot_cap = 100'000;
  spec.options.threads = 1;
  return spec;
}

// The acceptance bar of this subsystem: an ExperimentSpec with the default
// scenario_space reproduces the plain ScenarioGrid sweep EXACTLY.
TEST(Space, DefaultSpaceIsBitIdenticalToScenarioGrid) {
  const auto spec = tiny_spec();
  ASSERT_EQ(spec.scenario_space, scen::paper_space());

  api::AggregateSink via_space;
  api::Session().run(spec, {&via_space});

  // Reference: the pre-scen sweep semantics — make_scenario + estimator +
  // expt::run_trial per (scenario, heuristic, trial).
  const auto scenarios = spec.scenarios();
  expt::RunOptions legacy;
  legacy.slot_cap = spec.options.slot_cap;
  const auto& got = via_space.results();
  for (std::size_t sc = 0; sc < scenarios.size(); ++sc) {
    const auto scenario = platform::make_scenario(scenarios[sc]);
    sched::Estimator estimator(scenario.platform, scenario.app, spec.options.eps);
    for (std::size_t h = 0; h < spec.heuristics.size(); ++h) {
      for (int trial = 0; trial < spec.trials; ++trial) {
        const auto ref =
            expt::run_trial(scenario, estimator, spec.heuristics[h], trial, legacy);
        const auto& out = got.outcomes[h][sc][static_cast<std::size_t>(trial)];
        EXPECT_EQ(out.makespan, ref.makespan);
        EXPECT_EQ(out.success, ref.success);
      }
    }
  }
}

TEST(Space, UnknownFamilyFailsValidationUpFront) {
  auto spec = tiny_spec();
  spec.scenario_space.availability = "nope";
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = tiny_spec();
  spec.scenario_space.platform = "nope";
  EXPECT_THROW(spec.validate(), std::invalid_argument);

  api::Session session;
  EXPECT_THROW((void)session.run_trial(scen::ScenarioSpace{.availability = "nope"},
                                       spec.scenarios()[0], "IE", 0),
               std::invalid_argument);
}

TEST(Space, EveryFamilyCrossRunsDeterministically) {
  // Cross {markov, weibull, daynight} x {paper, clusters} through the full
  // facade; identical reruns must produce identical aggregates, and the
  // family name must reach the CSV sink.
  for (const char* avail : {"markov", "weibull", "daynight"}) {
    for (const char* plat : {"paper", "clusters"}) {
      auto spec = tiny_spec();
      spec.scenario_space.availability = avail;
      spec.scenario_space.platform = plat;

      std::ostringstream csv;
      api::AggregateSink a1;
      api::CsvSink sink(csv);
      api::Session().run(spec, {&a1, &sink});
      api::AggregateSink a2;
      api::Session().run(spec, {&a2});

      SCOPED_TRACE(std::string(avail) + "/" + plat);
      ASSERT_EQ(a1.results().outcomes.size(), a2.results().outcomes.size());
      for (std::size_t h = 0; h < a1.results().outcomes.size(); ++h) {
        for (std::size_t sc = 0; sc < a1.results().outcomes[h].size(); ++sc) {
          for (std::size_t t = 0; t < a1.results().outcomes[h][sc].size(); ++t) {
            EXPECT_EQ(a1.results().outcomes[h][sc][t].makespan,
                      a2.results().outcomes[h][sc][t].makespan);
          }
        }
      }
      EXPECT_NE(csv.str().find(std::string(",") + avail + ","), std::string::npos);
    }
  }
}

TEST(Space, PairedTrialInvarianceThroughSession) {
  // Re-running a (space, scenario, heuristic, trial) after other work must
  // reproduce the first result exactly: sources are pure functions of their
  // seeds, never shared or advanced across runs.
  api::Options options;
  options.slot_cap = 100'000;
  api::Session session(options);
  platform::ScenarioParams params;
  params.iterations = 3;
  params.seed = 1234;
  for (const char* avail : {"markov", "weibull", "daynight"}) {
    const scen::ScenarioSpace space{.availability = avail};
    const auto first = session.run_trial(space, params, "IE", 1);
    (void)session.run_trial(space, params, "Y-IE", 1);  // interleaved work
    (void)session.run_trial(space, params, "IE", 0);
    const auto again = session.run_trial(space, params, "IE", 1);
    SCOPED_TRACE(avail);
    EXPECT_EQ(first.makespan, again.makespan);
    EXPECT_EQ(first.success, again.success);
    EXPECT_EQ(first.total_restarts, again.total_restarts);
  }
}

TEST(Space, SessionHonorsPlatformFamilyRebinding) {
  // The per-thread scenario cache keys on family object identity: after a
  // name is re-registered, a long-lived Session must build scenarios with
  // the NEW family, not serve the stale cached instantiation.
  struct FixedIterations final : scen::PlatformFamily {
    std::string name_;
    int iterations;
    FixedIterations(std::string n, int it) : name_(std::move(n)), iterations(it) {}
    const std::string& name() const override { return name_; }
    platform::Scenario make(const platform::ScenarioParams& params) const override {
      auto p = params;
      p.iterations = iterations;
      return platform::make_scenario(p);
    }
  };
  scen::register_platform_family(std::make_shared<FixedIterations>("scen-test-plat", 1));

  api::Options options;
  options.slot_cap = 200'000;
  api::Session session(options);
  const scen::ScenarioSpace space{.platform = "scen-test-plat"};
  platform::ScenarioParams params;
  params.seed = 9;
  const auto before = session.run_trial(space, params, "IE", 0);
  ASSERT_TRUE(before.success);
  EXPECT_EQ(before.iterations_completed, 1);

  scen::register_platform_family(std::make_shared<FixedIterations>("scen-test-plat", 2));
  const auto after = session.run_trial(space, params, "IE", 0);
  ASSERT_TRUE(after.success);
  EXPECT_EQ(after.iterations_completed, 2);
}

TEST(Space, FamiliesActuallyChangeOutcomes) {
  // Sanity: the worlds are genuinely different — at least one (heuristic,
  // scenario, trial) outcome differs between the markov and weibull spaces.
  auto spec = tiny_spec();
  api::AggregateSink markov_sink;
  api::Session().run(spec, {&markov_sink});
  spec.scenario_space.availability = "weibull";
  api::AggregateSink weibull_sink;
  api::Session().run(spec, {&weibull_sink});
  bool any_diff = false;
  const auto& a = markov_sink.results().outcomes;
  const auto& b = weibull_sink.results().outcomes;
  for (std::size_t h = 0; h < a.size(); ++h) {
    for (std::size_t sc = 0; sc < a[h].size(); ++sc) {
      for (std::size_t t = 0; t < a[h][sc].size(); ++t) {
        any_diff |= a[h][sc][t].makespan != b[h][sc][t].makespan;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------ §VII-B fit ----

TEST(Fit, FitMarkovPlatformRecoversMarkovTruth) {
  // Fitting a Markov model to a trace that IS Markov must approximately
  // recover the chain (long trace, loose tolerance).
  const auto plat = small_platform(3, 8);
  const auto fitted = scen::fit_markov_platform(
      plat, *scen::availability_family("markov"), 60'000, 99);
  ASSERT_EQ(fitted.size(), plat.size());
  for (int q = 0; q < plat.size(); ++q) {
    EXPECT_EQ(fitted.proc(q).speed, plat.proc(q).speed);
    EXPECT_NEAR(fitted.proc(q).availability.prob(State::Up, State::Up),
                plat.proc(q).availability.prob(State::Up, State::Up), 0.05);
  }
}

TEST(Fit, FittedWeibullPlatformIsUsableByEstimator) {
  const auto plat = small_platform(4, 12);
  const auto fitted = scen::fit_markov_platform(
      plat, *scen::availability_family("weibull"), 20'000, 7);
  // The fitted chains must be valid transition matrices an estimator can
  // consume (rows stochastic is enforced by TransitionMatrix's ctor).
  platform::ScenarioParams params;
  params.p = 4;
  model::Application app;
  app.num_tasks = 5;
  app.t_data = 1;
  app.t_prog = 5;
  app.iterations = 2;
  sched::Estimator est(fitted, app, 1e-6);
  std::vector<int> set{0, 1};
  std::vector<sched::Estimator::CommNeed> needs{{0, 6}, {1, 6}};
  const auto e = est.evaluate(needs, set, 10);
  EXPECT_GT(e.p_success, 0.0);
  EXPECT_LE(e.p_success, 1.0);
}

TEST(Fit, RejectsDegenerateTraining) {
  const auto plat = small_platform(3);
  EXPECT_THROW((void)scen::fit_markov_platform(
                   plat, *scen::availability_family("markov"), 1, 0),
               std::invalid_argument);
}

// ------------------------------------------- event-horizon fast-forward ----

void expect_identical_results(const sim::SimulationResult& a,
                              const sim::SimulationResult& b) {
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.iterations_completed, b.iterations_completed);
  EXPECT_EQ(a.total_restarts, b.total_restarts);
  EXPECT_EQ(a.total_reconfigurations, b.total_reconfigurations);
  EXPECT_EQ(a.idle_slots, b.idle_slots);
  ASSERT_EQ(a.iterations.size(), b.iterations.size());
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    const auto& x = a.iterations[i];
    const auto& y = b.iterations[i];
    EXPECT_EQ(x.start_slot, y.start_slot) << "iteration " << i;
    EXPECT_EQ(x.end_slot, y.end_slot) << "iteration " << i;
    EXPECT_EQ(x.comm_slots, y.comm_slots) << "iteration " << i;
    EXPECT_EQ(x.stalled_slots, y.stalled_slots) << "iteration " << i;
    EXPECT_EQ(x.compute_slots, y.compute_slots) << "iteration " << i;
    EXPECT_EQ(x.suspended_slots, y.suspended_slots) << "iteration " << i;
    EXPECT_EQ(x.restarts, y.restarts) << "iteration " << i;
    EXPECT_EQ(x.reconfigurations, y.reconfigurations) << "iteration " << i;
  }
}

void expect_identical_traces(const sim::ActivityTrace& a, const sim::ActivityTrace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].size(), b[t].size());
    for (std::size_t q = 0; q < a[t].size(); ++q) {
      ASSERT_TRUE(a[t][q].state == b[t][q].state && a[t][q].action == b[t][q].action)
          << "slot " << t << " proc " << q;
    }
  }
}

/// Every slot of a run is exactly one of: idle (no configuration), comm,
/// stalled (comm phase frozen by RECLAIMED workers), compute, or suspended.
/// On success the completed iterations tile [0, makespan), so the counters
/// must reconcile with the makespan exactly (DESIGN.md §8).
void expect_slot_accounting(const sim::SimulationResult& r) {
  long accounted = r.idle_slots;
  long prev_end = -1;
  for (const auto& it : r.iterations) {
    // Iterations tile the timeline; a span holds its comm/stalled/compute/
    // suspended slots (plus globally-counted idle slots before its first
    // configuration).
    EXPECT_EQ(it.start_slot, prev_end + 1);
    const long span = it.end_slot - it.start_slot + 1;
    const long busy =
        it.comm_slots + it.stalled_slots + it.compute_slots + it.suspended_slots;
    EXPECT_LE(busy, span);
    prev_end = it.end_slot;
    accounted += busy;
  }
  if (r.success) {
    EXPECT_EQ(accounted, r.makespan);
  } else {
    EXPECT_LE(accounted, r.makespan);  // trailing unfinished iteration
  }
}

// The §8 contract: EngineOptions::fast_forward must be invisible in the
// results — every counter, per-iteration stat AND the activity trace — for
// every registered heuristic (the paper's 17 plus the extension baselines)
// across every built-in availability family. This is the equality proof the
// quiescence reports are held to; a scheduler misreporting its stability
// fails here. Doubles as the slot-accounting test.
TEST(FastForward, BitIdenticalForEveryHeuristicAndFamily) {
  std::vector<std::string> heuristics = sched::all_heuristic_names();
  for (const auto& n : sched::extension_heuristic_names()) heuristics.push_back(n);

  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 2;
  params.seed = 33;

  for (const char* family : {"markov", "weibull", "daynight"}) {
    const scen::ScenarioSpace space{.availability = family};
    api::Options on;
    on.slot_cap = 50'000;
    on.fast_forward = true;
    api::Options off = on;
    off.fast_forward = false;
    api::Session fast(on);
    api::Session slow(off);

    for (const auto& heuristic : heuristics) {
      SCOPED_TRACE(std::string(family) + " / " + heuristic);
      sim::ActivityTrace trace_on;
      sim::ActivityTrace trace_off;
      const auto a = fast.run_trial(space, params, heuristic, 0, &trace_on);
      const auto b = slow.run_trial(space, params, heuristic, 0, &trace_off);
      expect_identical_results(a, b);
      expect_identical_traces(trace_on, trace_off);
      expect_slot_accounting(a);
    }
  }
}

// The tracing-off path takes additional fast-forward shortcuts (bulk comm
// runs are disabled under tracing); prove the counters still match the
// per-slot reference without traces in the picture.
TEST(FastForward, UntracedRunsMatchPerSlotReference) {
  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 3;
  params.seed = 77;

  for (const char* family : {"markov", "weibull", "daynight"}) {
    const scen::ScenarioSpace space{.availability = family};
    api::Options on;
    on.slot_cap = 50'000;
    api::Options off = on;
    off.fast_forward = false;
    api::Session fast(on);
    api::Session slow(off);
    for (const char* heuristic : {"IE", "IAY", "RANDOM", "Y-IE", "E-IAY", "P-IE"}) {
      for (int trial = 0; trial < 3; ++trial) {
        SCOPED_TRACE(std::string(family) + " / " + heuristic + " / trial " +
                     std::to_string(trial));
        const auto a = fast.run_trial(space, params, heuristic, trial);
        const auto b = slow.run_trial(space, params, heuristic, trial);
        expect_identical_results(a, b);
        expect_slot_accounting(a);
      }
    }
  }
}

}  // namespace
}  // namespace tcgrid
