// Parameterized property sweep across the paper's scenario space: for every
// (m, ncom, wmin) cell, key invariants of the scenario generator, the
// estimator, and a short IE / Y-IE run must hold. This is the harness-level
// safety net for the Table I/II benches.
#include <gtest/gtest.h>

#include <tuple>

#include "expt/runner.hpp"
#include "platform/scenario.hpp"
#include "sched/registry.hpp"

namespace tcgrid {
namespace {

using Cell = std::tuple<int, int, long>;  // (m, ncom, wmin)

class ScenarioSpace : public ::testing::TestWithParam<Cell> {};

TEST_P(ScenarioSpace, GeneratorInvariants) {
  const auto [m, ncom, wmin] = GetParam();
  platform::ScenarioParams params;
  params.m = m;
  params.ncom = ncom;
  params.wmin = wmin;
  params.seed = 1234;
  const auto s = platform::make_scenario(params);

  EXPECT_EQ(s.platform.size(), 20);
  EXPECT_EQ(s.app.t_data, wmin);
  EXPECT_EQ(s.app.t_prog, 5 * wmin);
  long total_mu = 0;
  for (const auto& pr : s.platform.procs()) {
    EXPECT_GE(pr.speed, wmin);
    EXPECT_LE(pr.speed, 10 * wmin);
    total_mu += pr.max_tasks;
    // The paper's chains always allow failure: the DOWN column is positive.
    EXPECT_GT(pr.availability.prob(markov::State::Up, markov::State::Down), 0.0);
  }
  // Feasibility requirement of §III-C: sum mu_q >= m.
  EXPECT_GE(total_mu, m);
}

TEST_P(ScenarioSpace, EstimatorProducesSaneIterationEstimates) {
  const auto [m, ncom, wmin] = GetParam();
  platform::ScenarioParams params;
  params.m = m;
  params.ncom = ncom;
  params.wmin = wmin;
  params.seed = 99;
  const auto s = platform::make_scenario(params);
  sched::Estimator est(s.platform, s.app, 1e-6);

  std::vector<int> set;
  std::vector<sched::Estimator::CommNeed> needs;
  for (int q = 0; q < std::min(m, 6); ++q) {
    set.push_back(q);
    needs.push_back({q, s.app.t_prog + s.app.t_data});
  }
  const long w = static_cast<long>(m) * wmin;  // plausible workload
  const auto e = est.evaluate(needs, set, w);
  EXPECT_GT(e.p_success, 0.0);
  EXPECT_LE(e.p_success, 1.0);
  EXPECT_GE(e.e_time, static_cast<double>(w));
  EXPECT_TRUE(std::isfinite(e.e_time));
}

TEST_P(ScenarioSpace, ShortRunsCompleteAndPair) {
  const auto [m, ncom, wmin] = GetParam();
  platform::ScenarioParams params;
  params.m = m;
  params.ncom = ncom;
  params.wmin = wmin;
  params.seed = 7;
  params.iterations = 2;
  const auto s = platform::make_scenario(params);
  sched::Estimator est(s.platform, s.app, 1e-6);
  expt::RunOptions opts;
  // Tight cap keeps the hardest cells fast; a capped run is a valid outcome
  // for this invariant test (the success branch simply doesn't fire).
  opts.slot_cap = 60000;

  const auto ie = expt::run_trial(s, est, "IE", 0, opts);
  const auto yie = expt::run_trial(s, est, "Y-IE", 0, opts);
  if (ie.success) {
    EXPECT_EQ(ie.iterations_completed, 2);
    EXPECT_GT(ie.makespan, 0);
  }
  if (yie.success) EXPECT_EQ(yie.iterations_completed, 2);
  // Paired determinism across repeated evaluation.
  const auto ie2 = expt::run_trial(s, est, "IE", 0, opts);
  EXPECT_EQ(ie.makespan, ie2.makespan);
}

// NOTE: no structured bindings inside the name generator — the macro would
// split on the binding list's commas.
std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  return "m" + std::to_string(std::get<0>(info.param)) + "_ncom" +
         std::to_string(std::get<1>(info.param)) + "_wmin" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    PaperGrid, ScenarioSpace,
    ::testing::Combine(::testing::Values(5, 10), ::testing::Values(5, 10, 20),
                       ::testing::Values(1L, 4L, 10L)),
    cell_name);

}  // namespace
}  // namespace tcgrid
