// Tests of the extension heuristics: literature baselines (FASTEST,
// MOSTAVAIL, UPTIME) and the model-free adaptive wrappers (ADAPT-*).
#include <gtest/gtest.h>

#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "sched/baselines.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace tcgrid::sched {
namespace {

using markov::State;

struct ViewFixture {
  platform::Platform plat;
  model::Application app;
  std::vector<State> states;
  std::vector<model::Holdings> holdings;
  std::vector<long> comm_rem;

  ViewFixture(platform::Platform p, model::Application a)
      : plat(std::move(p)),
        app(a),
        states(static_cast<std::size_t>(plat.size()), State::Up),
        holdings(static_cast<std::size_t>(plat.size())),
        comm_rem(static_cast<std::size_t>(plat.size()), 0) {}

  [[nodiscard]] sim::SchedulerView view(long slot = 0,
                                        const model::Configuration* config = nullptr) {
    sim::SchedulerView v;
    v.slot = slot;
    v.platform = &plat;
    v.app = &app;
    v.states = states;
    v.holdings = holdings;
    v.config = config;
    v.comm_remaining = comm_rem;
    return v;
  }
};

platform::Platform mixed_platform() {
  // P0 slow/very available, P1 fast/flaky, P2 medium, P3 fast/reliable.
  std::vector<platform::Processor> procs(4);
  for (auto& pr : procs) pr.max_tasks = 8;
  procs[0].speed = 9;
  procs[0].availability = markov::TransitionMatrix::from_self_loops(0.99, 0.5, 0.5);
  procs[1].speed = 1;
  procs[1].availability = markov::TransitionMatrix::from_self_loops(0.75, 0.9, 0.9);
  procs[2].speed = 5;
  procs[2].availability = markov::TransitionMatrix::from_self_loops(0.92, 0.9, 0.9);
  procs[3].speed = 2;
  procs[3].availability = markov::TransitionMatrix::from_self_loops(0.97, 0.9, 0.9);
  return platform::Platform(std::move(procs), 2);
}

model::Application tiny_app(int m) {
  model::Application app;
  app.num_tasks = m;
  app.t_prog = 2;
  app.t_data = 1;
  app.iterations = 5;
  return app;
}

// -------------------------------------------------------------- FASTEST ----

TEST(Fastest, MinimizesW) {
  ViewFixture fx(mixed_platform(), tiny_app(3));
  FastestScheduler s;
  auto cfg = s.decide(fx.view());
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->total_tasks(), 3);
  // Greedy min-W: tasks go to P1 (w=1): loads 1,2,3 give W 1,2,3 — always
  // cheaper than opening P3 (w=2)? Second task: P1 again (2*1=2) == P3 (1*2=2),
  // tie toward lower index -> P1. Third: P1 (3) vs P3 (2) -> P3.
  EXPECT_EQ(cfg->tasks_on(1), 2);
  EXPECT_EQ(cfg->tasks_on(3), 1);
  EXPECT_EQ(cfg->compute_slots(fx.plat.speeds()), 2);
}

TEST(Fastest, PassiveAndSkipsNonUp) {
  ViewFixture fx(mixed_platform(), tiny_app(2));
  fx.states[1] = State::Down;
  FastestScheduler s;
  auto cfg = s.decide(fx.view());
  ASSERT_TRUE(cfg.has_value());
  EXPECT_FALSE(cfg->enrolled(1));
  model::Configuration current = *cfg;
  EXPECT_FALSE(s.decide(fx.view(1, &current)).has_value());
}

// ------------------------------------------------------------ MOSTAVAIL ----

TEST(MostAvailable, RanksByStationaryAvailability) {
  ViewFixture fx(mixed_platform(), tiny_app(2));
  MostAvailableScheduler s;
  auto cfg = s.decide(fx.view());
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->total_tasks(), 2);
  // P0 has the highest long-run availability; P1 the lowest. With m = 2 the
  // two most available workers get one task each.
  EXPECT_TRUE(cfg->enrolled(0));
  EXPECT_FALSE(cfg->enrolled(1));
}

TEST(MostAvailable, RoundRobinRespectsMu) {
  auto plat = mixed_platform();
  std::vector<platform::Processor> procs(plat.procs().begin(), plat.procs().end());
  for (auto& pr : procs) pr.max_tasks = 2;
  ViewFixture fx(platform::Platform(std::move(procs), 2), tiny_app(6));
  MostAvailableScheduler s;
  auto cfg = s.decide(fx.view());
  ASSERT_TRUE(cfg.has_value());
  EXPECT_EQ(cfg->total_tasks(), 6);
  for (const auto& a : cfg->assignments()) EXPECT_LE(a.tasks, 2);
}

TEST(MostAvailable, NulloptWhenNothingUp) {
  ViewFixture fx(mixed_platform(), tiny_app(2));
  for (auto& s : fx.states) s = State::Down;
  MostAvailableScheduler s;
  EXPECT_FALSE(s.decide(fx.view()).has_value());
}

// --------------------------------------------------------------- UPTIME ----

TEST(Uptime, TracksStreaksFromObservations) {
  ViewFixture fx(mixed_platform(), tiny_app(2));
  UptimeScheduler s;
  model::Configuration dummy({{0, 2}});
  // Feed 3 slots: P2 goes down at slot 1, others stay up.
  (void)s.decide(fx.view(0, &dummy));
  fx.states[2] = State::Down;
  (void)s.decide(fx.view(1, &dummy));
  fx.states[2] = State::Up;
  (void)s.decide(fx.view(2, &dummy));
  EXPECT_EQ(s.streak(0), 3);
  EXPECT_EQ(s.streak(2), 1);  // reset by the DOWN slot
}

TEST(Uptime, PrefersLongestStreak) {
  ViewFixture fx(mixed_platform(), tiny_app(1));
  UptimeScheduler s;
  model::Configuration dummy({{0, 1}});
  // P3 down for the first 2 slots, then up; P0..P2 up throughout.
  fx.states[3] = State::Down;
  (void)s.decide(fx.view(0, &dummy));
  (void)s.decide(fx.view(1, &dummy));
  fx.states[3] = State::Up;
  auto cfg = s.decide(fx.view(2));
  ASSERT_TRUE(cfg.has_value());
  EXPECT_FALSE(cfg->enrolled(3));  // shortest streak loses
}

TEST(Uptime, ObservesEachSlotOnce) {
  ViewFixture fx(mixed_platform(), tiny_app(1));
  UptimeScheduler s;
  model::Configuration dummy({{0, 1}});
  (void)s.decide(fx.view(0, &dummy));
  (void)s.decide(fx.view(0, &dummy));  // same slot twice
  EXPECT_EQ(s.streak(0), 1);
}

// -------------------------------------------------------------- ADAPT-* ----

TEST(Adaptive, StartsWithStickyPriorAndLearns) {
  auto plat = mixed_platform();
  auto app = tiny_app(2);
  AdaptiveScheduler s(std::nullopt, Rule::IE, plat, app);
  // Prior: sticky diagonal.
  auto prior = s.fitted(0);
  EXPECT_GT(prior.prob(State::Up, State::Up), 0.8);

  // Feed a long all-UP history: the fitted UP self-loop should approach 1.
  ViewFixture fx(mixed_platform(), app);
  model::Configuration dummy({{0, 2}});
  for (long t = 0; t < 600; ++t) (void)s.decide(fx.view(t, &dummy));
  auto learned = s.fitted(0);
  EXPECT_GT(learned.prob(State::Up, State::Up), 0.97);
}

TEST(Adaptive, FittedConvergesToTruth) {
  // Feed ADAPT-IE a long stream of observed states sampled from the true
  // chains; the fitted matrices should approach the truth.
  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 1;
  params.seed = 31;
  auto scenario = platform::make_scenario(params);

  AdaptiveScheduler sched(std::nullopt, Rule::IE, scenario.platform, scenario.app,
                          1e-6, /*refit_interval=*/64);
  platform::MarkovAvailability avail(scenario.platform, 77);

  ViewFixture fx(platform::make_scenario(params).platform, scenario.app);
  model::Configuration dummy({{0, 5}});
  for (long t = 0; t < 5000; ++t) {
    for (int q = 0; q < fx.plat.size(); ++q) {
      fx.states[static_cast<std::size_t>(q)] = avail.state(q);
    }
    // A non-empty current config keeps the passive inner heuristic quiet;
    // only the observation path is exercised.
    (void)sched.decide(fx.view(t, &dummy));
    avail.advance();
  }

  for (int q = 0; q < 8; ++q) {
    const double truth =
        scenario.platform.proc(q).availability.prob(State::Up, State::Up);
    const double fit = sched.fitted(q).prob(State::Up, State::Up);
    EXPECT_NEAR(fit, truth, 0.03) << "proc " << q;
  }
}

TEST(Adaptive, RegistryConstructionAndRun) {
  platform::ScenarioParams params;
  params.m = 5;
  params.ncom = 5;
  params.wmin = 1;
  params.seed = 41;
  params.iterations = 3;
  auto scenario = platform::make_scenario(params);
  sched::Estimator est(scenario.platform, scenario.app, 1e-6);

  for (const auto& name : extension_heuristic_names()) {
    EXPECT_TRUE(is_heuristic_name(name));
    auto sched = make_scheduler(name, est, 5);
    EXPECT_EQ(sched->name(), name);
    platform::MarkovAvailability avail(scenario.platform, 1234);
    sim::EngineOptions opts;
    opts.slot_cap = 200000;
    sim::Engine engine(scenario.platform, scenario.app, avail, *sched, opts);
    const auto r = engine.run();
    if (r.success) EXPECT_EQ(r.iterations_completed, 3);
  }
}

TEST(Adaptive, RejectsBadParameters) {
  auto plat = mixed_platform();
  auto app = tiny_app(2);
  EXPECT_THROW(AdaptiveScheduler(std::nullopt, Rule::IE, plat, app, 1e-6, 0),
               std::invalid_argument);
  EXPECT_THROW(AdaptiveScheduler(std::nullopt, Rule::IE, plat, app, 1e-6, 10, 0.0),
               std::invalid_argument);
}

TEST(Adaptive, UnknownAdaptNameThrows) {
  auto plat = mixed_platform();
  auto app = tiny_app(2);
  sched::Estimator est(plat, app, 1e-6);
  EXPECT_THROW((void)make_scheduler("ADAPT-XX", est), std::invalid_argument);
  EXPECT_THROW((void)make_scheduler("ADAPT-Q-IE", est), std::invalid_argument);
}

}  // namespace
}  // namespace tcgrid::sched
