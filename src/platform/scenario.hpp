// The paper's experimental scenario generator (§VII-A).
//
// An experimental scenario is defined by (m, ncom, wmin) plus random draws:
//   * p = 20 processors;
//   * each self-loop probability P^{(q)}_{x,x} ~ U[0.90, 0.99], off-diagonals
//     split evenly: P^{(q)}_{x,y} = 0.5 (1 - P^{(q)}_{x,x});
//   * w_q ~ U[wmin, 10*wmin] (integral slots);
//   * T_data = wmin (the fastest possible processor has compute/comm ratio 1);
//   * T_prog = 5 * wmin.
#pragma once

#include <cstdint>

#include "model/application.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace tcgrid::platform {

/// Identity of one experimental scenario in the paper's sweep.
struct ScenarioParams {
  int m = 5;               ///< tasks per iteration
  int ncom = 5;            ///< master's concurrent communication bound
  long wmin = 1;           ///< synthetic difficulty knob
  int p = 20;              ///< processors (paper fixes 20)
  int iterations = 10;     ///< iterations to makespan (paper fixes 10)
  std::uint64_t seed = 0;  ///< scenario randomness (platform draws)
};

/// A fully instantiated scenario: platform + application.
struct Scenario {
  Platform platform;
  model::Application app;
  ScenarioParams params;
};

/// Instantiate the paper's random scenario for the given parameters.
/// Deterministic in `params` (including the seed).
[[nodiscard]] Scenario make_scenario(const ScenarioParams& params);

}  // namespace tcgrid::platform
