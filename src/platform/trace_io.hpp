// Availability trace files: one line per time slot, one character per
// processor ('u', 'r', 'd'). Lines starting with '#' are comments.
//
// Used by the trace-driven example and by the semi-Markov extension to feed
// recorded (non-Markovian) availability into the simulator.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "markov/state.hpp"
#include "markov/transition_matrix.hpp"

namespace tcgrid::platform {

using StateTimeline = std::vector<std::vector<markov::State>>;  // [slot][proc]

/// Parse a trace from a stream. Throws std::runtime_error on malformed input
/// (unknown state characters or ragged rows).
[[nodiscard]] StateTimeline read_trace(std::istream& in);

/// Parse a trace file; throws std::runtime_error if unreadable/malformed.
[[nodiscard]] StateTimeline load_trace(const std::string& path);

/// Serialize a trace (inverse of read_trace).
void write_trace(std::ostream& out, const StateTimeline& timeline);

/// Maximum-likelihood fit of a per-processor 3-state transition matrix from
/// an observed timeline: counts of x->y transitions, rows normalized.
/// Rows never observed keep a self-loop of 1 (no information).
/// This is exactly the "flawed Markov model built from real-world traces"
/// the paper proposes as future work (§VII-B).
[[nodiscard]] markov::TransitionMatrix fit_transition_matrix(
    const StateTimeline& timeline, int proc);

}  // namespace tcgrid::platform
