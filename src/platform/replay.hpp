// Trace-replay availability: drive the simulator from a recorded timeline
// (real desktop-grid traces, or traces recorded from another source via
// platform::record) instead of a generative model.
//
// Replay wraps around at the end of the timeline, and — unlike the scripted
// FixedAvailability, which pads with UP — each seed starts the replay at a
// different rotation offset, so paired trials of a scenario see different
// windows of the same trace (the replay analogue of redrawing a stochastic
// realization per trial).
#pragma once

#include <cstdint>
#include <memory>

#include "platform/availability.hpp"
#include "platform/trace_io.hpp"

namespace tcgrid::platform {

class TraceReplayAvailability final : public AvailabilitySource {
 public:
  /// Replay `timeline` (shared: one loaded trace typically feeds many
  /// concurrent trials) starting at a rotation offset derived from `seed`
  /// (pass rotate = false for offset 0). Throws std::invalid_argument on an
  /// empty or ragged timeline. A caller that constructs many replays of one
  /// already-validated trace (scen's trace family validates at registration)
  /// passes validated = true to skip the O(rows) ragged scan per trial.
  TraceReplayAvailability(std::shared_ptr<const StateTimeline> timeline,
                          std::uint64_t seed, bool rotate = true,
                          bool validated = false);

  [[nodiscard]] int size() const override { return procs_; }
  [[nodiscard]] markov::State state(int q) const override {
    return (*timeline_)[row_][static_cast<std::size_t>(q)];
  }
  void advance() override;
  [[nodiscard]] long position() const override { return slot_; }

  /// Fast path: one bulk row copy per slot, no per-processor dispatch.
  void fill_block(markov::State* buf, long slots) override;

  /// Row of the timeline the replay currently reads (for tests).
  [[nodiscard]] std::size_t row() const noexcept { return row_; }

 private:
  std::shared_ptr<const StateTimeline> timeline_;
  int procs_ = 0;
  std::size_t row_ = 0;  ///< wraps at the timeline length
  long slot_ = 0;        ///< does not wrap
};

}  // namespace tcgrid::platform
