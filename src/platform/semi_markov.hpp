// Non-Markovian (semi-Markov) availability with Weibull holding times.
//
// Production desktop-grid studies (Nurmi et al. 2005, Wolski et al. 2007,
// Javadi et al. 2009 — the paper's refs [18,19,20]) observe that availability
// interval lengths are often Weibull- or log-normal-like, not geometric.
// The paper's §VII-B proposes, as future work, fitting a "flawed" Markov
// model to such traces and measuring how wrong the Markov heuristics become.
//
// This module implements that experiment's substrate: a semi-Markov process
// whose state *sequence* follows an embedded chain but whose holding times
// are Weibull-distributed (shape < 1 gives the heavy tails seen in traces).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "platform/availability.hpp"
#include "platform/trace_io.hpp"

namespace tcgrid::platform {

/// Parameters of a per-processor semi-Markov availability process.
struct SemiMarkovParams {
  /// Embedded jump chain: probability of the next state given the current
  /// one (diagonal must be 0 — holding is modelled by the sojourn times).
  std::array<std::array<double, 3>, 3> jump{{{0.0, 0.5, 0.5},
                                             {0.5, 0.0, 0.5},
                                             {0.5, 0.5, 0.0}}};
  /// Weibull shape per state (shape < 1 = heavy tail, 1 = memoryless).
  std::array<double, 3> shape{0.7, 0.7, 0.7};
  /// Weibull scale per state, in time slots.
  std::array<double, 3> scale{20.0, 10.0, 10.0};
};

/// Semi-Markov parameters whose embedded chain and mean sojourn times match
/// a given Markov transition matrix, with Weibull-shaped (heavy-tailed for
/// shape < 1) instead of geometric holding times. This is the "same first
/// moments, different law" construction of the §VII-B mismatch experiment:
/// a Markov model fitted to the resulting traces recovers approximately `m`,
/// yet the process is not Markovian.
[[nodiscard]] SemiMarkovParams matched_semi_markov(const markov::TransitionMatrix& m,
                                                   double shape);

/// Semi-Markov availability source (sojourn in each state is
/// ceil(Weibull(shape, scale)) slots, minimum 1).
class SemiMarkovAvailability final : public AvailabilitySource {
 public:
  SemiMarkovAvailability(std::vector<SemiMarkovParams> per_proc, std::uint64_t seed);

  [[nodiscard]] int size() const override { return static_cast<int>(params_.size()); }
  [[nodiscard]] markov::State state(int q) const override {
    return states_[static_cast<std::size_t>(q)];
  }
  void advance() override;
  [[nodiscard]] long position() const override { return slot_; }

  /// Fast path: most processor-slots only decrement a sojourn counter, so a
  /// block fill is a tight non-virtual loop. Draw-for-draw identical to
  /// advance() (both run the same internal step).
  void fill_block(markov::State* buf, long slots) override;

 private:
  void step_once();
  void resample_holding(std::size_t q);

  std::vector<SemiMarkovParams> params_;
  util::Rng rng_;
  std::vector<markov::State> states_;
  std::vector<long> remaining_;  ///< slots left in the current sojourn
  long slot_ = 0;
};

/// Record `slots` slots of a source into a timeline (for fitting / replay).
[[nodiscard]] StateTimeline record(AvailabilitySource& source, long slots);

}  // namespace tcgrid::platform
