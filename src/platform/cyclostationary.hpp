// Cyclostationary (day/night modulated) Markov availability.
//
// Desktop-grid traces are strongly diurnal: machines are claimed by their
// owners during working hours and idle overnight (Kondo et al. 2004, Javadi
// et al. 2009). A single homogeneous Markov chain cannot express that; this
// source switches each processor between two transition matrices on a fixed
// phase schedule — the "day" chain (the platform's own, owner interference
// high) during the first day_slots of every period, and a calmer "night"
// chain (all departure probabilities scaled by night_calm < 1) for the rest.
//
// Like MarkovAvailability it consumes exactly one uniform per processor per
// slot in processor order, so realizations are pure functions of the seed
// and pair across heuristics.
#pragma once

#include <cstdint>
#include <vector>

#include "platform/availability.hpp"

namespace tcgrid::platform {

/// `m` with every off-diagonal (departure) probability scaled by `calm` and
/// the self-loops raised to keep rows stochastic. calm < 1 yields a quieter
/// chain (longer sojourns, same conditional jump distribution); calm = 1 is
/// the identity transform. Throws std::invalid_argument unless the scaled
/// rows remain distributions (calm * (1 - P_ii) <= 1 for every row).
[[nodiscard]] markov::TransitionMatrix scale_departures(const markov::TransitionMatrix& m,
                                                        double calm);

class CyclostationaryAvailability final : public AvailabilitySource {
 public:
  /// Day chains are the platform's per-processor matrices; night chains are
  /// scale_departures(day, night_calm). Slot t is a day slot when
  /// t % period < day_slots. Initial states follow `init` against the day
  /// chain (same draw layout as MarkovAvailability).
  CyclostationaryAvailability(const Platform& platform, std::uint64_t seed,
                              long period, long day_slots, double night_calm,
                              InitialStates init = InitialStates::Stationary);

  [[nodiscard]] int size() const override { return static_cast<int>(states_.size()); }
  [[nodiscard]] markov::State state(int q) const override {
    return states_[static_cast<std::size_t>(q)];
  }
  void advance() override;
  [[nodiscard]] long position() const override { return slot_; }

  /// Fast path: integer cut points per (processor, phase), one raw draw and
  /// two compares per processor-slot. Bit-identical to advance().
  void fill_block(markov::State* buf, long slots) override;

  [[nodiscard]] bool day_at(long slot) const noexcept {
    return slot % period_ < day_slots_;
  }

 private:
  util::Rng rng_;
  std::vector<markov::State> states_;
  std::vector<StepCuts> day_cuts_;
  std::vector<StepCuts> night_cuts_;
  long period_;
  long day_slots_;
  long slot_ = 0;  ///< slot the CURRENT states belong to
};

}  // namespace tcgrid::platform
