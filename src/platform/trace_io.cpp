#include "platform/trace_io.hpp"

#include <array>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tcgrid::platform {

StateTimeline read_trace(std::istream& in) {
  // Tolerant of real-world trace files: CRLF line endings (getline leaves
  // the '\r'), a missing trailing newline on the last row (getline still
  // yields it), a UTF-8 BOM, and comment lines indented with whitespace.
  StateTimeline timeline;
  std::string line;
  std::size_t width = 0;
  bool first_line = true;
  while (std::getline(in, line)) {
    if (first_line) {
      first_line = false;
      if (line.rfind("\xEF\xBB\xBF", 0) == 0) line.erase(0, 3);
    }
    const std::size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos || line[start] == '#') continue;
    std::vector<markov::State> row;
    row.reserve(line.size());
    for (char c : line) {
      if (c == ' ' || c == '\t' || c == '\r') continue;
      if (!markov::is_state_code(c)) {
        throw std::runtime_error("read_trace: unknown state character");
      }
      row.push_back(markov::state_from_code(c));
    }
    if (width == 0) width = row.size();
    if (row.size() != width) throw std::runtime_error("read_trace: ragged trace");
    timeline.push_back(std::move(row));
  }
  return timeline;
}

StateTimeline load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_trace: cannot open " + path);
  return read_trace(in);
}

void write_trace(std::ostream& out, const StateTimeline& timeline) {
  for (const auto& row : timeline) {
    for (markov::State s : row) out << markov::code(s);
    out << '\n';
  }
}

markov::TransitionMatrix fit_transition_matrix(const StateTimeline& timeline,
                                               int proc) {
  std::array<std::array<double, 3>, 3> counts{};
  for (std::size_t t = 0; t + 1 < timeline.size(); ++t) {
    const auto from = static_cast<std::size_t>(
        timeline[t][static_cast<std::size_t>(proc)]);
    const auto to = static_cast<std::size_t>(
        timeline[t + 1][static_cast<std::size_t>(proc)]);
    counts[from][to] += 1.0;
  }
  std::array<std::array<double, 3>, 3> p{};
  for (std::size_t i = 0; i < 3; ++i) {
    double total = counts[i][0] + counts[i][1] + counts[i][2];
    if (total == 0.0) {
      p[i][i] = 1.0;  // state never observed: inert self-loop
      continue;
    }
    for (std::size_t j = 0; j < 3; ++j) p[i][j] = counts[i][j] / total;
  }
  return markov::TransitionMatrix(p);
}

}  // namespace tcgrid::platform
