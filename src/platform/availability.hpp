// Sources of per-slot processor availability.
//
// The engine pulls states through the AvailabilitySource interface, either
// one slot at a time (state/advance) or in dense blocks (fill_block — the
// fast path, see DESIGN.md §7). The Markov implementation draws exactly one
// uniform per processor per slot in processor order, so a realization is a
// pure function of its seed — every heuristic evaluated on the same trial
// sees the same availability (paired comparisons, as in the paper's
// methodology), and the per-slot and block paths yield identical timelines.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "markov/chain.hpp"
#include "markov/state.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace tcgrid::platform {

/// Abstract per-slot availability stream for `p` processors.
class AvailabilitySource {
 public:
  virtual ~AvailabilitySource() = default;

  /// Number of processors.
  [[nodiscard]] virtual int size() const = 0;

  /// State of processor q at the current slot.
  [[nodiscard]] virtual markov::State state(int q) const = 0;

  /// Advance to the next slot.
  virtual void advance() = 0;

  /// Index of the CURRENT slot within this source's stream: 0 at
  /// construction, incremented once per advance(), so fill_block(buf, n)
  /// leaves it n slots higher. Consumers that prefetch (the engine pulls
  /// avail_block slots at a time) leave the source past the last slot they
  /// simulated; position() is how a caller observes exactly where the
  /// stream stands instead of guessing at the overshoot (see
  /// api::Session::run_custom).
  [[nodiscard]] virtual long position() const = 0;

  /// Block-stepping contract: write the states of the next `slots` slots
  /// (starting with the CURRENT one) into `buf`, row-major [slot][proc] with
  /// size() states per row, leaving the source positioned `slots` slots
  /// further on. Semantically identical to
  ///
  ///   for each slot: { for each q: *buf++ = state(q); } advance();
  ///
  /// which is exactly what this default does. Stochastic families override
  /// it with a tight loop that consumes the SAME random draws in the SAME
  /// order, so a realization never depends on how it was pulled; the engine
  /// consumes availability through this method to amortize the per-slot
  /// virtual dispatch (one call per block instead of size()+1 per slot).
  virtual void fill_block(markov::State* buf, long slots) {
    const int p = size();
    for (long t = 0; t < slots; ++t) {
      for (int q = 0; q < p; ++q) *buf++ = state(q);
      advance();
    }
  }
};

/// How MarkovAvailability chooses states for slot 0.
enum class InitialStates {
  AllUp,       ///< every processor starts UP
  Stationary,  ///< sampled from each chain's stationary distribution
};

/// Slot-0 states for every processor of `platform`, consuming exactly one
/// uniform01 draw per processor in processor order in BOTH modes (identical
/// stream layout, so sources sharing a seed stay paired whatever the mode).
/// Shared by every chain-based source; cross-source bit-identity (e.g. the
/// cyclostationary family with night == day degenerating to the Markov
/// family) depends on this being the single implementation.
[[nodiscard]] std::vector<markov::State> sample_initial_states(const Platform& platform,
                                                               util::Rng& rng,
                                                               InitialStates init);

/// Per-processor integer cut points for one chain row: a draw x steps to UP
/// when min(x, kU01Top) < cut[0], to RECLAIMED when < cut[1], else to DOWN —
/// the exact integer form of markov::step's double comparisons (see
/// util::uniform01_cut).
using StepCuts = std::array<std::array<std::uint64_t, 2>, markov::kNumStates>;

/// Cut points equivalent to stepping `m` via markov::step.
[[nodiscard]] StepCuts step_cuts(const markov::TransitionMatrix& m);

/// Lazy sampler of the paper's independent per-processor Markov chains.
class MarkovAvailability final : public AvailabilitySource {
 public:
  MarkovAvailability(const Platform& platform, std::uint64_t seed,
                     InitialStates init = InitialStates::Stationary);

  [[nodiscard]] int size() const override { return static_cast<int>(states_.size()); }
  [[nodiscard]] markov::State state(int q) const override {
    return states_[static_cast<std::size_t>(q)];
  }
  void advance() override;
  [[nodiscard]] long position() const override { return slot_; }

  /// Fast path: steps every chain through precomputed integer cut points
  /// (one raw engine draw + two compares per processor-slot, no virtual
  /// dispatch). Bit-identical to advance()'s markov::step reference path.
  void fill_block(markov::State* buf, long slots) override;

 private:
  const Platform& platform_;
  util::Rng rng_;
  std::vector<markov::State> states_;
  std::vector<StepCuts> cuts_;  ///< per-processor, aligned with states_
  long slot_ = 0;
};

/// Fixed, scripted availability (used by tests and the Figure 1 example).
/// Beyond the scripted horizon all processors are reported UP.
class FixedAvailability final : public AvailabilitySource {
 public:
  /// `timeline[t][q]` is the state of processor q at slot t.
  explicit FixedAvailability(std::vector<std::vector<markov::State>> timeline);

  [[nodiscard]] int size() const override { return procs_; }
  [[nodiscard]] markov::State state(int q) const override;
  void advance() override { ++slot_; }
  [[nodiscard]] long position() const override { return slot_; }

  [[nodiscard]] long slot() const noexcept { return slot_; }

 private:
  std::vector<std::vector<markov::State>> timeline_;
  int procs_;
  long slot_ = 0;
};

}  // namespace tcgrid::platform
