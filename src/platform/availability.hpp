// Sources of per-slot processor availability.
//
// The engine pulls states one slot at a time through the AvailabilitySource
// interface. The Markov implementation draws exactly one uniform per
// processor per slot in processor order, so a realization is a pure function
// of its seed — every heuristic evaluated on the same trial sees the same
// availability (paired comparisons, as in the paper's methodology).
#pragma once

#include <memory>
#include <vector>

#include "markov/chain.hpp"
#include "markov/state.hpp"
#include "platform/platform.hpp"
#include "util/rng.hpp"

namespace tcgrid::platform {

/// Abstract per-slot availability stream for `p` processors.
class AvailabilitySource {
 public:
  virtual ~AvailabilitySource() = default;

  /// Number of processors.
  [[nodiscard]] virtual int size() const = 0;

  /// State of processor q at the current slot.
  [[nodiscard]] virtual markov::State state(int q) const = 0;

  /// Advance to the next slot.
  virtual void advance() = 0;
};

/// How MarkovAvailability chooses states for slot 0.
enum class InitialStates {
  AllUp,       ///< every processor starts UP
  Stationary,  ///< sampled from each chain's stationary distribution
};

/// Lazy sampler of the paper's independent per-processor Markov chains.
class MarkovAvailability final : public AvailabilitySource {
 public:
  MarkovAvailability(const Platform& platform, std::uint64_t seed,
                     InitialStates init = InitialStates::Stationary);

  [[nodiscard]] int size() const override { return static_cast<int>(states_.size()); }
  [[nodiscard]] markov::State state(int q) const override {
    return states_[static_cast<std::size_t>(q)];
  }
  void advance() override;

 private:
  const Platform& platform_;
  util::Rng rng_;
  std::vector<markov::State> states_;
};

/// Fixed, scripted availability (used by tests and the Figure 1 example).
/// Beyond the scripted horizon all processors are reported UP.
class FixedAvailability final : public AvailabilitySource {
 public:
  /// `timeline[t][q]` is the state of processor q at slot t.
  explicit FixedAvailability(std::vector<std::vector<markov::State>> timeline);

  [[nodiscard]] int size() const override { return procs_; }
  [[nodiscard]] markov::State state(int q) const override;
  void advance() override { ++slot_; }

  [[nodiscard]] long slot() const noexcept { return slot_; }

 private:
  std::vector<std::vector<markov::State>> timeline_;
  int procs_;
  long slot_ = 0;
};

}  // namespace tcgrid::platform
