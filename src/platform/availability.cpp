#include "platform/availability.hpp"

#include <stdexcept>

namespace tcgrid::platform {

MarkovAvailability::MarkovAvailability(const Platform& platform, std::uint64_t seed,
                                       InitialStates init)
    : platform_(platform), rng_(seed) {
  states_.resize(static_cast<std::size_t>(platform.size()));
  for (int q = 0; q < platform.size(); ++q) {
    if (init == InitialStates::AllUp) {
      states_[static_cast<std::size_t>(q)] = markov::State::Up;
      // Consume one draw anyway so both modes use identical stream layouts.
      (void)rng_.uniform01();
      continue;
    }
    const auto pi = platform.proc(q).availability.stationary();
    const double u = rng_.uniform01();
    markov::State s = markov::State::Down;
    if (u < pi[0]) s = markov::State::Up;
    else if (u < pi[0] + pi[1]) s = markov::State::Reclaimed;
    states_[static_cast<std::size_t>(q)] = s;
  }
}

void MarkovAvailability::advance() {
  for (int q = 0; q < platform_.size(); ++q) {
    auto& s = states_[static_cast<std::size_t>(q)];
    s = markov::step(platform_.proc(q).availability, s, rng_);
  }
}

FixedAvailability::FixedAvailability(std::vector<std::vector<markov::State>> timeline)
    : timeline_(std::move(timeline)) {
  if (timeline_.empty()) throw std::invalid_argument("FixedAvailability: empty timeline");
  procs_ = static_cast<int>(timeline_.front().size());
  for (const auto& row : timeline_) {
    if (static_cast<int>(row.size()) != procs_) {
      throw std::invalid_argument("FixedAvailability: ragged timeline");
    }
  }
}

markov::State FixedAvailability::state(int q) const {
  if (q < 0 || q >= procs_) throw std::out_of_range("FixedAvailability::state");
  if (slot_ >= static_cast<long>(timeline_.size())) return markov::State::Up;
  return timeline_[static_cast<std::size_t>(slot_)][static_cast<std::size_t>(q)];
}

}  // namespace tcgrid::platform
