#include "platform/availability.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgrid::platform {

StepCuts step_cuts(const markov::TransitionMatrix& m) {
  // The matrix precomputes its cut table at construction (the binary
  // searches are too costly to redo per availability source when thousands
  // of paired trials share one platform); this keeps the historical entry
  // point.
  return m.step_cut_table();
}

std::vector<markov::State> sample_initial_states(const Platform& platform,
                                                 util::Rng& rng, InitialStates init) {
  std::vector<markov::State> states(static_cast<std::size_t>(platform.size()));
  for (int q = 0; q < platform.size(); ++q) {
    if (init == InitialStates::AllUp) {
      states[static_cast<std::size_t>(q)] = markov::State::Up;
      // Consume one draw anyway so both modes use identical stream layouts.
      (void)rng.uniform01();
      continue;
    }
    const auto pi = platform.proc(q).availability.stationary();
    const double u = rng.uniform01();
    markov::State s = markov::State::Down;
    if (u < pi[0]) s = markov::State::Up;
    else if (u < pi[0] + pi[1]) s = markov::State::Reclaimed;
    states[static_cast<std::size_t>(q)] = s;
  }
  return states;
}

MarkovAvailability::MarkovAvailability(const Platform& platform, std::uint64_t seed,
                                       InitialStates init)
    : platform_(platform), rng_(seed) {
  cuts_.reserve(static_cast<std::size_t>(platform.size()));
  for (int q = 0; q < platform.size(); ++q) {
    cuts_.push_back(step_cuts(platform.proc(q).availability));
  }
  states_ = sample_initial_states(platform, rng_, init);
}

void MarkovAvailability::advance() {
  for (int q = 0; q < platform_.size(); ++q) {
    auto& s = states_[static_cast<std::size_t>(q)];
    s = markov::step(platform_.proc(q).availability, s, rng_);
  }
  ++slot_;
}

void MarkovAvailability::fill_block(markov::State* buf, long slots) {
  const std::size_t p = states_.size();
  auto& engine = rng_.engine();
  for (long t = 0; t < slots; ++t) {
    std::copy_n(states_.data(), p, buf);
    buf += p;
    for (std::size_t q = 0; q < p; ++q) {
      const auto& row = cuts_[q][static_cast<std::size_t>(states_[q])];
      const std::uint64_t x = std::min(engine(), util::kU01Top);
      states_[q] = x < row[0] ? markov::State::Up
                 : x < row[1] ? markov::State::Reclaimed
                              : markov::State::Down;
    }
  }
  slot_ += slots;
}

FixedAvailability::FixedAvailability(std::vector<std::vector<markov::State>> timeline)
    : timeline_(std::move(timeline)) {
  if (timeline_.empty()) throw std::invalid_argument("FixedAvailability: empty timeline");
  procs_ = static_cast<int>(timeline_.front().size());
  for (const auto& row : timeline_) {
    if (static_cast<int>(row.size()) != procs_) {
      throw std::invalid_argument("FixedAvailability: ragged timeline");
    }
  }
}

markov::State FixedAvailability::state(int q) const {
  if (q < 0 || q >= procs_) throw std::out_of_range("FixedAvailability::state");
  if (slot_ >= static_cast<long>(timeline_.size())) return markov::State::Up;
  return timeline_[static_cast<std::size_t>(slot_)][static_cast<std::size_t>(q)];
}

}  // namespace tcgrid::platform
