#include "platform/realization.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace tcgrid::platform {

namespace {

/// Slots materialized per source pull. Large enough to amortize the virtual
/// fill_block dispatch and the digest pass, small enough that lazy growth
/// does not overshoot a few-hundred-slot makespan by much.
constexpr long kChunk = 512;

inline bool is_up(markov::State s) noexcept { return s == markov::State::Up; }

}  // namespace

Realization::Realization(std::unique_ptr<AvailabilitySource> source,
                         std::size_t budget_bytes)
    : source_(std::move(source)), budget_(budget_bytes) {
  if (source_ == nullptr) {
    throw std::invalid_argument("Realization: null source");
  }
  p_ = source_->size();
  if (p_ < 1) throw std::invalid_argument("Realization: empty source");
  if (source_->position() != 0) {
    throw std::invalid_argument("Realization: source already advanced");
  }
  const auto p = static_cast<std::size_t>(p_);
  runs_.resize(p);
  cursor_.assign(p, 0);
  last_row_.resize(p);
  scratch_.resize(p * static_cast<std::size_t>(kChunk));
}

void Realization::materialize_chunk(long slots) {
  const auto p = static_cast<std::size_t>(p_);
  source_->fill_block(scratch_.data(), slots);

  const auto words = static_cast<std::size_t>((frontier_ + slots + 63) >> 6);
  chg_bits_.resize(words, 0);
  gain_bits_.resize(words, 0);
  ndown_bits_.resize(words, 0);

  const markov::State* prev = frontier_ > 0 ? last_row_.data() : nullptr;
  std::size_t new_runs = 0;
  for (long r = 0; r < slots; ++r) {
    const markov::State* row = scratch_.data() + static_cast<std::size_t>(r) * p;
    const long slot = frontier_ + r;
    unsigned chg = 0;
    unsigned gain = 0;
    unsigned ndown = 0;
    if (prev == nullptr) {
      // Slot 0 has no predecessor: conservatively all-set, exactly as the
      // engine digests the first row of a fresh run.
      chg = gain = ndown = 1;
      for (std::size_t q = 0; q < p; ++q) {
        runs_[q].push_back(Run{slot, row[q]});
        ++new_runs;
      }
    } else {
      // Word-wise diff: states are bytes, so XOR of 8-byte chunks yields a
      // nonzero byte exactly at changed workers; only those are processed.
      // Rows hold every state 30-60% of the time in the paper's world, and
      // changed rows touch 1-3 workers — this pass is what keeps
      // materialization within a few percent of bare generation. The
      // bit-index -> byte-index mapping below is little-endian; big-endian
      // hosts take the byte-wise tail loop for the whole row.
      std::size_t q = 0;
      if constexpr (std::endian::native == std::endian::little) {
        for (; q + 8 <= p; q += 8) {
          std::uint64_t a;
          std::uint64_t b;
          std::memcpy(&a, prev + q, 8);
          std::memcpy(&b, row + q, 8);
          std::uint64_t diff = a ^ b;
          while (diff != 0) {
            const auto at = q + static_cast<std::size_t>(std::countr_zero(diff) >> 3);
            const markov::State s = row[at];
            runs_[at].push_back(Run{slot, s});
            ++new_runs;
            const bool was_up = is_up(prev[at]);
            const bool now_up = is_up(s);
            chg |= static_cast<unsigned>(was_up != now_up);
            gain |= static_cast<unsigned>(!was_up && now_up);
            ndown |= static_cast<unsigned>(s == markov::State::Down);
            diff &= ~(0xffULL << (static_cast<std::size_t>(at - q) * 8));
          }
        }
      }
      for (; q < p; ++q) {
        const markov::State s = row[q];
        if (s != prev[q]) {
          runs_[q].push_back(Run{slot, s});
          ++new_runs;
          const bool was_up = is_up(prev[q]);
          const bool now_up = is_up(s);
          chg |= static_cast<unsigned>(was_up != now_up);
          gain |= static_cast<unsigned>(!was_up && now_up);
          ndown |= static_cast<unsigned>(s == markov::State::Down);
        }
      }
    }
    const auto w = static_cast<std::size_t>(slot >> 6);
    const std::uint64_t mask = 1ULL << (static_cast<std::uint64_t>(slot) & 63);
    if (chg) chg_bits_[w] |= mask;
    if (gain) gain_bits_[w] |= mask;
    if (ndown) ndown_bits_[w] |= mask;
    prev = row;
  }
  std::copy_n(scratch_.data() + static_cast<std::size_t>(slots - 1) * p, p,
              last_row_.data());
  frontier_ += slots;
  total_runs_ += new_runs;
  bytes_ = total_runs_ * sizeof(Run) + 3 * words * sizeof(std::uint64_t);
}

void Realization::ensure(long slots) {
  assert(!frozen_ || slots <= frontier_);
  while (frontier_ < slots) {
    materialize_chunk(kChunk);
    if (budget_ != 0 && bytes_ > budget_) {
      throw RealizationBudgetExceeded(bytes_, budget_);
    }
  }
}

std::size_t Realization::locate(std::size_t q, long slot) const {
  const auto& runs = runs_[q];
  // Sequential-replay hint first, then binary search (replays restart from
  // slot 0, stretch queries land anywhere).
  std::size_t i = cursor_[q];
  const bool hint_ok = i < runs.size() && runs[i].begin <= slot &&
                       (i + 1 == runs.size() || runs[i + 1].begin > slot);
  if (!hint_ok) {
    const auto it =
        std::upper_bound(runs.begin(), runs.end(), slot,
                         [](long s, const Run& run) { return s < run.begin; });
    assert(it != runs.begin());
    i = static_cast<std::size_t>(it - runs.begin()) - 1;
    cursor_[q] = i;
  }
  return i;
}

void Realization::expand_rows(long begin, long end, markov::State* buf) const {
  assert(begin >= 0 && begin <= end && end <= frontier_);
  if (begin == end) return;
  if (end - begin == 1) {
    // Single-row fast path: replay jump loops expand exactly the event rows,
    // whose slots are shared by every heuristic consuming this trial. Rows
    // are immutable once materialized, so a hit is a straight copy.
    const auto p = static_cast<std::size_t>(p_);
    if (row_memo_tag_.empty()) {
      row_memo_tag_.assign(kRowMemoSlots, -1);
      row_memo_.resize(kRowMemoSlots * p);
    }
    const std::size_t idx =
        static_cast<std::size_t>(begin) & (kRowMemoSlots - 1);
    markov::State* cell = row_memo_.data() + idx * p;
    if (row_memo_tag_[idx] == begin) {
      std::copy_n(cell, p, buf);
      return;
    }
    expand_rows_uncached(begin, end, buf);
    std::copy_n(buf, p, cell);
    row_memo_tag_[idx] = begin;
    return;
  }
  expand_rows_uncached(begin, end, buf);
}

void Realization::expand_rows_uncached(long begin, long end,
                                       markov::State* buf) const {
  const auto p = static_cast<std::size_t>(p_);
  for (std::size_t q = 0; q < p; ++q) {
    const auto& runs = runs_[q];
    std::size_t i = locate(q, begin);
    long t = begin;
    while (t < end) {
      const long run_end = i + 1 < runs.size() ? runs[i + 1].begin : frontier_;
      const long stop = std::min(end, run_end);
      const markov::State s = runs[i].state;
      for (; t < stop; ++t) {
        buf[static_cast<std::size_t>(t - begin) * p + q] = s;
      }
      if (t < end) ++i;
    }
    cursor_[q] = i;
  }
}

markov::State Realization::state_at(int q, long slot) const {
  assert(slot >= 0 && slot < frontier_);
  const auto qi = static_cast<std::size_t>(q);
  return runs_[qi][locate(qi, slot)].state;
}

long Realization::stable_until(const std::vector<int>& procs, long from, long limit) {
  assert(from >= 0);
  ensure(from + 1);
  while (true) {
    // min over the listed workers of the end of the run containing `from`;
    // a worker on its LAST materialized run contributes frontier_ ("end
    // unknown"), which is unambiguous: a real next-run begin is < frontier_.
    long e = limit;
    for (int proc : procs) {
      const auto q = static_cast<std::size_t>(proc);
      const auto& runs = runs_[q];
      const std::size_t i = locate(q, from);
      const long run_end = i + 1 < runs.size() ? runs[i + 1].begin : frontier_;
      e = std::min(e, run_end);
    }
    if (e >= limit) return limit;
    if (e < frontier_) return e;
    ensure(frontier_ + 1);  // the limiting run may continue: materialize on
  }
}

bool Realization::any_new_down(long begin, long end) const {
  assert(begin >= 0 && end < frontier_);
  long s = begin;
  while (s <= end) {
    const auto w = static_cast<std::size_t>(s >> 6);
    const std::uint64_t word =
        ndown_bits_[w] >> (static_cast<std::uint64_t>(s) & 63);
    if (word != 0) {
      const long cand = s + std::countr_zero(word);
      if (cand <= end) return true;
      return false;  // set bits in this word are all past `end`
    }
    s = static_cast<long>(w + 1) << 6;
  }
  return false;
}

bool Realization::down_overlaps(int q, long begin, long end) const {
  assert(begin >= 0 && end < frontier_);
  if (begin > end) return false;
  const auto qi = static_cast<std::size_t>(q);
  const auto& runs = runs_[qi];
  for (std::size_t i = locate(qi, begin); i < runs.size() && runs[i].begin <= end;
       ++i) {
    if (runs[i].state == markov::State::Down) return true;
  }
  return false;
}

void Realization::copy_digests(long begin, long end, unsigned char* chg,
                               unsigned char* gain, unsigned char* ndown) const {
  assert(begin >= 0 && begin <= end && end <= frontier_);
  // Word-at-a-time bit unpacking: one shift per slot per bitset instead of
  // a full indexed bit() read (windows are ~1k slots; this is per refill).
  long t = begin;
  while (t < end) {
    const auto w = static_cast<std::size_t>(t >> 6);
    const unsigned off = static_cast<unsigned>(t) & 63;
    std::uint64_t c = chg_bits_[w] >> off;
    std::uint64_t g = gain_bits_[w] >> off;
    std::uint64_t n = ndown_bits_[w] >> off;
    const long stop = std::min(end, (static_cast<long>(w) + 1) << 6);
    for (; t < stop; ++t) {
      const auto i = static_cast<std::size_t>(t - begin);
      chg[i] = static_cast<unsigned char>(c & 1);
      gain[i] = static_cast<unsigned char>(g & 1);
      ndown[i] = static_cast<unsigned char>(n & 1);
      c >>= 1;
      g >>= 1;
      n >>= 1;
    }
  }
}

long Realization::next_change_materialized(long from, long limit) const noexcept {
  assert(from >= 0);
  const long hi = std::min(limit, frontier_);  // never materialize
  if (from >= hi) return from;  // nothing known at or past `from`
  long s = from;
  while (s < hi) {
    const auto w = static_cast<std::size_t>(s >> 6);
    const std::uint64_t word =
        (chg_bits_[w] | ndown_bits_[w]) >> (static_cast<std::uint64_t>(s) & 63);
    if (word != 0) {
      const long cand = s + std::countr_zero(word);
      if (cand < hi) return cand;
      break;  // candidate at/past the scannable bound: range is clean
    }
    s = static_cast<long>(w + 1) << 6;
  }
  return hi;  // [from, hi) change-free; quiet at least through the frontier
}

long Realization::next_change(long from, long limit) {
  assert(from >= 0);
  long s = from;
  while (s < limit) {
    if (s >= frontier_) ensure(s + 1);
    const long hi = std::min(limit, frontier_);  // scannable bound
    while (s < hi) {
      const auto w = static_cast<std::size_t>(s >> 6);
      const std::uint64_t word =
          (chg_bits_[w] | ndown_bits_[w]) >> (static_cast<std::uint64_t>(s) & 63);
      if (word != 0) {
        const long cand = s + std::countr_zero(word);
        // A candidate past `hi` can only be past `limit` (bits beyond the
        // frontier are never set), so the range is change-free.
        if (cand < hi) return cand;
        break;
      }
      s = static_cast<long>(w + 1) << 6;
    }
    s = hi;  // [from, hi) scanned clean; grow the frontier if limit allows
  }
  return limit;
}

RealizationView::RealizationView(Realization& realization)
    : realization_(&realization) {
  row_.resize(static_cast<std::size_t>(realization_->size()));
}

markov::State RealizationView::state(int q) const {
  if (row_slot_ != pos_) {
    realization_->ensure(pos_ + 1);
    realization_->expand_rows(pos_, pos_ + 1, row_.data());
    row_slot_ = pos_;
  }
  return row_[static_cast<std::size_t>(q)];
}

void RealizationView::fill_block(markov::State* buf, long slots) {
  realization_->ensure(pos_ + slots);
  realization_->expand_rows(pos_, pos_ + slots, buf);
  pos_ += slots;
}

}  // namespace tcgrid::platform
