#include "platform/semi_markov.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcgrid::platform {

SemiMarkovAvailability::SemiMarkovAvailability(std::vector<SemiMarkovParams> per_proc,
                                               std::uint64_t seed)
    : params_(std::move(per_proc)), rng_(seed) {
  if (params_.empty()) throw std::invalid_argument("SemiMarkovAvailability: empty");
  states_.assign(params_.size(), markov::State::Up);
  remaining_.assign(params_.size(), 0);
  for (std::size_t q = 0; q < params_.size(); ++q) resample_holding(q);
}

void SemiMarkovAvailability::resample_holding(std::size_t q) {
  const auto s = static_cast<std::size_t>(states_[q]);
  const double draw = rng_.weibull(params_[q].shape[s], params_[q].scale[s]);
  remaining_[q] = std::max(1L, static_cast<long>(std::ceil(draw)));
}

SemiMarkovParams matched_semi_markov(const markov::TransitionMatrix& m, double shape) {
  SemiMarkovParams params;
  params.shape = {shape, shape, shape};
  // A Markov chain holds in state i for a geometric number of slots with
  // mean 1/(1 - P_ii); give the Weibull the same mean (E[Weibull(k, s)] =
  // s * Gamma(1 + 1/k)) and reuse the chain's conditional jump distribution.
  const double gamma = std::tgamma(1.0 + 1.0 / shape);
  for (std::size_t i = 0; i < markov::kNumStates; ++i) {
    const auto from = static_cast<markov::State>(i);
    const double stay = m.prob(from, from);
    const double mean_sojourn = 1.0 / std::max(1e-9, 1.0 - stay);
    params.scale[i] = mean_sojourn / gamma;
    const double leave = std::max(1e-12, 1.0 - stay);
    for (std::size_t j = 0; j < markov::kNumStates; ++j) {
      const auto to = static_cast<markov::State>(j);
      params.jump[i][j] = i == j ? 0.0 : m.prob(from, to) / leave;
    }
  }
  return params;
}

void SemiMarkovAvailability::step_once() {
  for (std::size_t q = 0; q < params_.size(); ++q) {
    if (--remaining_[q] > 0) continue;
    // Sojourn over: jump to a different state via the embedded chain.
    const auto& row = params_[q].jump[static_cast<std::size_t>(states_[q])];
    const double u = rng_.uniform01();
    markov::State next = markov::State::Down;
    if (u < row[0]) next = markov::State::Up;
    else if (u < row[0] + row[1]) next = markov::State::Reclaimed;
    states_[q] = next;
    resample_holding(q);
  }
}

void SemiMarkovAvailability::advance() {
  step_once();
  ++slot_;
}

void SemiMarkovAvailability::fill_block(markov::State* buf, long slots) {
  const std::size_t p = params_.size();
  for (long t = 0; t < slots; ++t) {
    std::copy_n(states_.data(), p, buf);
    buf += p;
    step_once();
  }
  slot_ += slots;
}

StateTimeline record(AvailabilitySource& source, long slots) {
  StateTimeline timeline;
  timeline.reserve(static_cast<std::size_t>(slots));
  for (long t = 0; t < slots; ++t) {
    std::vector<markov::State> row(static_cast<std::size_t>(source.size()));
    for (int q = 0; q < source.size(); ++q) {
      row[static_cast<std::size_t>(q)] = source.state(q);
    }
    timeline.push_back(std::move(row));
    source.advance();
  }
  return timeline;
}

}  // namespace tcgrid::platform
