#include "platform/semi_markov.hpp"

#include <cmath>
#include <stdexcept>

namespace tcgrid::platform {

SemiMarkovAvailability::SemiMarkovAvailability(std::vector<SemiMarkovParams> per_proc,
                                               std::uint64_t seed)
    : params_(std::move(per_proc)), rng_(seed) {
  if (params_.empty()) throw std::invalid_argument("SemiMarkovAvailability: empty");
  states_.assign(params_.size(), markov::State::Up);
  remaining_.assign(params_.size(), 0);
  for (std::size_t q = 0; q < params_.size(); ++q) resample_holding(q);
}

void SemiMarkovAvailability::resample_holding(std::size_t q) {
  const auto s = static_cast<std::size_t>(states_[q]);
  const double draw = rng_.weibull(params_[q].shape[s], params_[q].scale[s]);
  remaining_[q] = std::max(1L, static_cast<long>(std::ceil(draw)));
}

void SemiMarkovAvailability::advance() {
  for (std::size_t q = 0; q < params_.size(); ++q) {
    if (--remaining_[q] > 0) continue;
    // Sojourn over: jump to a different state via the embedded chain.
    const auto& row = params_[q].jump[static_cast<std::size_t>(states_[q])];
    const double u = rng_.uniform01();
    markov::State next = markov::State::Down;
    if (u < row[0]) next = markov::State::Up;
    else if (u < row[0] + row[1]) next = markov::State::Reclaimed;
    states_[q] = next;
    resample_holding(q);
  }
}

StateTimeline record(AvailabilitySource& source, long slots) {
  StateTimeline timeline;
  timeline.reserve(static_cast<std::size_t>(slots));
  for (long t = 0; t < slots; ++t) {
    std::vector<markov::State> row(static_cast<std::size_t>(source.size()));
    for (int q = 0; q < source.size(); ++q) {
      row[static_cast<std::size_t>(q)] = source.state(q);
    }
    timeline.push_back(std::move(row));
    source.advance();
  }
  return timeline;
}

}  // namespace tcgrid::platform
