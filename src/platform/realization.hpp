// Materialized availability realizations: generate once, replay many times.
//
// The paper's methodology is paired comparison — every heuristic evaluated
// on a (scenario, trial) faces the IDENTICAL availability realization. The
// historical way to reproduce that pairing is re-seeding: each heuristic run
// regenerates the stream from scratch (one RNG draw per processor per slot
// for the Markov family) and the engine recomputes the same per-block
// digests, so generation + digesting is paid once per heuristic. A
// Realization materializes one trial's timeline exactly once, through the
// same fill_block contract live consumers use, and replays it to every
// subsequent run (see DESIGN.md §9):
//
//   * storage is columnar run-length encoding — per-worker state intervals.
//     Paper-world self-loop probabilities are 0.90..0.99, so state runs
//     average 10..100 slots and the RLE is roughly an order of magnitude
//     smaller than the dense [slot x proc] matrix;
//   * the per-slot digest bitsets the engine's event-horizon loop needs
//     (UP-set-changed / UP-gain / newly-DOWN, DESIGN.md §8) are computed in
//     the same single pass and stored packed, so replay runs never
//     re-digest;
//   * materialization is lazy: slots are pulled from the wrapped source in
//     chunks as consumers reach for them, so a trial only ever materializes
//     as far as its longest run actually simulates (makespans are typically
//     a few hundred slots against a 10^6 slot cap);
//   * memory is bounded by a byte budget; crossing it throws
//     RealizationBudgetExceeded, which api::Session catches to fall back to
//     live generation (bit-identical, just slower).
//
// Bit-identity: the wrapped source is pulled exclusively through
// fill_block, whose contract (availability.hpp) guarantees identical draws
// however the stream is chunked, so expand_rows reproduces live generation
// exactly for every family in the scen registry; the digest definitions are
// the engine's own (slot 0 conservatively all-set, later slots relative to
// their predecessor).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include "markov/state.hpp"
#include "platform/availability.hpp"

namespace tcgrid::platform {

/// Thrown when materializing further slots would exceed the realization's
/// byte budget. The caller owns the fallback policy (api::Session reruns
/// the interrupted simulation against live generation).
class RealizationBudgetExceeded : public std::runtime_error {
 public:
  RealizationBudgetExceeded(std::size_t bytes, std::size_t budget)
      : std::runtime_error("Realization: " + std::to_string(bytes) +
                           " bytes exceeds budget of " + std::to_string(budget)),
        bytes_(bytes),
        budget_(budget) {}

  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }

 private:
  std::size_t bytes_;
  std::size_t budget_;
};

/// One trial's availability timeline, materialized lazily from an owned
/// source and shared (sequentially) by every run of that trial. NOT
/// thread-safe: replay queries extend the materialized prefix on demand.
class Realization {
 public:
  /// Takes ownership of `source` (which must be freshly constructed, i.e.
  /// at position 0). `budget_bytes` bounds the materialized representation;
  /// 0 means unlimited.
  explicit Realization(std::unique_ptr<AvailabilitySource> source,
                       std::size_t budget_bytes = 0);

  [[nodiscard]] int size() const noexcept { return p_; }

  /// Slots materialized so far (the stream prefix [0, frontier())).
  [[nodiscard]] long frontier() const noexcept { return frontier_; }

  /// Current footprint of the materialized representation.
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }

  /// Materialize through slot `slots` (exclusive); no-op when already
  /// covered. Pulls the source in fixed chunks, so the frontier may end up
  /// slightly past `slots`. Throws RealizationBudgetExceeded when the
  /// representation would outgrow the budget. Must not be called past the
  /// frontier once frozen.
  void ensure(long slots);

  /// Stop materializing: everything past the current frontier will have
  /// exactly ONE consumer (api::Session freezes a realization when its
  /// unit's LAST heuristic starts), so recording it would be pure overhead
  /// — the engine instead switches to live continuation on the embedded
  /// source, which sits exactly at the frontier (materialization consumes
  /// it through fill_block and nothing else ever touches it). Replay of
  /// the materialized prefix [0, frontier()) remains fully available.
  void freeze() noexcept { frozen_ = true; }
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

  /// The embedded source, positioned exactly at frontier(). Only meaningful
  /// after freeze(); the caller may consume it (live continuation) but must
  /// not destroy the realization while doing so.
  [[nodiscard]] AvailabilitySource& source() noexcept { return *source_; }

  /// Write rows [begin, end) of the timeline into `buf`, row-major
  /// [slot][proc] exactly as AvailabilitySource::fill_block would have.
  /// Requires end <= frontier() (call ensure first) and begin <= end.
  void expand_rows(long begin, long end, markov::State* buf) const;

  /// Per-slot digests (see DESIGN.md §8): slot 0 is conservatively all-set,
  /// slot t > 0 describes the transition from t-1 to t.
  [[nodiscard]] bool up_changed_at(long slot) const { return bit(chg_bits_, slot); }
  [[nodiscard]] bool up_gain_at(long slot) const { return bit(gain_bits_, slot); }
  [[nodiscard]] bool new_down_at(long slot) const { return bit(ndown_bits_, slot); }

  /// Copy the digests of slots [begin, end) into byte arrays (the engine's
  /// per-block digest layout). Requires end <= frontier().
  void copy_digests(long begin, long end, unsigned char* chg, unsigned char* gain,
                    unsigned char* ndown) const;

  /// First slot in [from, limit) where anything changes (UP membership or a
  /// fresh DOWN), or `limit` when the range is change-free. Materializes as
  /// far as it scans (at most `limit`), so it can throw
  /// RealizationBudgetExceeded.
  [[nodiscard]] long next_change(long from, long limit);

  /// next_change restricted to the already-materialized prefix: scans
  /// [from, min(limit, frontier())) and NEVER materializes (so it never
  /// throws and is safe past a freeze). Returns the first change slot, the
  /// scanned bound when the range is change-free, or `from` when nothing at
  /// or past `from` is materialized ("no known-quiet region"). The lockstep
  /// batch view (RealizationBatch) uses this to compute a batchwide safe
  /// horizon without dragging any trial's materialization ahead of what its
  /// own engine would have pulled.
  [[nodiscard]] long next_change_materialized(long from, long limit) const noexcept;

  /// State of worker q at `slot` (a point lookup on its RLE intervals).
  /// Requires slot < frontier().
  [[nodiscard]] markov::State state_at(int q, long slot) const;

  /// First slot in (from, limit] at which some worker listed in `procs`
  /// holds a DIFFERENT state than it holds at `from` — i.e. the end of the
  /// joint homogeneous run covering `from`, straight off the per-worker RLE
  /// intervals — or `limit` when every listed worker holds through it.
  /// This is the event-horizon loop's stretch oracle: enrolled-set runs are
  /// an order of magnitude longer than global quiet periods (any of p
  /// workers flapping ends the latter). Materializes through the returned
  /// slot; can throw RealizationBudgetExceeded.
  [[nodiscard]] long stable_until(const std::vector<int>& procs, long from, long limit);

  /// True when worker q is DOWN at any slot of [begin, end] (inclusive).
  /// The engine's aggregate crash sweep over a skipped stretch: crash() is
  /// idempotent and a worker DOWN at `begin` was already crashed at its
  /// DOWN entry, so overlap is equivalent to entry detection. Requires
  /// end < frontier().
  [[nodiscard]] bool down_overlaps(int q, long begin, long end) const;

  /// True when ANY worker enters DOWN during [begin, end] (inclusive): one
  /// word scan of the newly-DOWN bitset. The crash sweep's early-out — a
  /// range with no fresh DOWN needs no per-worker interval walk, because
  /// every worker DOWN in it was DOWN before `begin` and was crashed at its
  /// entry slot. Requires end < frontier().
  [[nodiscard]] bool any_new_down(long begin, long end) const;

 private:
  struct Run {
    long begin;           ///< first slot of the run
    markov::State state;  ///< state held through the run
  };

  [[nodiscard]] static bool bit(const std::vector<std::uint64_t>& words, long slot) {
    return (words[static_cast<std::size_t>(slot >> 6)] >>
            (static_cast<std::uint64_t>(slot) & 63)) &
           1U;
  }

  /// Index of worker q's run containing `slot` (cursor hint, then binary
  /// search). Requires slot < frontier_. Updates the cursor.
  [[nodiscard]] std::size_t locate(std::size_t q, long slot) const;

  /// expand_rows without the single-row memo (the RLE interval walk).
  void expand_rows_uncached(long begin, long end, markov::State* buf) const;

  void materialize_chunk(long slots);

  std::unique_ptr<AvailabilitySource> source_;
  int p_;
  long frontier_ = 0;
  std::size_t budget_ = 0;
  std::size_t bytes_ = 0;
  bool frozen_ = false;

  std::vector<std::vector<Run>> runs_;  ///< per worker, begin-ascending
  std::size_t total_runs_ = 0;          ///< sum of runs_[q].size()
  std::vector<std::uint64_t> chg_bits_;
  std::vector<std::uint64_t> gain_bits_;
  std::vector<std::uint64_t> ndown_bits_;

  std::vector<markov::State> scratch_;   ///< chunk staging buffer
  std::vector<markov::State> last_row_;  ///< row frontier_-1 (digest carry)

  /// Per-worker run-index hints: expansion is overwhelmingly sequential
  /// (each replay walks the timeline front to back), so remembering where
  /// the last expansion left off skips the binary search.
  mutable std::vector<std::size_t> cursor_;

  /// Direct-mapped memo of single-row expansions, keyed by slot. The
  /// replay jump loop expands exactly the event rows (digest-bit slots),
  /// and those slots are a property of the TRIAL, not of the consumer — so
  /// with H heuristics replaying one realization, each event row's
  /// interval walk is paid once and the other H-1 expansions are a copy.
  /// Bounded (kRowMemoSlots * p bytes, a few KB) and deliberately outside
  /// the bytes_ budget accounting; rows are immutable once materialized,
  /// so a hit is always bit-identical to a re-expansion. Lazily allocated
  /// on the first single-row call.
  static constexpr std::size_t kRowMemoSlots = 256;
  mutable std::vector<markov::State> row_memo_;
  mutable std::vector<long> row_memo_tag_;
};

/// Cross-trial view of B trials' realizations side by side (DESIGN.md §13):
/// the lockstep trial-batch engine's window into "when does ANY lane's
/// availability do something". Holds non-owning pointers; per-trial results
/// land in structure-of-arrays form (next_changes()) so the batchwide
/// reduction is one contiguous pass. A null entry is an inactive lane (its
/// trial finished, or fell back to live generation) and never constrains
/// the horizon. NOT thread-safe, like the realizations it views.
class RealizationBatch {
 public:
  explicit RealizationBatch(std::vector<Realization*> trials)
      : trials_(std::move(trials)), next_change_(trials_.size(), 0) {}

  [[nodiscard]] int width() const noexcept { return static_cast<int>(trials_.size()); }

  /// Lane accessors. deactivate() drops a lane from every later horizon.
  [[nodiscard]] Realization* trial(int i) const {
    return trials_[static_cast<std::size_t>(i)];
  }
  void deactivate(int i) noexcept { trials_[static_cast<std::size_t>(i)] = nullptr; }

  /// Materialize every active lane through `slots` (can throw
  /// RealizationBudgetExceeded — the caller owns per-lane fallback).
  void ensure(long slots) {
    for (Realization* r : trials_) {
      if (r != nullptr) r->ensure(slots);
    }
  }

  /// One pass over all lanes: refresh the per-trial next_change SoA for
  /// [from, limit) (materialized prefixes only — never materializes, never
  /// throws) and return the batchwide minimum. Every lane is provably
  /// change-free on [from, horizon): the lockstep engine advances all lanes
  /// through it together, then peels the lanes whose change (or
  /// materialization frontier) sits at the horizon into the scalar tail.
  [[nodiscard]] long safe_horizon(long from, long limit) noexcept {
    long h = limit;
    for (std::size_t i = 0; i < trials_.size(); ++i) {
      const long nc = trials_[i] != nullptr
                          ? trials_[i]->next_change_materialized(from, limit)
                          : limit;
      next_change_[i] = nc;
      h = std::min(h, nc);
    }
    return h;
  }

  /// Per-trial results of the last safe_horizon pass, SoA layout.
  [[nodiscard]] const std::vector<long>& next_changes() const noexcept {
    return next_change_;
  }

 private:
  std::vector<Realization*> trials_;
  std::vector<long> next_change_;
};

/// AvailabilitySource adapter over a Realization: the compatibility path
/// for consumers that take a source (run_custom, recording, tests). Reads
/// extend the realization on demand, so state()/fill_block can throw
/// RealizationBudgetExceeded. Views are independent: each starts at slot 0
/// and tracks its own position; use one view per concurrent consumer is
/// moot — the shared Realization is single-threaded.
class RealizationView final : public AvailabilitySource {
 public:
  explicit RealizationView(Realization& realization);

  [[nodiscard]] int size() const override { return realization_->size(); }
  [[nodiscard]] markov::State state(int q) const override;
  void advance() override { ++pos_; }
  [[nodiscard]] long position() const override { return pos_; }
  void fill_block(markov::State* buf, long slots) override;

 private:
  Realization* realization_;
  long pos_ = 0;
  mutable long row_slot_ = -1;  ///< slot cached in row_ (-1: none)
  mutable std::vector<markov::State> row_;
};

}  // namespace tcgrid::platform
