// The desktop-grid platform: processors plus the bounded multi-port master.
#pragma once

#include <span>
#include <stdexcept>
#include <vector>

#include "platform/processor.hpp"

namespace tcgrid::platform {

/// A set of volatile processors served by one master whose bandwidth allows
/// at most `ncom = floor(BW/bw)` simultaneous transfers (paper §III-B).
class Platform {
 public:
  Platform(std::vector<Processor> procs, int ncom) : procs_(std::move(procs)), ncom_(ncom) {
    if (ncom_ < 1) throw std::invalid_argument("Platform: ncom < 1");
    for (std::size_t q = 0; q < procs_.size(); ++q) {
      procs_[q].id = static_cast<int>(q);
      if (!procs_[q].valid()) throw std::invalid_argument("Platform: invalid processor");
    }
    speeds_.reserve(procs_.size());
    for (const auto& p : procs_) speeds_.push_back(p.speed);
  }

  [[nodiscard]] int size() const noexcept { return static_cast<int>(procs_.size()); }
  [[nodiscard]] int ncom() const noexcept { return ncom_; }
  [[nodiscard]] const Processor& proc(int q) const { return procs_.at(static_cast<std::size_t>(q)); }
  [[nodiscard]] std::span<const Processor> procs() const noexcept { return procs_; }

  /// Speeds indexed by processor id (for Configuration::compute_slots).
  [[nodiscard]] std::span<const long> speeds() const noexcept { return speeds_; }

  /// Sum of mu_q over the given processors; a configuration is only possible
  /// when this is >= m (paper §III-C).
  [[nodiscard]] long capacity(std::span<const int> ids) const {
    long sum = 0;
    for (int q : ids) sum += proc(q).max_tasks;
    return sum;
  }

 private:
  std::vector<Processor> procs_;
  int ncom_;
  std::vector<long> speeds_;
};

}  // namespace tcgrid::platform
