#include "platform/cyclostationary.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgrid::platform {

markov::TransitionMatrix scale_departures(const markov::TransitionMatrix& m,
                                          double calm) {
  if (calm < 0.0) throw std::invalid_argument("scale_departures: calm < 0");
  std::array<std::array<double, 3>, 3> p{};
  for (std::size_t i = 0; i < markov::kNumStates; ++i) {
    const auto from = static_cast<markov::State>(i);
    double leave = 0.0;
    for (std::size_t j = 0; j < markov::kNumStates; ++j) {
      if (j == i) continue;
      p[i][j] = calm * m.prob(from, static_cast<markov::State>(j));
      leave += p[i][j];
    }
    if (leave > 1.0) {
      throw std::invalid_argument("scale_departures: calm too large for row");
    }
    p[i][i] = 1.0 - leave;
  }
  return markov::TransitionMatrix(p);
}

CyclostationaryAvailability::CyclostationaryAvailability(const Platform& platform,
                                                         std::uint64_t seed,
                                                         long period, long day_slots,
                                                         double night_calm,
                                                         InitialStates init)
    : rng_(seed), period_(period), day_slots_(day_slots) {
  if (period_ < 1 || day_slots_ < 0 || day_slots_ > period_) {
    throw std::invalid_argument("CyclostationaryAvailability: bad period/day_slots");
  }
  day_cuts_.reserve(static_cast<std::size_t>(platform.size()));
  night_cuts_.reserve(static_cast<std::size_t>(platform.size()));
  for (int q = 0; q < platform.size(); ++q) {
    const auto& day = platform.proc(q).availability;
    day_cuts_.push_back(step_cuts(day));
    night_cuts_.push_back(step_cuts(scale_departures(day, night_calm)));
  }
  states_ = sample_initial_states(platform, rng_, init);
}

void CyclostationaryAvailability::advance() {
  // The transition into slot t+1 is governed by the destination slot's
  // regime: what happens during the night follows the night chain.
  const auto& cuts = day_at(slot_ + 1) ? day_cuts_ : night_cuts_;
  auto& engine = rng_.engine();
  for (std::size_t q = 0; q < states_.size(); ++q) {
    const auto& row = cuts[q][static_cast<std::size_t>(states_[q])];
    const std::uint64_t x = std::min(engine(), util::kU01Top);
    states_[q] = x < row[0] ? markov::State::Up
               : x < row[1] ? markov::State::Reclaimed
                            : markov::State::Down;
  }
  ++slot_;
}

void CyclostationaryAvailability::fill_block(markov::State* buf, long slots) {
  const std::size_t p = states_.size();
  for (long t = 0; t < slots; ++t) {
    std::copy_n(states_.data(), p, buf);
    buf += p;
    advance();  // already the non-dispatching cut-point path
  }
}

}  // namespace tcgrid::platform
