// One volatile processor of the desktop grid (paper §III-B).
#pragma once

#include "markov/transition_matrix.hpp"

namespace tcgrid::platform {

/// Static description of a processor / worker.
struct Processor {
  int id = 0;
  long speed = 1;     ///< w_q: time slots to compute one task while UP
  int max_tasks = 1;  ///< mu_q: max tasks executed concurrently (memory bound)
  markov::TransitionMatrix availability;  ///< 3-state Markov model

  [[nodiscard]] bool valid() const noexcept { return speed >= 1 && max_tasks >= 1; }
};

}  // namespace tcgrid::platform
