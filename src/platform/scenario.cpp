#include "platform/scenario.hpp"

#include <stdexcept>
#include <vector>

namespace tcgrid::platform {

Scenario make_scenario(const ScenarioParams& params) {
  if (params.m < 1 || params.ncom < 1 || params.wmin < 1 || params.p < 1) {
    throw std::invalid_argument("make_scenario: invalid parameters");
  }
  util::Rng rng(params.seed);

  std::vector<Processor> procs;
  procs.reserve(static_cast<std::size_t>(params.p));
  for (int q = 0; q < params.p; ++q) {
    Processor pr;
    pr.id = q;
    pr.availability = markov::TransitionMatrix::paper_random(rng);
    pr.speed = rng.uniform_int(params.wmin, 10 * params.wmin);
    // The paper does not bound concurrent tasks per worker in its
    // experiments; mu_q = m makes the bound inert while keeping the model
    // general (see DESIGN.md).
    pr.max_tasks = params.m;
    procs.push_back(pr);
  }

  model::Application app;
  app.num_tasks = params.m;
  app.t_data = params.wmin;
  app.t_prog = 5 * params.wmin;
  app.iterations = params.iterations;
  app.validate();

  return Scenario{Platform(std::move(procs), params.ncom), app, params};
}

}  // namespace tcgrid::platform
