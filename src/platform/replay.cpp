#include "platform/replay.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgrid::platform {

TraceReplayAvailability::TraceReplayAvailability(
    std::shared_ptr<const StateTimeline> timeline, std::uint64_t seed, bool rotate,
    bool validated)
    : timeline_(std::move(timeline)) {
  if (timeline_ == nullptr || timeline_->empty()) {
    throw std::invalid_argument("TraceReplayAvailability: empty timeline");
  }
  procs_ = static_cast<int>(timeline_->front().size());
  if (procs_ == 0) throw std::invalid_argument("TraceReplayAvailability: zero-width trace");
  if (!validated) {
    for (const auto& row : *timeline_) {
      if (static_cast<int>(row.size()) != procs_) {
        throw std::invalid_argument("TraceReplayAvailability: ragged timeline");
      }
    }
  }
  if (rotate) row_ = util::splitmix64(seed) % timeline_->size();
}

void TraceReplayAvailability::advance() {
  if (++row_ == timeline_->size()) row_ = 0;
  ++slot_;
}

void TraceReplayAvailability::fill_block(markov::State* buf, long slots) {
  const auto p = static_cast<std::size_t>(procs_);
  for (long t = 0; t < slots; ++t) {
    std::copy_n((*timeline_)[row_].data(), p, buf);
    buf += p;
    advance();
  }
}

}  // namespace tcgrid::platform
