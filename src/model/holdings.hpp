// What a worker currently holds (program / task data), paper §III-C.
#pragma once

namespace tcgrid::model {

/// Per-worker possession state, maintained by the simulation engine and
/// exposed (read-only) to schedulers.
///
/// Rules (paper §III-B/C):
///  * the program survives until the worker goes DOWN;
///  * completed data messages survive un-enrollment but not DOWN, and are
///    reset at each iteration boundary (data is per-iteration);
///  * a partially received message is lost if the worker goes DOWN or is
///    removed from the configuration; it merely pauses while RECLAIMED.
struct Holdings {
  bool has_program = false;
  int data_messages = 0;      ///< completed data messages this iteration (x'_q)
  long partial_slots = 0;     ///< progress inside the in-flight message

  /// DOWN: everything is lost.
  void crash() noexcept {
    has_program = false;
    data_messages = 0;
    partial_slots = 0;
  }

  /// Removed from the configuration: only the in-flight transfer is lost.
  void unenroll() noexcept { partial_slots = 0; }

  /// Iteration boundary: task data is per-iteration, the program persists.
  void next_iteration() noexcept {
    data_messages = 0;
    partial_slots = 0;
  }
};

}  // namespace tcgrid::model
