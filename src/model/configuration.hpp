// A configuration: the set of enrolled workers and their task counts
// (paper §III-C, "config(t)").
#pragma once

#include <span>
#include <vector>

namespace tcgrid::model {

/// One enrolled worker and its load.
struct Assignment {
  int proc = -1;  ///< processor index in the platform
  int tasks = 0;  ///< x_q >= 1 tasks executed concurrently on this worker
};

/// The mapping of the iteration's m tasks onto k <= m workers.
///
/// Assignment order is meaningful: the master serves communications in
/// enrollment order (first enrolled, first served), which is the
/// deterministic tie-break this library uses for the unspecified intra-slot
/// bandwidth allocation (see DESIGN.md).
class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<Assignment> assignments)
      : assignments_(std::move(assignments)) {}

  [[nodiscard]] bool empty() const noexcept { return assignments_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return assignments_.size(); }
  [[nodiscard]] std::span<const Assignment> assignments() const noexcept {
    return assignments_;
  }

  /// Total tasks assigned (must equal m for a valid configuration).
  [[nodiscard]] int total_tasks() const noexcept {
    int sum = 0;
    for (const auto& a : assignments_) sum += a.tasks;
    return sum;
  }

  /// Tasks assigned to processor `proc` (0 if not enrolled).
  [[nodiscard]] int tasks_on(int proc) const noexcept {
    for (const auto& a : assignments_) {
      if (a.proc == proc) return a.tasks;
    }
    return 0;
  }

  [[nodiscard]] bool enrolled(int proc) const noexcept { return tasks_on(proc) > 0; }

  /// W = max_q x_q * w_q: slots of simultaneous-UP computation the iteration
  /// needs (all tasks progress at the pace of the most loaded worker).
  [[nodiscard]] long compute_slots(std::span<const long> speeds) const {
    long w = 0;
    for (const auto& a : assignments_) {
      const long load = static_cast<long>(a.tasks) * speeds[static_cast<std::size_t>(a.proc)];
      if (load > w) w = load;
    }
    return w;
  }

  /// Append one more task to a worker (enrolling it if new). Used by the
  /// incremental heuristics.
  void add_task(int proc) {
    for (auto& a : assignments_) {
      if (a.proc == proc) {
        ++a.tasks;
        return;
      }
    }
    assignments_.push_back({proc, 1});
  }

  [[nodiscard]] bool operator==(const Configuration& other) const {
    if (assignments_.size() != other.assignments_.size()) return false;
    for (std::size_t i = 0; i < assignments_.size(); ++i) {
      if (assignments_[i].proc != other.assignments_[i].proc ||
          assignments_[i].tasks != other.assignments_[i].tasks) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<Assignment> assignments_;
};

}  // namespace tcgrid::model
