// The paper's application model (§III-A): an iterative, tightly-coupled
// master-worker computation.
#pragma once

#include <stdexcept>

namespace tcgrid::model {

/// Static description of the application.
///
/// Each iteration executes `num_tasks` identical tasks that communicate
/// throughout, so all enrolled workers must progress in lock-step; a global
/// synchronization ends each iteration. Before computing, a worker needs the
/// program (`t_prog` slots of master bandwidth, once per UP-lifetime) and one
/// data message per assigned task per iteration (`t_data` slots each).
struct Application {
  int num_tasks = 1;    ///< m: tasks per iteration
  long t_prog = 0;      ///< T_prog = V_prog / bw, in time slots
  long t_data = 0;      ///< T_data = V_data / bw, in time slots
  int iterations = 10;  ///< target number of iterations (paper fixes 10)

  /// Validate invariants; throws std::invalid_argument on violation.
  void validate() const {
    if (num_tasks < 1) throw std::invalid_argument("Application: num_tasks < 1");
    if (t_prog < 0 || t_data < 0) {
      throw std::invalid_argument("Application: negative communication time");
    }
    if (iterations < 1) throw std::invalid_argument("Application: iterations < 1");
  }
};

}  // namespace tcgrid::model
