// Durable per-job checkpoint store (DESIGN.md §11).
//
// Layout under <root>/<job>/:
//
//   manifest.json  — {"job","tenant","spec"} (canonical spec JSON), written
//                    atomically (tmp + rename + directory fsync) at submit;
//                    its presence is what makes a directory a job.
//   rows.jsonl     — completed units' result rows, appended then fsync'd
//                    BEFORE the unit is committed;
//   units.log      — one "<unit> ok" record per completed (scenario, trial)
//                    unit, appended + fsync'd AFTER the unit's rows.
//                    units.log is the commit record: a kill -9 anywhere
//                    leaves either a fully committed unit or an uncommitted
//                    rows tail that load_rows() drops (simulation results
//                    are pure functions of the spec's seeds, so dropped
//                    units re-run to byte-identical rows). The " ok" suffix
//                    keeps a torn prefix of one record from reading as a
//                    different, smaller unit number.
//   cancelled      — marker file: the job must not be resumed.
//
// A restarted daemon lists job directories, reloads each manifest, filters
// rows.jsonl against units.log, and re-queues whatever is incomplete — the
// union of rows streamed across daemon lifetimes equals an uninterrupted
// run's row set exactly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tcgrid::serve {

class JobCheckpoint {
 public:
  /// Bind to <root>/<job>, creating the directory (and root) if needed.
  /// Throws std::runtime_error on filesystem failure.
  JobCheckpoint(const std::string& root, const std::string& job);
  ~JobCheckpoint();

  JobCheckpoint(const JobCheckpoint&) = delete;
  JobCheckpoint& operator=(const JobCheckpoint&) = delete;

  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }
  [[nodiscard]] bool has_manifest() const;

  /// Atomic write (manifest.json.tmp, fsync, rename, fsync dir).
  void write_manifest(const std::string& manifest_json);
  /// Throws std::runtime_error when absent/unreadable.
  [[nodiscard]] std::string read_manifest() const;

  /// Durably commit one completed unit: rows appended + fsync'd first, then
  /// the unit index appended + fsync'd. NOT thread-safe — the server holds
  /// a per-job mutex across commits.
  void commit_unit(std::size_t unit, const std::vector<std::string>& rows);

  void mark_cancelled();
  [[nodiscard]] bool is_cancelled() const;

  struct LoadedRows {
    std::vector<std::size_t> completed_units;  ///< units.log order, deduped
    std::vector<std::string> rows;             ///< committed rows, file order
  };
  /// Replay the durable state: parse units.log (dropping torn/garbage
  /// lines), keep only rows.jsonl lines whose (scenario, trial) unit —
  /// scenario * trials + trial — is committed, and rewrite either file
  /// atomically when it held anything beyond the validated records, so
  /// subsequent O_APPEND writes extend clean files. The units.log rewrite
  /// is load-bearing: a torn tail left in place would concatenate with the
  /// next appended record and read back as a different, never-run unit.
  [[nodiscard]] LoadedRows load_rows(std::size_t trials);

  /// Job ids under `root` (directories with a manifest). Missing root = {}.
  [[nodiscard]] static std::vector<std::string> list_jobs(const std::string& root);

  /// True when <root>/<job> already holds checkpoint state (a manifest,
  /// units log, or rows file) — e.g. an unloadable job the daemon skipped
  /// at startup. Fresh submissions must not reuse such a directory: its
  /// stale committed units would merge into the new job after a restart.
  [[nodiscard]] static bool has_state(const std::string& root, const std::string& job);

 private:
  void open_append_fds();

  std::string dir_;
  int rows_fd_ = -1;
  int units_fd_ = -1;
};

}  // namespace tcgrid::serve
