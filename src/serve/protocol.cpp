#include "serve/protocol.hpp"

namespace tcgrid::serve {

namespace json = util::json;

bool valid_identifier(std::string_view s) {
  if (s.empty() || s.size() > 64 || s.front() == '.') return false;
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string row_line(std::size_t scenario, int trial, std::size_t heuristic_index,
                     const std::string& heuristic, const std::string& family,
                     const platform::ScenarioParams& params,
                     const sim::SimulationResult& r) {
  // Hand-rolled append (no Value tree): rows are the hot emission path and
  // their byte layout is a documented contract — keep it explicit.
  std::string out;
  out.reserve(192);
  out += "{\"scenario\":";
  out += std::to_string(scenario);
  out += ",\"trial\":";
  out += std::to_string(trial);
  out += ",\"h\":";
  out += std::to_string(heuristic_index);
  out += ",\"heuristic\":";
  json::append_quoted(heuristic, out);
  out += ",\"family\":";
  json::append_quoted(family, out);
  out += ",\"m\":";
  out += std::to_string(params.m);
  out += ",\"ncom\":";
  out += std::to_string(params.ncom);
  out += ",\"wmin\":";
  out += std::to_string(params.wmin);
  out += ",\"scenario_seed\":";
  out += std::to_string(params.seed);
  out += ",\"success\":";
  out += r.success ? "true" : "false";
  out += ",\"makespan\":";
  out += std::to_string(r.makespan);
  out += ",\"iterations\":";
  out += std::to_string(r.iterations_completed);
  out += ",\"restarts\":";
  out += std::to_string(r.total_restarts);
  out += ",\"reconfigs\":";
  out += std::to_string(r.total_reconfigurations);
  out += ",\"idle_slots\":";
  out += std::to_string(r.idle_slots);
  out += "}";
  return out;
}

std::string submit_request(std::string_view tenant, const json::Value& spec,
                           std::string_view job) {
  json::Object req{{"op", "submit"}, {"tenant", tenant}, {"spec", spec}};
  if (!job.empty()) req.emplace_back("job", job);
  return json::dump(json::Value(std::move(req)));
}

std::string status_request(std::string_view job) {
  return json::dump(json::Value(json::Object{{"op", "status"}, {"job", job}}));
}

std::string results_request(std::string_view job, std::size_t from, bool wait) {
  return json::dump(json::Value(json::Object{{"op", "results"},
                                             {"job", job},
                                             {"from", static_cast<unsigned long long>(from)},
                                             {"wait", wait}}));
}

std::string cancel_request(std::string_view job) {
  return json::dump(json::Value(json::Object{{"op", "cancel"}, {"job", job}}));
}

std::string counters_request() {
  return json::dump(json::Value(json::Object{{"op", "counters"}}));
}

std::string metrics_request(std::string_view format) {
  return json::dump(
      json::Value(json::Object{{"op", "metrics"}, {"format", format}}));
}

std::string register_request(std::string_view shard) {
  json::Object req{{"op", "register"}};
  if (!shard.empty()) req.emplace_back("shard", shard);
  return json::dump(json::Value(std::move(req)));
}

std::string heartbeat_request() {
  return json::dump(json::Value(json::Object{{"op", "heartbeat"}}));
}

std::string lease_request(std::string_view job_ref, std::string_view tenant,
                          const std::vector<std::size_t>& units,
                          std::string_view spec_json) {
  // Hand-assembled so the pre-dumped spec splices in without a reparse.
  std::string out;
  out.reserve(96 + spec_json.size() + units.size() * 8);
  out += "{\"op\":\"lease\",\"job\":";
  json::append_quoted(job_ref, out);
  out += ",\"tenant\":";
  json::append_quoted(tenant, out);
  out += ",\"units\":[";
  for (std::size_t i = 0; i < units.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(units[i]);
  }
  out += ']';
  if (!spec_json.empty()) {
    out += ",\"spec\":";
    out += spec_json;
  }
  out += '}';
  return out;
}

}  // namespace tcgrid::serve
