#include "serve/shard.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <stdexcept>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

namespace tcgrid::serve {

namespace json = util::json;

namespace {

/// Wait for one response line with a deadline. Coarse by design: the peer
/// writes whole lines per request on these connections, so poll-then-read
/// only blocks past the deadline if a line is torn mid-write — and then the
/// monitor's next probe catches it.
bool read_line_deadline(util::LineChannel& ch, int fd, std::string& line, long timeout_ms) {
  pollfd pfd{fd, POLLIN, 0};
  const int rc = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
  if (rc <= 0) return false;
  return ch.read_line(line);
}

}  // namespace

/// Per-shard state. Address, health and threads are owned here; the fd set
/// lets the monitor shut down slot connections from outside their threads
/// (the only way to unstick a slot blocked on a HUNG shard's socket).
struct ShardFleet::Shard {
  std::string address;
  std::atomic<bool> live{false};
  std::atomic<bool> incompatible_logged{false};
  bool slots_spawned = false;          ///< under fleet mu_
  std::vector<std::thread> threads;    ///< monitor + slots; under fleet mu_
  std::set<int> fds;                   ///< live connections; under fleet mu_
  obs::Histogram service_us;           ///< lease dispatch -> unit rows merged
};

ShardFleet::ShardFleet(Server& server, const ShardOptions& options)
    : server_(server),
      initial_shards_(options.shards),
      slots_per_shard_(options.slots_per_shard),
      lease_batch_(std::max<std::size_t>(1, options.lease_batch)),
      steal_(options.steal),
      heartbeat_interval_ms_(std::max(50L, options.heartbeat_interval_ms)),
      heartbeat_timeout_ms_(std::max(100L, options.heartbeat_timeout_ms)) {
  obs::Registry& reg = obs::Registry::instance();
  live_shards_gauge_ = reg.gauge("tcgrid_coord_live_shards");
  leased_total_ = reg.counter("tcgrid_coord_leased_units_total");
  stolen_total_ = reg.counter("tcgrid_coord_stolen_units_total");
  redispatched_total_ = reg.counter("tcgrid_coord_redispatched_units_total");
  duplicate_total_ = reg.counter("tcgrid_coord_duplicate_commits_total");
}

ShardFleet::~ShardFleet() { stop(); }

void ShardFleet::start() {
  for (const std::string& address : initial_shards_) add_shard(address);
}

void ShardFleet::add_shard(const std::string& address) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load() || address.empty()) return;
  for (const auto& shard : shards_) {
    if (shard->address == address) return;  // idempotent re-registration
  }
  auto shard = std::make_unique<Shard>();
  shard->address = address;
  shard->service_us = obs::Registry::instance().histogram("tcgrid_coord_shard_service_us",
                                                          {{"shard", address}});
  Shard& ref = *shards_.emplace_back(std::move(shard));
  ref.threads.emplace_back([this, &ref] { monitor_loop(ref); });
}

void ShardFleet::stop() {
  stopping_.store(true);
  stop_cv_.notify_all();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& shard : shards_) {
      for (int fd : shard->fds) ::shutdown(fd, SHUT_RDWR);
      for (std::thread& t : shard->threads) threads.push_back(std::move(t));
      shard->threads.clear();
    }
  }
  // Joined outside mu_: exiting threads take it for fd/live bookkeeping.
  // Server::hard_stop() has already set ITS stopping flag and notified
  // work_cv_ before calling here, so slots parked in claim_for_dispatch
  // are on their way out.
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

ShardFleet::Counters ShardFleet::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c;
  c.shards = shards_.size();
  for (const auto& shard : shards_) {
    if (shard->live.load()) c.live_shards += 1;
  }
  c.leased_units = leased_;
  c.stolen_units = stolen_;
  c.redispatched_units = redispatched_;
  c.duplicate_commits = duplicates_;
  return c;
}

bool ShardFleet::sleep_ms(long ms) {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                    [&] { return stopping_.load(); });
  return !stopping_.load();
}

void ShardFleet::track_fd(Shard& shard, int fd, bool add) {
  std::lock_guard<std::mutex> lock(mu_);
  if (add) {
    shard.fds.insert(fd);
    // Closes the register/stop race: stop()'s shutdown pass may have run
    // between our connect and this insert; stopping_ is set before that
    // pass, so re-checking here guarantees the shutdown reaches every fd.
    if (stopping_.load()) ::shutdown(fd, SHUT_RDWR);
  } else {
    shard.fds.erase(fd);
  }
}

void ShardFleet::set_live(Shard& shard, bool live) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shard.live.exchange(live) == live) return;
  std::size_t n = 0;
  for (const auto& s : shards_) {
    if (s->live.load()) n += 1;
  }
  live_shards_gauge_.set(static_cast<long long>(n));
}

void ShardFleet::spawn_slots(Shard& shard, std::size_t advertised_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_.load() || shard.slots_spawned) return;
  std::size_t n = slots_per_shard_ != 0 ? slots_per_shard_ : advertised_threads;
  n = std::clamp<std::size_t>(n, 1, 64);
  shard.slots_spawned = true;
  for (std::size_t i = 0; i < n; ++i) {
    shard.threads.emplace_back([this, &shard] { slot_loop(shard); });
  }
}

void ShardFleet::monitor_loop(Shard& shard) {
  while (!stopping_.load()) {
    util::Fd fd;
    try {
      fd = util::connect_address(shard.address);
    } catch (const std::exception&) {
      set_live(shard, false);
      if (!sleep_ms(heartbeat_interval_ms_)) return;
      continue;
    }
    track_fd(shard, fd.get(), true);
    util::LineChannel ch(fd.get());
    std::string line;
    bool registered = false;
    do {
      if (!ch.write_line(register_request())) break;
      if (!read_line_deadline(ch, fd.get(), line, heartbeat_timeout_ms_)) break;
      json::Value reply;
      try {
        reply = json::parse(line);
      } catch (const std::invalid_argument&) {
        break;
      }
      const json::Value* ok = reply.is_object() ? reply.find("ok") : nullptr;
      if (ok == nullptr || !ok->is_bool() || !ok->as_bool()) break;
      // eps gate: a shard estimating with a different eps would stream rows
      // that diverge bit-wise from the coordinator's contract. The shard
      // also re-validates per lease spec; this just refuses to spawn slots
      // at all. json doubles round-trip exactly ('%.17g'), so == is sound.
      if (const json::Value* eps = reply.find("eps");
          eps != nullptr && eps->is_number() &&
          eps->as_double() != server_.options().eps) {
        if (!shard.incompatible_logged.exchange(true)) {
          std::fprintf(stderr,
                       "tcgrid_serve: shard %s rejected: eps %.17g != coordinator "
                       "eps %.17g\n",
                       shard.address.c_str(), eps->as_double(), server_.options().eps);
        }
        break;
      }
      std::size_t threads = 0;
      if (const json::Value* t = reply.find("threads"); t != nullptr && t->is_integer()) {
        threads = static_cast<std::size_t>(t->as_uint());
      }
      spawn_slots(shard, threads);
      registered = true;
    } while (false);

    if (registered) {
      set_live(shard, true);
      // Probe until the shard misses a deadline (or we stop). kill -9
      // surfaces here AND as instant EOF on the slot connections; the
      // monitor matters for the hung-not-dead case.
      while (!stopping_.load()) {
        if (!sleep_ms(heartbeat_interval_ms_)) break;
        if (!ch.write_line(heartbeat_request()) ||
            !read_line_deadline(ch, fd.get(), line, heartbeat_timeout_ms_)) {
          break;
        }
      }
      // Dead, hung or stopping: force every lease this shard holds to
      // expire by killing its connections; the slots re-queue their units
      // through Server::return_lease when the I/O fails.
      set_live(shard, false);
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (int f : shard.fds) {
          if (f != fd.get()) ::shutdown(f, SHUT_RDWR);
        }
      }
    } else {
      set_live(shard, false);
    }
    track_fd(shard, fd.get(), false);
    fd.reset();
    if (!registered && !sleep_ms(heartbeat_interval_ms_)) return;
  }
  set_live(shard, false);
}

void ShardFleet::slot_loop(Shard& shard) {
  while (!stopping_.load()) {
    if (!shard.live.load()) {
      if (!sleep_ms(50)) return;
      continue;
    }
    util::Fd fd;
    try {
      fd = util::connect_address(shard.address);
    } catch (const std::exception&) {
      if (!sleep_ms(heartbeat_interval_ms_)) return;
      continue;
    }
    track_fd(shard, fd.get(), true);
    {
      util::LineChannel ch(fd.get());
      std::vector<std::string> sent_specs;
      while (!stopping_.load() && shard.live.load()) {
        if (!lease_round(shard, ch, sent_specs)) break;
      }
    }
    track_fd(shard, fd.get(), false);
  }
}

bool ShardFleet::lease_round(Shard& shard, util::LineChannel& ch,
                             std::vector<std::string>& sent_specs) {
  // Pull: claim the next unit(s) the moment this slot idles. Blocking on
  // the first claim IS the work-stealing scheduler — a fast shard returns
  // here more often and naturally takes more of the queue.
  std::optional<Server::Lease> first = server_.claim_for_dispatch(steal_);
  if (!first.has_value()) return false;  // server stopping
  std::vector<Server::Lease> batch;
  batch.push_back(std::move(*first));
  // Scenario-affine extension: pull the remaining trials of each claimed
  // scenario onto THIS shard (even past lease_batch, bounded below) before
  // claiming fresh units. Siblings share the shard's per-scenario estimator
  // cache — the dominant unit cost — so splitting a scenario across shards
  // would re-pay that build per shard and erase the scaling win.
  constexpr std::size_t kBatchCap = 64;  // bound on sibling overshoot
  while (batch.size() < kBatchCap) {
    std::optional<Server::Lease> more = server_.try_claim_sibling(batch.back());
    if (!more.has_value() && batch.size() < lease_batch_) {
      more = server_.try_claim_for_dispatch();
    }
    if (!more.has_value()) break;
    batch.push_back(std::move(*more));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    leased_ += batch.size();
    for (const Server::Lease& lease : batch) {
      if (lease.stolen) stolen_ += 1;
    }
  }
  leased_total_.inc(batch.size());
  for (const Server::Lease& lease : batch) {
    if (lease.stolen) stolen_total_.inc();
  }

  std::vector<bool> resolved(batch.size(), false);
  // On transport death every unresolved lease expires and re-queues.
  auto expire_unresolved = [&] {
    std::size_t expired = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (resolved[i]) continue;
      server_.return_lease(batch[i]);
      expired += 1;
    }
    if (expired > 0) {
      std::lock_guard<std::mutex> lock(mu_);
      redispatched_ += expired;
    }
    redispatched_total_.inc(expired);
  };

  // A batch can span jobs (round-robin claims); one lease request per job.
  std::map<std::string, std::vector<std::size_t>> groups;  // job_id -> batch indices
  for (std::size_t i = 0; i < batch.size(); ++i) groups[batch[i].job_id].push_back(i);

  const std::uint64_t claimed_us = obs::enabled() ? obs::steady_now_us() : 0;
  std::string line;
  for (const auto& [job_id, indices] : groups) {
    const Server::Lease& head = batch[indices.front()];
    std::vector<std::size_t> units;
    units.reserve(indices.size());
    for (std::size_t i : indices) units.push_back(batch[i].unit);

    bool with_spec =
        std::find(sent_specs.begin(), sent_specs.end(), job_id) == sent_specs.end();
    for (int attempt = 0; attempt < 2; ++attempt) {
      const std::string spec =
          with_spec && head.spec_json != nullptr ? *head.spec_json : std::string();
      if (!ch.write_line(lease_request(job_id, head.tenant, units, spec))) {
        expire_unresolved();
        return false;
      }
      if (with_spec) sent_specs.push_back(job_id);

      bool resend_with_spec = false;
      bool group_done = false;
      while (!group_done) {
        if (!ch.read_line(line)) {
          expire_unresolved();
          return false;
        }
        json::Value msg;
        try {
          msg = json::parse(line);
          if (!msg.is_object()) throw std::invalid_argument("not an object");
        } catch (const std::invalid_argument&) {
          expire_unresolved();
          return false;  // framing broken; reconnect
        }
        const json::Value* type = msg.find("type");
        const std::string kind =
            type != nullptr && type->is_string() ? type->as_string() : "";
        if (kind == "unit") {
          const json::Value* unit_v = msg.find("unit");
          const json::Value* rows_v = msg.find("rows");
          if (unit_v == nullptr || !unit_v->is_integer() || rows_v == nullptr ||
              !rows_v->is_integer()) {
            expire_unresolved();
            return false;
          }
          const std::size_t unit = static_cast<std::size_t>(unit_v->as_uint());
          std::vector<std::string> rows;
          rows.reserve(static_cast<std::size_t>(rows_v->as_uint()));
          for (std::size_t r = 0; r < rows_v->as_uint(); ++r) {
            std::string row;
            if (!ch.read_line(row)) {
              expire_unresolved();
              return false;
            }
            rows.push_back(std::move(row));
          }
          std::size_t idx = batch.size();
          for (std::size_t i : indices) {
            if (!resolved[i] && batch[i].unit == unit) {
              idx = i;
              break;
            }
          }
          if (idx == batch.size()) continue;  // unit we no longer hold; drop
          const Server::RemoteCommit rc =
              server_.commit_remote_unit(batch[idx], std::move(rows), claimed_us);
          resolved[idx] = true;
          if (rc == Server::RemoteCommit::Duplicate) {
            std::lock_guard<std::mutex> lock(mu_);
            duplicates_ += 1;
          }
          if (rc == Server::RemoteCommit::Duplicate) duplicate_total_.inc();
          if (rc == Server::RemoteCommit::Stopped) {
            expire_unresolved();
            return false;
          }
          if (claimed_us != 0) {
            shard.service_us.observe(obs::steady_now_us() - claimed_us);
          }
        } else if (kind == "lease_done") {
          group_done = true;
        } else if (kind == "unit_failed") {
          const json::Value* unit_v = msg.find("unit");
          const json::Value* err_v = msg.find("error");
          const std::size_t unit =
              unit_v != nullptr && unit_v->is_integer()
                  ? static_cast<std::size_t>(unit_v->as_uint())
                  : batch[indices.front()].unit;
          const std::string error = err_v != nullptr && err_v->is_string()
                                        ? err_v->as_string()
                                        : "unit failed on shard " + shard.address;
          for (std::size_t i : indices) {
            if (!resolved[i] && batch[i].unit == unit) {
              server_.fail_lease(batch[i], error);
              resolved[i] = true;
              break;
            }
          }
          // The shard aborts the lease after a failed unit; the rest of the
          // group re-queues (the job is failed, so they just sit pending).
          for (std::size_t i : indices) {
            if (!resolved[i]) {
              server_.return_lease(batch[i]);
              resolved[i] = true;
            }
          }
          group_done = true;
        } else {
          // Generic {"ok":false,...} error.
          const json::Value* need_spec = msg.find("need_spec");
          if (need_spec != nullptr && need_spec->is_bool() && need_spec->as_bool() &&
              !with_spec) {
            // New shard connection since we last sent the spec (or a shard
            // restart): resend this group's lease with the spec attached.
            with_spec = true;
            resend_with_spec = true;
            group_done = true;
          } else {
            const json::Value* err_v = msg.find("error");
            const std::string error = err_v != nullptr && err_v->is_string()
                                          ? err_v->as_string()
                                          : "lease rejected by shard " + shard.address;
            // A rejected lease is a contract violation (bad spec for this
            // shard, e.g. eps mismatch): re-running elsewhere would loop,
            // so fail the job loudly.
            server_.fail_lease(batch[indices.front()], error);
            for (std::size_t i : indices) {
              if (!resolved[i]) {
                server_.return_lease(batch[i]);
                resolved[i] = true;
              }
            }
            group_done = true;
          }
        }
      }
      if (!resend_with_spec) break;
    }
  }
  // Anything still unresolved (shouldn't happen on clean lease_done paths)
  // goes back to the queue rather than leaking an in-flight unit.
  expire_unresolved();
  return true;
}

}  // namespace tcgrid::serve
