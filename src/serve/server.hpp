// tcgrid::serve — persistent multi-tenant sweep-as-a-service (DESIGN.md §11).
//
// A Server is the long-lived core of the tcgrid_serve daemon: it accepts
// experiment specs over the newline-delimited-JSON protocol
// (serve/protocol.hpp), schedules (scenario, trial) units from many
// concurrent jobs fairly (round-robin across jobs) over one process-level
// worker fleet, streams completed result rows back incrementally, enforces
// per-tenant quotas, and checkpoints every completed unit so a killed
// daemon resumes where it stopped (serve/checkpoint.hpp).
//
// Tenancy. Each tenant owns one persistent api::Session — the process-level
// retention that makes repeated submissions cheap (warm per-thread
// estimator caches, one chain-statistics store whose interned chains recur
// across requests; see DESIGN.md §10 on why that win is structurally
// cross-request). Two quotas apply per tenant:
//
//   * realization_budget — a hard cap clamping every submitted spec's
//     Options::realization_budget (the per-unit materialization bytes);
//   * chain_store_bytes  — a retention bound on the tenant session's
//     chain-statistics store. When a completed unit pushes the store past
//     the bound the tenant enters DRAINING: no new units of its jobs are
//     dispatched until its in-flight units finish, then the session's
//     caches are evicted (Session::clear_caches — safe exactly because
//     nothing of that tenant is running) and dispatch resumes. Jobs always
//     run to completion; the quota trades warmth, not correctness.
//
// Concurrency. One mutex guards all queue/job/tenant state; workers hold it
// only to claim and publish units, never while simulating. Checkpoint
// appends are serialized per job by a separate per-job mutex. Connection
// handlers (one thread per accepted socket) touch state under the same
// mutex and block streaming `results` readers on a condition variable fed
// by row publication.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "obs/obs.hpp"
#include "serve/checkpoint.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace tcgrid::serve {

struct TenantQuota {
  /// Hard cap on a submitted spec's Options::realization_budget (bytes of
  /// materialized availability per (scenario, trial) unit). 0 forces live
  /// generation for every unit of the tenant.
  std::size_t realization_budget = 64ull << 20;
  /// Retention bound on the tenant session's chain-statistics store; see
  /// the DRAINING protocol above.
  std::size_t chain_store_bytes = 512ull << 20;
};

/// Knobs of the coordinator's shard fleet (DESIGN.md §15). Only read when
/// ServerOptions::coordinator is true.
struct ShardOptions {
  /// Shard daemon addresses: a unix socket path, "unix:PATH" or
  /// "tcp:HOST:PORT". More shards can join at runtime via the `register`
  /// verb with a "shard" field.
  std::vector<std::string> shards;
  /// Concurrent lease slots per shard; 0 sizes the pool from the shard's
  /// registered worker-thread count (its --threads).
  std::size_t slots_per_shard = 0;
  /// Fresh units per lease request. 1 (the default) is maximal
  /// work-stealing: every unit is pulled the moment a slot idles, so
  /// stragglers never hold queued work hostage. Larger batches amortize
  /// round trips at the cost of tail balance. Independently of this knob a
  /// batch always absorbs the remaining pending trials of each claimed
  /// scenario (Server::try_claim_sibling) — whole scenarios travel to one
  /// shard so its per-scenario estimator cache is built once.
  std::size_t lease_batch = 1;
  /// Duplicate-dispatch an in-flight unit to an idle slot when nothing is
  /// pending (classic tail stealing; the first completion wins, the loser
  /// commits nothing).
  bool steal = true;
  long heartbeat_interval_ms = 1000;  ///< monitor probe period
  long heartbeat_timeout_ms = 5000;   ///< missed-pong deadline -> leases expire
};

struct ServerOptions {
  std::string root;            ///< checkpoint root directory (required)
  std::size_t threads = 0;     ///< worker fleet size (0 = hardware)
  /// Coordinator role (DESIGN.md §15): no local worker fleet — every unit
  /// of every job is dispatched as a lease to the shard daemons in `shard`,
  /// their streamed rows merged into this server's own checkpoint. The
  /// client-facing verbs are unchanged; `threads` is ignored.
  bool coordinator = false;
  ShardOptions shard;
  TenantQuota default_quota;   ///< applied to tenants without an override
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Estimator truncation precision of every tenant session. Session-level
  /// by construction (the chain store is built once per session with it),
  /// so submitted specs must carry the same value — see DESIGN.md §11.
  double eps = 1e-6;
  /// Directory of the persistent chain-statistics cache shared by ALL
  /// tenant sessions (DESIGN.md §14). Empty = no persistence. One directory
  /// for the whole daemon is deliberate: entries are content-addressed pure
  /// functions of chain bit content + eps, so they are tenant-neutral and a
  /// tenant can only ever read values it would have computed bit-identically
  /// itself. With a store, the DRAINING eviction trades memory but not
  /// warmth — clear_caches() flushes to disk before dropping the heap, and
  /// re-interned chains are served back from the mapping.
  std::string store_dir;
};

struct JobStatus {
  std::string job;
  std::string tenant;
  std::string state;  ///< queued | running | done | cancelled | failed
  std::string error;  ///< non-empty when state == failed
  std::size_t units_total = 0;
  std::size_t units_done = 0;
  std::size_t rows = 0;
  std::size_t rows_expected = 0;
};

class ShardFleet;

class Server {
  struct Job;  // declared up front so the public Lease handle can name it
  struct Tenant;

 public:
  /// Loads every checkpointed job under options.root (re-queueing the
  /// incomplete ones) and starts the worker fleet — or, with
  /// options.coordinator, the shard fleet.
  explicit Server(ServerOptions options);
  /// hard_stop()s.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handle one client connection until the peer closes (or the server
  /// stops). Any stream socket works: the daemon passes accepted
  /// unix-socket fds, the protocol tests one end of a socketpair. Does not
  /// own `fd`.
  void serve_connection(int fd);

  /// Accept loop on a listening socket: one detached-lifetime handler
  /// thread per connection, until stop. Blocks; returns after hard_stop().
  void serve(int listen_fd);

  /// Stop dispatching, abandon everything not yet durably committed (the
  /// in-process equivalent of kill -9 at a unit boundary — the resume
  /// tests drive it), unblock every reader and join all threads.
  /// Idempotent.
  void hard_stop();

  // ------------------------------------- coordinator dispatch surface ----
  // Used by ShardFleet's slot threads (and driven directly by the shard
  // tests). A Lease is one claimed unit: the coordinator-side claim ticket
  // whose completion — rows from ANY shard holding a lease on the unit —
  // commits through commit_remote_unit. Job is opaque outside this class;
  // the handle only keeps the job alive and identifies it on re-entry.

  struct Lease {
    std::shared_ptr<Job> job;  ///< opaque; pass back unchanged
    std::string job_id;
    std::string tenant;
    /// Canonical spec JSON (api::spec_to_json dump) to attach to the first
    /// lease of this job on a shard connection.
    std::shared_ptr<const std::string> spec_json;
    std::size_t unit = 0;
    bool stolen = false;  ///< duplicate-dispatch of an in-flight unit
  };

  /// Block until a unit is dispatchable (round-robin fair across jobs, same
  /// policy as the local fleet) or the server stops (nullopt). When nothing
  /// is pending and `allow_steal`, duplicate-claims an in-flight unit with
  /// a single live lease instead of waiting — tail stealing.
  [[nodiscard]] std::optional<Lease> claim_for_dispatch(bool allow_steal);
  /// Non-blocking claim (never steals) — lease-batch extension.
  [[nodiscard]] std::optional<Lease> try_claim_for_dispatch();
  /// Non-blocking claim of a pending unit from the SAME job and scenario as
  /// a lease this caller already holds (never steals). Scenario-affine
  /// dispatch: a scenario's estimator is cached per serving thread and is
  /// the dominant cost of a unit (api::Session), so splitting one
  /// scenario's trials across shards re-pays that build on every shard.
  /// ShardFleet extends each lease batch with siblings first so whole
  /// scenarios travel together.
  [[nodiscard]] std::optional<Lease> try_claim_sibling(const Lease& held);

  enum class RemoteCommit {
    Committed,  ///< rows durably merged and published
    Duplicate,  ///< another lease of the unit won; rows dropped (byte-equal
                ///< by purity, so nothing is lost)
    Stopped,    ///< server stopping; nothing written (kill -9 contract)
    Failed,     ///< coordinator-side checkpoint write failed; job failed
  };
  /// Durably commit one completed lease: append `rows` to the coordinator's
  /// checkpoint and publish them to `results` readers, exactly once per
  /// unit no matter how many leases of it complete. `claimed_us` (steady
  /// clock at claim, 0 = no obs) feeds the tenant unit-service histogram.
  RemoteCommit commit_remote_unit(const Lease& lease, std::vector<std::string> rows,
                                  std::uint64_t claimed_us);
  /// Lease expiry (shard death, transport error): re-queue the unit unless
  /// another live lease still covers it or it already committed.
  void return_lease(const Lease& lease);
  /// Unit EXECUTION failure on the shard (not transport): fail the job,
  /// mirroring a local worker's failure path.
  void fail_lease(const Lease& lease, const std::string& error);

  /// The shard fleet when running as a coordinator, else nullptr (counter
  /// introspection; runtime registration goes through the `register` verb).
  [[nodiscard]] ShardFleet* shard_fleet() noexcept { return shard_fleet_.get(); }

  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }

  // ------------------------------------------------ introspection (tests) ----
  [[nodiscard]] std::optional<JobStatus> job_status(const std::string& job);
  /// Block until the job is terminal (done/cancelled/failed); returns its
  /// final status (nullopt for unknown jobs, or when the server stops
  /// first).
  std::optional<JobStatus> wait_job(const std::string& job);
  /// Block until >= `at_least` units of the job committed (or terminal /
  /// server stop). The resume tests use it to kill mid-sweep.
  void wait_units(const std::string& job, std::size_t at_least);
  [[nodiscard]] std::size_t tenant_evictions(const std::string& tenant);

 private:
  void load_existing_jobs();
  void worker_loop();
  /// nullptr when no unit is currently dispatchable.
  std::shared_ptr<Job> claim_unit(std::size_t& unit_out);
  /// Caller holds mu_. Perform the DRAINING eviction if the tenant is
  /// draining and idle; returns true when dispatch of this tenant's units
  /// may proceed (i.e. the tenant is no longer draining).
  bool evict_if_drained(Tenant& tenant);
  /// Claim under mu_ (caller holds it); shared body of the dispatch calls.
  std::optional<Lease> claim_locked(bool allow_steal);
  /// Steal candidate under mu_: an in-flight unit with exactly one live
  /// lease, round-robin fair across jobs. nullopt when nothing qualifies.
  std::optional<Lease> steal_locked();
  Lease make_lease(const std::shared_ptr<Job>& job, std::size_t unit, bool stolen);
  void finalize_if_drained(Job& job);

  // Request handlers (see protocol.hpp). Each returns the response line;
  // handle_results and handle_lease stream directly on the channel.
  std::string handle_submit(const util::json::Value& req);
  std::string handle_status(const util::json::Value& req);
  std::string handle_cancel(const util::json::Value& req);
  std::string handle_counters();
  std::string handle_metrics(const util::json::Value& req);
  std::string handle_register(const util::json::Value& req);
  void handle_results(const util::json::Value& req, util::LineChannel& ch);

  /// Per-connection lease state: resolved specs keyed by the peer's job
  /// ref, so one spec transfer covers every later lease of the job on this
  /// connection.
  struct LeaseContext;
  using LeaseCache = std::map<std::string, std::shared_ptr<LeaseContext>>;
  void handle_lease(const util::json::Value& req, util::LineChannel& ch,
                    LeaseCache& cache);

  /// Empty when `spec` passes the session-level gates (eps,
  /// shared_chain_stats, record_trace); otherwise the error message.
  /// Shared by the submit and lease paths.
  [[nodiscard]] std::string spec_gate_error(const api::ExperimentSpec& spec) const;

  std::string register_job(const std::string& job_id, const std::string& tenant_name,
                           api::ExperimentSpec spec, std::unique_ptr<JobCheckpoint> ckpt,
                           bool fresh);
  Tenant& tenant_for(const std::string& name);  ///< caller holds mu_
  std::string status_line(const Job& job) const;

  /// Live fleet/scheduling state, computed under mu_ (caller holds it):
  /// the counters `fleet` block and the obs gauges read the same numbers.
  struct FleetState {
    std::size_t queue_depth = 0;     ///< pending units of dispatchable jobs
    std::size_t inflight_units = 0;  ///< claimed, not yet committed
    std::size_t busy_workers = 0;    ///< workers currently inside a unit
  };
  [[nodiscard]] FleetState fleet_state() const;
  /// Push fleet_state() into the obs gauges (caller holds mu_). Called at
  /// every dispatch/publish transition, so a scrape between transitions
  /// reads current depths without taking mu_.
  void update_fleet_gauges();

  ServerOptions options_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: new dispatchable units
  std::condition_variable rows_cv_;  ///< readers: rows published / terminal
  bool stopping_ = false;

  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::vector<std::string> job_order_;  ///< submission order (fair cursor)
  std::set<std::string> reserved_ids_;  ///< submit in progress, not yet in jobs_
  std::size_t rr_cursor_ = 0;
  std::size_t next_job_number_ = 1;
  std::size_t busy_workers_ = 0;  ///< workers between claim and publish
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  // Fleet-level gauges (registered once in the constructor; set under mu_).
  obs::Gauge queue_depth_gauge_;
  obs::Gauge inflight_gauge_;
  obs::Gauge busy_workers_gauge_;

  std::vector<std::thread> workers_;
  /// Present exactly when options_.coordinator (constructed after the jobs
  /// load, torn down first in hard_stop()).
  std::unique_ptr<ShardFleet> shard_fleet_;
  /// Connection handlers run detached; hard_stop() shuts their sockets down
  /// and waits for active_conns_ to drain (each handler's last touch of the
  /// server is the counter decrement + notify, under conn_mu_). The drain
  /// also waits for every serve() accept loop to exit: an acceptor may hold
  /// a connection it has not yet registered, so active_conns_ == 0 alone is
  /// not a safe teardown barrier while an acceptor is live.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::size_t active_conns_ = 0;
  std::size_t active_acceptors_ = 0;  ///< serve() loops currently running
  std::set<int> conn_fds_;  ///< shut down to unblock handlers at stop
};

}  // namespace tcgrid::serve
