// Wire protocol of the serve daemon (DESIGN.md §11).
//
// Newline-delimited JSON over a local stream socket. Each request is one
// JSON object with an "op" field; responses are one JSON object per line,
// except `results`, which streams raw result-row lines followed by one
// terminal {"type":"end",...} object. Every non-row response carries
// "ok":true|false; errors carry "error" with a field-path-naming message.
//
// Ops:
//   {"op":"submit","tenant":T,"spec":{...},"job":J?}     -> submitted
//   {"op":"status","job":J}                              -> status
//   {"op":"results","job":J,"from":N?,"wait":B?}         -> rows..., end
//   {"op":"cancel","job":J}                              -> status
//   {"op":"counters"}                                    -> counters
//   {"op":"metrics","format":"json"|"prometheus"?}       -> metrics
//
// This header holds what both sides share: the identifier grammar, the
// client-side request builders (used by the client CLI and the protocol
// tests) and the deterministic result-row serialization. Row bytes are a
// pure function of the row's coordinates and outcome — never of job id,
// tenant, scheduling order or daemon lifetime — which is what makes the
// checkpoint/resume guarantee testable: sort the union of streamed rows and
// it is byte-identical to an uninterrupted run's.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "platform/scenario.hpp"
#include "sim/stats.hpp"
#include "util/json.hpp"

namespace tcgrid::serve {

/// Tenants and job ids become directory names and wire keys:
/// [A-Za-z0-9._-], 1..64 chars, no leading '.' (no dot-file/traversal
/// surprises on the checkpoint root).
[[nodiscard]] bool valid_identifier(std::string_view s);

/// One completed (scenario, trial, heuristic) outcome as a JSONL line
/// (no trailing newline). Fixed key order; deterministic bytes.
[[nodiscard]] std::string row_line(std::size_t scenario, int trial,
                                   std::size_t heuristic_index,
                                   const std::string& heuristic,
                                   const std::string& family,
                                   const platform::ScenarioParams& params,
                                   const sim::SimulationResult& result);

// --------------------------------------------------- client-side builders ----

[[nodiscard]] std::string submit_request(std::string_view tenant,
                                         const util::json::Value& spec,
                                         std::string_view job = {});
[[nodiscard]] std::string status_request(std::string_view job);
[[nodiscard]] std::string results_request(std::string_view job, std::size_t from,
                                          bool wait);
[[nodiscard]] std::string cancel_request(std::string_view job);
[[nodiscard]] std::string counters_request();
/// format: "json" (metric objects under "metrics") or "prometheus" (text
/// exposition as one string under "prometheus" — the protocol is
/// line-based, so the text rides inside the JSON response).
[[nodiscard]] std::string metrics_request(std::string_view format = "json");

}  // namespace tcgrid::serve
