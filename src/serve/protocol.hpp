// Wire protocol of the serve daemon (DESIGN.md §11).
//
// Newline-delimited JSON over a local stream socket. Each request is one
// JSON object with an "op" field; responses are one JSON object per line,
// except `results`, which streams raw result-row lines followed by one
// terminal {"type":"end",...} object. Every non-row response carries
// "ok":true|false; errors carry "error" with a field-path-naming message.
//
// Ops:
//   {"op":"submit","tenant":T,"spec":{...},"job":J?}     -> submitted
//   {"op":"status","job":J}                              -> status
//   {"op":"results","job":J,"from":N?,"wait":B?}         -> rows..., end
//   {"op":"cancel","job":J}                              -> status
//   {"op":"counters"}                                    -> counters
//   {"op":"metrics","format":"json"|"prometheus"?}       -> metrics
//
// Shard ops (DESIGN.md §15) — spoken between a coordinator and stock
// daemons; any tcgrid_serve answers them:
//   {"op":"register"}            -> {"ok":true,"type":"registered",
//                                    "threads":N,"eps":E,"coordinator":B}
//      Handshake: the coordinator validates eps compatibility and sizes the
//      shard's lease-slot pool from "threads".
//   {"op":"register","shard":A}  -> shard_registered (coordinator only):
//      dynamically add the daemon at address A (unix path, "unix:PATH" or
//      "tcp:HOST:PORT") to the coordinator's shard fleet.
//   {"op":"heartbeat"}           -> {"ok":true,"type":"pong"}
//      Liveness probe on the coordinator's per-shard monitor connection; a
//      missed deadline expires every lease held by that shard.
//   {"op":"lease","job":REF,"tenant":T,"units":[u...],"spec":{...}?}
//      Execute the listed (scenario, trial) units — api::unit_index ids
//      against the spec — and stream, per completed unit,
//        {"ok":true,"type":"unit","unit":u,"rows":H}
//      followed by exactly H raw result-row lines (row_line bytes, NOT
//      JSON-escaped — identical bytes to what a local worker would commit),
//      then one terminal {"ok":true,"type":"lease_done","units":N}. REF is
//      an opaque per-connection job reference: the spec rides along on the
//      first lease of a REF on this connection and is cached for the rest;
//      a lease for an unknown REF without a spec fails with "need_spec":
//      true, telling the coordinator to resend with the spec attached. A
//      unit that fails to execute yields {"ok":false,"type":"unit_failed",
//      "unit":u,"error":...} and aborts the lease. The shard does NOT
//      checkpoint lease units — durability lives in the coordinator's
//      merged commit log; purity of rows makes re-execution after any
//      failure byte-identical.
//
// This header holds what both sides share: the identifier grammar, the
// client-side request builders (used by the client CLI and the protocol
// tests) and the deterministic result-row serialization. Row bytes are a
// pure function of the row's coordinates and outcome — never of job id,
// tenant, scheduling order or daemon lifetime — which is what makes the
// checkpoint/resume guarantee testable: sort the union of streamed rows and
// it is byte-identical to an uninterrupted run's.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "platform/scenario.hpp"
#include "sim/stats.hpp"
#include "util/json.hpp"

namespace tcgrid::serve {

/// Tenants and job ids become directory names and wire keys:
/// [A-Za-z0-9._-], 1..64 chars, no leading '.' (no dot-file/traversal
/// surprises on the checkpoint root).
[[nodiscard]] bool valid_identifier(std::string_view s);

/// One completed (scenario, trial, heuristic) outcome as a JSONL line
/// (no trailing newline). Fixed key order; deterministic bytes.
[[nodiscard]] std::string row_line(std::size_t scenario, int trial,
                                   std::size_t heuristic_index,
                                   const std::string& heuristic,
                                   const std::string& family,
                                   const platform::ScenarioParams& params,
                                   const sim::SimulationResult& result);

// --------------------------------------------------- client-side builders ----

[[nodiscard]] std::string submit_request(std::string_view tenant,
                                         const util::json::Value& spec,
                                         std::string_view job = {});
[[nodiscard]] std::string status_request(std::string_view job);
/// `from` indexes the daemon's COMMIT order — identical to the job's
/// rows.jsonl line order, so it is stable across daemon restarts. On a
/// coordinator that is the merged commit order (the order units' rows
/// landed in the merged checkpoint, whichever shard served them): a client
/// that streamed N rows and reconnects with from=N never re-reads or skips
/// a row, coordinator restart included (tests/shard_test.cpp).
[[nodiscard]] std::string results_request(std::string_view job, std::size_t from,
                                          bool wait);
[[nodiscard]] std::string cancel_request(std::string_view job);
[[nodiscard]] std::string counters_request();
/// format: "json" (metric objects under "metrics") or "prometheus" (text
/// exposition as one string under "prometheus" — the protocol is
/// line-based, so the text rides inside the JSON response).
[[nodiscard]] std::string metrics_request(std::string_view format = "json");

// ---------------------------------------------------- shard-side builders ----

/// Handshake (no shard address) when `shard` is empty; otherwise the
/// coordinator-side dynamic registration of the daemon at that address.
[[nodiscard]] std::string register_request(std::string_view shard = {});
[[nodiscard]] std::string heartbeat_request();
/// `spec_json` is the canonical spec dump (api::spec_to_json) or empty to
/// rely on the receiving connection's REF cache. Spliced verbatim — the
/// coordinator dumps a job's spec once, not per lease.
[[nodiscard]] std::string lease_request(std::string_view job_ref, std::string_view tenant,
                                        const std::vector<std::size_t>& units,
                                        std::string_view spec_json = {});

}  // namespace tcgrid::serve
