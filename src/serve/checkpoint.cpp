#include "serve/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "obs/obs.hpp"
#include "util/json.hpp"

namespace tcgrid::serve {

namespace fs = std::filesystem;

namespace {

/// Durability is the dominant cost of a unit commit — this histogram is the
/// "checkpoint fsync" series the CI smoke asserts on.
obs::Histogram& fsync_histogram() {
  static obs::Histogram h =
      obs::Registry::instance().histogram("tcgrid_serve_checkpoint_fsync_us");
  return h;
}

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void write_all_fd(int fd, std::string_view data, const std::string& what) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    sys_fail(what);
  }
}

void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) sys_fail("fsync " + what);
}

/// fsync a directory so a rename/create inside it is durable.
void fsync_dir(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) sys_fail("open dir " + path);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) sys_fail("fsync dir " + path);
}

/// Atomic durable file replacement: tmp + fsync + rename + dir fsync.
void write_file_atomic(const std::string& dir, const std::string& name,
                       std::string_view content) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) sys_fail("open " + tmp);
  try {
    write_all_fd(fd, content, "write " + tmp);
    fsync_or_throw(fd, tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) sys_fail("rename " + tmp);
  fsync_dir(dir);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) throw std::runtime_error("cannot read " + path);
  std::ostringstream out;
  out << in.rdbuf();
  return std::move(out).str();
}

}  // namespace

JobCheckpoint::JobCheckpoint(const std::string& root, const std::string& job)
    : dir_(root + "/" + job) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("cannot create job directory " + dir_ + ": " +
                                   ec.message());
}

JobCheckpoint::~JobCheckpoint() {
  if (rows_fd_ >= 0) ::close(rows_fd_);
  if (units_fd_ >= 0) ::close(units_fd_);
}

bool JobCheckpoint::has_manifest() const {
  return fs::exists(dir_ + "/manifest.json");
}

void JobCheckpoint::write_manifest(const std::string& manifest_json) {
  write_file_atomic(dir_, "manifest.json", manifest_json);
}

std::string JobCheckpoint::read_manifest() const {
  return read_file(dir_ + "/manifest.json");
}

void JobCheckpoint::open_append_fds() {
  if (rows_fd_ < 0) {
    const std::string rows_path = dir_ + "/rows.jsonl";
    rows_fd_ = ::open(rows_path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (rows_fd_ < 0) sys_fail("open " + rows_path);
  }
  if (units_fd_ < 0) {
    const std::string units_path = dir_ + "/units.log";
    units_fd_ = ::open(units_path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (units_fd_ < 0) sys_fail("open " + units_path);
  }
}

void JobCheckpoint::commit_unit(std::size_t unit, const std::vector<std::string>& rows) {
  open_append_fds();
  // One write per unit (the contiguous-unit row block), then the commit
  // record. The ordering — rows durable BEFORE the unit line — is the whole
  // crash-consistency argument; see the header comment.
  std::string block;
  for (const std::string& row : rows) {
    block += row;
    block += '\n';
  }
  write_all_fd(rows_fd_, block, "append rows " + dir_);
  {
    const obs::ScopedTimer timer(fsync_histogram());
    fsync_or_throw(rows_fd_, dir_ + "/rows.jsonl");
  }
  // The " ok" suffix makes a commit record self-validating: a torn append
  // of "41 ok\n" can leave "4" or "41 o", neither of which parses as a
  // complete record — a truncated PREFIX of a unit number must never read
  // as a smaller committed unit.
  write_all_fd(units_fd_, std::to_string(unit) + " ok\n", "append units " + dir_);
  {
    const obs::ScopedTimer timer(fsync_histogram());
    fsync_or_throw(units_fd_, dir_ + "/units.log");
  }
}

void JobCheckpoint::mark_cancelled() {
  write_file_atomic(dir_, "cancelled", "");
}

bool JobCheckpoint::is_cancelled() const { return fs::exists(dir_ + "/cancelled"); }

JobCheckpoint::LoadedRows JobCheckpoint::load_rows(std::size_t trials) {
  LoadedRows out;
  std::set<std::size_t> committed;

  std::string units_raw;
  if (std::ifstream units(dir_ + "/units.log", std::ios::binary); units.is_open()) {
    std::ostringstream buf;
    buf << units.rdbuf();
    units_raw = std::move(buf).str();
  }
  std::string units_clean;
  for (std::size_t pos = 0; pos < units_raw.size();) {
    const std::size_t nl = units_raw.find('\n', pos);
    // A record is "<unit> ok\n"; a torn tail (kill -9 mid-append) lacks the
    // newline and/or suffix — and, crucially, a torn prefix of a larger
    // unit number must not read as a smaller one — so anything short of the
    // full form is skipped as uncommitted.
    const std::string_view line(units_raw.data() + pos,
                                (nl == std::string::npos ? units_raw.size() : nl) - pos);
    pos = nl == std::string::npos ? units_raw.size() : nl + 1;
    constexpr std::string_view kSuffix = " ok";
    if (nl == std::string::npos || line.size() <= kSuffix.size() ||
        line.substr(line.size() - kSuffix.size()) != kSuffix) {
      continue;
    }
    std::size_t unit = 0;
    const char* end = line.data() + line.size() - kSuffix.size();
    const auto [p, ec] = std::from_chars(line.data(), end, unit);
    if (ec != std::errc() || p != end) continue;
    if (committed.insert(unit).second) {
      out.completed_units.push_back(unit);
      units_clean.append(line);
      units_clean += '\n';
    }
  }
  if (units_clean != units_raw) {
    // Rewrite so the log holds exactly the validated records. O_APPEND never
    // truncates, so a torn tail left in place would concatenate with the
    // next commit record ("1" + "1 ok\n" -> "11 ok") and falsely mark a
    // never-run unit committed.
    if (units_fd_ >= 0) {
      ::close(units_fd_);
      units_fd_ = -1;
    }
    write_file_atomic(dir_, "units.log", units_clean);
  }

  bool dropped = false;
  if (std::ifstream rows(dir_ + "/rows.jsonl"); rows.is_open()) {
    std::string line;
    while (std::getline(rows, line)) {
      if (line.empty()) continue;
      bool keep = false;
      try {
        const util::json::Value row = util::json::parse(line);
        const util::json::Value* sc = row.find("scenario");
        const util::json::Value* trial = row.find("trial");
        if (sc != nullptr && trial != nullptr && sc->is_integer() &&
            trial->is_integer() && trials > 0) {
          const std::size_t unit =
              static_cast<std::size_t>(sc->as_uint()) * trials +
              static_cast<std::size_t>(trial->as_uint());
          keep = committed.count(unit) != 0;
        }
      } catch (const std::invalid_argument&) {
        // Torn/garbage line: by the append ordering it belongs to an
        // uncommitted unit — drop it.
      }
      if (keep) out.rows.push_back(line);
      else dropped = true;
    }
  }

  if (dropped) {
    // Rewrite clean so future appends extend a file containing exactly the
    // committed rows (load happens before any new appends; the fds below
    // reopen lazily on the replacement file).
    std::string content;
    for (const std::string& row : out.rows) {
      content += row;
      content += '\n';
    }
    if (rows_fd_ >= 0) {
      ::close(rows_fd_);
      rows_fd_ = -1;
    }
    if (units_fd_ >= 0) {
      ::close(units_fd_);
      units_fd_ = -1;
    }
    write_file_atomic(dir_, "rows.jsonl", content);
  }
  return out;
}

bool JobCheckpoint::has_state(const std::string& root, const std::string& job) {
  const fs::path dir = fs::path(root) / job;
  std::error_code ec;
  return fs::exists(dir / "manifest.json", ec) || fs::exists(dir / "units.log", ec) ||
         fs::exists(dir / "rows.jsonl", ec);
}

std::vector<std::string> JobCheckpoint::list_jobs(const std::string& root) {
  std::vector<std::string> jobs;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (!entry.is_directory()) continue;
    if (fs::exists(entry.path() / "manifest.json")) {
      jobs.push_back(entry.path().filename().string());
    }
  }
  std::sort(jobs.begin(), jobs.end());
  return jobs;
}

}  // namespace tcgrid::serve
