// Shard coordinator transport (DESIGN.md §15).
//
// A ShardFleet is the dispatch engine of a coordinator-mode Server: for
// every registered shard daemon it runs a small pool of SLOT threads — each
// owning one connection to the shard — plus one MONITOR thread probing
// liveness over a separate connection. A slot's loop is pull-based work
// stealing in its purest form:
//
//   claim a unit from the coordinator's queue (blocking; round-robin fair
//   across jobs, exactly the local fleet's policy) -> lease it to the shard
//   -> stream the unit's result rows back -> Server::commit_remote_unit.
//
// Nothing is partitioned up front: a fast shard simply claims more often,
// so slot-cap-bound straggler units never serialize the tail. When the
// queue is empty an idle slot may STEAL — duplicate-lease an in-flight unit
// held by exactly one other lease; rows are pure functions of (spec, unit),
// so whichever lease finishes first commits and the loser's bytes are
// dropped unread (Server::RemoteCommit::Duplicate).
//
// Failure model: a dead connection (shard crash, kill -9, network cut) or
// a missed heartbeat deadline expires every lease the slot held —
// Server::return_lease re-queues the units and another shard re-runs them,
// idempotently by row purity. The monitor exists for HUNG shards: a
// SIGSTOP'd or wedged daemon keeps its sockets open, so the monitor's
// missed pong shuts the slot connections down from our side to force the
// expiry. Shards can join at runtime (the `register` verb with a "shard"
// address); a shard whose eps differs from the coordinator's is rejected —
// its rows would diverge bit-wise — and never receives a lease.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/socket.hpp"

namespace tcgrid::serve {

class Server;
struct ShardOptions;

class ShardFleet {
 public:
  /// Does not start any threads; `server` must outlive the fleet. Options
  /// are copied from the server's ShardOptions at construction.
  ShardFleet(Server& server, const ShardOptions& options);
  ~ShardFleet();  ///< stop()s

  ShardFleet(const ShardFleet&) = delete;
  ShardFleet& operator=(const ShardFleet&) = delete;

  /// Spawn the monitor (which spawns the slots once the shard registers)
  /// for every configured shard.
  void start();
  /// Stop every thread: shuts down all shard connections, wakes sleepers
  /// and joins. Idempotent; called by Server::hard_stop().
  void stop();
  /// Runtime registration (the `register` verb with a "shard" address).
  /// No-op after stop().
  void add_shard(const std::string& address);

  struct Counters {
    std::size_t shards = 0;        ///< registered (configured + runtime)
    std::size_t live_shards = 0;   ///< currently registered and heartbeating
    std::size_t leased_units = 0;  ///< claims dispatched (incl. re-dispatch)
    std::size_t stolen_units = 0;  ///< duplicate-dispatched in-flight units
    std::size_t redispatched_units = 0;  ///< lease expiries re-queued
    std::size_t duplicate_commits = 0;   ///< losing-lease completions dropped
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Shard;

  void monitor_loop(Shard& shard);
  void slot_loop(Shard& shard);
  /// One lease round on an established connection: claim (blocking), send,
  /// stream rows, commit. False = transport trouble, reconnect.
  bool lease_round(Shard& shard, util::LineChannel& ch,
                   std::vector<std::string>& sent_specs);
  void set_live(Shard& shard, bool live);
  /// Create the slot threads once the shard's first registration succeeds.
  /// Slot count = slots_per_shard option, or the shard's advertised worker
  /// thread count when the option is 0 (clamped to [1, 64]).
  void spawn_slots(Shard& shard, std::size_t advertised_threads);
  /// Interruptible sleep; false when the fleet is stopping.
  bool sleep_ms(long ms);
  void track_fd(Shard& shard, int fd, bool add);

  Server& server_;
  // ShardOptions lives in server.hpp (which includes this header), so the
  // fields are copied rather than the struct embedded.
  std::vector<std::string> initial_shards_;
  std::size_t slots_per_shard_;
  std::size_t lease_batch_;
  bool steal_;
  long heartbeat_interval_ms_;
  long heartbeat_timeout_ms_;

  mutable std::mutex mu_;  ///< shards_ vector, per-shard fd sets, counters
  std::condition_variable stop_cv_;
  std::atomic<bool> stopping_{false};
  std::vector<std::unique_ptr<Shard>> shards_;

  std::size_t leased_ = 0;
  std::size_t stolen_ = 0;
  std::size_t redispatched_ = 0;
  std::size_t duplicates_ = 0;

  // Coordinator-wide obs series (DESIGN.md §12); per-shard service-time
  // histograms live on the Shard.
  obs::Gauge live_shards_gauge_;
  obs::Counter leased_total_;
  obs::Counter stolen_total_;
  obs::Counter redispatched_total_;
  obs::Counter duplicate_total_;
};

}  // namespace tcgrid::serve
