#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "api/spec_json.hpp"
#include "obs/obs.hpp"
#include "scen/registry.hpp"
#include "serve/protocol.hpp"
#include "serve/shard.hpp"

namespace tcgrid::serve {

namespace json = util::json;

namespace {

constexpr std::size_t kResultsBatch = 512;  ///< rows written per lock hold

json::Value error_value(std::string_view message) {
  return json::Object{{"ok", false}, {"error", message}};
}

std::string error_line(std::string_view message) {
  return json::dump(error_value(message));
}

}  // namespace

// ------------------------------------------------------------- state types ----

struct Server::Job {
  std::string id;
  std::string tenant;
  api::ExperimentSpec spec;
  api::Options options;  ///< spec.options with the tenant's quota clamps
  std::vector<platform::ScenarioParams> scenarios;
  std::vector<std::string> heuristics;
  std::shared_ptr<const scen::AvailabilityFamily> avail_family;
  std::shared_ptr<const scen::PlatformFamily> plat_family;
  std::size_t trials = 0;
  std::size_t units_total = 0;

  enum class State { Queued, Running, Done, Cancelled, Failed };
  State state = State::Queued;
  bool cancel_requested = false;
  std::string error;

  enum : std::uint8_t { kPending = 0, kInFlight = 1, kDone = 2 };
  std::vector<std::uint8_t> unit_state;
  std::size_t units_done = 0;
  std::size_t inflight = 0;
  std::size_t next_scan = 0;  ///< first possibly-pending unit (scan hint)

  // Coordinator-mode dispatch state (empty/null on a plain daemon).
  /// Live leases per unit — at most 2 (the original claim plus one steal).
  /// A kInFlight unit stays in flight until its LAST lease resolves.
  std::vector<std::uint8_t> lease_count;
  /// Canonical spec JSON, attached to the first lease of this job sent on
  /// each shard connection (see protocol.hpp lease op).
  std::shared_ptr<const std::string> spec_json;

  std::vector<std::string> rows;  ///< committed rows, completion order
  /// Publication stamp (steady µs) of rows[i] — what the per-tenant
  /// results-stream-latency histogram measures against when a `results`
  /// reader finally pops the row. Loaded rows are stamped at load time.
  std::vector<std::uint64_t> row_publish_us;
  obs::Histogram stream_latency_us;  ///< the owning tenant's, copied at registration

  std::unique_ptr<JobCheckpoint> ckpt;
  std::mutex io_mutex;  ///< serializes checkpoint commits for this job

  [[nodiscard]] bool terminal() const {
    return state == State::Done || state == State::Cancelled || state == State::Failed;
  }
  [[nodiscard]] const char* state_name() const {
    switch (state) {
      case State::Queued: return "queued";
      case State::Running: return "running";
      case State::Done: return "done";
      case State::Cancelled: return "cancelled";
      case State::Failed: return "failed";
    }
    return "?";
  }
};

struct Server::Tenant {
  std::string name;
  TenantQuota quota;
  std::unique_ptr<api::Session> session;
  std::size_t inflight = 0;
  bool draining = false;   ///< over chain-store quota; evict once drained
  std::size_t evictions = 0;
  std::size_t jobs = 0;
  std::size_t units_done = 0;
  std::size_t rows = 0;

  // Per-tenant obs series ({"tenant", name}-labelled; DESIGN.md §12).
  obs::Histogram unit_service_us;    ///< claim -> durable publish, per unit
  obs::Histogram stream_latency_us;  ///< row publish -> results-reader pop
  obs::Counter evictions_total;      ///< DRAINING cache evictions
};

// ------------------------------------------------------------ construction ----

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.root.empty()) {
    throw std::invalid_argument("serve::Server: options.root (checkpoint directory) is required");
  }
  {
    obs::Registry& reg = obs::Registry::instance();
    queue_depth_gauge_ = reg.gauge("tcgrid_serve_queue_depth");
    inflight_gauge_ = reg.gauge("tcgrid_serve_inflight_units");
    busy_workers_gauge_ = reg.gauge("tcgrid_serve_busy_workers");
  }
  load_existing_jobs();
  {
    std::lock_guard<std::mutex> lock(mu_);
    update_fleet_gauges();
  }
  if (options_.coordinator) {
    // Coordinator role: no local fleet — a ShardFleet pulls units from the
    // same queue the workers would have and leases them to shard daemons.
    shard_fleet_ = std::make_unique<ShardFleet>(*this, options_.shard);
    shard_fleet_->start();
    return;
  }
  std::size_t n = options_.threads;
  if (n == 0) n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() { hard_stop(); }

Server::Tenant& Server::tenant_for(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) {
    auto tenant = std::make_unique<Tenant>();
    tenant->name = name;
    const auto q = options_.tenant_quotas.find(name);
    tenant->quota = q != options_.tenant_quotas.end() ? q->second : options_.default_quota;
    api::Options session_options;
    session_options.eps = options_.eps;
    // One store directory across tenants (see ServerOptions::store_dir):
    // every tenant session layers over the same mmap'd generations, and a
    // flush from any tenant warms all of them.
    session_options.store_dir = options_.store_dir;
    tenant->session = std::make_unique<api::Session>(session_options);
    obs::Registry& reg = obs::Registry::instance();
    tenant->unit_service_us =
        reg.histogram("tcgrid_serve_unit_service_us", {{"tenant", name}});
    tenant->stream_latency_us =
        reg.histogram("tcgrid_serve_results_stream_latency_us", {{"tenant", name}});
    tenant->evictions_total =
        reg.counter("tcgrid_serve_evictions_total", {{"tenant", name}});
    it = tenants_.emplace(name, std::move(tenant)).first;
  }
  return *it->second;
}

void Server::load_existing_jobs() {
  for (const std::string& job_id : JobCheckpoint::list_jobs(options_.root)) {
    // Keep the id counter ahead of every recovered "job-N" name.
    if (job_id.rfind("job-", 0) == 0) {
      const unsigned long n = std::strtoul(job_id.c_str() + 4, nullptr, 10);
      next_job_number_ = std::max(next_job_number_, static_cast<std::size_t>(n) + 1);
    }
    try {
      auto ckpt = std::make_unique<JobCheckpoint>(options_.root, job_id);
      const json::Value manifest = json::parse(ckpt->read_manifest());
      const json::Value* tenant = manifest.find("tenant");
      const json::Value* spec_value = manifest.find("spec");
      if (tenant == nullptr || !tenant->is_string() || spec_value == nullptr) {
        throw std::invalid_argument("manifest missing tenant/spec");
      }
      api::ExperimentSpec spec = api::spec_from_json(*spec_value);
      register_job(job_id, tenant->as_string(), std::move(spec), std::move(ckpt),
                   /*fresh=*/false);
    } catch (const std::exception& e) {
      // A corrupt manifest must not take the daemon down — leave the
      // directory untouched for inspection and keep serving everyone else.
      std::fprintf(stderr, "tcgrid_serve: skipping unloadable job '%s': %s\n",
                   job_id.c_str(), e.what());
    }
  }
}

std::string Server::register_job(const std::string& job_id, const std::string& tenant_name,
                                 api::ExperimentSpec spec,
                                 std::unique_ptr<JobCheckpoint> ckpt, bool fresh) {
  auto job = std::make_shared<Job>();
  job->id = job_id;
  job->tenant = tenant_name;
  job->scenarios = spec.scenarios();
  job->heuristics = spec.resolved_heuristics();
  job->avail_family = scen::availability_family(spec.scenario_space.availability);
  job->plat_family = scen::platform_family(spec.scenario_space.platform);
  job->trials = static_cast<std::size_t>(spec.trials);
  job->units_total = job->scenarios.size() * job->trials;
  job->unit_state.assign(job->units_total, Job::kPending);
  job->options = spec.options;
  job->spec = std::move(spec);
  job->ckpt = std::move(ckpt);
  if (options_.coordinator) {
    job->lease_count.assign(job->units_total, 0);
    job->spec_json =
        std::make_shared<const std::string>(json::dump(api::spec_to_json(job->spec)));
  }

  const bool cancelled = !fresh && job->ckpt->is_cancelled();
  if (!fresh) {
    const JobCheckpoint::LoadedRows loaded = job->ckpt->load_rows(job->trials);
    for (std::size_t unit : loaded.completed_units) {
      if (unit < job->units_total && job->unit_state[unit] != Job::kDone) {
        job->unit_state[unit] = Job::kDone;
        ++job->units_done;
      }
    }
    job->rows = loaded.rows;
  }
  // Recovered rows were published "now" as far as this process can tell —
  // the stamp vector must index 1:1 with rows for the stream-latency math.
  job->row_publish_us.assign(job->rows.size(), obs::steady_now_us());

  std::lock_guard<std::mutex> lock(mu_);
  Tenant& tenant = tenant_for(tenant_name);
  job->stream_latency_us = tenant.stream_latency_us;
  tenant.jobs += 1;
  tenant.units_done += job->units_done;
  tenant.rows += job->rows.size();
  // Quota clamp: the spec's realization budget never exceeds the tenant's.
  job->options.realization_budget =
      std::min(job->options.realization_budget, tenant.quota.realization_budget);
  if (job->units_done == job->units_total) job->state = Job::State::Done;
  else if (cancelled) job->state = Job::State::Cancelled;
  else job->state = job->units_done > 0 ? Job::State::Running : Job::State::Queued;
  reserved_ids_.erase(job->id);
  jobs_.emplace(job->id, job);
  job_order_.push_back(job->id);
  update_fleet_gauges();
  work_cv_.notify_all();
  rows_cv_.notify_all();
  return job->id;
}

// ----------------------------------------------------------- fleet gauges ----

Server::FleetState Server::fleet_state() const {
  FleetState fs;
  for (const auto& [id, job] : jobs_) {
    if (job->terminal()) continue;
    fs.inflight_units += job->inflight;
    if (!job->cancel_requested) {
      fs.queue_depth += job->units_total - job->units_done - job->inflight;
    }
  }
  fs.busy_workers = busy_workers_;
  return fs;
}

void Server::update_fleet_gauges() {
  if (!obs::enabled()) return;
  const FleetState fs = fleet_state();
  queue_depth_gauge_.set(static_cast<long long>(fs.queue_depth));
  inflight_gauge_.set(static_cast<long long>(fs.inflight_units));
  busy_workers_gauge_.set(static_cast<long long>(fs.busy_workers));
}

// ------------------------------------------------------------ worker fleet ----

std::shared_ptr<Server::Job> Server::claim_unit(std::size_t& unit_out) {
  // Round-robin over jobs in submission order: each call resumes after the
  // job served last, so many concurrent jobs (and tenants) interleave
  // fairly instead of the first job monopolizing the fleet.
  const std::size_t n = job_order_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (rr_cursor_ + step) % n;
    const std::shared_ptr<Job>& job = jobs_[job_order_[idx]];
    if (job->terminal() || job->cancel_requested) continue;
    Tenant& tenant = *tenants_[job->tenant];
    if (!evict_if_drained(tenant)) continue;
    while (job->next_scan < job->units_total &&
           job->unit_state[job->next_scan] != Job::kPending) {
      ++job->next_scan;
    }
    if (job->next_scan >= job->units_total) continue;
    unit_out = job->next_scan;
    job->unit_state[unit_out] = Job::kInFlight;
    job->inflight += 1;
    tenant.inflight += 1;
    if (job->state == Job::State::Queued) job->state = Job::State::Running;
    rr_cursor_ = (idx + 1) % n;
    return job;
  }
  return nullptr;
}

bool Server::evict_if_drained(Tenant& tenant) {
  // Over chain-store quota: evict as soon as the last in-flight unit of
  // this tenant drains, then resume dispatch. clear_caches() is safe here
  // precisely because nothing of this tenant is running — tenant.inflight
  // counts local worker units AND lease units (handle_lease).
  if (!tenant.draining) return true;
  if (tenant.inflight > 0) return false;
  tenant.session->clear_caches();
  tenant.draining = false;
  tenant.evictions += 1;
  tenant.evictions_total.inc();
  if (obs::Tracer::instance().active()) {
    obs::Tracer::instance().emit(
        "serve_evict", {{"tenant", tenant.name},
                        {"eviction", static_cast<unsigned long long>(tenant.evictions)}});
  }
  return true;
}

// ------------------------------------------- coordinator dispatch surface ----

Server::Lease Server::make_lease(const std::shared_ptr<Job>& job, std::size_t unit,
                                 bool stolen) {
  Lease lease;
  lease.job = job;
  lease.job_id = job->id;
  lease.tenant = job->tenant;
  lease.spec_json = job->spec_json;
  lease.unit = unit;
  lease.stolen = stolen;
  return lease;
}

std::optional<Server::Lease> Server::steal_locked() {
  // Tail stealing: duplicate-claim an in-flight unit carrying exactly one
  // live lease. Same round-robin fairness as claim_unit; the lease cap of 2
  // bounds duplicated work to one extra execution per straggler.
  const std::size_t n = job_order_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (rr_cursor_ + step) % n;
    const std::shared_ptr<Job>& job = jobs_[job_order_[idx]];
    if (job->terminal() || job->cancel_requested || job->lease_count.empty()) continue;
    for (std::size_t u = 0; u < job->units_total; ++u) {
      if (job->unit_state[u] == Job::kInFlight && job->lease_count[u] == 1) {
        job->lease_count[u] = 2;
        return make_lease(job, u, /*stolen=*/true);
      }
    }
  }
  return std::nullopt;
}

std::optional<Server::Lease> Server::claim_locked(bool allow_steal) {
  std::size_t unit = 0;
  if (std::shared_ptr<Job> job = claim_unit(unit)) {
    if (!job->lease_count.empty()) job->lease_count[unit] = 1;
    return make_lease(job, unit, /*stolen=*/false);
  }
  return allow_steal ? steal_locked() : std::nullopt;
}

std::optional<Server::Lease> Server::claim_for_dispatch(bool allow_steal) {
  std::unique_lock<std::mutex> lock(mu_);
  std::optional<Lease> lease;
  work_cv_.wait(lock, [&] {
    if (stopping_) return true;
    lease = claim_locked(allow_steal);
    return lease.has_value();
  });
  if (!lease.has_value()) return std::nullopt;  // woken by stop
  update_fleet_gauges();
  return lease;
}

std::optional<Server::Lease> Server::try_claim_for_dispatch() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return std::nullopt;
  std::optional<Lease> lease = claim_locked(/*allow_steal=*/false);
  if (lease.has_value()) update_fleet_gauges();
  return lease;
}

std::optional<Server::Lease> Server::try_claim_sibling(const Lease& held) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return std::nullopt;
  const std::shared_ptr<Job>& job = held.job;
  if (job->terminal() || job->cancel_requested || job->trials == 0) return std::nullopt;
  Tenant& tenant = *tenants_[job->tenant];
  if (tenant.draining) return std::nullopt;  // don't extend into an eviction
  const std::size_t scenario = held.unit / job->trials;
  const std::size_t lo = scenario * job->trials;
  const std::size_t hi = std::min(lo + job->trials, job->units_total);
  for (std::size_t u = lo; u < hi; ++u) {
    if (job->unit_state[u] != Job::kPending) continue;
    job->unit_state[u] = Job::kInFlight;
    job->inflight += 1;
    tenant.inflight += 1;
    if (!job->lease_count.empty()) job->lease_count[u] = 1;
    if (job->state == Job::State::Queued) job->state = Job::State::Running;
    update_fleet_gauges();
    return make_lease(job, u, /*stolen=*/false);
  }
  return std::nullopt;
}

Server::RemoteCommit Server::commit_remote_unit(const Lease& lease,
                                                std::vector<std::string> rows,
                                                std::uint64_t claimed_us) {
  const std::shared_ptr<Job>& job = lease.job;
  std::lock_guard<std::mutex> io_lock(job->io_mutex);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Abandon instead of committing once stopping: hard_stop() promises
    // kill -9 semantics (nothing new becomes durable after it returns —
    // the fleet threads are joined before hard_stop returns).
    if (stopping_) return RemoteCommit::Stopped;
    if (job->unit_state[lease.unit] == Job::kDone) {
      // A racing lease of this unit won. kDone is authoritative here: the
      // winner set it before releasing io_mutex, so holding io_mutex and
      // NOT seeing kDone means no other commit of the unit can exist. The
      // dropped rows are byte-identical to the committed ones by purity.
      return RemoteCommit::Duplicate;
    }
  }
  try {
    job->ckpt->commit_unit(lease.unit, rows);
  } catch (const std::exception& e) {
    fail_lease(lease, std::string("checkpoint write failed: ") + e.what());
    return RemoteCommit::Failed;
  }
  std::uint64_t service_us = 0;
  if (claimed_us != 0) service_us = obs::steady_now_us() - claimed_us;
  const std::size_t row_count = rows.size();
  {
    // Publish while still holding io_mutex so the in-memory row order
    // matches rows.jsonl's commit order exactly — the merge layer keeps
    // the `results --from=N` offset invariant (DESIGN.md §15).
    std::lock_guard<std::mutex> lock(mu_);
    Tenant& tenant = *tenants_[job->tenant];
    job->inflight -= 1;
    tenant.inflight -= 1;
    job->unit_state[lease.unit] = Job::kDone;
    if (!job->lease_count.empty()) job->lease_count[lease.unit] = 0;
    job->units_done += 1;
    const std::uint64_t now_us = obs::steady_now_us();
    for (std::string& row : rows) {
      job->rows.push_back(std::move(row));
      job->row_publish_us.push_back(now_us);
    }
    tenant.units_done += 1;
    tenant.rows += row_count;
    if (claimed_us != 0) tenant.unit_service_us.observe(service_us);
    if (job->units_done == job->units_total && !job->terminal()) {
      job->state = Job::State::Done;
    }
    // No chain-store quota check: coordinator tenant sessions never run
    // units, so their stores stay empty — DRAINING happens on the shards.
    finalize_if_drained(*job);
    update_fleet_gauges();
    rows_cv_.notify_all();
    work_cv_.notify_all();
  }
  if (obs::Tracer::instance().active()) {
    obs::Tracer::instance().emit(
        "coord_commit", {{"job", job->id},
                         {"unit", static_cast<unsigned long long>(lease.unit)},
                         {"stolen", lease.stolen},
                         {"us", static_cast<unsigned long long>(service_us)}});
  }
  return RemoteCommit::Committed;
}

void Server::return_lease(const Lease& lease) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<Job>& job = lease.job;
  if (job->unit_state[lease.unit] != Job::kInFlight) return;  // already committed
  if (!job->lease_count.empty() && job->lease_count[lease.unit] > 1) {
    // The other lease of this unit is still live — it finishes or expires
    // on its own; the unit stays in flight.
    job->lease_count[lease.unit] -= 1;
    return;
  }
  if (!job->lease_count.empty()) job->lease_count[lease.unit] = 0;
  job->unit_state[lease.unit] = Job::kPending;
  job->next_scan = std::min(job->next_scan, lease.unit);
  job->inflight -= 1;
  tenants_[job->tenant]->inflight -= 1;
  finalize_if_drained(*job);
  update_fleet_gauges();
  work_cv_.notify_all();
  rows_cv_.notify_all();
}

void Server::fail_lease(const Lease& lease, const std::string& error) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::shared_ptr<Job>& job = lease.job;
  if (job->unit_state[lease.unit] == Job::kInFlight) {
    if (!job->lease_count.empty() && job->lease_count[lease.unit] > 1) {
      job->lease_count[lease.unit] -= 1;
    } else {
      if (!job->lease_count.empty()) job->lease_count[lease.unit] = 0;
      job->unit_state[lease.unit] = Job::kPending;  // dropped, not committed
      job->next_scan = std::min(job->next_scan, lease.unit);
      job->inflight -= 1;
      tenants_[job->tenant]->inflight -= 1;
    }
  }
  if (!job->terminal()) {
    job->state = Job::State::Failed;
    job->error = error;
  }
  finalize_if_drained(*job);
  update_fleet_gauges();
  rows_cv_.notify_all();
  work_cv_.notify_all();
}

void Server::finalize_if_drained(Job& job) {
  // Caller holds mu_. Cancellation completes only once in-flight units
  // finished (their rows still commit — a cancelled job's checkpoint stays
  // consistent).
  if (job.cancel_requested && job.inflight == 0 && !job.terminal()) {
    job.state = Job::State::Cancelled;
    rows_cv_.notify_all();
  }
}

void Server::worker_loop() {
  while (true) {
    std::shared_ptr<Job> job;
    std::size_t unit = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        if (stopping_) return true;
        job = claim_unit(unit);
        return job != nullptr;
      });
      if (stopping_) return;
      busy_workers_ += 1;
      update_fleet_gauges();
    }
    const std::uint64_t claimed_us = obs::enabled() ? obs::steady_now_us() : 0;

    const std::size_t sc = api::unit_scenario(unit, job->trials);
    const int trial = static_cast<int>(api::unit_trial(unit, job->trials));
    Tenant& tenant = [&]() -> Tenant& {
      std::lock_guard<std::mutex> lock(mu_);
      return *tenants_[job->tenant];
    }();

    std::vector<std::string> unit_rows;
    bool failed = false;
    std::string error;
    try {
      const std::vector<sim::SimulationResult> results = tenant.session->run_unit(
          job->options, *job->avail_family, job->plat_family, job->scenarios[sc],
          job->heuristics, trial);
      unit_rows.reserve(results.size());
      for (std::size_t h = 0; h < results.size(); ++h) {
        unit_rows.push_back(row_line(sc, trial, h, job->heuristics[h],
                                     job->spec.scenario_space.availability,
                                     job->scenarios[sc], results[h]));
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }

    bool published = false;
    bool job_completed = false;
    if (!failed) {
      // Abandon instead of committing once stopping: hard_stop() promises
      // kill -9 semantics (nothing new becomes durable after it returns).
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) return;
      }
      std::lock_guard<std::mutex> io_lock(job->io_mutex);
      try {
        job->ckpt->commit_unit(unit, unit_rows);
      } catch (const std::exception& e) {
        failed = true;
        error = std::string("checkpoint write failed: ") + e.what();
      }
      // Unit service time: claim to durable commit (the fsync is in; the
      // rows become visible to readers a few instructions later).
      std::uint64_t service_us = 0;
      if (!failed) {
        if (claimed_us != 0) service_us = obs::steady_now_us() - claimed_us;
        // Publish while still holding io_mutex so the in-memory row order
        // matches rows.jsonl's commit order exactly — `results --from=N`
        // offsets must index the same sequence before and after a daemon
        // restart (which rebuilds job->rows in file order).
        std::lock_guard<std::mutex> lock(mu_);
        job->inflight -= 1;
        tenant.inflight -= 1;
        busy_workers_ -= 1;
        job->unit_state[unit] = Job::kDone;
        job->units_done += 1;
        const std::uint64_t now_us = obs::steady_now_us();
        for (std::string& row : unit_rows) {
          job->rows.push_back(std::move(row));
          job->row_publish_us.push_back(now_us);
        }
        tenant.units_done += 1;
        tenant.rows += unit_rows.size();
        if (claimed_us != 0) tenant.unit_service_us.observe(service_us);
        if (job->units_done == job->units_total && !job->terminal()) {
          job->state = Job::State::Done;
          job_completed = true;
        }
        // Quota check at the only safe boundary: a completed unit. The
        // store can overshoot by at most the in-flight units' growth.
        if (!tenant.draining &&
            tenant.session->chain_store_counters().bytes > tenant.quota.chain_store_bytes) {
          tenant.draining = true;
          if (obs::Tracer::instance().active()) {
            obs::Tracer::instance().emit(
                "serve_drain_start",
                {{"tenant", tenant.name},
                 {"chain_store_bytes",
                  static_cast<unsigned long long>(
                      tenant.session->chain_store_counters().bytes)}});
          }
        }
        finalize_if_drained(*job);
        update_fleet_gauges();
        rows_cv_.notify_all();
        work_cv_.notify_all();
        published = true;
      }
      if (published && obs::Tracer::instance().active()) {
        // Outside mu_: the tracer's file write must not stall the fleet.
        obs::Tracer::instance().emit(
            "serve_unit", {{"job", job->id},
                           {"tenant", job->tenant},
                           {"unit", static_cast<unsigned long long>(unit)},
                           {"us", static_cast<unsigned long long>(service_us)}});
      }
    }

    // Job completion is a quiesce point of the persistent store (DESIGN.md
    // §14): persist what this sweep interned while it is all still hot.
    // Outside every lock — the flush serializes internally and snapshots
    // entries other tenants' units may still be appending to.
    if (job_completed) tenant.session->flush_store();

    if (!published) {
      std::lock_guard<std::mutex> lock(mu_);
      job->inflight -= 1;
      tenant.inflight -= 1;
      busy_workers_ -= 1;
      if (!job->terminal()) {
        job->state = Job::State::Failed;
        job->error = error;
      }
      job->unit_state[unit] = Job::kPending;  // dropped, not committed
      job->next_scan = std::min(job->next_scan, unit);
      finalize_if_drained(*job);
      update_fleet_gauges();
      rows_cv_.notify_all();
      work_cv_.notify_all();
    }
  }
}

// ---------------------------------------------------------------- requests ----

std::string Server::spec_gate_error(const api::ExperimentSpec& spec) const {
  // Session-level knobs a per-job spec cannot change (DESIGN.md §11):
  // reject loudly rather than silently diverge from what would run. Shared
  // by submit and lease — a shard enforces the same gates a front door
  // would, so a coordinator/shard eps mismatch fails fast instead of
  // merging bit-divergent rows.
  if (spec.options.eps != options_.eps) {
    return "spec.options.eps: must equal the daemon's session eps (" +
           std::to_string(options_.eps) + ")";
  }
  if (!spec.options.shared_chain_stats) {
    return "spec.options.shared_chain_stats: the daemon always shares the tenant "
           "session's chain store";
  }
  if (spec.options.record_trace) {
    return "spec.options.record_trace: activity traces are not streamable over the "
           "serve protocol";
  }
  return {};
}

std::string Server::handle_submit(const json::Value& req) {
  const json::Value* tenant_v = req.find("tenant");
  if (tenant_v == nullptr || !tenant_v->is_string() ||
      !valid_identifier(tenant_v->as_string())) {
    return error_line("tenant: required, [A-Za-z0-9._-]{1,64}, no leading dot");
  }
  const std::string tenant_name = tenant_v->as_string();

  const json::Value* spec_v = req.find("spec");
  if (spec_v == nullptr) return error_line("spec: required");
  api::ExperimentSpec spec;
  try {
    spec = api::spec_from_json(*spec_v);
    spec.validate();
  } catch (const std::invalid_argument& e) {
    return error_line(e.what());
  }
  if (std::string gate = spec_gate_error(spec); !gate.empty()) return error_line(gate);

  std::string job_id;
  if (const json::Value* job_v = req.find("job"); job_v != nullptr) {
    if (!job_v->is_string() || !valid_identifier(job_v->as_string())) {
      return error_line("job: [A-Za-z0-9._-]{1,64}, no leading dot");
    }
    job_id = job_v->as_string();
  }
  {
    // Reserve the id before dropping mu_ so two racing submits with the same
    // explicit name can't both pass the existence check. The on-disk check
    // covers directories that exist but never loaded (corrupt manifest, or
    // orphaned units/rows files): reusing one would merge its stale
    // committed units into the new job at the next restart.
    std::lock_guard<std::mutex> lock(mu_);
    if (job_id.empty()) {
      do {
        job_id = "job-" + std::to_string(next_job_number_++);
      } while (jobs_.count(job_id) != 0 || reserved_ids_.count(job_id) != 0 ||
               JobCheckpoint::has_state(options_.root, job_id));
    } else if (jobs_.count(job_id) != 0 || reserved_ids_.count(job_id) != 0) {
      return error_line("job: '" + job_id + "' already exists");
    } else if (JobCheckpoint::has_state(options_.root, job_id)) {
      return error_line("job: '" + job_id + "' already exists on disk (unloaded " +
                        "checkpoint directory); remove it to reuse the id");
    }
    reserved_ids_.insert(job_id);
  }

  std::unique_ptr<JobCheckpoint> ckpt;
  try {
    ckpt = std::make_unique<JobCheckpoint>(options_.root, job_id);
    const json::Value manifest = json::Object{
        {"job", job_id}, {"tenant", tenant_name}, {"spec", api::spec_to_json(spec)}};
    ckpt->write_manifest(json::dump(manifest));
  } catch (const std::exception& e) {
    std::lock_guard<std::mutex> lock(mu_);
    reserved_ids_.erase(job_id);
    return error_line(std::string("checkpoint: ") + e.what());
  }

  register_job(job_id, tenant_name, std::move(spec), std::move(ckpt), /*fresh=*/true);

  std::lock_guard<std::mutex> lock(mu_);
  const Job& job = *jobs_[job_id];
  return json::dump(json::Object{
      {"ok", true},
      {"type", "submitted"},
      {"job", job.id},
      {"tenant", job.tenant},
      {"units", static_cast<unsigned long long>(job.units_total)},
      {"rows_expected",
       static_cast<unsigned long long>(job.units_total * job.heuristics.size())},
  });
}

std::string Server::status_line(const Job& job) const {
  return json::dump(json::Object{
      {"ok", true},
      {"type", "status"},
      {"job", job.id},
      {"tenant", job.tenant},
      {"state", job.state_name()},
      {"units_total", static_cast<unsigned long long>(job.units_total)},
      {"units_done", static_cast<unsigned long long>(job.units_done)},
      {"rows", static_cast<unsigned long long>(job.rows.size())},
      {"rows_expected",
       static_cast<unsigned long long>(job.units_total * job.heuristics.size())},
      {"error", job.error},
  });
}

std::string Server::handle_status(const json::Value& req) {
  const json::Value* job_v = req.find("job");
  if (job_v == nullptr || !job_v->is_string()) return error_line("job: required");
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_v->as_string());
  if (it == jobs_.end()) return error_line("job: unknown job '" + job_v->as_string() + "'");
  return status_line(*it->second);
}

std::string Server::handle_cancel(const json::Value& req) {
  const json::Value* job_v = req.find("job");
  if (job_v == nullptr || !job_v->is_string()) return error_line("job: required");
  std::shared_ptr<Job> job;
  bool applied = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(job_v->as_string());
    if (it == jobs_.end()) {
      return error_line("job: unknown job '" + job_v->as_string() + "'");
    }
    job = it->second;
    if (!job->terminal() && !job->cancel_requested) {
      job->cancel_requested = true;
      applied = true;
      finalize_if_drained(*job);
      update_fleet_gauges();  // the job's pending units left the queue
      work_cv_.notify_all();
    }
  }
  // Persist the cancellation outside mu_ (filesystem touch). Only when the
  // cancel actually applied: marking an already-done job would flip its
  // post-restart state.
  if (applied) {
    std::lock_guard<std::mutex> io_lock(job->io_mutex);
    try {
      job->ckpt->mark_cancelled();
    } catch (const std::exception&) {
      // Worst case an un-persisted cancel re-queues after a restart;
      // in-memory state is already cancelled.
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  return status_line(*job);
}

std::string Server::handle_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object tenants;
  for (const auto& [name, tenant] : tenants_) {
    const auto store = tenant->session->chain_store_counters();
    json::Object tenant_obj{
            {"jobs", static_cast<unsigned long long>(tenant->jobs)},
            {"units_done", static_cast<unsigned long long>(tenant->units_done)},
            {"rows", static_cast<unsigned long long>(tenant->rows)},
            {"inflight", static_cast<unsigned long long>(tenant->inflight)},
            {"draining", tenant->draining},
            {"evictions", static_cast<unsigned long long>(tenant->evictions)},
            {"quota",
             json::Object{
                 {"realization_budget",
                  static_cast<unsigned long long>(tenant->quota.realization_budget)},
                 {"chain_store_bytes",
                  static_cast<unsigned long long>(tenant->quota.chain_store_bytes)},
             }},
            {"chain_store",
             json::Object{
                 {"chains", static_cast<unsigned long long>(store.chains)},
                 {"intern_hits", static_cast<unsigned long long>(store.intern_hits)},
                 {"set_entries", static_cast<unsigned long long>(store.set_entries)},
                 {"set_hits", static_cast<unsigned long long>(store.set_hits)},
                 {"set_misses", static_cast<unsigned long long>(store.set_misses)},
                 {"survival_entries",
                  static_cast<unsigned long long>(store.survival_entries)},
                 {"bytes", static_cast<unsigned long long>(store.bytes)},
             }},
        };
    if (tenant->session->persistent_store() != nullptr) {
      const auto p = tenant->session->persistent_store_counters();
      tenant_obj.emplace_back(
          "persistent",
          json::Object{
              {"generations", static_cast<unsigned long long>(p.generations)},
              {"mapped_bytes", static_cast<unsigned long long>(p.mapped_bytes)},
              {"chains", static_cast<unsigned long long>(p.chains)},
              {"sets", static_cast<unsigned long long>(p.sets)},
              {"chain_hits", static_cast<unsigned long long>(p.chain_hits)},
              {"chain_misses", static_cast<unsigned long long>(p.chain_misses)},
              {"set_hits", static_cast<unsigned long long>(p.set_hits)},
              {"set_misses", static_cast<unsigned long long>(p.set_misses)},
              {"skipped_generations",
               static_cast<unsigned long long>(p.skipped_generations)},
              {"flushed_entries",
               static_cast<unsigned long long>(p.flushed_entries)},
          });
    }
    tenants.emplace_back(name, std::move(tenant_obj));
  }
  const FleetState fs = fleet_state();
  json::Object response{
      {"ok", true},
      {"type", "counters"},
      {"threads", static_cast<unsigned long long>(workers_.size())},
      {"jobs", static_cast<unsigned long long>(jobs_.size())},
      {"fleet",
       json::Object{
           {"queue_depth", static_cast<unsigned long long>(fs.queue_depth)},
           {"inflight_units", static_cast<unsigned long long>(fs.inflight_units)},
           {"busy_workers", static_cast<unsigned long long>(fs.busy_workers)},
       }},
      {"tenants", std::move(tenants)},
  };
  if (shard_fleet_ != nullptr) {
    // Lock order: ShardFleet never calls back into the server while holding
    // its own mutex, so mu_ -> fleet mu_ here cannot invert anywhere.
    const ShardFleet::Counters c = shard_fleet_->counters();
    response.emplace_back(
        "coordinator",
        json::Object{
            {"shards", static_cast<unsigned long long>(c.shards)},
            {"live_shards", static_cast<unsigned long long>(c.live_shards)},
            {"leased_units", static_cast<unsigned long long>(c.leased_units)},
            {"stolen_units", static_cast<unsigned long long>(c.stolen_units)},
            {"redispatched_units",
             static_cast<unsigned long long>(c.redispatched_units)},
            {"duplicate_commits",
             static_cast<unsigned long long>(c.duplicate_commits)},
        });
  }
  return json::dump(std::move(response));
}

std::string Server::handle_metrics(const json::Value& req) {
  std::string format = "json";
  if (const json::Value* format_v = req.find("format"); format_v != nullptr) {
    if (!format_v->is_string()) {
      return error_line("format: expected \"json\" or \"prometheus\"");
    }
    format = format_v->as_string();
  }
  if (format != "json" && format != "prometheus") {
    return error_line("format: expected \"json\" or \"prometheus\"");
  }
  {
    // Gauges are refreshed at dispatch/publish transitions; refresh once
    // more here so an idle daemon's scrape still reads current depths.
    std::lock_guard<std::mutex> lock(mu_);
    update_fleet_gauges();
  }
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  json::Object response{
      {"ok", true}, {"type", "metrics"}, {"enabled", obs::enabled()}, {"format", format}};
  if (format == "prometheus") {
    response.emplace_back("prometheus", snap.to_prometheus());
  } else {
    response.emplace_back("metrics", snap.to_json());
  }
  return json::dump(std::move(response));
}

void Server::handle_results(const json::Value& req, util::LineChannel& ch) {
  const json::Value* job_v = req.find("job");
  if (job_v == nullptr || !job_v->is_string()) {
    ch.write_line(error_line("job: required"));
    return;
  }
  std::size_t from = 0;
  if (const json::Value* from_v = req.find("from"); from_v != nullptr) {
    if (!from_v->is_integer()) {
      ch.write_line(error_line("from: expected a non-negative integer"));
      return;
    }
    from = static_cast<std::size_t>(from_v->as_uint());
  }
  bool wait = false;
  if (const json::Value* wait_v = req.find("wait"); wait_v != nullptr) {
    if (!wait_v->is_bool()) {
      ch.write_line(error_line("wait: expected a boolean"));
      return;
    }
    wait = wait_v->as_bool();
  }

  std::shared_ptr<Job> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(job_v->as_string());
    if (it == jobs_.end()) {
      ch.write_line(error_line("job: unknown job '" + job_v->as_string() + "'"));
      return;
    }
    job = it->second;
  }

  std::vector<std::string> batch;
  while (true) {
    batch.clear();
    std::string end;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (wait) {
        rows_cv_.wait(lock, [&] {
          return stopping_ || from < job->rows.size() || job->terminal();
        });
      }
      if (obs::enabled() && from < job->rows.size()) {
        // Stream latency: row publication to this reader popping it. One
        // clock read per batch; stamps and rows index 1:1 by construction.
        const std::uint64_t now_us = obs::steady_now_us();
        const std::size_t upto =
            std::min(job->rows.size(), from + (kResultsBatch - batch.size()));
        for (std::size_t i = from; i < upto && i < job->row_publish_us.size(); ++i) {
          job->stream_latency_us.observe(now_us - job->row_publish_us[i]);
        }
      }
      while (from < job->rows.size() && batch.size() < kResultsBatch) {
        batch.push_back(job->rows[from++]);
      }
      if (batch.empty() && (!wait || job->terminal() || stopping_)) {
        end = json::dump(json::Object{
            {"ok", true},
            {"type", "end"},
            {"job", job->id},
            {"state", job->state_name()},
            {"rows", static_cast<unsigned long long>(job->rows.size())},
        });
      }
    }
    // Socket writes stay outside the lock: a slow reader must not stall
    // the fleet or other connections.
    for (const std::string& row : batch) {
      if (!ch.write_line(row)) return;
    }
    if (!end.empty()) {
      ch.write_line(end);
      return;
    }
  }
}

// -------------------------------------------------------------- shard verbs ----

std::string Server::handle_register(const json::Value& req) {
  if (const json::Value* shard_v = req.find("shard"); shard_v != nullptr) {
    // Runtime shard registration — only a coordinator has a fleet to grow.
    if (!shard_v->is_string() || shard_v->as_string().empty()) {
      return error_line("shard: expected a non-empty address string");
    }
    if (shard_fleet_ == nullptr) {
      return error_line(
          "shard: this daemon is not a coordinator (start it with --coordinator)");
    }
    shard_fleet_->add_shard(shard_v->as_string());
    return json::dump(json::Object{
        {"ok", true}, {"type", "shard_registered"}, {"shard", shard_v->as_string()}});
  }
  // Plain handshake: what a coordinator needs to size and gate a shard.
  return json::dump(json::Object{
      {"ok", true},
      {"type", "registered"},
      {"threads", static_cast<unsigned long long>(workers_.size())},
      {"eps", options_.eps},
      {"coordinator", options_.coordinator},
  });
}

/// Everything handle_lease resolves once per (connection, job ref): the
/// validated spec and its derived execution state — the same fields a local
/// Job carries, minus checkpoint/dispatch bookkeeping (lease units are NOT
/// checkpointed here; durability lives in the coordinator's merge log).
struct Server::LeaseContext {
  std::string tenant;
  api::ExperimentSpec spec;
  api::Options options;  ///< spec.options with the tenant's quota clamp
  std::vector<platform::ScenarioParams> scenarios;
  std::vector<std::string> heuristics;
  std::shared_ptr<const scen::AvailabilityFamily> avail_family;
  std::shared_ptr<const scen::PlatformFamily> plat_family;
  std::size_t trials = 0;
  std::size_t units_total = 0;
};

void Server::handle_lease(const json::Value& req, util::LineChannel& ch,
                          LeaseCache& cache) {
  const json::Value* job_v = req.find("job");
  if (job_v == nullptr || !job_v->is_string() || job_v->as_string().empty()) {
    ch.write_line(error_line("job: required (opaque lease reference)"));
    return;
  }
  const std::string ref = job_v->as_string();
  const json::Value* tenant_v = req.find("tenant");
  if (tenant_v == nullptr || !tenant_v->is_string() ||
      !valid_identifier(tenant_v->as_string())) {
    ch.write_line(error_line("tenant: required, [A-Za-z0-9._-]{1,64}, no leading dot"));
    return;
  }
  const json::Value* units_v = req.find("units");
  if (units_v == nullptr || !units_v->is_array()) {
    ch.write_line(error_line("units: required array of unit ids"));
    return;
  }

  std::shared_ptr<LeaseContext> ctx;
  if (const auto it = cache.find(ref); it != cache.end()) ctx = it->second;
  if (ctx == nullptr) {
    const json::Value* spec_v = req.find("spec");
    if (spec_v == nullptr) {
      // Machine-readable cue: the coordinator resends with the spec
      // attached instead of string-matching the error.
      ch.write_line(json::dump(json::Object{
          {"ok", false},
          {"error", "spec: required for unknown lease reference '" + ref + "'"},
          {"need_spec", true}}));
      return;
    }
    auto fresh = std::make_shared<LeaseContext>();
    try {
      fresh->spec = api::spec_from_json(*spec_v);
      fresh->spec.validate();
    } catch (const std::invalid_argument& e) {
      ch.write_line(error_line(e.what()));
      return;
    }
    if (std::string gate = spec_gate_error(fresh->spec); !gate.empty()) {
      ch.write_line(error_line(gate));
      return;
    }
    fresh->tenant = tenant_v->as_string();
    fresh->scenarios = fresh->spec.scenarios();
    fresh->heuristics = fresh->spec.resolved_heuristics();
    fresh->avail_family = scen::availability_family(fresh->spec.scenario_space.availability);
    fresh->plat_family = scen::platform_family(fresh->spec.scenario_space.platform);
    fresh->trials = static_cast<std::size_t>(fresh->spec.trials);
    fresh->units_total = fresh->scenarios.size() * fresh->trials;
    fresh->options = fresh->spec.options;
    {
      // The tenant's realization-budget quota clamps lease work exactly as
      // it clamps locally submitted jobs.
      std::lock_guard<std::mutex> lock(mu_);
      Tenant& tenant = tenant_for(fresh->tenant);
      fresh->options.realization_budget =
          std::min(fresh->options.realization_budget, tenant.quota.realization_budget);
    }
    cache.emplace(ref, fresh);
    ctx = std::move(fresh);
  }

  std::vector<std::size_t> units;
  units.reserve(units_v->as_array().size());
  for (const json::Value& u : units_v->as_array()) {
    if (!u.is_integer() || u.as_uint() >= ctx->units_total) {
      ch.write_line(error_line("units: unit id out of range for the lease spec"));
      return;
    }
    units.push_back(static_cast<std::size_t>(u.as_uint()));
  }

  // Execute on THIS handler thread: the coordinator opens one connection
  // per lease slot, so a shard's parallelism equals the slot count and the
  // per-thread estimator caches stay warm per slot (DESIGN.md §15).
  for (std::size_t unit : units) {
    Tenant* tenant = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopping_) return;
      tenant = &tenant_for(tenant_v->as_string());
      // Quota DRAINING gate, same boundary as claim_unit: clear_caches is
      // safe only with nothing of this tenant running, and tenant.inflight
      // counts lease units too.
      work_cv_.wait(lock, [&] { return stopping_ || evict_if_drained(*tenant); });
      if (stopping_) return;
      tenant->inflight += 1;
    }
    const std::size_t sc = api::unit_scenario(unit, ctx->trials);
    const int trial = static_cast<int>(api::unit_trial(unit, ctx->trials));
    std::vector<std::string> unit_rows;
    bool failed = false;
    std::string error;
    try {
      const std::vector<sim::SimulationResult> results = tenant->session->run_unit(
          ctx->options, *ctx->avail_family, ctx->plat_family, ctx->scenarios[sc],
          ctx->heuristics, trial);
      unit_rows.reserve(results.size());
      for (std::size_t h = 0; h < results.size(); ++h) {
        unit_rows.push_back(row_line(sc, trial, h, ctx->heuristics[h],
                                     ctx->spec.scenario_space.availability,
                                     ctx->scenarios[sc], results[h]));
      }
    } catch (const std::exception& e) {
      failed = true;
      error = e.what();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      tenant->inflight -= 1;
      if (!failed) {
        tenant->units_done += 1;
        tenant->rows += unit_rows.size();
        // Quota check at the completed-unit boundary, like the local fleet.
        if (!tenant->draining && tenant->session->chain_store_counters().bytes >
                                     tenant->quota.chain_store_bytes) {
          tenant->draining = true;
          if (obs::Tracer::instance().active()) {
            obs::Tracer::instance().emit(
                "serve_drain_start",
                {{"tenant", tenant->name},
                 {"chain_store_bytes",
                  static_cast<unsigned long long>(
                      tenant->session->chain_store_counters().bytes)}});
          }
        }
      }
      work_cv_.notify_all();
    }
    if (failed) {
      ch.write_line(json::dump(json::Object{{"ok", false},
                                            {"type", "unit_failed"},
                                            {"unit", static_cast<unsigned long long>(unit)},
                                            {"error", error}}));
      return;
    }
    // Unit header + raw row lines (row_line bytes, never JSON-escaped).
    std::string header = "{\"ok\":true,\"type\":\"unit\",\"unit\":";
    header += std::to_string(unit);
    header += ",\"rows\":";
    header += std::to_string(unit_rows.size());
    header += '}';
    if (!ch.write_line(header)) return;  // coordinator gone; rows re-run elsewhere
    for (const std::string& row : unit_rows) {
      if (!ch.write_line(row)) return;
    }
  }
  ch.write_line(json::dump(json::Object{
      {"ok", true},
      {"type", "lease_done"},
      {"units", static_cast<unsigned long long>(units.size())}}));
}

void Server::serve_connection(int fd) {
  util::LineChannel ch(fd);
  LeaseCache lease_cache;
  std::string line;
  while (ch.read_line(line)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    json::Value req;
    try {
      req = json::parse(line);
      if (!req.is_object()) throw std::invalid_argument("request must be a JSON object");
    } catch (const std::invalid_argument& e) {
      if (!ch.write_line(error_line(e.what()))) return;
      continue;
    }
    const json::Value* op = req.find("op");
    if (op == nullptr || !op->is_string()) {
      if (!ch.write_line(error_line("op: required"))) return;
      continue;
    }
    const std::string& name = op->as_string();
    if (name == "results") {
      handle_results(req, ch);
      continue;
    }
    if (name == "lease") {
      handle_lease(req, ch, lease_cache);
      continue;
    }
    std::string response;
    if (name == "submit") response = handle_submit(req);
    else if (name == "status") response = handle_status(req);
    else if (name == "cancel") response = handle_cancel(req);
    else if (name == "counters") response = handle_counters();
    else if (name == "metrics") response = handle_metrics(req);
    else if (name == "register") response = handle_register(req);
    else if (name == "heartbeat")
      response = json::dump(json::Object{{"ok", true}, {"type", "pong"}});
    else response = error_line("op: unknown op '" + name + "'");
    if (!ch.write_line(response)) return;
  }
}

void Server::serve(int listen_fd) {
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    ++active_acceptors_;
  }
  while (true) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) break;
    }
    pollfd pfd{listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc <= 0) continue;  // timeout (re-check stop) or EINTR
    util::Fd conn = util::accept_connection(listen_fd);
    if (!conn.valid()) continue;
    const int raw = conn.release();
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.insert(raw);
      ++active_conns_;
    }
    {
      // Close the accept/stop race: a connection registered after
      // hard_stop()'s shutdown pass over conn_fds_ would otherwise park its
      // handler in recv forever, and the stop's drain-wait with it.
      // stopping_ is set before that pass, so re-checking here after the
      // insert guarantees one of the two shutdowns reaches every fd.
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) ::shutdown(raw, SHUT_RDWR);
    }
    // Detached: finished handlers reap themselves (an ever-growing join
    // list would leak thread handles over a daemon's life). The final
    // decrement + notify under conn_mu_ is the handler's last touch of the
    // server, so hard_stop()'s drain-wait is a safe teardown barrier.
    std::thread([this, raw] {
      serve_connection(raw);
      std::lock_guard<std::mutex> lock(conn_mu_);
      conn_fds_.erase(raw);
      ::close(raw);
      --active_conns_;
      conn_cv_.notify_all();
    }).detach();
  }
  // A just-accepted connection is registered in active_conns_ before this
  // decrement, so once the acceptor count drains there are no connections
  // hard_stop()'s wait cannot see.
  std::lock_guard<std::mutex> lock(conn_mu_);
  --active_acceptors_;
  conn_cv_.notify_all();
}

void Server::hard_stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped by an explicit call; the destructor re-enters here.
      return;
    }
    stopping_ = true;
  }
  work_cv_.notify_all();
  rows_cv_.notify_all();
  // Fleet first: slot threads blocked on work_cv_ wake on stopping_; the
  // ones blocked in shard I/O are unblocked by the fleet's fd shutdowns.
  if (shard_fleet_) shard_fleet_->stop();
  {
    // Unblock connection handlers parked in read_line / streaming writes.
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : workers_) t.join();
  // Acceptors too: one may hold an accepted-but-unregistered connection
  // active_conns_ does not count yet. They exit within one poll timeout of
  // stopping_ (and register any such connection first), after which the
  // handler drain below is airtight.
  std::unique_lock<std::mutex> lock(conn_mu_);
  conn_cv_.wait(lock, [&] { return active_conns_ == 0 && active_acceptors_ == 0; });
}

// ----------------------------------------------------------- introspection ----

std::optional<JobStatus> Server::job_status(const std::string& job_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  const Job& job = *it->second;
  JobStatus s;
  s.job = job.id;
  s.tenant = job.tenant;
  s.state = job.state_name();
  s.error = job.error;
  s.units_total = job.units_total;
  s.units_done = job.units_done;
  s.rows = job.rows.size();
  s.rows_expected = job.units_total * job.heuristics.size();
  return s;
}

std::optional<JobStatus> Server::wait_job(const std::string& job_id) {
  std::shared_ptr<Job> job;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) return std::nullopt;
    job = it->second;
    rows_cv_.wait(lock, [&] { return stopping_ || job->terminal(); });
    if (!job->terminal()) return std::nullopt;
  }
  return job_status(job_id);
}

void Server::wait_units(const std::string& job_id, std::size_t at_least) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return;
  const std::shared_ptr<Job> job = it->second;
  rows_cv_.wait(lock, [&] {
    return stopping_ || job->terminal() || job->units_done >= at_least;
  });
}

std::size_t Server::tenant_evictions(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->evictions;
}

}  // namespace tcgrid::serve
