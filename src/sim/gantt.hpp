// ASCII rendering of an activity trace, in the style of the paper's
// Figure 1: one row per processor, one column per time slot.
#pragma once

#include <string>

#include "sim/events.hpp"

namespace tcgrid::sim {

/// Render slots [from, to) of the trace (to < 0 means "to the end").
///
/// Cell legend:  P program transfer, D data transfer, C computing,
///               I enrolled but idle, . un-enrolled UP, ~ RECLAIMED, # DOWN.
[[nodiscard]] std::string render_gantt(const ActivityTrace& trace, long from = 0,
                                       long to = -1);

/// The legend string printed by examples alongside the chart.
[[nodiscard]] std::string gantt_legend();

}  // namespace tcgrid::sim
