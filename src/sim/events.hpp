// Optional per-slot activity recording, for the ASCII Gantt (Figure 1) and
// for white-box assertions in tests.
#pragma once

#include <vector>

#include "markov/state.hpp"

namespace tcgrid::sim {

/// What a processor did during one slot (mirrors Figure 1's legend).
enum class Action : char {
  None = ' ',     ///< not enrolled
  Idle = 'I',     ///< enrolled, waiting (bandwidth or phase barrier)
  Program = 'P',  ///< receiving the application program
  Data = 'D',     ///< receiving task data
  Compute = 'C',  ///< computing (all enrolled workers simultaneously UP)
};

/// One processor-slot cell.
struct Cell {
  markov::State state = markov::State::Up;
  Action action = Action::None;
};

/// Row-per-slot activity matrix: trace[t][q].
using ActivityTrace = std::vector<std::vector<Cell>>;

}  // namespace tcgrid::sim
