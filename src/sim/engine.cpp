#include "sim/engine.hpp"

#include <algorithm>
#include <stdexcept>

namespace tcgrid::sim {

Engine::Engine(const platform::Platform& platform, const model::Application& app,
               platform::AvailabilitySource& availability, Scheduler& scheduler,
               EngineOptions options)
    : platform_(platform),
      app_(app),
      availability_(availability),
      scheduler_(scheduler),
      options_(options) {
  app_.validate();
  if (availability_.size() != platform_.size()) {
    throw std::invalid_argument("Engine: availability/platform size mismatch");
  }
  if (options_.slot_cap < 1) throw std::invalid_argument("Engine: slot_cap < 1");
  if (options_.avail_block < 1) throw std::invalid_argument("Engine: avail_block < 1");
  // A block never needs to exceed the run length: clamping bounds the buffer
  // (and the prefetch overshoot) by slot_cap however large the option is.
  block_slots_ = std::min(options_.avail_block, options_.slot_cap);
  const auto p = static_cast<std::size_t>(platform_.size());
  states_.resize(p);
  holdings_.resize(p);
  actions_.resize(p);
  comm_remaining_buf_.resize(p);
  block_.resize(p * static_cast<std::size_t>(block_slots_));
}

SimulationResult Engine::run() {
  result_ = {};
  current_iter_ = {};
  trace_.clear();
  iteration_start_ = 0;

  block_pos_ = block_filled_ = 0;  // (re-)pull from the source's current slot

  for (slot_ = 0; slot_ < options_.slot_cap && !finished_; ++slot_) {
    refresh_states();
    std::fill(actions_.begin(), actions_.end(), Action::None);

    process_downs();
    consult_scheduler();

    if (!config_.empty()) {
      if (!comm_phase_done()) serve_communications();
      else advance_computation();
    } else {
      ++result_.idle_slots;
    }
    record_slot();
  }

  result_.iterations_completed = iterations_done_;
  result_.success = finished_;
  result_.makespan = finished_ ? slot_ : options_.slot_cap;
  return result_;
}

void Engine::refresh_states() {
  // Availability is consumed through the block-stepping contract: one
  // fill_block call (which also advances the source) per avail_block slots,
  // then a bulk row copy per slot — no per-processor virtual dispatch.
  if (block_pos_ == block_filled_) {
    availability_.fill_block(block_.data(), block_slots_);
    block_filled_ = block_slots_;
    block_pos_ = 0;
  }
  const std::size_t p = states_.size();
  std::copy_n(block_.data() + static_cast<std::size_t>(block_pos_) * p, p,
              states_.data());
  ++block_pos_;
}

void Engine::process_downs() {
  // DOWN loses everything, enrolled or not (paper §III-B).
  for (std::size_t q = 0; q < states_.size(); ++q) {
    if (states_[q] == markov::State::Down) holdings_[q].crash();
  }
  if (!config_.empty() && any_enrolled_down()) {
    // Tight coupling: the whole iteration's computation is lost and a new
    // configuration must be selected (paper §III-C).
    ++current_iter_.restarts;
    ++result_.total_restarts;
    clear_config();
  }
}

void Engine::consult_scheduler() {
  build_view();
  auto decision = scheduler_.decide(view_);
  if (!decision.has_value() || decision->empty()) return;
  const model::Configuration& cfg = *decision;
  if (cfg == config_) return;  // proposing the unchanged config is a no-op

  // Validate the proposal: it is a logic error for a heuristic to enroll a
  // non-UP worker, exceed mu_q, or map a number of tasks != m.
  int total = 0;
  for (const auto& a : cfg.assignments()) {
    if (a.proc < 0 || a.proc >= platform_.size()) {
      throw std::logic_error("Engine: configuration names unknown processor");
    }
    if (states_[static_cast<std::size_t>(a.proc)] != markov::State::Up) {
      throw std::logic_error("Engine: configuration enrolls a non-UP worker");
    }
    if (a.tasks < 1 || a.tasks > platform_.proc(a.proc).max_tasks) {
      throw std::logic_error("Engine: task count violates mu_q");
    }
    for (const auto& b : cfg.assignments()) {
      if (&a != &b && a.proc == b.proc) {
        throw std::logic_error("Engine: duplicate worker in configuration");
      }
    }
    total += a.tasks;
  }
  if (total != app_.num_tasks) {
    throw std::logic_error("Engine: configuration does not map exactly m tasks");
  }
  install(cfg);
}

void Engine::install(const model::Configuration& cfg) {
  const bool had_config = !config_.empty();
  if (had_config) {
    // Voluntary (proactive) switch: any partially completed computation is
    // lost.
    ++current_iter_.reconfigurations;
    ++result_.total_reconfigurations;
  }
  config_ = cfg;
  // A worker not (re-)enrolled in the new configuration loses its task data
  // and any in-flight transfer — "any interrupted communication must be
  // resumed from scratch if the worker ... was removed from the
  // configuration", and a re-enrolled worker "needs to receive task data ...
  // even if Pq had been enrolled at time t' < t but was un-enrolled since
  // then" (§III-C). Only the program survives un-enrollment.
  for (int q = 0; q < platform_.size(); ++q) {
    if (config_.enrolled(q)) continue;
    auto& h = holdings_[static_cast<std::size_t>(q)];
    h.data_messages = 0;
    h.partial_slots = 0;
  }
  compute_total_ = config_.compute_slots(platform_.speeds());
  compute_done_ = 0;

  // Degenerate communication costs complete instantly.
  for (const auto& a : config_.assignments()) {
    auto& h = holdings_[static_cast<std::size_t>(a.proc)];
    if (app_.t_prog == 0) h.has_program = true;
    if (app_.t_data == 0) h.data_messages = std::max(h.data_messages, a.tasks);
  }
}

long Engine::comm_remaining(int q) const {
  const int x = config_.tasks_on(q);
  if (x == 0) return 0;
  const auto& h = holdings_[static_cast<std::size_t>(q)];
  long need = 0;
  if (!h.has_program && app_.t_prog > 0) need += app_.t_prog;
  need += static_cast<long>(std::max(0, x - h.data_messages)) * app_.t_data;
  return std::max(0L, need - h.partial_slots);
}

bool Engine::comm_phase_done() const {
  for (const auto& a : config_.assignments()) {
    if (comm_remaining(a.proc) > 0) return false;
  }
  return true;
}

bool Engine::all_enrolled_up() const {
  for (const auto& a : config_.assignments()) {
    if (states_[static_cast<std::size_t>(a.proc)] != markov::State::Up) return false;
  }
  return true;
}

bool Engine::any_enrolled_down() const {
  for (const auto& a : config_.assignments()) {
    if (states_[static_cast<std::size_t>(a.proc)] == markov::State::Down) return true;
  }
  return false;
}

void Engine::clear_config() {
  for (const auto& a : config_.assignments()) {
    holdings_[static_cast<std::size_t>(a.proc)].unenroll();
  }
  config_ = model::Configuration{};
  compute_total_ = 0;
  compute_done_ = 0;
}

void Engine::serve_communications() {
  // Candidates: enrolled UP workers with transfers pending, in enrollment
  // order; optionally re-ranked by remaining need (ablation policies).
  std::vector<int> pending;
  pending.reserve(config_.size());
  for (const auto& a : config_.assignments()) {
    const auto q = static_cast<std::size_t>(a.proc);
    if (states_[q] != markov::State::Up) continue;  // RECLAIMED: transfer pauses
    if (comm_remaining(a.proc) == 0) {
      actions_[q] = Action::Idle;  // done, waiting for the phase barrier
      continue;
    }
    pending.push_back(a.proc);
  }
  if (options_.comm_order == CommOrder::FewestFirst) {
    std::stable_sort(pending.begin(), pending.end(), [this](int x, int y) {
      return comm_remaining(x) < comm_remaining(y);
    });
  } else if (options_.comm_order == CommOrder::MostFirst) {
    std::stable_sort(pending.begin(), pending.end(), [this](int x, int y) {
      return comm_remaining(x) > comm_remaining(y);
    });
  }

  int served = 0;
  for (int proc : pending) {
    if (served >= platform_.ncom()) break;
    const auto q = static_cast<std::size_t>(proc);
    auto& h = holdings_[q];
    const bool program = !h.has_program && app_.t_prog > 0;
    actions_[q] = program ? Action::Program : Action::Data;
    ++h.partial_slots;
    const long len = program ? app_.t_prog : app_.t_data;
    if (h.partial_slots >= len) {
      h.partial_slots = 0;
      if (program) h.has_program = true;
      else ++h.data_messages;
    }
    ++served;
  }
  // Enrolled UP workers that were skipped for bandwidth are idle.
  for (const auto& a : config_.assignments()) {
    const auto q = static_cast<std::size_t>(a.proc);
    if (states_[q] == markov::State::Up && actions_[q] == Action::None) {
      actions_[q] = Action::Idle;
    }
  }
  if (served > 0) ++current_iter_.comm_slots;
}

void Engine::advance_computation() {
  if (all_enrolled_up()) {
    for (const auto& a : config_.assignments()) {
      actions_[static_cast<std::size_t>(a.proc)] = Action::Compute;
    }
    ++compute_done_;
    ++current_iter_.compute_slots;
    if (compute_done_ >= compute_total_) complete_iteration();
  } else {
    // At least one enrolled worker is RECLAIMED: everyone suspends.
    ++current_iter_.suspended_slots;
    for (const auto& a : config_.assignments()) {
      const auto q = static_cast<std::size_t>(a.proc);
      if (states_[q] == markov::State::Up) actions_[q] = Action::Idle;
    }
  }
}

void Engine::complete_iteration() {
  current_iter_.start_slot = iteration_start_;
  current_iter_.end_slot = slot_;
  result_.iterations.push_back(current_iter_);
  current_iter_ = {};
  ++iterations_done_;

  // Global synchronization: task data is per-iteration, the program persists.
  for (auto& h : holdings_) h.next_iteration();
  config_ = model::Configuration{};
  compute_total_ = 0;
  compute_done_ = 0;
  iteration_start_ = slot_ + 1;

  if (iterations_done_ >= app_.iterations) finished_ = true;
}

void Engine::build_view() {
  for (int q = 0; q < platform_.size(); ++q) {
    comm_remaining_buf_[static_cast<std::size_t>(q)] = comm_remaining(q);
  }
  view_.slot = slot_;
  view_.platform = &platform_;
  view_.app = &app_;
  view_.states = states_;
  view_.holdings = holdings_;
  view_.config = config_.empty() ? nullptr : &config_;
  view_.iteration_elapsed = slot_ - iteration_start_;
  view_.compute_total = compute_total_;
  view_.compute_done = compute_done_;
  view_.comm_remaining = comm_remaining_buf_;
}

void Engine::record_slot() {
  if (!options_.record_trace) return;
  std::vector<Cell> row(states_.size());
  for (std::size_t q = 0; q < states_.size(); ++q) {
    row[q] = Cell{states_[q], actions_[q]};
  }
  trace_.push_back(std::move(row));
}

}  // namespace tcgrid::sim
