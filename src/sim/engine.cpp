#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace tcgrid::sim {

namespace {

inline bool is_up(markov::State s) noexcept { return s == markov::State::Up; }

}  // namespace

Engine::Engine(const platform::Platform& platform, const model::Application& app,
               platform::AvailabilitySource& availability, Scheduler& scheduler,
               EngineOptions options)
    : platform_(platform),
      app_(app),
      availability_(availability),
      scheduler_(scheduler),
      options_(options) {
  app_.validate();
  if (availability_.size() != platform_.size()) {
    throw std::invalid_argument("Engine: availability/platform size mismatch");
  }
  if (options_.slot_cap < 1) throw std::invalid_argument("Engine: slot_cap < 1");
  if (options_.avail_block < 1) throw std::invalid_argument("Engine: avail_block < 1");
  // A block never needs to exceed the run length: clamping bounds the buffer
  // (and the prefetch overshoot) by slot_cap however large the option is.
  block_slots_ = std::min(options_.avail_block, options_.slot_cap);
  const auto p = static_cast<std::size_t>(platform_.size());
  holdings_.resize(p);
  actions_.resize(p);
  comm_remaining_buf_.resize(p);
  seen_mark_.resize(p, 0);
  block_.resize(p * static_cast<std::size_t>(block_slots_));
  states_ = std::span(block_.data(), p);  // re-pointed every slot
  if (options_.fast_forward) {
    const auto rows = static_cast<std::size_t>(block_slots_);
    digest_up_changed_.resize(rows);
    digest_up_gain_.resize(rows);
    digest_new_down_.resize(rows);
    prev_row_.resize(p);
  }
}

SimulationResult Engine::run() {
  result_ = {};
  current_iter_ = {};
  trace_.clear();
  iteration_start_ = 0;
  consults_ = 0;

  block_pos_ = block_filled_ = 0;  // (re-)pull from the source's current slot
  prev_row_valid_ = false;
  quiesce_ = nullptr;
  horizon_left_ = 0;
  decision_no_change_ = true;
  last_phase_ = Phase::Idle;

  slot_ = 0;
  while (slot_ < options_.slot_cap && !finished_) {
    step_slot();
    if (options_.fast_forward && !finished_) fast_forward();
  }

  result_.iterations_completed = iterations_done_;
  result_.success = finished_;
  result_.makespan = finished_ ? slot_ : options_.slot_cap;
  return result_;
}

void Engine::step_slot() {
  refresh_states();
  // Action annotations only feed the trace; when tracing is off every write
  // to actions_ below is skipped (each site checks record_trace).
  if (options_.record_trace) std::fill(actions_.begin(), actions_.end(), Action::None);

  process_downs();
  if (consult_needed()) consult_scheduler();

  if (!config_.empty()) {
    if (!comm_phase_done()) serve_communications();
    else advance_computation();
  } else {
    ++result_.idle_slots;
    last_phase_ = Phase::Idle;
  }
  record_slot();
  ++slot_;
}

void Engine::refill_block() {
  // Availability is consumed through the block-stepping contract: one
  // fill_block call (which also advances the source) per avail_block slots,
  // then row-wise consumption — no per-processor virtual dispatch.
  const std::size_t p = holdings_.size();
  if (options_.fast_forward && block_filled_ > 0) {
    // Keep the outgoing block's last row: the incoming block's first-row
    // digests are relative to it.
    std::copy_n(block_.data() + static_cast<std::size_t>(block_filled_ - 1) * p, p,
                prev_row_.data());
    prev_row_valid_ = true;
  }
  availability_.fill_block(block_.data(), block_slots_);
  block_filled_ = block_slots_;
  block_pos_ = 0;

  if (!options_.fast_forward) return;
  // One pass over the dense [slot][proc] buffer: per-row digests of how the
  // row differs from its predecessor. These are what lets the fast-forward
  // loop classify a whole run of slots without re-reading full rows.
  const markov::State* prev = prev_row_valid_ ? prev_row_.data() : nullptr;
  for (long r = 0; r < block_filled_; ++r) {
    const markov::State* row = block_.data() + static_cast<std::size_t>(r) * p;
    unsigned char chg = 0;
    unsigned char gain = 0;
    unsigned char ndown = 0;
    if (prev == nullptr) {
      chg = gain = ndown = 1;  // no predecessor: be conservative
    } else {
      for (std::size_t q = 0; q < p; ++q) {
        const bool was_up = is_up(prev[q]);
        const bool now_up = is_up(row[q]);
        chg |= static_cast<unsigned char>(was_up != now_up);
        gain |= static_cast<unsigned char>(!was_up && now_up);
        ndown |= static_cast<unsigned char>(row[q] == markov::State::Down &&
                                            prev[q] != markov::State::Down);
      }
    }
    digest_up_changed_[static_cast<std::size_t>(r)] = chg;
    digest_up_gain_[static_cast<std::size_t>(r)] = gain;
    digest_new_down_[static_cast<std::size_t>(r)] = ndown;
    prev = row;
  }
}

void Engine::refresh_states() {
  if (block_pos_ == block_filled_) refill_block();
  states_ = std::span(peek_row(), holdings_.size());
  digest_row_ = block_pos_;
  ++block_pos_;
}

void Engine::process_downs() {
  // Digest shortcut: with no processor NEWLY DOWN this slot, every DOWN
  // processor already crashed at its DOWN transition (crashes are idempotent
  // and a DOWN worker's holdings cannot change), and no enrolled worker can
  // be DOWN (a configuration only ever contains workers that were UP after
  // its install slot, so an enrolled DOWN is always a fresh transition).
  if (options_.fast_forward &&
      !digest_new_down_[static_cast<std::size_t>(digest_row_)]) {
    return;
  }
  // DOWN loses everything, enrolled or not (paper §III-B).
  for (std::size_t q = 0; q < states_.size(); ++q) {
    if (states_[q] == markov::State::Down) holdings_[q].crash();
  }
  if (!config_.empty() && any_enrolled_down()) {
    // Tight coupling: the whole iteration's computation is lost and a new
    // configuration must be selected (paper §III-C).
    ++current_iter_.restarts;
    ++result_.total_restarts;
    clear_config();
  }
}

bool Engine::consult_needed() const {
  // WhileConfigured: the scheduler guarantees "no change" (with no side
  // effects) for as long as the current configuration stays installed, so
  // the consult — view build included — is skipped wholesale. A restart or
  // iteration boundary clears config_ and re-enables consulting.
  return !(options_.fast_forward && !config_.empty() && quiesce_ != nullptr &&
           quiesce_->kind == Quiescence::Kind::WhileConfigured);
}

void Engine::consult_scheduler() {
  build_view();
  ++consults_;
  auto decision = scheduler_.decide(view_);
  quiesce_ = &scheduler_.quiescence();
  horizon_left_ = quiesce_->horizon;
  if (!decision.has_value() || decision->empty()) {
    decision_no_change_ = true;
    return;
  }
  const model::Configuration& cfg = *decision;
  if (cfg == config_) {  // proposing the unchanged config is a no-op
    decision_no_change_ = true;
    return;
  }
  decision_no_change_ = false;

  // Validate the proposal: it is a logic error for a heuristic to enroll a
  // non-UP worker, exceed mu_q, or map a number of tasks != m.
  ++seen_gen_;
  int total = 0;
  for (const auto& a : cfg.assignments()) {
    if (a.proc < 0 || a.proc >= platform_.size()) {
      throw std::logic_error("Engine: configuration names unknown processor");
    }
    if (states_[static_cast<std::size_t>(a.proc)] != markov::State::Up) {
      throw std::logic_error("Engine: configuration enrolls a non-UP worker");
    }
    if (a.tasks < 1 || a.tasks > platform_.proc(a.proc).max_tasks) {
      throw std::logic_error("Engine: task count violates mu_q");
    }
    auto& mark = seen_mark_[static_cast<std::size_t>(a.proc)];
    if (mark == seen_gen_) {
      throw std::logic_error("Engine: duplicate worker in configuration");
    }
    mark = seen_gen_;
    total += a.tasks;
  }
  if (total != app_.num_tasks) {
    throw std::logic_error("Engine: configuration does not map exactly m tasks");
  }
  install(cfg);
}

void Engine::install(const model::Configuration& cfg) {
  const bool had_config = !config_.empty();
  if (had_config) {
    // Voluntary (proactive) switch: any partially completed computation is
    // lost.
    ++current_iter_.reconfigurations;
    ++result_.total_reconfigurations;
  }
  config_ = cfg;
  // A worker not (re-)enrolled in the new configuration loses its task data
  // and any in-flight transfer — "any interrupted communication must be
  // resumed from scratch if the worker ... was removed from the
  // configuration", and a re-enrolled worker "needs to receive task data ...
  // even if Pq had been enrolled at time t' < t but was un-enrolled since
  // then" (§III-C). Only the program survives un-enrollment.
  for (int q = 0; q < platform_.size(); ++q) {
    if (config_.enrolled(q)) continue;
    auto& h = holdings_[static_cast<std::size_t>(q)];
    h.data_messages = 0;
    h.partial_slots = 0;
  }
  compute_total_ = config_.compute_slots(platform_.speeds());
  compute_done_ = 0;

  // Degenerate communication costs complete instantly.
  for (const auto& a : config_.assignments()) {
    auto& h = holdings_[static_cast<std::size_t>(a.proc)];
    if (app_.t_prog == 0) h.has_program = true;
    if (app_.t_data == 0) h.data_messages = std::max(h.data_messages, a.tasks);
  }
  reset_comm_remaining();
}

long Engine::comm_remaining(int q) const {
  const int x = config_.tasks_on(q);
  if (x == 0) return 0;
  const auto& h = holdings_[static_cast<std::size_t>(q)];
  long need = 0;
  if (!h.has_program && app_.t_prog > 0) need += app_.t_prog;
  need += static_cast<long>(std::max(0, x - h.data_messages)) * app_.t_data;
  return std::max(0L, need - h.partial_slots);
}

void Engine::reset_comm_remaining() {
  std::fill(comm_remaining_buf_.begin(), comm_remaining_buf_.end(), 0);
  for (const auto& a : config_.assignments()) {
    comm_remaining_buf_[static_cast<std::size_t>(a.proc)] = comm_remaining(a.proc);
  }
}

bool Engine::comm_phase_done() const {
  for (const auto& a : config_.assignments()) {
    if (comm_remaining_buf_[static_cast<std::size_t>(a.proc)] > 0) return false;
  }
  return true;
}

bool Engine::all_enrolled_up() const {
  for (const auto& a : config_.assignments()) {
    if (states_[static_cast<std::size_t>(a.proc)] != markov::State::Up) return false;
  }
  return true;
}

bool Engine::any_enrolled_down() const {
  for (const auto& a : config_.assignments()) {
    if (states_[static_cast<std::size_t>(a.proc)] == markov::State::Down) return true;
  }
  return false;
}

void Engine::clear_config() {
  for (const auto& a : config_.assignments()) {
    holdings_[static_cast<std::size_t>(a.proc)].unenroll();
  }
  config_ = model::Configuration{};
  compute_total_ = 0;
  compute_done_ = 0;
  std::fill(comm_remaining_buf_.begin(), comm_remaining_buf_.end(), 0);
}

void Engine::serve_communications() {
  // Candidates: enrolled UP workers with transfers pending, in enrollment
  // order; optionally re-ranked by remaining need (ablation policies).
  pending_.clear();
  for (const auto& a : config_.assignments()) {
    const auto q = static_cast<std::size_t>(a.proc);
    if (states_[q] != markov::State::Up) continue;  // RECLAIMED: transfer pauses
    if (comm_remaining_buf_[q] == 0) {
      if (options_.record_trace) {
        actions_[q] = Action::Idle;  // done, waiting for the phase barrier
      }
      continue;
    }
    pending_.push_back(a.proc);
  }
  if (options_.comm_order == CommOrder::FewestFirst) {
    std::stable_sort(pending_.begin(), pending_.end(), [this](int x, int y) {
      return comm_remaining_buf_[static_cast<std::size_t>(x)] <
             comm_remaining_buf_[static_cast<std::size_t>(y)];
    });
  } else if (options_.comm_order == CommOrder::MostFirst) {
    std::stable_sort(pending_.begin(), pending_.end(), [this](int x, int y) {
      return comm_remaining_buf_[static_cast<std::size_t>(x)] >
             comm_remaining_buf_[static_cast<std::size_t>(y)];
    });
  }

  int served = 0;
  for (int proc : pending_) {
    if (served >= platform_.ncom()) break;
    const auto q = static_cast<std::size_t>(proc);
    auto& h = holdings_[q];
    const bool program = !h.has_program && app_.t_prog > 0;
    if (options_.record_trace) actions_[q] = program ? Action::Program : Action::Data;
    ++h.partial_slots;
    const long len = program ? app_.t_prog : app_.t_data;
    if (h.partial_slots >= len) {
      h.partial_slots = 0;
      if (program) h.has_program = true;
      else ++h.data_messages;
    }
    // One served slot always reduces the worker's remaining need by exactly
    // one, message completion included (the completed message leaves the
    // "needed" sum as its partial credit resets).
    --comm_remaining_buf_[q];
    ++served;
  }
  // Enrolled UP workers that were skipped for bandwidth are idle.
  if (options_.record_trace) {
    for (const auto& a : config_.assignments()) {
      const auto q = static_cast<std::size_t>(a.proc);
      if (states_[q] == markov::State::Up && actions_[q] == Action::None) {
        actions_[q] = Action::Idle;
      }
    }
  }
  if (served > 0) {
    ++current_iter_.comm_slots;
    last_phase_ = Phase::Comm;
  } else {
    // Every pending worker was RECLAIMED: the slot progressed nothing.
    ++current_iter_.stalled_slots;
    last_phase_ = Phase::Stalled;
  }
}

void Engine::advance_computation() {
  if (all_enrolled_up()) {
    if (options_.record_trace) {
      for (const auto& a : config_.assignments()) {
        actions_[static_cast<std::size_t>(a.proc)] = Action::Compute;
      }
    }
    ++compute_done_;
    ++current_iter_.compute_slots;
    last_phase_ = Phase::Compute;
    if (compute_done_ >= compute_total_) {
      complete_iteration();
      last_phase_ = Phase::Completed;
    }
  } else {
    // At least one enrolled worker is RECLAIMED: everyone suspends.
    ++current_iter_.suspended_slots;
    last_phase_ = Phase::Suspended;
    if (options_.record_trace) {
      for (const auto& a : config_.assignments()) {
        const auto q = static_cast<std::size_t>(a.proc);
        if (states_[q] == markov::State::Up) actions_[q] = Action::Idle;
      }
    }
  }
}

void Engine::complete_iteration() {
  current_iter_.start_slot = iteration_start_;
  current_iter_.end_slot = slot_;
  result_.iterations.push_back(current_iter_);
  current_iter_ = {};
  ++iterations_done_;

  // Global synchronization: task data is per-iteration, the program persists.
  for (auto& h : holdings_) h.next_iteration();
  config_ = model::Configuration{};
  compute_total_ = 0;
  compute_done_ = 0;
  std::fill(comm_remaining_buf_.begin(), comm_remaining_buf_.end(), 0);
  iteration_start_ = slot_ + 1;

  if (iterations_done_ >= app_.iterations) finished_ = true;
}

void Engine::build_view() {
#ifndef NDEBUG
  // comm_remaining_buf_ is maintained incrementally (install, serve,
  // unenroll, iteration boundary); cross-check it against the from-scratch
  // computation in debug builds.
  for (int q = 0; q < platform_.size(); ++q) {
    assert(comm_remaining_buf_[static_cast<std::size_t>(q)] == comm_remaining(q) &&
           "Engine: incremental comm_remaining out of sync");
  }
#endif
  view_.slot = slot_;
  view_.platform = &platform_;
  view_.app = &app_;
  view_.states = states_;
  view_.holdings = holdings_;
  view_.config = config_.empty() ? nullptr : &config_;
  view_.iteration_elapsed = slot_ - iteration_start_;
  view_.compute_total = compute_total_;
  view_.compute_done = compute_done_;
  view_.comm_remaining = comm_remaining_buf_;
}

void Engine::record_slot() {
  if (!options_.record_trace) return;
  // Build the row in place: no temporary vector per slot.
  auto& row = trace_.emplace_back(states_.size());
  for (std::size_t q = 0; q < states_.size(); ++q) {
    row[q] = Cell{states_[q], actions_[q]};
  }
}

// --------------------------------------------------------------------------
// Event-horizon fast path (DESIGN.md §8). After a normally processed slot,
// bulk-advance the run of upcoming slots whose outcome is already
// determined: the engine-side state machine is advanced arithmetically and
// the scheduler is not consulted, which is sound exactly when the latched
// Quiescence report covers every skipped slot. Event slots — where either
// the engine-side outcome (restart, iteration completion, communication
// progress) or the scheduler's answer (UP-gain, watched membership change,
// horizon expiry) can change — fall back to the per-slot path.
// --------------------------------------------------------------------------

const markov::State* Engine::prev_of_peeked() const {
  if (block_pos_ > 0) return peek_row() - states_.size();
  assert(prev_row_valid_);
  return prev_row_.data();
}

bool Engine::watched_membership_changed(const markov::State* prev,
                                        const markov::State* row) const {
  for (int q : quiesce_->watched) {
    const auto qi = static_cast<std::size_t>(q);
    if (is_up(prev[qi]) != is_up(row[qi])) return true;
  }
  return false;
}

void Engine::crash_down_in_row(const markov::State* row) {
  // Aggregate application of process_downs over a skipped slot: crash() is
  // idempotent, and no holdings of a DOWN worker can change between its
  // first DOWN slot and the next processed slot, so crashing on newly-DOWN
  // rows only is equivalent to crashing every slot.
  for (std::size_t q = 0; q < holdings_.size(); ++q) {
    if (row[q] == markov::State::Down) holdings_[q].crash();
  }
}

void Engine::record_bulk_row(const markov::State* row, bool compute) {
  if (!options_.record_trace) return;
  auto& tr = trace_.emplace_back(holdings_.size());
  for (std::size_t q = 0; q < holdings_.size(); ++q) {
    tr[q] = Cell{row[q], Action::None};
  }
  for (const auto& a : config_.assignments()) {
    const auto q = static_cast<std::size_t>(a.proc);
    if (compute) {
      tr[q].action = Action::Compute;
    } else if (is_up(row[q])) {
      tr[q].action = Action::Idle;  // suspended: UP workers wait
    }
  }
}

void Engine::fast_forward() {
  if (quiesce_ == nullptr) return;
  const Quiescence::Kind kind = quiesce_->kind;
  if (kind == Quiescence::Kind::EverySlot) return;

  if (!config_.empty()) {
    if (last_phase_ == Phase::Comm || last_phase_ == Phase::Stalled) {
      // Comm-phase bulk advance, WhileConfigured only: under enrollment
      // order the served set is a pure function of (enrolled states, which
      // transfers are unfinished), so a run of slots with the same enrolled
      // states and no transfer finishing can be applied arithmetically.
      // Tracing needs per-slot action rows, and the re-ranked comm orders
      // re-sort by remaining need every slot: both fall back to per-slot.
      if (kind == Quiescence::Kind::WhileConfigured &&
          options_.comm_order == CommOrder::Enrollment && !options_.record_trace) {
        advance_comm_run();
      }
      return;
    }
    // Compute-phase bulk advance. Only valid when the just-processed slot
    // already was a compute/suspended slot: then the decision inputs
    // (holdings, comm progress) are unchanged since the consult. A comm
    // slot changes them, a completion slot cleared config_.
    if (last_phase_ != Phase::Compute && last_phase_ != Phase::Suspended) return;
    if (kind != Quiescence::Kind::WhileConfigured && !decision_no_change_) return;
    advance_configured_run(kind);
  } else {
    // Idle bulk advance: the scheduler just declined to build (no UP
    // capacity). WhileConfigured says nothing about the no-config case.
    if (last_phase_ != Phase::Idle || !decision_no_change_) return;
    if (kind == Quiescence::Kind::WhileConfigured) return;
    advance_idle_run(kind);
  }
}

void Engine::advance_configured_run(Quiescence::Kind kind) {
  const auto assigns = config_.assignments();
  while (slot_ < options_.slot_cap) {
    if (block_pos_ == block_filled_) refill_block();
    const auto pos = static_cast<std::size_t>(block_pos_);
    const markov::State* row = peek_row();

    // Scheduler events: the latched answer no longer covers the next slot.
    if (kind != Quiescence::Kind::WhileConfigured) {
      if (horizon_left_ <= 0) return;
      if (kind == Quiescence::Kind::UntilUpSetChanges) {
        if (digest_up_changed_[pos]) return;
      } else {  // UntilEvent
        if (digest_up_gain_[pos]) return;
        if (digest_up_changed_[pos] &&
            watched_membership_changed(prev_of_peeked(), row)) {
          return;
        }
      }
    }

    // Engine events: an enrolled worker going DOWN restarts the iteration
    // (and re-consults) — hand the row to the per-slot path untouched.
    bool any_down = false;
    bool all_up = true;
    for (const auto& a : assigns) {
      const markov::State s = row[static_cast<std::size_t>(a.proc)];
      if (s == markov::State::Down) {
        any_down = true;
        break;
      }
      if (s != markov::State::Up) all_up = false;
    }
    if (any_down) return;

    // Consume the row: one compute or suspended slot, bookkept exactly as
    // the per-slot path would.
    if (digest_new_down_[pos]) crash_down_in_row(row);  // un-enrolled DOWNs
    ++block_pos_;
    record_bulk_row(row, all_up);
    if (all_up) {
      ++compute_done_;
      ++current_iter_.compute_slots;
      if (compute_done_ >= compute_total_) {
        complete_iteration();  // uses slot_ as the iteration's end slot
        ++slot_;
        return;
      }
    } else {
      ++current_iter_.suspended_slots;
    }
    ++slot_;
    if (kind != Quiescence::Kind::WhileConfigured) --horizon_left_;
  }
}

void Engine::apply_comm_progress(std::size_t q, long slots) {
  // Replays `slots` consecutive served slots for one worker in O(messages
  // completed): the per-slot reference is ++partial_slots, complete the
  // message when partial_slots reaches its length, and one remaining slot
  // retired per served slot.
  auto& h = holdings_[q];
  comm_remaining_buf_[q] -= slots;
  while (slots > 0) {
    const bool program = !h.has_program && app_.t_prog > 0;
    const long len = program ? app_.t_prog : app_.t_data;
    const long need = len - h.partial_slots;
    if (slots >= need) {
      h.partial_slots = 0;
      if (program) h.has_program = true;
      else ++h.data_messages;
      slots -= need;
    } else {
      h.partial_slots += slots;
      slots = 0;
    }
  }
}

void Engine::advance_comm_run() {
  // The just-processed slot may have finished the last transfer; the next
  // slot then belongs to the compute phase, not to a comm run.
  if (comm_phase_done()) return;
  const auto assigns = config_.assignments();
  // The reference pattern: the enrolled states of the just-processed slot.
  // Copied out of block_ because a refill during the run overwrites it.
  comm_ref_.assign(assigns.size(), markov::State::Up);
  for (std::size_t i = 0; i < assigns.size(); ++i) {
    comm_ref_[i] = states_[static_cast<std::size_t>(assigns[i].proc)];
  }

  // Who gets served while the pattern holds (first ncom pending workers in
  // enrollment order), and for how many slots the pattern can hold: until
  // some served transfer finishes (the served set then changes), an
  // enrolled state changes, or the cap.
  pending_.clear();
  long serveable = 0;
  long finish_horizon = std::numeric_limits<long>::max();
  for (std::size_t i = 0; i < assigns.size(); ++i) {
    if (comm_ref_[i] != markov::State::Up) continue;
    const auto q = static_cast<std::size_t>(assigns[i].proc);
    if (comm_remaining_buf_[q] == 0) continue;
    if (serveable < platform_.ncom()) {
      pending_.push_back(assigns[i].proc);
      finish_horizon = std::min(finish_horizon, comm_remaining_buf_[q]);
      ++serveable;
    }
  }

  long run = 0;
  while (slot_ < options_.slot_cap && run < finish_horizon) {
    if (block_pos_ == block_filled_) refill_block();
    const markov::State* row = peek_row();
    bool pattern_holds = true;
    for (std::size_t i = 0; i < assigns.size(); ++i) {
      if (row[static_cast<std::size_t>(assigns[i].proc)] != comm_ref_[i]) {
        pattern_holds = false;
        break;
      }
    }
    if (!pattern_holds) break;
    if (digest_new_down_[static_cast<std::size_t>(block_pos_)]) {
      crash_down_in_row(row);  // un-enrolled only: enrolled states match the
                               // reference, which had no DOWN worker
    }
    ++block_pos_;
    ++slot_;
    ++run;
  }
  if (run == 0) return;
  if (pending_.empty()) {
    // Every unfinished transfer is paused on a RECLAIMED worker.
    current_iter_.stalled_slots += run;
  } else {
    current_iter_.comm_slots += run;
    for (int proc : pending_) {
      apply_comm_progress(static_cast<std::size_t>(proc), run);
    }
  }
}

void Engine::advance_idle_run(Quiescence::Kind kind) {
  while (slot_ < options_.slot_cap) {
    if (block_pos_ == block_filled_) refill_block();
    const auto pos = static_cast<std::size_t>(block_pos_);

    if (horizon_left_ <= 0) return;
    const markov::State* row = peek_row();
    if (kind == Quiescence::Kind::UntilUpSetChanges) {
      if (digest_up_changed_[pos]) return;
    } else {  // UntilEvent: a worker joining, or a watched worker changing
      if (digest_up_gain_[pos]) return;
      if (digest_up_changed_[pos] &&
          watched_membership_changed(prev_of_peeked(), row)) {
        return;
      }
    }
    if (digest_new_down_[pos]) crash_down_in_row(row);
    ++block_pos_;
    ++result_.idle_slots;
    if (options_.record_trace) {
      auto& tr = trace_.emplace_back(holdings_.size());
      for (std::size_t q = 0; q < holdings_.size(); ++q) {
        tr[q] = Cell{row[q], Action::None};
      }
    }
    ++slot_;
    --horizon_left_;
  }
}

}  // namespace tcgrid::sim
