#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "platform/realization.hpp"

namespace tcgrid::sim {

namespace {

inline bool is_up(markov::State s) noexcept { return s == markov::State::Up; }

}  // namespace

Engine::Engine(const platform::Platform& platform, const model::Application& app,
               platform::AvailabilitySource& availability, Scheduler& scheduler,
               EngineOptions options)
    : Engine(platform, app, &availability, nullptr, scheduler, options) {}

Engine::Engine(const platform::Platform& platform, const model::Application& app,
               platform::Realization& realization, Scheduler& scheduler,
               EngineOptions options)
    : Engine(platform, app, nullptr, &realization, scheduler, options) {}

Engine::Engine(const platform::Platform& platform, const model::Application& app,
               platform::AvailabilitySource* availability,
               platform::Realization* realization, Scheduler& scheduler,
               EngineOptions options)
    : platform_(platform),
      app_(app),
      availability_(availability),
      realization_(realization),
      scheduler_(scheduler),
      options_(options) {
  app_.validate();
  const int avail_size =
      availability_ != nullptr ? availability_->size() : realization_->size();
  if (avail_size != platform_.size()) {
    throw std::invalid_argument("Engine: availability/platform size mismatch");
  }
  if (options_.slot_cap < 1) throw std::invalid_argument("Engine: slot_cap < 1");
  if (options_.avail_block < 1) throw std::invalid_argument("Engine: avail_block < 1");
  if (options_.trial_batch < 1) throw std::invalid_argument("Engine: trial_batch < 1");
  // A block never needs to exceed the run length: clamping bounds the buffer
  // (and the prefetch overshoot) by slot_cap however large the option is.
  block_slots_ = std::min(options_.avail_block, options_.slot_cap);
  if (realization_ != nullptr) {
    // Replay windows are pure RLE expansion (an order of magnitude cheaper
    // per slot than live generation), so the live default's overshoot-vs-
    // fixed-cost balance does not apply: widen the window to amortize the
    // per-refill run lookups. Any window size yields identical results (the
    // window is a view of an immutable timeline, not a generation step).
    block_slots_ = std::min(std::max(options_.avail_block, 1024L), options_.slot_cap);
  }
  const auto p = static_cast<std::size_t>(platform_.size());
  holdings_.resize(p);
  actions_.resize(p);
  comm_remaining_buf_.resize(p);
  seen_mark_.resize(p, 0);
  block_.resize(p * static_cast<std::size_t>(block_slots_));
  states_ = std::span(block_.data(), p);  // re-pointed every slot
  if (options_.fast_forward) {
    const auto rows = static_cast<std::size_t>(block_slots_);
    digest_up_changed_.resize(rows);
    digest_up_gain_.resize(rows);
    digest_new_down_.resize(rows);
    prev_row_.resize(p);
  }
  if (realization_ != nullptr) {
    row_scratch_.resize(p);
    prev_scratch_.resize(p);
  }
}

SimulationResult Engine::run() {
  begin_run();
  step_until(options_.slot_cap);
  return finish_run();
}

void Engine::begin_run() {
  result_ = {};
  current_iter_ = {};
  telem_ = {};
  trace_.clear();
  iteration_start_ = 0;
  consults_ = 0;
  // Full re-run reset: a second run() continues a live source's stream (or
  // replays a realization from slot 0) with clean application state.
  finished_ = false;
  iterations_done_ = 0;
  config_ = model::Configuration{};
  compute_total_ = 0;
  compute_done_ = 0;
  std::fill(holdings_.begin(), holdings_.end(), model::Holdings{});
  std::fill(comm_remaining_buf_.begin(), comm_remaining_buf_.end(), 0);

  block_pos_ = block_filled_ = 0;  // (re-)pull from the source's current slot
  block_base_ = 0;
  prev_row_valid_ = false;
  quiesce_ = nullptr;
  horizon_left_ = 0;
  decision_no_change_ = true;
  last_phase_ = Phase::Idle;

  slot_ = 0;
  bound_ = 0;
}

bool Engine::step_until(long slot_limit) {
  bound_ = std::min(slot_limit, options_.slot_cap);
  while (slot_ < bound_ && !finished_) {
    step_slot();
    if (options_.fast_forward && !finished_) fast_forward();
  }
  return finished_ || slot_ >= options_.slot_cap;
}

SimulationResult Engine::finish_run() {
  result_.iterations_completed = iterations_done_;
  result_.success = finished_;
  result_.makespan = finished_ ? slot_ : options_.slot_cap;
  return result_;
}

void Engine::step_slot() {
  ++telem_.per_slot_steps;
  refresh_states();
  // Action annotations only feed the trace; when tracing is off every write
  // to actions_ below is skipped (each site checks record_trace).
  if (options_.record_trace) std::fill(actions_.begin(), actions_.end(), Action::None);

  process_downs();
  if (consult_needed()) consult_scheduler();

  if (!config_.empty()) {
    if (!comm_phase_done()) serve_communications();
    else advance_computation();
  } else {
    ++result_.idle_slots;
    last_phase_ = Phase::Idle;
  }
  record_slot();
  ++slot_;
}

void Engine::refill_block() {
  const std::size_t p = holdings_.size();
  if (realization_ != nullptr && realization_->frozen() &&
      slot_ >= realization_->frontier()) {
    switch_to_live();  // single remaining consumer: stop recording the tail
  }
  if (realization_ != nullptr) {
    // Replay window: rows come from the realization's RLE intervals and the
    // digests from its precomputed bitsets — nothing is generated or
    // re-digested. The window always restarts at the current slot, so it is
    // valid after change-to-change jumps as well as after sequential
    // consumption (the two ways the previous window empties).
    const long base = slot_;
    long hi = std::min(base + block_slots_, options_.slot_cap);
    if (realization_->frozen()) hi = std::min(hi, realization_->frontier());
    assert(base < hi);
    realization_->ensure(hi);
    realization_->expand_rows(base, hi, block_.data());
    block_base_ = base;
    block_filled_ = hi - base;
    block_pos_ = 0;
    if (options_.fast_forward) {
      realization_->copy_digests(base, hi, digest_up_changed_.data(),
                                 digest_up_gain_.data(), digest_new_down_.data());
      if (base > 0) {
        realization_->expand_rows(base - 1, base, prev_row_.data());
        prev_row_valid_ = true;
      } else {
        prev_row_valid_ = false;
      }
    }
    return;
  }
  // Live mode: availability is consumed through the block-stepping contract —
  // one fill_block call (which also advances the source) per avail_block
  // slots, then row-wise consumption, no per-processor virtual dispatch.
  if (options_.fast_forward && block_filled_ > 0) {
    // Keep the outgoing block's last row: the incoming block's first-row
    // digests are relative to it.
    std::copy_n(block_.data() + static_cast<std::size_t>(block_filled_ - 1) * p, p,
                prev_row_.data());
    prev_row_valid_ = true;
  }
  availability_->fill_block(block_.data(), block_slots_);
  block_filled_ = block_slots_;
  block_pos_ = 0;

  if (!options_.fast_forward) return;
  // One pass over the dense [slot][proc] buffer: per-row digests of how the
  // row differs from its predecessor. These are what lets the fast-forward
  // loop classify a whole run of slots without re-reading full rows.
  const markov::State* prev = prev_row_valid_ ? prev_row_.data() : nullptr;
  for (long r = 0; r < block_filled_; ++r) {
    const markov::State* row = block_.data() + static_cast<std::size_t>(r) * p;
    unsigned char chg = 0;
    unsigned char gain = 0;
    unsigned char ndown = 0;
    if (prev == nullptr) {
      chg = gain = ndown = 1;  // no predecessor: be conservative
    } else {
      for (std::size_t q = 0; q < p; ++q) {
        const bool was_up = is_up(prev[q]);
        const bool now_up = is_up(row[q]);
        chg |= static_cast<unsigned char>(was_up != now_up);
        gain |= static_cast<unsigned char>(!was_up && now_up);
        ndown |= static_cast<unsigned char>(row[q] == markov::State::Down &&
                                            prev[q] != markov::State::Down);
      }
    }
    digest_up_changed_[static_cast<std::size_t>(r)] = chg;
    digest_up_gain_[static_cast<std::size_t>(r)] = gain;
    digest_new_down_[static_cast<std::size_t>(r)] = ndown;
    prev = row;
  }
}

void Engine::refresh_states() {
  if (block_pos_ == block_filled_) refill_block();
  states_ = std::span(peek_row(), holdings_.size());
  digest_row_ = block_pos_;
  ++block_pos_;
}

void Engine::process_downs() {
  // Digest shortcut: with no processor NEWLY DOWN this slot, every DOWN
  // processor already crashed at its DOWN transition (crashes are idempotent
  // and a DOWN worker's holdings cannot change), and no enrolled worker can
  // be DOWN (a configuration only ever contains workers that were UP after
  // its install slot, so an enrolled DOWN is always a fresh transition).
  if (options_.fast_forward &&
      !digest_new_down_[static_cast<std::size_t>(digest_row_)]) {
    return;
  }
  // DOWN loses everything, enrolled or not (paper §III-B).
  for (std::size_t q = 0; q < states_.size(); ++q) {
    if (states_[q] == markov::State::Down) holdings_[q].crash();
  }
  if (!config_.empty() && any_enrolled_down()) {
    // Tight coupling: the whole iteration's computation is lost and a new
    // configuration must be selected (paper §III-C).
    ++current_iter_.restarts;
    ++result_.total_restarts;
    clear_config();
  }
}

bool Engine::consult_needed() const {
  // WhileConfigured: the scheduler guarantees "no change" (with no side
  // effects) for as long as the current configuration stays installed, so
  // the consult — view build included — is skipped wholesale. A restart or
  // iteration boundary clears config_ and re-enables consulting.
  return !(options_.fast_forward && !config_.empty() && quiesce_ != nullptr &&
           quiesce_->kind == Quiescence::Kind::WhileConfigured);
}

void Engine::consult_scheduler() {
  build_view();
  ++consults_;
  auto decision = scheduler_.decide(view_);
  quiesce_ = &scheduler_.quiescence();
  horizon_left_ = quiesce_->horizon;
  if (!decision.has_value() || decision->empty()) {
    decision_no_change_ = true;
    return;
  }
  const model::Configuration& cfg = *decision;
  if (cfg == config_) {  // proposing the unchanged config is a no-op
    decision_no_change_ = true;
    return;
  }
  decision_no_change_ = false;

  // Validate the proposal: it is a logic error for a heuristic to enroll a
  // non-UP worker, exceed mu_q, or map a number of tasks != m.
  ++seen_gen_;
  int total = 0;
  for (const auto& a : cfg.assignments()) {
    if (a.proc < 0 || a.proc >= platform_.size()) {
      throw std::logic_error("Engine: configuration names unknown processor");
    }
    if (states_[static_cast<std::size_t>(a.proc)] != markov::State::Up) {
      throw std::logic_error("Engine: configuration enrolls a non-UP worker");
    }
    if (a.tasks < 1 || a.tasks > platform_.proc(a.proc).max_tasks) {
      throw std::logic_error("Engine: task count violates mu_q");
    }
    auto& mark = seen_mark_[static_cast<std::size_t>(a.proc)];
    if (mark == seen_gen_) {
      throw std::logic_error("Engine: duplicate worker in configuration");
    }
    mark = seen_gen_;
    total += a.tasks;
  }
  if (total != app_.num_tasks) {
    throw std::logic_error("Engine: configuration does not map exactly m tasks");
  }
  install(cfg);
}

void Engine::install(const model::Configuration& cfg) {
  const bool had_config = !config_.empty();
  if (had_config) {
    // Voluntary (proactive) switch: any partially completed computation is
    // lost.
    ++current_iter_.reconfigurations;
    ++result_.total_reconfigurations;
  }
  config_ = cfg;
  // A worker not (re-)enrolled in the new configuration loses its task data
  // and any in-flight transfer — "any interrupted communication must be
  // resumed from scratch if the worker ... was removed from the
  // configuration", and a re-enrolled worker "needs to receive task data ...
  // even if Pq had been enrolled at time t' < t but was un-enrolled since
  // then" (§III-C). Only the program survives un-enrollment.
  for (int q = 0; q < platform_.size(); ++q) {
    if (config_.enrolled(q)) continue;
    auto& h = holdings_[static_cast<std::size_t>(q)];
    h.data_messages = 0;
    h.partial_slots = 0;
  }
  compute_total_ = config_.compute_slots(platform_.speeds());
  compute_done_ = 0;

  // Degenerate communication costs complete instantly.
  for (const auto& a : config_.assignments()) {
    auto& h = holdings_[static_cast<std::size_t>(a.proc)];
    if (app_.t_prog == 0) h.has_program = true;
    if (app_.t_data == 0) h.data_messages = std::max(h.data_messages, a.tasks);
  }
  reset_comm_remaining();
}

long Engine::comm_remaining(int q) const {
  const int x = config_.tasks_on(q);
  if (x == 0) return 0;
  const auto& h = holdings_[static_cast<std::size_t>(q)];
  long need = 0;
  if (!h.has_program && app_.t_prog > 0) need += app_.t_prog;
  need += static_cast<long>(std::max(0, x - h.data_messages)) * app_.t_data;
  return std::max(0L, need - h.partial_slots);
}

void Engine::reset_comm_remaining() {
  std::fill(comm_remaining_buf_.begin(), comm_remaining_buf_.end(), 0);
  for (const auto& a : config_.assignments()) {
    comm_remaining_buf_[static_cast<std::size_t>(a.proc)] = comm_remaining(a.proc);
  }
}

bool Engine::comm_phase_done() const {
  for (const auto& a : config_.assignments()) {
    if (comm_remaining_buf_[static_cast<std::size_t>(a.proc)] > 0) return false;
  }
  return true;
}

bool Engine::all_enrolled_up() const {
  for (const auto& a : config_.assignments()) {
    if (states_[static_cast<std::size_t>(a.proc)] != markov::State::Up) return false;
  }
  return true;
}

bool Engine::any_enrolled_down() const {
  for (const auto& a : config_.assignments()) {
    if (states_[static_cast<std::size_t>(a.proc)] == markov::State::Down) return true;
  }
  return false;
}

void Engine::clear_config() {
  for (const auto& a : config_.assignments()) {
    holdings_[static_cast<std::size_t>(a.proc)].unenroll();
  }
  config_ = model::Configuration{};
  compute_total_ = 0;
  compute_done_ = 0;
  std::fill(comm_remaining_buf_.begin(), comm_remaining_buf_.end(), 0);
}

void Engine::serve_communications() {
  // Candidates: enrolled UP workers with transfers pending, in enrollment
  // order; optionally re-ranked by remaining need (ablation policies).
  pending_.clear();
  for (const auto& a : config_.assignments()) {
    const auto q = static_cast<std::size_t>(a.proc);
    if (states_[q] != markov::State::Up) continue;  // RECLAIMED: transfer pauses
    if (comm_remaining_buf_[q] == 0) {
      if (options_.record_trace) {
        actions_[q] = Action::Idle;  // done, waiting for the phase barrier
      }
      continue;
    }
    pending_.push_back(a.proc);
  }
  if (options_.comm_order == CommOrder::FewestFirst) {
    std::stable_sort(pending_.begin(), pending_.end(), [this](int x, int y) {
      return comm_remaining_buf_[static_cast<std::size_t>(x)] <
             comm_remaining_buf_[static_cast<std::size_t>(y)];
    });
  } else if (options_.comm_order == CommOrder::MostFirst) {
    std::stable_sort(pending_.begin(), pending_.end(), [this](int x, int y) {
      return comm_remaining_buf_[static_cast<std::size_t>(x)] >
             comm_remaining_buf_[static_cast<std::size_t>(y)];
    });
  }

  int served = 0;
  for (int proc : pending_) {
    if (served >= platform_.ncom()) break;
    const auto q = static_cast<std::size_t>(proc);
    auto& h = holdings_[q];
    const bool program = !h.has_program && app_.t_prog > 0;
    if (options_.record_trace) actions_[q] = program ? Action::Program : Action::Data;
    ++h.partial_slots;
    const long len = program ? app_.t_prog : app_.t_data;
    if (h.partial_slots >= len) {
      h.partial_slots = 0;
      if (program) h.has_program = true;
      else ++h.data_messages;
    }
    // One served slot always reduces the worker's remaining need by exactly
    // one, message completion included (the completed message leaves the
    // "needed" sum as its partial credit resets).
    --comm_remaining_buf_[q];
    ++served;
  }
  // Enrolled UP workers that were skipped for bandwidth are idle.
  if (options_.record_trace) {
    for (const auto& a : config_.assignments()) {
      const auto q = static_cast<std::size_t>(a.proc);
      if (states_[q] == markov::State::Up && actions_[q] == Action::None) {
        actions_[q] = Action::Idle;
      }
    }
  }
  if (served > 0) {
    ++current_iter_.comm_slots;
    last_phase_ = Phase::Comm;
  } else {
    // Every pending worker was RECLAIMED: the slot progressed nothing.
    ++current_iter_.stalled_slots;
    last_phase_ = Phase::Stalled;
  }
}

void Engine::advance_computation() {
  if (all_enrolled_up()) {
    if (options_.record_trace) {
      for (const auto& a : config_.assignments()) {
        actions_[static_cast<std::size_t>(a.proc)] = Action::Compute;
      }
    }
    ++compute_done_;
    ++current_iter_.compute_slots;
    last_phase_ = Phase::Compute;
    if (compute_done_ >= compute_total_) {
      complete_iteration();
      last_phase_ = Phase::Completed;
    }
  } else {
    // At least one enrolled worker is RECLAIMED: everyone suspends.
    ++current_iter_.suspended_slots;
    last_phase_ = Phase::Suspended;
    if (options_.record_trace) {
      for (const auto& a : config_.assignments()) {
        const auto q = static_cast<std::size_t>(a.proc);
        if (states_[q] == markov::State::Up) actions_[q] = Action::Idle;
      }
    }
  }
}

void Engine::complete_iteration() {
  current_iter_.start_slot = iteration_start_;
  current_iter_.end_slot = slot_;
  result_.iterations.push_back(current_iter_);
  current_iter_ = {};
  ++iterations_done_;

  // Global synchronization: task data is per-iteration, the program persists.
  for (auto& h : holdings_) h.next_iteration();
  config_ = model::Configuration{};
  compute_total_ = 0;
  compute_done_ = 0;
  std::fill(comm_remaining_buf_.begin(), comm_remaining_buf_.end(), 0);
  iteration_start_ = slot_ + 1;

  if (iterations_done_ >= app_.iterations) finished_ = true;
}

void Engine::build_view() {
#ifndef NDEBUG
  // comm_remaining_buf_ is maintained incrementally (install, serve,
  // unenroll, iteration boundary); cross-check it against the from-scratch
  // computation in debug builds.
  for (int q = 0; q < platform_.size(); ++q) {
    assert(comm_remaining_buf_[static_cast<std::size_t>(q)] == comm_remaining(q) &&
           "Engine: incremental comm_remaining out of sync");
  }
#endif
  view_.slot = slot_;
  view_.platform = &platform_;
  view_.app = &app_;
  view_.states = states_;
  view_.holdings = holdings_;
  view_.config = config_.empty() ? nullptr : &config_;
  view_.iteration_elapsed = slot_ - iteration_start_;
  view_.compute_total = compute_total_;
  view_.compute_done = compute_done_;
  view_.comm_remaining = comm_remaining_buf_;
}

void Engine::record_slot() {
  if (!options_.record_trace) return;
  // Build the row in place: no temporary vector per slot.
  auto& row = trace_.emplace_back(states_.size());
  for (std::size_t q = 0; q < states_.size(); ++q) {
    row[q] = Cell{states_[q], actions_[q]};
  }
}

// --------------------------------------------------------------------------
// Event-horizon fast path (DESIGN.md §8). After a normally processed slot,
// bulk-advance the run of upcoming slots whose outcome is already
// determined: the engine-side state machine is advanced arithmetically and
// the scheduler is not consulted, which is sound exactly when the latched
// Quiescence report covers every skipped slot. Event slots — where either
// the engine-side outcome (restart, iteration completion, communication
// progress) or the scheduler's answer (UP-gain, watched membership change,
// horizon expiry) can change — fall back to the per-slot path.
// --------------------------------------------------------------------------

const markov::State* Engine::prev_of_peeked() const {
  if (block_pos_ > 0) return peek_row() - states_.size();
  assert(prev_row_valid_);
  return prev_row_.data();
}

bool Engine::watched_membership_changed(const markov::State* prev,
                                        const markov::State* row) const {
  for (int q : quiesce_->watched) {
    const auto qi = static_cast<std::size_t>(q);
    if (is_up(prev[qi]) != is_up(row[qi])) return true;
  }
  return false;
}

void Engine::crash_down_in_row(const markov::State* row) {
  // Aggregate application of process_downs over a skipped slot: crash() is
  // idempotent, and no holdings of a DOWN worker can change between its
  // first DOWN slot and the next processed slot, so crashing on newly-DOWN
  // rows only is equivalent to crashing every slot.
  for (std::size_t q = 0; q < holdings_.size(); ++q) {
    if (row[q] == markov::State::Down) holdings_[q].crash();
  }
}

void Engine::record_bulk_row(const markov::State* row, bool compute) {
  if (!options_.record_trace) return;
  auto& tr = trace_.emplace_back(holdings_.size());
  for (std::size_t q = 0; q < holdings_.size(); ++q) {
    tr[q] = Cell{row[q], Action::None};
  }
  for (const auto& a : config_.assignments()) {
    const auto q = static_cast<std::size_t>(a.proc);
    if (compute) {
      tr[q].action = Action::Compute;
    } else if (is_up(row[q])) {
      tr[q].action = Action::Idle;  // suspended: UP workers wait
    }
  }
}

void Engine::fast_forward() {
  if (quiesce_ == nullptr) return;
  const Quiescence::Kind kind = quiesce_->kind;
  if (kind == Quiescence::Kind::EverySlot) return;
  // Replay mode without tracing jumps change-to-change over the
  // realization's digest bitsets instead of walking window rows; tracing
  // needs every row, so it stays on the (replay-fed) row-wise loops.
  const bool jump = realization_ != nullptr && !options_.record_trace;

  if (!config_.empty()) {
    if (last_phase_ == Phase::Comm || last_phase_ == Phase::Stalled) {
      // Comm-phase bulk advance, WhileConfigured only: under enrollment
      // order the served set is a pure function of (enrolled states, which
      // transfers are unfinished), so a run of slots with the same enrolled
      // states and no transfer finishing can be applied arithmetically.
      // Tracing needs per-slot action rows, and the re-ranked comm orders
      // re-sort by remaining need every slot: both fall back to per-slot.
      if (kind == Quiescence::Kind::WhileConfigured &&
          options_.comm_order == CommOrder::Enrollment && !options_.record_trace) {
        const long before = slot_;
        if (jump) advance_comm_jump();
        else advance_comm_run();
        note_bulk_advance(telem_.bulk_runs_comm, telem_.bulk_slots_comm, before, jump);
      }
      return;
    }
    // Compute-phase bulk advance. Only valid when the just-processed slot
    // already was a compute/suspended slot: then the decision inputs
    // (holdings, comm progress) are unchanged since the consult. A comm
    // slot changes them, a completion slot cleared config_.
    if (last_phase_ != Phase::Compute && last_phase_ != Phase::Suspended) return;
    if (kind != Quiescence::Kind::WhileConfigured && !decision_no_change_) return;
    // Enrolled-RLE stretches only exist for WhileConfigured (other kinds
    // stop at global events, which the row-wise window walk handles best).
    const long before = slot_;
    const bool jumped = jump && kind == Quiescence::Kind::WhileConfigured;
    if (jumped) advance_configured_jump();
    else advance_configured_run(kind);
    note_bulk_advance(telem_.bulk_runs_configured, telem_.bulk_slots_configured,
                      before, jumped);
  } else {
    // Idle bulk advance: the scheduler just declined to build (no UP
    // capacity). WhileConfigured says nothing about the no-config case.
    if (last_phase_ != Phase::Idle || !decision_no_change_) return;
    if (kind == Quiescence::Kind::WhileConfigured) return;
    const long before = slot_;
    if (jump) advance_idle_jump(kind);
    else advance_idle_run(kind);
    note_bulk_advance(telem_.bulk_runs_idle, telem_.bulk_slots_idle, before, jump);
  }
}

void Engine::note_bulk_advance(long& runs, long& slots, long before, bool jumped) {
  const long advanced = slot_ - before;
  if (advanced <= 0) return;
  ++runs;
  slots += advanced;
  if (jumped) ++telem_.replay_jumps;
  telem_.bulk_advance_slots.observe(static_cast<std::uint64_t>(advanced));
}

void Engine::advance_configured_run(Quiescence::Kind kind) {
  const auto assigns = config_.assignments();
  while (slot_ < bound_) {
    if (block_pos_ == block_filled_) refill_block();
    const auto pos = static_cast<std::size_t>(block_pos_);
    const markov::State* row = peek_row();

    // Scheduler events: the latched answer no longer covers the next slot.
    if (kind != Quiescence::Kind::WhileConfigured) {
      if (horizon_left_ <= 0) return;
      if (kind == Quiescence::Kind::UntilUpSetChanges) {
        if (digest_up_changed_[pos]) return;
      } else {  // UntilEvent
        if (digest_up_gain_[pos]) return;
        if (digest_up_changed_[pos] &&
            watched_membership_changed(prev_of_peeked(), row)) {
          return;
        }
      }
    }

    // Engine events: an enrolled worker going DOWN restarts the iteration
    // (and re-consults) — hand the row to the per-slot path untouched.
    bool any_down = false;
    bool all_up = true;
    for (const auto& a : assigns) {
      const markov::State s = row[static_cast<std::size_t>(a.proc)];
      if (s == markov::State::Down) {
        any_down = true;
        break;
      }
      if (s != markov::State::Up) all_up = false;
    }
    if (any_down) return;

    // Consume the row: one compute or suspended slot, bookkept exactly as
    // the per-slot path would.
    if (digest_new_down_[pos]) crash_down_in_row(row);  // un-enrolled DOWNs
    ++block_pos_;
    record_bulk_row(row, all_up);
    if (all_up) {
      ++compute_done_;
      ++current_iter_.compute_slots;
      if (compute_done_ >= compute_total_) {
        complete_iteration();  // uses slot_ as the iteration's end slot
        ++slot_;
        return;
      }
    } else {
      ++current_iter_.suspended_slots;
    }
    ++slot_;
    if (kind != Quiescence::Kind::WhileConfigured) --horizon_left_;
  }
}

void Engine::apply_comm_progress(std::size_t q, long slots) {
  // Replays `slots` consecutive served slots for one worker in O(messages
  // completed): the per-slot reference is ++partial_slots, complete the
  // message when partial_slots reaches its length, and one remaining slot
  // retired per served slot.
  auto& h = holdings_[q];
  comm_remaining_buf_[q] -= slots;
  while (slots > 0) {
    const bool program = !h.has_program && app_.t_prog > 0;
    const long len = program ? app_.t_prog : app_.t_data;
    const long need = len - h.partial_slots;
    if (slots >= need) {
      h.partial_slots = 0;
      if (program) h.has_program = true;
      else ++h.data_messages;
      slots -= need;
    } else {
      h.partial_slots += slots;
      slots = 0;
    }
  }
}

void Engine::advance_comm_run() {
  // The just-processed slot may have finished the last transfer; the next
  // slot then belongs to the compute phase, not to a comm run.
  if (comm_phase_done()) return;
  const auto assigns = config_.assignments();
  // The reference pattern: the enrolled states of the just-processed slot.
  // Copied out of block_ because a refill during the run overwrites it.
  comm_ref_.assign(assigns.size(), markov::State::Up);
  for (std::size_t i = 0; i < assigns.size(); ++i) {
    comm_ref_[i] = states_[static_cast<std::size_t>(assigns[i].proc)];
  }

  // Who gets served while the pattern holds (first ncom pending workers in
  // enrollment order), and for how many slots the pattern can hold: until
  // some served transfer finishes (the served set then changes), an
  // enrolled state changes, or the cap.
  pending_.clear();
  long serveable = 0;
  long finish_horizon = std::numeric_limits<long>::max();
  for (std::size_t i = 0; i < assigns.size(); ++i) {
    if (comm_ref_[i] != markov::State::Up) continue;
    const auto q = static_cast<std::size_t>(assigns[i].proc);
    if (comm_remaining_buf_[q] == 0) continue;
    if (serveable < platform_.ncom()) {
      pending_.push_back(assigns[i].proc);
      finish_horizon = std::min(finish_horizon, comm_remaining_buf_[q]);
      ++serveable;
    }
  }

  long run = 0;
  while (slot_ < bound_ && run < finish_horizon) {
    if (block_pos_ == block_filled_) refill_block();
    const markov::State* row = peek_row();
    bool pattern_holds = true;
    for (std::size_t i = 0; i < assigns.size(); ++i) {
      if (row[static_cast<std::size_t>(assigns[i].proc)] != comm_ref_[i]) {
        pattern_holds = false;
        break;
      }
    }
    if (!pattern_holds) break;
    if (digest_new_down_[static_cast<std::size_t>(block_pos_)]) {
      crash_down_in_row(row);  // un-enrolled only: enrolled states match the
                               // reference, which had no DOWN worker
    }
    ++block_pos_;
    ++slot_;
    ++run;
  }
  if (run == 0) return;
  if (pending_.empty()) {
    // Every unfinished transfer is paused on a RECLAIMED worker.
    current_iter_.stalled_slots += run;
  } else {
    current_iter_.comm_slots += run;
    for (int proc : pending_) {
      apply_comm_progress(static_cast<std::size_t>(proc), run);
    }
  }
}

// --------------------------------------------------------------------------
// Realization replay jumps (DESIGN.md §9), mirrors of the advance_*_run
// loops above with the per-row work replaced by realization queries:
//
//   * WhileConfigured compute/suspend and comm runs advance by ENROLLED-SET
//     homogeneous stretches read straight off the per-worker RLE intervals
//     (Realization::stable_until). While every enrolled worker holds its
//     state, the row-wise loop's per-slot outcome is frozen (all_up /
//     any_down / the served comm set depend only on enrolled states), so a
//     whole stretch is applied arithmetically; crashes of un-enrolled
//     workers inside the stretch are applied in aggregate (down_overlaps —
//     sound because crash() is idempotent and a DOWN worker's holdings
//     cannot change until processed again).
//   * Idle runs (and any horizon-latched kind) stop at GLOBAL events, so
//     they jump over the digest bitsets (next_change) instead.
//
// Every slot examined individually reads the identical states and digest
// values the row-wise loop would read from its window, so both paths take
// the same decisions at the same slots: results are bit-identical.
// --------------------------------------------------------------------------

void Engine::resync_window() {
  // Jumps advance slot_ without consuming window rows. If the new position
  // is still inside the (immutable, absolute-indexed) window, just re-point;
  // otherwise force the next refill to rebuild at slot_.
  if (block_filled_ > 0 && slot_ >= block_base_ && slot_ < block_base_ + block_filled_) {
    block_pos_ = slot_ - block_base_;
  } else {
    block_pos_ = 0;
    block_filled_ = 0;
  }
}

const markov::State* Engine::jump_row(long slot) {
  realization_->ensure(slot + 1);
  realization_->expand_rows(slot, slot + 1, row_scratch_.data());
  return row_scratch_.data();
}

void Engine::switch_to_live() {
  // The frozen realization's embedded source stands exactly at the
  // frontier (materialization consumes it through fill_block and nothing
  // else touches it), and slot_ has reached that frontier: from here the
  // run IS the ordinary live engine on a continued stream — same rows,
  // same digests, same loops — so recording the remaining slots (which no
  // other run will ever replay) is skipped entirely.
  assert(realization_->frontier() == slot_);
  assert(realization_->source().position() == slot_);
  if (options_.fast_forward) {
    if (slot_ > 0) {
      realization_->expand_rows(slot_ - 1, slot_, prev_row_.data());
      prev_row_valid_ = true;
    } else {
      prev_row_valid_ = false;
    }
  }
  availability_ = &realization_->source();
  realization_ = nullptr;
  // Back to the live prefetch sizing: generation is expensive again, so the
  // wide replay window would only grow the overshoot past the makespan.
  block_slots_ = std::min(options_.avail_block, options_.slot_cap);
  block_pos_ = 0;
  block_filled_ = 0;
}

void Engine::crash_down_in_range(long begin, long end) {
  // Aggregate process_downs over the skipped slots [begin, end]: any worker
  // DOWN somewhere in the range is crashed once (idempotent; see above). No
  // enrolled worker is ever DOWN inside a stretch, so this only sweeps
  // up-for-grabs holdings of un-enrolled workers.
  if (begin > end) return;
  if (!realization_->any_new_down(begin, end)) return;  // nothing fresh to crash
  for (std::size_t q = 0; q < holdings_.size(); ++q) {
    // Empty holdings make crash() a no-op: skip the interval walk entirely.
    // This prunes the sweep to the few workers actually holding program or
    // data (the enrolled ones are holders but are never DOWN in a stretch —
    // their walk just comes back false).
    const model::Holdings& h = holdings_[q];
    if (!h.has_program && h.data_messages == 0 && h.partial_slots == 0) continue;
    if (realization_->down_overlaps(static_cast<int>(q), begin, end)) {
      holdings_[q].crash();
    }
  }
}

void Engine::advance_configured_jump() {
  // WhileConfigured only: the scheduler stays silent for the lifetime of
  // the configuration, so the only stretch bounds are enrolled-state
  // changes, iteration completion and the slot cap.
  const auto assigns = config_.assignments();
  enrolled_buf_.clear();
  for (const auto& a : assigns) enrolled_buf_.push_back(a.proc);
  // Frozen realizations end at their frontier: cap stretches there and hand
  // the rest to the per-slot path, whose refill switches to live mode.
  const long replay_end =
      realization_->frozen() ? realization_->frontier() : bound_;
  bool all_up = last_phase_ == Phase::Compute;
  while (slot_ < bound_) {
    if (slot_ >= replay_end) break;
    long limit = std::min(bound_, replay_end);
    const long need = compute_total_ - compute_done_;
    if (all_up && slot_ + need < limit) limit = slot_ + need;
    const long e = realization_->stable_until(enrolled_buf_, slot_ - 1, limit);
    const long run = e - slot_;
    if (run > 0) {
      if (all_up) {
        if (run >= need) {
          // The iteration completes inside the stretch.
          crash_down_in_range(slot_, slot_ + need - 1);
          compute_done_ = compute_total_;
          current_iter_.compute_slots += need;
          slot_ += need - 1;
          complete_iteration();
          ++slot_;
          resync_window();
          return;
        }
        compute_done_ += run;
        current_iter_.compute_slots += run;
      } else {
        current_iter_.suspended_slots += run;
      }
      crash_down_in_range(slot_, e - 1);
      slot_ = e;
      if (slot_ >= bound_) break;
    }
    if (slot_ >= replay_end) break;  // frozen boundary, not a change slot
    // slot_ == e < cap: some enrolled worker changed state here. Reclassify
    // from the RLE point lookups, exactly as the row-wise loop reads its row.
    bool any_down = false;
    bool row_all_up = true;
    for (int proc : enrolled_buf_) {
      const markov::State s = realization_->state_at(proc, slot_);
      if (s == markov::State::Down) {
        any_down = true;
        break;
      }
      if (s != markov::State::Up) row_all_up = false;
    }
    if (any_down) break;  // restart: hand the slot to the per-slot path
    crash_down_in_range(slot_, slot_);
    if (row_all_up) {
      ++compute_done_;
      ++current_iter_.compute_slots;
      if (compute_done_ >= compute_total_) {
        complete_iteration();
        ++slot_;
        resync_window();
        return;
      }
    } else {
      ++current_iter_.suspended_slots;
    }
    ++slot_;
    all_up = row_all_up;
  }
  resync_window();
}

void Engine::advance_comm_jump() {
  // The just-processed slot may have finished the last transfer; the next
  // slot then belongs to the compute phase, not to a comm run.
  if (comm_phase_done()) return;
  const auto assigns = config_.assignments();
  // Who gets served while the enrolled states hold (first ncom pending
  // workers in enrollment order), and for how long: until a served transfer
  // finishes, an enrolled state changes, or the cap.
  pending_.clear();
  long serveable = 0;
  long finish_horizon = std::numeric_limits<long>::max();
  enrolled_buf_.clear();
  for (const auto& a : assigns) {
    enrolled_buf_.push_back(a.proc);
    const auto q = static_cast<std::size_t>(a.proc);
    if (states_[q] != markov::State::Up) continue;
    if (comm_remaining_buf_[q] == 0) continue;
    if (serveable < platform_.ncom()) {
      pending_.push_back(a.proc);
      finish_horizon = std::min(finish_horizon, comm_remaining_buf_[q]);
      ++serveable;
    }
  }
  long limit = bound_;
  if (realization_->frozen()) limit = std::min(limit, realization_->frontier());
  if (limit <= slot_) return;  // at the frozen boundary: per-slot path switches
  if (finish_horizon < limit - slot_) limit = slot_ + finish_horizon;  // no overflow
  // One stretch is the whole run: the row-wise loop ends for good at the
  // first enrolled-state deviation (or the horizon/cap), never resuming.
  const long e = realization_->stable_until(enrolled_buf_, slot_ - 1, limit);
  const long run = e - slot_;
  if (run <= 0) return;
  crash_down_in_range(slot_, e - 1);
  if (pending_.empty()) {
    // Every unfinished transfer is paused on a RECLAIMED worker.
    current_iter_.stalled_slots += run;
  } else {
    current_iter_.comm_slots += run;
    for (int proc : pending_) {
      apply_comm_progress(static_cast<std::size_t>(proc), run);
    }
  }
  slot_ = e;
  resync_window();
}

void Engine::advance_idle_jump(Quiescence::Kind kind) {
  // Idle stops are GLOBAL (a worker joining UP anywhere can end them), so
  // the stretch oracle is the digest bitset scan, not the enrolled RLE.
  const long replay_end =
      realization_->frozen() ? realization_->frontier() : bound_;
  while (slot_ < bound_) {
    if (slot_ >= replay_end) break;  // frozen boundary: per-slot path switches
    if (horizon_left_ <= 0) break;
    long lim = std::min(bound_, replay_end);
    if (horizon_left_ < lim - slot_) lim = slot_ + horizon_left_;  // no overflow
    const long event = realization_->next_change(slot_, lim);
    const long run = event - slot_;
    result_.idle_slots += run;
    slot_ = event;
    horizon_left_ -= run;
    if (slot_ >= bound_) break;
    if (event == lim) continue;  // horizon boundary, not a change slot
    const bool chg = realization_->up_changed_at(slot_);
    if (kind == Quiescence::Kind::UntilUpSetChanges) {
      if (chg) break;
    } else {  // UntilEvent
      if (realization_->up_gain_at(slot_)) break;
      if (chg) {
        const markov::State* row = jump_row(slot_);
        realization_->expand_rows(slot_ - 1, slot_, prev_scratch_.data());
        if (watched_membership_changed(prev_scratch_.data(), row)) break;
      }
    }
    if (realization_->new_down_at(slot_)) crash_down_in_row(jump_row(slot_));
    ++result_.idle_slots;
    ++slot_;
    --horizon_left_;
  }
  resync_window();
}

void Engine::advance_idle_run(Quiescence::Kind kind) {
  while (slot_ < bound_) {
    if (block_pos_ == block_filled_) refill_block();
    const auto pos = static_cast<std::size_t>(block_pos_);

    if (horizon_left_ <= 0) return;
    const markov::State* row = peek_row();
    if (kind == Quiescence::Kind::UntilUpSetChanges) {
      if (digest_up_changed_[pos]) return;
    } else {  // UntilEvent: a worker joining, or a watched worker changing
      if (digest_up_gain_[pos]) return;
      if (digest_up_changed_[pos] &&
          watched_membership_changed(prev_of_peeked(), row)) {
        return;
      }
    }
    if (digest_new_down_[pos]) crash_down_in_row(row);
    ++block_pos_;
    ++result_.idle_slots;
    if (options_.record_trace) {
      auto& tr = trace_.emplace_back(holdings_.size());
      for (std::size_t q = 0; q < holdings_.size(); ++q) {
        tr[q] = Cell{row[q], Action::None};
      }
    }
    ++slot_;
    --horizon_left_;
  }
}

}  // namespace tcgrid::sim
