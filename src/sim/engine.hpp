// Time-slot simulation engine implementing the paper's execution model
// (§III-C). See DESIGN.md §5 for the slot-by-slot semantics.
#pragma once

#include <vector>

#include "model/application.hpp"
#include "model/configuration.hpp"
#include "model/holdings.hpp"
#include "platform/availability.hpp"
#include "platform/platform.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace tcgrid::sim {

/// How the master picks which (at most ncom) enrolled UP workers to serve in
/// a slot. The paper does not specify this; Enrollment order matches its
/// Figure 1 walk-through and is the library default. The alternatives exist
/// for the ablation bench.
enum class CommOrder {
  Enrollment,     ///< first enrolled, first served (default)
  FewestFirst,    ///< shortest remaining transfer first
  MostFirst,      ///< longest remaining transfer first
};

struct EngineOptions {
  long slot_cap = 1'000'000;  ///< fail the run if the makespan reaches this
  bool record_trace = false;  ///< keep a per-slot activity trace (costly)
  CommOrder comm_order = CommOrder::Enrollment;
  /// Slots pulled per AvailabilitySource::fill_block call (clamped to
  /// slot_cap). The engine consumes availability in dense blocks instead of
  /// size()+1 virtual calls per slot; any value >= 1 yields the identical
  /// simulation (availability is autonomous, so prefetching it cannot
  /// observe scheduling decisions). Note the prefetch: after run() the
  /// source may have been advanced up to avail_block - 1 slots past the
  /// last simulated slot, so a caller-supplied source should not be reused
  /// to continue the same stream.
  long avail_block = 256;
};

/// Drives one application execution: availability advances slot by slot, the
/// scheduler is consulted every slot, communications respect the master's
/// ncom bound, and the tightly-coupled computation only progresses in slots
/// where every enrolled worker is UP.
class Engine {
 public:
  Engine(const platform::Platform& platform, const model::Application& app,
         platform::AvailabilitySource& availability, Scheduler& scheduler,
         EngineOptions options = {});

  /// Run to completion (all iterations done) or to the slot cap.
  [[nodiscard]] SimulationResult run();

  /// Activity trace recorded during run() (empty unless record_trace).
  [[nodiscard]] const ActivityTrace& trace() const noexcept { return trace_; }

 private:
  // --- per-slot phases -----------------------------------------------------
  void refresh_states();
  void process_downs();
  void consult_scheduler();
  void install(const model::Configuration& config);
  void serve_communications();
  void advance_computation();
  void complete_iteration();

  // --- helpers ---------------------------------------------------------
  [[nodiscard]] long comm_remaining(int q) const;
  [[nodiscard]] bool comm_phase_done() const;
  [[nodiscard]] bool all_enrolled_up() const;
  [[nodiscard]] bool any_enrolled_down() const;
  void clear_config();
  void build_view();
  void record_slot();

  const platform::Platform& platform_;
  const model::Application& app_;
  platform::AvailabilitySource& availability_;
  Scheduler& scheduler_;
  EngineOptions options_;

  // dynamic state
  long slot_ = 0;
  std::vector<markov::State> states_;
  std::vector<markov::State> block_;  ///< [block_slots_ x p] availability buffer
  long block_slots_ = 0;              ///< min(avail_block, slot_cap)
  long block_pos_ = 0;                ///< rows of block_ already consumed
  long block_filled_ = 0;             ///< rows of block_ currently valid
  std::vector<model::Holdings> holdings_;
  model::Configuration config_;
  long compute_total_ = 0;
  long compute_done_ = 0;
  long iteration_start_ = 0;
  int iterations_done_ = 0;
  bool finished_ = false;

  // per-slot action annotations (for trace/tests)
  std::vector<Action> actions_;

  // view buffers
  std::vector<long> comm_remaining_buf_;
  SchedulerView view_;

  // bookkeeping
  SimulationResult result_;
  IterationStats current_iter_;
  ActivityTrace trace_;
};

}  // namespace tcgrid::sim
