// Time-slot simulation engine implementing the paper's execution model
// (§III-C). See DESIGN.md §5 for the slot-by-slot semantics and §8 for the
// event-horizon fast-forward loop.
#pragma once

#include <span>
#include <vector>

#include "model/application.hpp"
#include "model/configuration.hpp"
#include "model/holdings.hpp"
#include "platform/availability.hpp"
#include "platform/platform.hpp"
#include "sim/events.hpp"
#include "sim/scheduler.hpp"
#include "sim/stats.hpp"

namespace tcgrid::platform {
class Realization;
}

namespace tcgrid::sim {

/// How the master picks which (at most ncom) enrolled UP workers to serve in
/// a slot. The paper does not specify this; Enrollment order matches its
/// Figure 1 walk-through and is the library default. The alternatives exist
/// for the ablation bench.
enum class CommOrder {
  Enrollment,     ///< first enrolled, first served (default)
  FewestFirst,    ///< shortest remaining transfer first
  MostFirst,      ///< longest remaining transfer first
};

struct EngineOptions {
  long slot_cap = 1'000'000;  ///< fail the run if the makespan reaches this
  bool record_trace = false;  ///< keep a per-slot activity trace (costly)
  CommOrder comm_order = CommOrder::Enrollment;
  /// Slots pulled per AvailabilitySource::fill_block call (clamped to
  /// slot_cap). The engine consumes availability in dense blocks instead of
  /// size()+1 virtual calls per slot; any value >= 1 yields the identical
  /// simulation (availability is autonomous, so prefetching it cannot
  /// observe scheduling decisions). Note the prefetch: after run() the
  /// source may have been advanced up to avail_block - 1 slots past the
  /// last simulated slot, so a caller-supplied source should not be reused
  /// to continue the same stream. The default balances the per-block fixed
  /// cost against the prefetch overshoot: sweep-trial makespans are a few
  /// hundred slots, and rows generated past the makespan are the single
  /// largest waste of availability sampling at 256.
  long avail_block = 64;
  /// Event-horizon fast path (DESIGN.md §8): within each availability block
  /// the engine bulk-advances runs of homogeneous slots — compute slots
  /// while every enrolled worker is UP, suspended slots while some are only
  /// RECLAIMED, idle slots with no configuration — consulting the scheduler
  /// only at event slots its Quiescence report does not cover. Results
  /// (counters, iteration stats AND traces) are bit-identical to the
  /// per-slot loop for every scheduler honoring the quiescence contract;
  /// false forces the legacy per-slot loop (ablation baseline).
  bool fast_forward = true;
  /// Lockstep trial-batch width (DESIGN.md §13). The engine itself always
  /// runs ONE trial — this knob is consumed by sim::TrialBatch and
  /// api::Session, which replay `trial_batch` trials of one (scenario,
  /// heuristic) cell side by side through the resumable step_until API.
  /// 1 (the default) is the plain sequential executor; results are
  /// bit-identical for every width (tests/batch_test.cpp and the
  /// bench_sweep digest gate enforce it). Kept here so the one options
  /// struct reaches every layer, spec_json round-trip included.
  int trial_batch = 1;
};

/// Drives one application execution: availability advances slot by slot, the
/// scheduler is consulted at every slot its quiescence contract does not
/// rule out, communications respect the master's ncom bound, and the
/// tightly-coupled computation only progresses in slots where every enrolled
/// worker is UP.
class Engine {
 public:
  Engine(const platform::Platform& platform, const model::Application& app,
         platform::AvailabilitySource& availability, Scheduler& scheduler,
         EngineOptions options = {});

  /// Replay mode (DESIGN.md §9): consume a materialized realization instead
  /// of generating availability live. Rows are expanded from the
  /// realization's run-length intervals and the fast-forward digests are
  /// copied from its precomputed bitsets; when tracing is off, the
  /// event-horizon loop additionally jumps change-to-change over the digest
  /// bitsets without expanding the skipped rows at all. Results — counters,
  /// iteration stats AND traces — are bit-identical to a live source built
  /// from the same (family, seed, init). The realization is extended lazily,
  /// so run() can throw platform::RealizationBudgetExceeded; the engine
  /// holds no state worth salvaging after that (construct a fresh one
  /// against a live source and rerun).
  Engine(const platform::Platform& platform, const model::Application& app,
         platform::Realization& realization, Scheduler& scheduler,
         EngineOptions options = {});

  /// Run to completion (all iterations done) or to the slot cap.
  [[nodiscard]] SimulationResult run();

  // --- resumable execution (DESIGN.md §13) ----------------------------------
  // run() split into begin / bounded-step / finish so a caller (the lockstep
  // TrialBatch) can interleave several engines without losing the bulk
  // advances. The split is outcome-identical to one run() call: pausing
  // clamps a bulk advance at the bound and the resume re-enters through the
  // per-slot path, which the fast-forward equivalence argument (§8: per-slot
  // and bulk processing of a slot agree, and a mid-horizon re-consult is
  // covered by the quiescence contract) already proves bit-identical —
  // results AND traces. Only execution-strategy telemetry (per-slot steps vs
  // bulk runs) and the consult count depend on where the bounds fall.

  /// Reset all run state; the engine stands at slot 0 ready to step. A live
  /// source continues its stream (same contract as a second run() call).
  void begin_run();

  /// Advance until slot() reaches min(slot_limit, slot_cap) or the run
  /// finishes. Returns true when the run is over (all iterations done or
  /// slot cap hit) — finish_run() then yields the result.
  bool step_until(long slot_limit);

  /// Finalize and return the result of the stepped run. Call exactly once,
  /// after step_until returned true (or to harvest a cancelled run's
  /// partial counters).
  [[nodiscard]] SimulationResult finish_run();

  /// Next slot to simulate (== slots simulated so far this run).
  [[nodiscard]] long slot() const noexcept { return slot_; }

  /// Activity trace recorded during run() (empty unless record_trace).
  [[nodiscard]] const ActivityTrace& trace() const noexcept { return trace_; }

  /// Number of Scheduler::decide calls made during run() so far
  /// (observability: with fast_forward, quiescent schedulers are consulted
  /// only at event slots).
  [[nodiscard]] long consults() const noexcept { return consults_; }

  /// Execution-strategy tallies of the last run() (reset at each run start).
  /// Observability only — see RunTelemetry for why this is not part of
  /// SimulationResult.
  [[nodiscard]] const RunTelemetry& telemetry() const noexcept { return telem_; }

 private:
  /// What the just-processed slot did (drives fast-forward eligibility).
  enum class Phase : unsigned char {
    Idle,       ///< no configuration in place
    Comm,       ///< at least one transfer progressed
    Stalled,    ///< comm phase, but every pending worker was RECLAIMED
    Compute,    ///< all enrolled workers UP, one coupled compute slot banked
    Suspended,  ///< some enrolled worker RECLAIMED, computation suspended
    Completed,  ///< this compute slot finished the iteration
  };

  // --- per-slot phases -----------------------------------------------------
  void step_slot();
  void refresh_states();
  void process_downs();
  [[nodiscard]] bool consult_needed() const;
  void consult_scheduler();
  void install(const model::Configuration& config);
  void serve_communications();
  void advance_computation();
  void complete_iteration();

  // --- event-horizon fast path (DESIGN.md §8) ------------------------------
  void fast_forward();
  /// Tally one bulk advance that moved slot_ from `before` to its current
  /// value into the given run/slot telemetry pair (no-op for zero-length).
  void note_bulk_advance(long& runs, long& slots, long before, bool jumped);
  void advance_configured_run(Quiescence::Kind kind);
  void advance_comm_run();
  void advance_idle_run(Quiescence::Kind kind);
  void apply_comm_progress(std::size_t q, long slots);
  void refill_block();

  // --- realization replay: RLE-stretch jumps (DESIGN.md §9) ----------------
  void advance_configured_jump();
  void advance_comm_jump();
  void advance_idle_jump(Quiescence::Kind kind);
  void resync_window();
  void crash_down_in_range(long begin, long end);
  [[nodiscard]] const markov::State* jump_row(long slot);
  /// Frozen-realization hand-off: continue on the embedded source (standing
  /// exactly at slot_ == frontier) as an ordinary live engine. The replayed
  /// prefix and the live tail are one unbroken stream, so results are
  /// unchanged.
  void switch_to_live();
  [[nodiscard]] const markov::State* peek_row() const {
    return block_.data() + static_cast<std::size_t>(block_pos_) * states_.size();
  }
  [[nodiscard]] const markov::State* prev_of_peeked() const;
  [[nodiscard]] bool watched_membership_changed(const markov::State* prev,
                                                const markov::State* row) const;
  void crash_down_in_row(const markov::State* row);
  void record_bulk_row(const markov::State* row, bool compute);

  // --- helpers ---------------------------------------------------------
  [[nodiscard]] long comm_remaining(int q) const;
  [[nodiscard]] bool comm_phase_done() const;
  [[nodiscard]] bool all_enrolled_up() const;
  [[nodiscard]] bool any_enrolled_down() const;
  void clear_config();
  void reset_comm_remaining();
  void build_view();
  void record_slot();

  Engine(const platform::Platform& platform, const model::Application& app,
         platform::AvailabilitySource* availability,
         platform::Realization* realization, Scheduler& scheduler,
         EngineOptions options);

  const platform::Platform& platform_;
  const model::Application& app_;
  platform::AvailabilitySource* availability_;  ///< live mode (exactly one of
  platform::Realization* realization_;          ///< these two is non-null)
  Scheduler& scheduler_;
  EngineOptions options_;

  // dynamic state
  long slot_ = 0;
  long bound_ = 0;  ///< step_until limit (== slot_cap for a plain run()):
                    ///< every bulk advance clamps here instead of at the cap
  std::span<const markov::State> states_;  ///< current row inside block_
  std::vector<markov::State> block_;  ///< [block_slots_ x p] availability buffer
  long block_slots_ = 0;              ///< min(avail_block, slot_cap)
  long block_pos_ = 0;                ///< rows of block_ already consumed
  long block_filled_ = 0;             ///< rows of block_ currently valid
  long block_base_ = 0;               ///< slot of block_ row 0 (replay mode)
  std::vector<model::Holdings> holdings_;
  model::Configuration config_;
  long compute_total_ = 0;
  long compute_done_ = 0;
  long iteration_start_ = 0;
  int iterations_done_ = 0;
  bool finished_ = false;

  // per-slot action annotations; only maintained when tracing (their sole
  // consumer) is on
  std::vector<Action> actions_;

  // per-row digests over block_, computed in one pass at each refill
  // (fast_forward only). Flags are relative to the previous row, carried
  // across refills through prev_row_.
  std::vector<unsigned char> digest_up_changed_;  ///< UP-membership changed
  std::vector<unsigned char> digest_up_gain_;     ///< some proc joined UP
  std::vector<unsigned char> digest_new_down_;    ///< some proc newly DOWN
  std::vector<markov::State> prev_row_;  ///< last row of the previous block
  bool prev_row_valid_ = false;
  long digest_row_ = 0;  ///< block row of the slot being processed

  // quiescence latch: report of the most recent consult
  const Quiescence* quiesce_ = nullptr;
  long horizon_left_ = 0;           ///< skips still covered by the report
  bool decision_no_change_ = true;  ///< last consult proposed no change
  Phase last_phase_ = Phase::Idle;
  long consults_ = 0;

  // view buffers
  std::vector<long> comm_remaining_buf_;  ///< maintained incrementally;
                                          ///< debug-asserted in build_view
  SchedulerView view_;

  // reusable per-slot buffers (hoisted allocations)
  std::vector<int> pending_;     ///< serve_communications candidates
  std::vector<long> seen_mark_;  ///< per-proc stamp for duplicate detection
  long seen_gen_ = 0;
  std::vector<markov::State> comm_ref_;  ///< enrolled-state pattern of a comm run
  std::vector<markov::State> row_scratch_;   ///< event-row expansion (replay)
  std::vector<markov::State> prev_scratch_;  ///< its predecessor row (replay)
  std::vector<int> enrolled_buf_;            ///< enrolled procs of a stretch

  // bookkeeping
  SimulationResult result_;
  IterationStats current_iter_;
  ActivityTrace trace_;
  RunTelemetry telem_;
};

}  // namespace tcgrid::sim
