// The engine's extension point: an on-line scheduler.
//
// The engine calls `decide` once per time slot, before processing
// communications/computation for that slot. The view deliberately exposes
// only on-line information: current states, holdings, and progress — never
// future availability. (The paper's heuristics additionally know each
// processor's Markov model, which is part of the platform description.)
#pragma once

#include <limits>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "markov/state.hpp"
#include "model/application.hpp"
#include "model/configuration.hpp"
#include "model/holdings.hpp"
#include "platform/platform.hpp"

namespace tcgrid::sim {

/// Everything a scheduler may observe at a decision point.
struct SchedulerView {
  long slot = 0;                        ///< current time slot
  const platform::Platform* platform = nullptr;
  const model::Application* app = nullptr;

  std::span<const markov::State> states;    ///< per-processor state, this slot
  std::span<const model::Holdings> holdings;  ///< per-processor possessions

  /// Current configuration, or nullptr when none is in place (start of run,
  /// start of an iteration, or after a failure aborted the previous one).
  const model::Configuration* config = nullptr;

  long iteration_elapsed = 0;  ///< slots since the current iteration began
  long compute_total = 0;      ///< W for the current configuration (0 if none)
  long compute_done = 0;       ///< all-UP compute slots already banked

  /// Remaining communication slots per processor under the current
  /// configuration (0 for un-enrolled processors), including credit for the
  /// in-flight partial message.
  std::span<const long> comm_remaining;

  [[nodiscard]] bool has_config() const noexcept {
    return config != nullptr && !config->empty();
  }
};

/// Quiescence report: how long the answer of the most recent decide() call
/// is guaranteed stable, so the engine's event-horizon loop (DESIGN.md §8)
/// can fast-forward homogeneous slots without consulting the scheduler.
///
/// A report is a PROMISE about hypothetical future decide() calls: "given
/// the engine-visible changes listed below have not happened, decide() would
/// return exactly what it just returned, and calling it would have no side
/// effects (no RNG draws, no per-slot observation)". The engine never skips
/// a consult the report does not cover, so the default (EverySlot) is always
/// sound and keeps any third-party scheduler on the legacy per-slot path.
struct Quiescence {
  enum class Kind : unsigned char {
    /// The decision may differ at the very next slot even if nothing
    /// observable changed (stateful or time-dependent policies: RANDOM when
    /// idle, the IY rule, UPTIME/ADAPT-* which observe every slot).
    EverySlot,
    /// The decision is a pure function of the full UP set (holdings-blind
    /// ranking policies): consult again when ANY processor's UP-membership
    /// changes, in either direction.
    UntilUpSetChanges,
    /// The decision can only change on one of these events:
    ///   * a processor JOINS the UP set (new placement option),
    ///   * a `watched` processor's UP-membership changes,
    ///   * an enrolled processor goes DOWN (engine-side restart),
    ///   * communication progress or an iteration boundary (engine-side),
    ///   * more than `horizon` slots elapse.
    /// UP-set *shrinks* outside `watched` are guaranteed irrelevant (see
    /// DESIGN.md §8 for why this holds for the incremental builder).
    UntilEvent,
    /// "No change" is guaranteed for as long as the engine keeps the current
    /// configuration installed, whatever happens to states or holdings
    /// (passive policies, which never preempt a running configuration).
    WhileConfigured,
  };

  static constexpr long kUnbounded = std::numeric_limits<long>::max();

  Kind kind = Kind::EverySlot;

  /// Extra slot bound on stability (UntilEvent only): the answer expires
  /// after this many further slots even without any event. Used by
  /// time-dependent criteria (the yield's elapsed-time denominator).
  long horizon = kUnbounded;

  /// UntilEvent: processors whose UP-membership change invalidates the
  /// answer beyond the engine-side events (the memoized candidate's
  /// workers).
  std::vector<int> watched;
};

/// On-line scheduling policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Return a new configuration to install (its workers must all be UP in
  /// this slot), or std::nullopt to keep the current one (or stay idle when
  /// there is none). Installing a new configuration over an existing one
  /// aborts the in-progress computation (tight coupling: partial work lost).
  virtual std::optional<model::Configuration> decide(const SchedulerView& view) = 0;

  /// Quiescence report for the MOST RECENT decide() call. The reference is
  /// valid until the next decide(). Implementations that do not override
  /// this are consulted every slot (always sound).
  [[nodiscard]] virtual const Quiescence& quiescence() const {
    static const Quiescence every_slot{};
    return every_slot;
  }

  /// Human-readable policy name (e.g. "Y-IE").
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace tcgrid::sim
