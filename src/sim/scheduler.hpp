// The engine's extension point: an on-line scheduler.
//
// The engine calls `decide` once per time slot, before processing
// communications/computation for that slot. The view deliberately exposes
// only on-line information: current states, holdings, and progress — never
// future availability. (The paper's heuristics additionally know each
// processor's Markov model, which is part of the platform description.)
#pragma once

#include <optional>
#include <span>
#include <string_view>

#include "markov/state.hpp"
#include "model/application.hpp"
#include "model/configuration.hpp"
#include "model/holdings.hpp"
#include "platform/platform.hpp"

namespace tcgrid::sim {

/// Everything a scheduler may observe at a decision point.
struct SchedulerView {
  long slot = 0;                        ///< current time slot
  const platform::Platform* platform = nullptr;
  const model::Application* app = nullptr;

  std::span<const markov::State> states;    ///< per-processor state, this slot
  std::span<const model::Holdings> holdings;  ///< per-processor possessions

  /// Current configuration, or nullptr when none is in place (start of run,
  /// start of an iteration, or after a failure aborted the previous one).
  const model::Configuration* config = nullptr;

  long iteration_elapsed = 0;  ///< slots since the current iteration began
  long compute_total = 0;      ///< W for the current configuration (0 if none)
  long compute_done = 0;       ///< all-UP compute slots already banked

  /// Remaining communication slots per processor under the current
  /// configuration (0 for un-enrolled processors), including credit for the
  /// in-flight partial message.
  std::span<const long> comm_remaining;

  [[nodiscard]] bool has_config() const noexcept {
    return config != nullptr && !config->empty();
  }
};

/// On-line scheduling policy.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Return a new configuration to install (its workers must all be UP in
  /// this slot), or std::nullopt to keep the current one (or stay idle when
  /// there is none). Installing a new configuration over an existing one
  /// aborts the in-progress computation (tight coupling: partial work lost).
  virtual std::optional<model::Configuration> decide(const SchedulerView& view) = 0;

  /// Human-readable policy name (e.g. "Y-IE").
  [[nodiscard]] virtual std::string_view name() const = 0;
};

}  // namespace tcgrid::sim
