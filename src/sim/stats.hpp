// Per-run and per-iteration statistics produced by the engine.
#pragma once

#include <vector>

#include "obs/obs.hpp"

namespace tcgrid::sim {

/// Breakdown of a single completed application iteration.
struct IterationStats {
  long start_slot = 0;      ///< slot at which the iteration began
  long end_slot = 0;        ///< slot at which the last compute slot landed
  long comm_slots = 0;      ///< slots with at least one active transfer
  long stalled_slots = 0;   ///< comm-phase slots where every pending worker
                            ///< was RECLAIMED (no transfer progressed)
  long compute_slots = 0;   ///< all-UP compute slots (== W on completion)
  long suspended_slots = 0; ///< compute-phase slots lost to RECLAIMED workers
  int restarts = 0;         ///< aborts due to an enrolled worker going DOWN
  int reconfigurations = 0; ///< voluntary (proactive) configuration switches
};

/// Outcome of one simulation run.
struct SimulationResult {
  bool success = false;          ///< completed all iterations before the cap
  long makespan = 0;             ///< slots used (== cap when !success)
  int iterations_completed = 0;
  std::vector<IterationStats> iterations;  ///< one entry per completed iteration

  long total_restarts = 0;
  long total_reconfigurations = 0;
  long idle_slots = 0;  ///< slots with no configuration in place
};

/// Execution-strategy telemetry for one Engine::run() (Engine::telemetry()).
///
/// Observability ONLY — deliberately NOT part of SimulationResult or
/// IterationStats: the bench digest gates (bench_common.hpp DigestSink)
/// hash every result field and require bit-identity across fast-forward
/// on/off and replay/live, while these tallies are a property of HOW the
/// run executed (per-slot steps vs bulk runs vs replay jumps) and differ
/// structurally between the strategies even though the results agree.
struct RunTelemetry {
  long per_slot_steps = 0;        ///< slots taken by the per-slot loop
  long bulk_runs_comm = 0;        ///< comm-phase bulk advances
  long bulk_runs_configured = 0;  ///< compute/suspended bulk advances
  long bulk_runs_idle = 0;        ///< idle bulk advances
  long bulk_slots_comm = 0;       ///< slots covered by those advances…
  long bulk_slots_configured = 0;
  long bulk_slots_idle = 0;
  long replay_jumps = 0;  ///< bulk advances taken via digest-bitset jumps
  /// Length distribution of every bulk advance (slots per advance).
  obs::LocalHistogram bulk_advance_slots;

  // Lockstep trial-batch execution (sim::TrialBatch, DESIGN.md §13). Zero
  // for plain Engine runs; on a TrialBatch these live in its batch-level
  // telemetry (the per-lane engines keep their own ordinary tallies above).
  long batch_rounds = 0;  ///< lockstep rounds driven over the batch
  long batch_peels = 0;   ///< lane-rounds peeled to the scalar tail (a lane's
                          ///< availability changed — or ran off its
                          ///< materialized frontier — inside the round)
  /// Active-lane count observed once per lockstep round (the batch width
  /// as trials finish and the tail goes ragged).
  obs::LocalHistogram batch_width;
};

}  // namespace tcgrid::sim
