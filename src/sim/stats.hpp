// Per-run and per-iteration statistics produced by the engine.
#pragma once

#include <vector>

namespace tcgrid::sim {

/// Breakdown of a single completed application iteration.
struct IterationStats {
  long start_slot = 0;      ///< slot at which the iteration began
  long end_slot = 0;        ///< slot at which the last compute slot landed
  long comm_slots = 0;      ///< slots with at least one active transfer
  long stalled_slots = 0;   ///< comm-phase slots where every pending worker
                            ///< was RECLAIMED (no transfer progressed)
  long compute_slots = 0;   ///< all-UP compute slots (== W on completion)
  long suspended_slots = 0; ///< compute-phase slots lost to RECLAIMED workers
  int restarts = 0;         ///< aborts due to an enrolled worker going DOWN
  int reconfigurations = 0; ///< voluntary (proactive) configuration switches
};

/// Outcome of one simulation run.
struct SimulationResult {
  bool success = false;          ///< completed all iterations before the cap
  long makespan = 0;             ///< slots used (== cap when !success)
  int iterations_completed = 0;
  std::vector<IterationStats> iterations;  ///< one entry per completed iteration

  long total_restarts = 0;
  long total_reconfigurations = 0;
  long idle_slots = 0;  ///< slots with no configuration in place
};

}  // namespace tcgrid::sim
