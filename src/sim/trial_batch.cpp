#include "sim/trial_batch.hpp"

#include <algorithm>
#include <stdexcept>

#include "platform/realization.hpp"

namespace tcgrid::sim {

namespace {

/// Round width in slots. Rounds bound how far a peeled lane runs alone
/// before rejoining the batch; 4096 keeps the shared estimator / survival
/// caches hot across lanes (all B lanes of a cell query the same scenario's
/// tables within one round) while the per-round horizon pass stays noise.
/// Any value >= 1 yields identical results — only the interleaving changes.
constexpr long kRound = 4096;

std::vector<platform::Realization*> realizations_of(
    const std::vector<TrialBatch::Lane>& lanes) {
  std::vector<platform::Realization*> out;
  out.reserve(lanes.size());
  for (const auto& lane : lanes) out.push_back(lane.realization);
  return out;
}

}  // namespace

TrialBatch::TrialBatch(const platform::Platform& platform,
                       const model::Application& app, std::vector<Lane> lanes,
                       const EngineOptions& options)
    : batch_(realizations_of(lanes)), slot_cap_(options.slot_cap) {
  if (lanes.empty()) throw std::invalid_argument("TrialBatch: no lanes");
  engines_.reserve(lanes.size());
  for (const auto& lane : lanes) {
    if (lane.realization == nullptr || lane.scheduler == nullptr) {
      throw std::invalid_argument("TrialBatch: null lane");
    }
    engines_.push_back(std::make_unique<Engine>(
        platform, app, *lane.realization, *lane.scheduler, options));
  }
}

TrialBatch::Outcome TrialBatch::run(const std::atomic<bool>* stop) {
  const int b = width();
  Outcome out;
  out.results.resize(static_cast<std::size_t>(b));
  out.completed.assign(static_cast<std::size_t>(b), false);
  out.budget_exceeded.assign(static_cast<std::size_t>(b), false);

  std::vector<char> active(static_cast<std::size_t>(b), 1);
  int n_active = b;
  for (auto& engine : engines_) engine->begin_run();

  // Every active lane stands at the common round base `h`; finished /
  // budget-blown lanes drop out (ragged tail) and stop constraining the
  // horizon via RealizationBatch::deactivate.
  long h = 0;
  while (n_active > 0) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      out.cancelled = true;
      break;
    }
    ++telem_.batch_rounds;
    telem_.batch_width.observe(static_cast<std::uint64_t>(n_active));

    const long target = std::min(h + kRound, slot_cap_);
    const long horizon = batch_.safe_horizon(h, target);
    const auto& next_changes = batch_.next_changes();

    auto retire = [&](int i, bool budget) {
      const auto li = static_cast<std::size_t>(i);
      if (budget) {
        out.budget_exceeded[li] = true;
      } else {
        out.results[li] = engines_[li]->finish_run();
        out.completed[li] = true;
      }
      active[li] = 0;
      batch_.deactivate(i);
      --n_active;
    };

    // Phase 1 — lockstep: every lane crosses the provably-quiet region
    // [h, horizon) as one bulk advance (no lane's digest bits fire in it).
    if (horizon > h) {
      for (int i = 0; i < b; ++i) {
        const auto li = static_cast<std::size_t>(i);
        if (!active[li]) continue;
        try {
          if (engines_[li]->step_until(horizon)) retire(i, false);
        } catch (const platform::RealizationBudgetExceeded&) {
          retire(i, true);
        }
      }
    }

    // Phase 2 — scalar tail: lanes with an availability event (or an
    // unmaterialized stretch) inside the round run it alone; change-free
    // lanes just take one more bulk advance to the boundary. All survivors
    // rejoin at `target`.
    for (int i = 0; i < b; ++i) {
      const auto li = static_cast<std::size_t>(i);
      if (!active[li]) continue;
      if (next_changes[li] < target) ++telem_.batch_peels;
      try {
        if (engines_[li]->step_until(target)) retire(i, false);
      } catch (const platform::RealizationBudgetExceeded&) {
        retire(i, true);
      }
    }

    h = target;
    if (h >= slot_cap_) break;  // survivors hit the cap and retired above
  }
  return out;
}

}  // namespace tcgrid::sim
