#include "sim/gantt.hpp"

#include <algorithm>
#include <sstream>

namespace tcgrid::sim {

namespace {

char cell_char(const Cell& c) {
  switch (c.state) {
    case markov::State::Down: return '#';
    case markov::State::Reclaimed: return '~';
    case markov::State::Up: break;
  }
  return c.action == Action::None ? '.' : static_cast<char>(c.action);
}

}  // namespace

std::string render_gantt(const ActivityTrace& trace, long from, long to) {
  std::ostringstream os;
  if (trace.empty()) return "(empty trace)\n";
  const long end = to < 0 ? static_cast<long>(trace.size())
                          : std::min<long>(to, static_cast<long>(trace.size()));
  const long begin = std::clamp<long>(from, 0, end);
  const std::size_t procs = trace.front().size();

  // Time ruler (tens digit then units digit), helps reading long charts.
  os << "      ";
  for (long t = begin; t < end; ++t) os << ((t / 10) % 10);
  os << '\n' << "      ";
  for (long t = begin; t < end; ++t) os << (t % 10);
  os << '\n';

  for (std::size_t q = 0; q < procs; ++q) {
    os << 'P' << (q + 1);
    os << std::string(q + 1 >= 10 ? 2 : 3, ' ') << '|';
    for (long t = begin; t < end; ++t) {
      os << cell_char(trace[static_cast<std::size_t>(t)][q]);
    }
    os << '\n';
  }
  return os.str();
}

std::string gantt_legend() {
  return "P=program transfer  D=data transfer  C=computing  I=enrolled idle  "
         ".=up (not enrolled)  ~=RECLAIMED  #=DOWN\n";
}

}  // namespace tcgrid::sim
