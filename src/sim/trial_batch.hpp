// Lockstep trial-batch engine (DESIGN.md §13): replay B trials of one
// (scenario, heuristic) cell side by side through the resumable Engine API.
//
// Each lane owns an ordinary replay-mode Engine over its trial's
// materialized Realization; the batch drives them in fixed-width rounds:
//
//   1. a one-pass batchwide safe horizon over the lanes' digest bitsets
//      (platform::RealizationBatch::safe_horizon, materialized prefixes
//      only) finds the largest [h, horizon) every lane is provably
//      change-free on, and all lanes bulk-advance through it together;
//   2. lanes whose availability DOES something inside the round — or whose
//      materialized frontier falls short — are peeled to a scalar tail and
//      individually stepped to the common round target, rejoining the
//      batch at the next round boundary.
//
// Bit-identity: each lane is a plain Engine whose step_until split is
// outcome-identical to one run() call (engine.hpp §13 note), lanes share
// no mutable state except value-transparent caches (estimator memo /
// survival tables — identical answers whichever lane populates them), and
// the horizon pass never materializes a slot the lane's own engine would
// not have pulled. So results AND traces equal B sequential runs, for any
// width and any round size; tests/batch_test.cpp and the bench_sweep
// digest gate enforce it.
#pragma once

#include <atomic>
#include <memory>
#include <vector>

#include "platform/realization.hpp"
#include "sim/engine.hpp"

namespace tcgrid::sim {

/// Runs B independent trials of one (scenario, heuristic) cell in lockstep
/// rounds. Single-threaded: one TrialBatch per worker thread, like the
/// engines it wraps.
class TrialBatch {
 public:
  /// One trial's replay inputs. Both pointers are non-owning and must
  /// outlive the batch; the scheduler must be freshly constructed (same
  /// contract as handing it to an Engine).
  struct Lane {
    platform::Realization* realization = nullptr;
    Scheduler* scheduler = nullptr;
  };

  /// Per-lane outcomes of one run() call. Exactly one of completed[i] /
  /// budget_exceeded[i] is set per lane unless the run was cancelled;
  /// results[i] is meaningful only when completed[i].
  struct Outcome {
    std::vector<SimulationResult> results;
    std::vector<bool> completed;        ///< ran to its natural end
    std::vector<bool> budget_exceeded;  ///< RealizationBudgetExceeded: the
                                        ///< lane holds no salvageable state;
                                        ///< rerun it against live generation
    bool cancelled = false;             ///< stop flag seen at a round boundary
  };

  /// `options` applies to every lane (trial_batch itself is ignored here —
  /// the width is lanes.size()).
  TrialBatch(const platform::Platform& platform, const model::Application& app,
             std::vector<Lane> lanes, const EngineOptions& options);

  /// Drive every lane to completion (or until `stop` is raised, checked at
  /// round boundaries). Callable once per TrialBatch.
  [[nodiscard]] Outcome run(const std::atomic<bool>* stop = nullptr);

  [[nodiscard]] int width() const noexcept {
    return static_cast<int>(engines_.size());
  }

  /// Lane engine (trace / consults / per-lane telemetry access).
  [[nodiscard]] const Engine& engine(int lane) const {
    return *engines_[static_cast<std::size_t>(lane)];
  }

  /// Batch-level execution telemetry: batch_rounds / batch_peels /
  /// batch_width (stats.hpp). Per-lane engines keep their own ordinary
  /// tallies; observability only, excluded from every digest.
  [[nodiscard]] const RunTelemetry& batch_telemetry() const noexcept {
    return telem_;
  }

 private:
  std::vector<std::unique_ptr<Engine>> engines_;
  platform::RealizationBatch batch_;
  long slot_cap_;
  RunTelemetry telem_;
};

}  // namespace tcgrid::sim
