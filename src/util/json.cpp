#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace tcgrid::util::json {

namespace {

[[noreturn]] void kind_error(const char* want, Value::Kind got) {
  static const char* names[] = {"null",   "bool",  "int",   "uint",
                                "double", "string", "array", "object"};
  throw std::invalid_argument(std::string("json: expected ") + want + ", value is " +
                              names[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::Bool) kind_error("bool", kind_);
  return bool_;
}

long long Value::as_int() const {
  if (kind_ == Kind::Int) return int_;
  if (kind_ == Kind::Uint) {
    if (uint_ > static_cast<unsigned long long>(INT64_MAX)) {
      throw std::invalid_argument("json: integer overflows int64");
    }
    return static_cast<long long>(uint_);
  }
  kind_error("integer", kind_);
}

unsigned long long Value::as_uint() const {
  if (kind_ == Kind::Uint) return uint_;
  if (kind_ == Kind::Int) {
    if (int_ < 0) throw std::invalid_argument("json: negative integer where unsigned expected");
    return static_cast<unsigned long long>(int_);
  }
  kind_error("unsigned integer", kind_);
}

double Value::as_double() const {
  switch (kind_) {
    case Kind::Int: return static_cast<double>(int_);
    case Kind::Uint: return static_cast<double>(uint_);
    case Kind::Double: return dbl_;
    default: kind_error("number", kind_);
  }
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::String) kind_error("string", kind_);
  return str_;
}

const Array& Value::as_array() const {
  if (kind_ != Kind::Array) kind_error("array", kind_);
  return arr_;
}

const Object& Value::as_object() const {
  if (kind_ != Kind::Object) kind_error("object", kind_);
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  for (const Member& m : as_object()) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

bool Value::operator==(const Value& other) const {
  // Numeric kinds compare by value across Int/Uint (an in-range uint equals
  // the same int); Double only equals Double — lexical class is meaning
  // here (1 round-trips as an integer, 1.0 as a double).
  if (is_integer() && other.is_integer()) {
    const bool neg = kind_ == Kind::Int && int_ < 0;
    const bool oneg = other.kind_ == Kind::Int && other.int_ < 0;
    if (neg != oneg) return false;
    if (neg) return int_ == other.int_;
    const unsigned long long a =
        kind_ == Kind::Uint ? uint_ : static_cast<unsigned long long>(int_);
    const unsigned long long b = other.kind_ == Kind::Uint
                                     ? other.uint_
                                     : static_cast<unsigned long long>(other.int_);
    return a == b;
  }
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Double: return dbl_ == other.dbl_;
    case Kind::String: return str_ == other.str_;
    case Kind::Array: return arr_ == other.arr_;
    case Kind::Object: return obj_ == other.obj_;
    default: return false;  // unreachable (integers handled above)
  }
}

// ------------------------------------------------------------------ parser ----

namespace {

constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json parse error at offset " + std::to_string(pos_) +
                                ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void expect_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal (expected " + std::string(word) + ")");
    }
    pos_ += word.size();
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case 'n': expect_word("null"); return Value(nullptr);
      default: return parse_number();
    }
  }

  Value parse_object(int depth) {
    expect('{');
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      for (const Member& m : obj) {
        if (m.first == key) fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array(int depth) {
    expect('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      return Value(std::move(arr));
    }
  }

  void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: must pair with a low one.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' || text_[pos_ + 1] != 'u') {
              fail("unpaired high surrogate");
            }
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail("invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("invalid number");
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      // Exact 64-bit storage: negative through int64, non-negative through
      // uint64 (full-range scenario seeds). Out-of-range integers fall back
      // to double like any other JSON parser.
      if (token[0] == '-') {
        long long v = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
        if (ec == std::errc() && p == token.end()) return Value(v);
      } else {
        unsigned long long v = 0;
        const auto [p, ec] = std::from_chars(token.begin(), token.end(), v);
        if (ec == std::errc() && p == token.end()) return Value(v);
      }
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(token.begin(), token.end(), d);
    if (ec != std::errc() || p != token.end()) fail("number out of range");
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).run(); }

// ------------------------------------------------------------------ writer ----

void append_quoted(std::string_view s, std::string& out) {
  static const char* hex = "0123456789abcdef";
  out.push_back('"');
  for (char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\r') {
      out += "\\r";
    } else if (c == '\t') {
      out += "\\t";
    } else if (u < 0x20) {
      out += "\\u00";
      out.push_back(hex[u >> 4]);
      out.push_back(hex[u & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

void dump_to(const Value& v, std::string& out) {
  switch (v.kind()) {
    case Value::Kind::Null: out += "null"; return;
    case Value::Kind::Bool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Kind::Int: out += std::to_string(v.as_int()); return;
    case Value::Kind::Uint: out += std::to_string(v.as_uint()); return;
    case Value::Kind::Double: {
      const double d = v.as_double();
      if (!std::isfinite(d)) {
        throw std::invalid_argument("json: cannot serialize non-finite double");
      }
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.17g", d);
      out += buf;
      return;
    }
    case Value::Kind::String: append_quoted(v.as_string(), out); return;
    case Value::Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const Value& e : v.as_array()) {
        if (!first) out.push_back(',');
        first = false;
        dump_to(e, out);
      }
      out.push_back(']');
      return;
    }
    case Value::Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const Member& m : v.as_object()) {
        if (!first) out.push_back(',');
        first = false;
        append_quoted(m.first, out);
        out.push_back(':');
        dump_to(m.second, out);
      }
      out.push_back('}');
      return;
    }
  }
}

std::string dump(const Value& v) {
  std::string out;
  dump_to(v, out);
  return out;
}

}  // namespace tcgrid::util::json
