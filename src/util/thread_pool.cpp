#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

namespace tcgrid::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads, std::size_t chunk) {
  if (chunk == 0) chunk = 1;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads <= 1 || n <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t grabs = (n + chunk - 1) / chunk;
  ThreadPool pool(std::min(threads, grabs));
  std::atomic<std::size_t> next{0};
  for (std::size_t w = 0; w < pool.size(); ++w) {
    pool.submit([&] {
      for (;;) {
        const std::size_t g = next.fetch_add(1);
        if (g >= grabs) return;
        const std::size_t lo = g * chunk;
        const std::size_t hi = std::min(n, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace tcgrid::util
