// Deterministic random number generation with hierarchical stream derivation.
//
// Reproducibility is the backbone of the whole experiment harness: a trial's
// availability realization must be a pure function of (scenario seed, trial
// index) so that every heuristic evaluated on that trial sees the *same*
// processor availability (paired comparison, as in the paper's methodology).
//
// We wrap std::mt19937_64 and derive child seeds with SplitMix64, which is
// the recommended way to spawn decorrelated streams from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace tcgrid::util {

/// SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit output.
/// Used both as a seed scrambler and to derive independent child seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a parent seed with a stream index into a child seed.
/// Distinct (seed, stream) pairs yield decorrelated child seeds.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  return splitmix64(seed ^ splitmix64(stream ^ 0xa5a5a5a5a5a5a5a5ULL));
}

/// Seeded pseudo-random generator with the distributions the library needs.
///
/// All stochastic components (scenario generation, availability sampling,
/// the RANDOM heuristic) take an explicit Rng; nothing reads global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)), seed_(seed) {}

  /// The seed this generator was constructed with (pre-scrambling).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Child generator for an independent stream, e.g. one per trial.
  [[nodiscard]] Rng spawn(std::uint64_t stream) const {
    return Rng(derive_seed(seed_, stream));
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1).
  [[nodiscard]] double uniform01() { return uniform(0.0, 1.0); }

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] long uniform_int(long lo, long hi) {
    return std::uniform_int_distribution<long>(lo, hi)(engine_);
  }

  /// Index in [0, n): convenience for choosing among n alternatives.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<long>(n) - 1));
  }

  /// Weibull-distributed positive real (shape k, scale lambda).
  /// Used by the semi-Markov availability extension.
  [[nodiscard]] double weibull(double shape, double scale) {
    return std::weibull_distribution<double>(shape, scale)(engine_);
  }

  /// Exponential with given rate (> 0).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Access to the underlying engine for std algorithms (e.g. std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace tcgrid::util
