// Deterministic random number generation with hierarchical stream derivation.
//
// Reproducibility is the backbone of the whole experiment harness: a trial's
// availability realization must be a pure function of (scenario seed, trial
// index) so that every heuristic evaluated on that trial sees the *same*
// processor availability (paired comparison, as in the paper's methodology).
//
// We wrap std::mt19937_64 and derive child seeds with SplitMix64, which is
// the recommended way to spawn decorrelated streams from a single seed.
#pragma once

#include <cstdint>
#include <random>

namespace tcgrid::util {

/// SplitMix64 step: maps a 64-bit state to a well-mixed 64-bit output.
/// Used both as a seed scrambler and to derive independent child seeds.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine a parent seed with a stream index into a child seed.
/// Distinct (seed, stream) pairs yield decorrelated child seeds.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t stream) noexcept {
  return splitmix64(seed ^ splitmix64(stream ^ 0xa5a5a5a5a5a5a5a5ULL));
}

/// Two-index child-seed derivation: chains derive_seed through both indices,
/// so distinct (a, b) pairs map to distinct streams by construction. The
/// scenario grid uses this for its cell seeds — unlike the historical
/// additive scheme (`cell * 1000 + s`), no (cell, s) pair can collide with a
/// neighbouring cell's stream regardless of how large either index grows.
[[nodiscard]] constexpr std::uint64_t derive_seed2(std::uint64_t seed, std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return derive_seed(derive_seed(seed, a), b);
}

/// The exact bit-to-[0,1) mapping behind Rng::uniform01: one 64-bit draw,
/// rounded to double and scaled by 2^-64 (a power-of-two scale, hence exact),
/// clamped into [0, 1). This mapping is fully specified — mt19937_64 plus
/// this function pins every uniform01-driven stream (the Markov and
/// cyclostationary availability families) bit-for-bit across standard
/// libraries, where std::uniform_real_distribution's output is
/// implementation-defined (on libstdc++/GCC 12 this function reproduces it
/// exactly). Streams drawn through other std distributions (weibull(),
/// uniform_int(), uniform(lo, hi)) remain implementation-defined.
[[nodiscard]] constexpr double u01_from_bits(std::uint64_t x) noexcept {
  const double u = static_cast<double>(x) * 0x1p-64;
  return u < 1.0 ? u : 0x1.fffffffffffffp-1;  // nextafter(1.0, 0.0)
}

/// Raw draws >= kU01Top round to the same double as kU01Top, so clamping a
/// draw to kU01Top preserves u01_from_bits exactly while keeping thresholds
/// representable in 64 bits (see uniform01_cut).
inline constexpr std::uint64_t kU01Top = ~0ULL - 1;

/// Integer threshold equivalent of a comparison against u01_from_bits:
///
///   u01_from_bits(x) < c   <=>   min(x, kU01Top) < uniform01_cut(c)
///
/// for EVERY raw draw x and any double c. Computed by binary search over the
/// (monotone) mapping, so the equivalence is exact — including degenerate
/// rows (c <= 0 never fires; c > max attainable value always fires). This is
/// what lets the block-stepped availability fast path replace the per-step
/// double conversion + compare with one integer compare while remaining
/// bit-identical to the reference path.
[[nodiscard]] constexpr std::uint64_t uniform01_cut(double c) noexcept {
  if (u01_from_bits(0) >= c) return 0;           // no draw ever lies below c
  if (u01_from_bits(kU01Top) < c) return ~0ULL;  // every draw lies below c
  std::uint64_t lo = 0, hi = kU01Top;  // invariant: u01(lo) < c <= u01(hi)
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (u01_from_bits(mid) < c) lo = mid;
    else hi = mid;
  }
  return hi;
}

/// Seeded pseudo-random generator with the distributions the library needs.
///
/// All stochastic components (scenario generation, availability sampling,
/// the RANDOM heuristic) take an explicit Rng; nothing reads global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)), seed_(seed) {}

  /// The seed this generator was constructed with (pre-scrambling).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Child generator for an independent stream, e.g. one per trial.
  [[nodiscard]] Rng spawn(std::uint64_t stream) const {
    return Rng(derive_seed(seed_, stream));
  }

  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform real in [0, 1): exactly u01_from_bits of one engine draw.
  /// Availability streams are pinned to this mapping (see u01_from_bits);
  /// the block-stepped fast path relies on it via uniform01_cut.
  [[nodiscard]] double uniform01() { return u01_from_bits(engine_()); }

  /// Uniform integer in the closed range [lo, hi].
  [[nodiscard]] long uniform_int(long lo, long hi) {
    return std::uniform_int_distribution<long>(lo, hi)(engine_);
  }

  /// Index in [0, n): convenience for choosing among n alternatives.
  [[nodiscard]] std::size_t index(std::size_t n) {
    return static_cast<std::size_t>(uniform_int(0, static_cast<long>(n) - 1));
  }

  /// Weibull-distributed positive real (shape k, scale lambda).
  /// Used by the semi-Markov availability extension.
  [[nodiscard]] double weibull(double shape, double scale) {
    return std::weibull_distribution<double>(shape, scale)(engine_);
  }

  /// Exponential with given rate (> 0).
  [[nodiscard]] double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Access to the underlying engine for std algorithms (e.g. std::shuffle).
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace tcgrid::util
