// Column-aligned ASCII table formatting, used by the bench harness to print
// the paper's Table I / Table II rows and by examples for readable output.
#pragma once

#include <string>
#include <vector>

namespace tcgrid::util {

/// Simple right-padded/left-padded text table.
///
/// Columns are sized to the widest cell. Numeric-looking cells are right
/// aligned; everything else is left aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render with a header underline, one row per line.
  [[nodiscard]] std::string str() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Format a double with fixed precision (helper for table cells).
  [[nodiscard]] static std::string num(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tcgrid::util
