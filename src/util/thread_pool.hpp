// Fixed-size thread pool with a parallel_for helper.
//
// The experiment harness runs thousands of independent (scenario, trial,
// heuristic) simulations; they parallelize embarrassingly. On a single-core
// host the pool degrades gracefully to sequential execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tcgrid::util {

/// Work-queue thread pool. Tasks are void() closures; exceptions inside
/// tasks terminate (by design: harness tasks must not throw — they report
/// failures through their result slots instead).
class ThreadPool {
 public:
  /// Spawn `threads` workers (0 → hardware_concurrency, min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have finished.
  void wait_idle();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Run fn(i) for i in [0, n) across a pool; blocks until all complete.
/// With `threads == 1` (or n small) this is effectively sequential, which
/// keeps single-core runs deterministic and overhead-free. Workers claim
/// `chunk` CONSECUTIVE aligned indices per dispatch (default 1 = the plain
/// dynamic schedule): callers whose consecutive indices share expensive
/// state — Session::run's trials of one scenario sharing a cached
/// estimator — pass the group size so a whole group lands on one worker.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0, std::size_t chunk = 1);

}  // namespace tcgrid::util
