#include "util/cli.hpp"

#include <cstdlib>

namespace tcgrid::util {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      options_[body.substr(0, eq)] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token as the value unless it
    // looks like another option.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[body] = argv[++i];
    } else {
      options_[body] = "";
    }
  }
}

bool Cli::has(const std::string& name) const { return options_.count(name) > 0; }

std::optional<std::string> Cli::value(const std::string& name) const {
  auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get(const std::string& name, const std::string& fallback) const {
  auto v = value(name);
  return (v && !v->empty()) ? *v : fallback;
}

long Cli::get_long(const std::string& name, long fallback) const {
  auto v = value(name);
  if (!v || v->empty()) return fallback;
  return std::strtol(v->c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& name, double fallback) const {
  auto v = value(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  auto v = value(name);
  if (!v) return fallback;
  if (v->empty()) return true;  // bare `--flag`
  return *v == "1" || *v == "true" || *v == "yes" || *v == "on";
}

}  // namespace tcgrid::util
