// Minimal command-line option parser used by bench binaries and examples.
//
// Supports `--name value`, `--name=value`, and boolean flags `--name`.
// Unknown options are collected so callers can reject or ignore them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace tcgrid::util {

/// Parsed command line: option map plus positional arguments.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if `--name` was present (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name`, if one was supplied.
  [[nodiscard]] std::optional<std::string> value(const std::string& name) const;

  [[nodiscard]] std::string get(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] long get_long(const std::string& name, long fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback = false) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Program name (argv[0]).
  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;  // name -> value ("" for bare flags)
  std::vector<std::string> positional_;
};

}  // namespace tcgrid::util
