#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace tcgrid::util {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
          c == '+' || c == '%' || c == 'e' || c == 'E')) {
      return false;
    }
  }
  return true;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row, bool align_numeric) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const bool right = align_numeric && looks_numeric(row[c]);
      const std::size_t pad = width[c] - row[c].size();
      if (right) os << std::string(pad, ' ') << row[c];
      else os << row[c] << std::string(pad, ' ');
    }
    os << '\n';
  };
  emit(header_, false);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row, true);
  return os.str();
}

}  // namespace tcgrid::util
