#include "util/csv.hpp"

#include <stdexcept>

namespace tcgrid::util {

CsvWriter::CsvWriter(std::vector<std::string> header) : arity_(header.size()) {
  emit(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  if (row.size() != arity_) {
    throw std::invalid_argument("CsvWriter::add_row: arity mismatch");
  }
  emit(row);
}

std::string CsvWriter::escape(const std::string& field) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::emit(const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) buffer_ << ',';
    buffer_ << escape(row[i]);
  }
  buffer_ << '\n';
}

bool CsvWriter::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << buffer_.str();
  return static_cast<bool>(out);
}

}  // namespace tcgrid::util
