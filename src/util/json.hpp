// Minimal JSON document model, parser and writer.
//
// Grown for the serve subsystem's wire protocol and the ExperimentSpec
// round-trip: newline-delimited JSON requests/responses and checkpoint
// manifests. Deliberately small — a tree of Values, a strict recursive
// descent parser, and a deterministic writer — no reflection, no SAX.
//
// Numbers keep their lexical class: integer literals parse into exact
// signed/unsigned 64-bit storage (scenario seeds are full-range uint64 and
// MUST survive a round trip bit-exactly; a double would silently drop low
// bits past 2^53), everything else into double. The writer emits integers
// as integers and doubles with enough digits ('%.17g') to reparse exactly,
// so parse(dump(v)) is the identity on every value this library produces.
//
// Objects preserve insertion order (the writer is deterministic given the
// construction order), and duplicate keys are a parse error rather than a
// silent last-wins.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tcgrid::util::json {

class Value;
using Array = std::vector<Value>;
using Member = std::pair<std::string, Value>;
using Object = std::vector<Member>;

class Value {
 public:
  enum class Kind { Null, Bool, Int, Uint, Double, String, Array, Object };

  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(long v) : kind_(Kind::Int), int_(v) {}
  Value(long long v) : kind_(Kind::Int), int_(v) {}
  Value(unsigned v) : kind_(Kind::Uint), uint_(v) {}
  Value(unsigned long v) : kind_(Kind::Uint), uint_(v) {}
  Value(unsigned long long v) : kind_(Kind::Uint), uint_(v) {}
  Value(double v) : kind_(Kind::Double), dbl_(v) {}
  Value(const char* s) : kind_(Kind::String), str_(s) {}
  Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::String), str_(s) {}
  Value(Array a) : kind_(Kind::Array), arr_(std::move(a)) {}
  Value(Object o) : kind_(Kind::Object), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }
  /// Any numeric kind (Int, Uint or Double).
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::Int || kind_ == Kind::Uint || kind_ == Kind::Double;
  }
  /// A number that carries an exact integer (Int or Uint — i.e. an integer
  /// literal; 3.0 parses as Double and is NOT an integer here).
  [[nodiscard]] bool is_integer() const noexcept {
    return kind_ == Kind::Int || kind_ == Kind::Uint;
  }

  // Typed accessors. Each throws std::invalid_argument on a kind mismatch
  // (callers wanting field-path error messages check kinds first — see
  // api/spec_json.cpp).
  [[nodiscard]] bool as_bool() const;
  /// Int or in-range Uint; throws on overflow past INT64_MAX.
  [[nodiscard]] long long as_int() const;
  /// Uint or non-negative Int.
  [[nodiscard]] unsigned long long as_uint() const;
  /// Any numeric kind, widened to double.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Member lookup on an object (nullptr when absent); throws when not an
  /// object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  bool operator==(const Value& other) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  long long int_ = 0;
  unsigned long long uint_ = 0;
  double dbl_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse one JSON document; the whole input must be consumed (trailing
/// non-whitespace is an error). Throws std::invalid_argument with the byte
/// offset of the problem. Nesting is capped (64 levels) so hostile input
/// cannot blow the stack.
[[nodiscard]] Value parse(std::string_view text);

/// Serialize compactly (no insignificant whitespace), deterministically,
/// with full string escaping — the emitted bytes are a pure function of the
/// value. Non-finite doubles throw (JSON has no representation for them).
[[nodiscard]] std::string dump(const Value& value);

/// Append `value` serialized to `out` (the allocation-friendly form dump()
/// wraps).
void dump_to(const Value& value, std::string& out);

/// Escape + quote a string exactly as dump() would (for hand-rolled
/// emitters that stream rows without building a Value tree).
void append_quoted(std::string_view s, std::string& out);

}  // namespace tcgrid::util::json
