// Local stream-socket helpers for the serve subsystem.
//
// The daemon speaks newline-delimited JSON over unix-domain stream sockets;
// these helpers own the POSIX plumbing: an RAII fd, listen/connect on a
// filesystem path, an anonymous in-process socketpair (the protocol tests
// run client and server over one without touching the filesystem), and a
// buffered line channel implementing the framing.
#pragma once

#include <string>
#include <string_view>
#include <utility>

namespace tcgrid::util {

/// RAII file descriptor (move-only; closes on destruction).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  /// Close now (idempotent).
  void reset();
  /// Give up ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Bind + listen on a unix-domain stream socket at `path`, unlinking any
/// stale socket file first. Throws std::runtime_error (with errno text) on
/// failure — including paths longer than sockaddr_un allows (~107 bytes).
[[nodiscard]] Fd listen_unix(const std::string& path);

/// Connect to a listening unix-domain socket. Throws std::runtime_error.
[[nodiscard]] Fd connect_unix(const std::string& path);

/// Bind + listen on a TCP stream socket at host:port (SO_REUSEADDR set;
/// host resolved with getaddrinfo, so "127.0.0.1", "::1" and names all
/// work). Throws std::runtime_error. The serve daemon uses this to make
/// shards reachable across hosts; the NDJSON protocol is transport-agnostic.
[[nodiscard]] Fd listen_tcp(const std::string& host, unsigned short port);

/// Connect to a listening TCP socket (TCP_NODELAY set — the serve protocol
/// is request/response over small lines). Throws std::runtime_error.
[[nodiscard]] Fd connect_tcp(const std::string& host, unsigned short port);

/// Connect to a serve-style address string:
///   "tcp:HOST:PORT"  -> connect_tcp (last ':' splits the port, so IPv6
///                       literals work unbracketed)
///   "unix:PATH"      -> connect_unix
///   anything else    -> connect_unix (a bare filesystem path)
/// Throws std::runtime_error (std::invalid_argument for malformed tcp:).
[[nodiscard]] Fd connect_address(const std::string& address);

/// Accept one connection (blocking); invalid Fd on failure/shutdown.
[[nodiscard]] Fd accept_connection(int listen_fd);

/// Anonymous connected stream pair (tests: client on .first, server on
/// .second). Throws std::runtime_error.
[[nodiscard]] std::pair<Fd, Fd> stream_socketpair();

/// Buffered newline-delimited framing over a stream socket. Reads retry on
/// EINTR; writes use MSG_NOSIGNAL so a vanished peer surfaces as a false
/// return, never SIGPIPE. Non-owning: the fd must outlive the channel.
class LineChannel {
 public:
  explicit LineChannel(int fd) : fd_(fd) {}

  /// Read one '\n'-terminated line into `line` (newline stripped). Returns
  /// false on EOF or error. Lines beyond `kMaxLine` abort the read (a
  /// hostile peer must not balloon server memory).
  bool read_line(std::string& line);

  /// Write `line` plus a trailing '\n'; false once the peer is gone.
  bool write_line(std::string_view line);

  static constexpr std::size_t kMaxLine = 64ull << 20;  ///< 64 MiB

 private:
  int fd_;
  std::string buf_;    ///< unconsumed bytes past the last returned line
  std::size_t pos_ = 0;
};

}  // namespace tcgrid::util
