// Read-only memory-mapped files and durable atomic file publication.
//
// The persistent chain-statistics store (markov/persistent_stats.hpp) serves
// survival tables straight out of mapped generation files, and publishes new
// generations with the same write-temp + fsync + rename + directory-fsync
// discipline serve/checkpoint.cpp uses for manifests: a reader either sees
// the complete file or no file at all — never a torn tail under the final
// name (short of filesystem bugs, which the generation footer checksum
// catches at load).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace tcgrid::util {

/// A read-only mmap of a whole regular file. Move-only; the mapping lives
/// until destruction, so pointers into data() stay valid for the object's
/// lifetime (the property the persistent store's "retire, never unmap"
/// generation scheme is built on). The fd is closed immediately after
/// mapping — the mapping keeps the pages alive.
class MappedFile {
 public:
  MappedFile() = default;
  /// Maps `path` read-only. Throws std::runtime_error on any failure
  /// (missing file, permission, mmap). An empty file maps to size() == 0
  /// with data() == nullptr.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool mapped() const noexcept { return data_ != nullptr; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Durable atomic publication of `dir`/`name`: write `dir`/`name`.tmp,
/// fsync it, rename over the final name, fsync the directory. After return
/// the file is durably on disk under its final name; if the process dies at
/// any earlier point, the final name either does not exist or still holds
/// its previous content. Throws std::runtime_error on any syscall failure.
///
/// `truncate_to`: test hook — when >= 0, only the first `truncate_to` bytes
/// of `content` are written (a fault-injected short write). Combined with
/// the publish step this simulates the torn-generation states the loader
/// must reject.
void write_file_atomic(const std::string& dir, const std::string& name,
                       std::string_view content, long truncate_to = -1);

/// Names of the regular files directly under `dir` that start with `prefix`
/// and end with `suffix`, sorted ascending. A missing directory yields an
/// empty list (callers create it lazily).
[[nodiscard]] std::vector<std::string> list_dir(const std::string& dir,
                                                std::string_view prefix,
                                                std::string_view suffix);

}  // namespace tcgrid::util
