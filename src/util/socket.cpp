#include "util/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace tcgrid::util {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("unix socket path too long (" + std::to_string(path.size()) +
                             " bytes, max " + std::to_string(sizeof(addr.sun_path) - 1) +
                             "): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) sys_fail("socket");
  // A stale socket file from a killed daemon would make bind fail with
  // EADDRINUSE; the daemon owns its path, so unlink unconditionally.
  ::unlink(path.c_str());
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    sys_fail("bind " + path);
  }
  if (::listen(fd.get(), 64) != 0) sys_fail("listen " + path);
  return fd;
}

Fd connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) sys_fail("socket");
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    sys_fail("connect " + path);
  }
  return fd;
}

namespace {

/// getaddrinfo wrapper shared by the TCP listen/connect paths; the caller
/// owns the returned chain (freeaddrinfo).
addrinfo* resolve_tcp(const std::string& host, unsigned short port, bool passive) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               std::to_string(port).c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("getaddrinfo " + host + ":" + std::to_string(port) +
                             ": " + ::gai_strerror(rc));
  }
  return res;
}

}  // namespace

Fd listen_tcp(const std::string& host, unsigned short port) {
  addrinfo* res = resolve_tcp(host, port, /*passive=*/true);
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) { last_error = std::strerror(errno); continue; }
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0 ||
        ::listen(fd.get(), 64) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("listen tcp " + host + ":" + std::to_string(port) + ": " +
                           last_error);
}

Fd connect_tcp(const std::string& host, unsigned short port) {
  addrinfo* res = resolve_tcp(host, port, /*passive=*/false);
  std::string last_error = "no addresses";
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) { last_error = std::strerror(errno); continue; }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
      last_error = std::strerror(errno);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  throw std::runtime_error("connect tcp " + host + ":" + std::to_string(port) + ": " +
                           last_error);
}

Fd connect_address(const std::string& address) {
  if (address.rfind("tcp:", 0) == 0) {
    const std::string rest = address.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
      throw std::invalid_argument("tcp address must be tcp:HOST:PORT, got '" + address +
                                  "'");
    }
    const unsigned long port = std::stoul(rest.substr(colon + 1));
    if (port == 0 || port > 65535) {
      throw std::invalid_argument("tcp port out of range in '" + address + "'");
    }
    return connect_tcp(rest.substr(0, colon), static_cast<unsigned short>(port));
  }
  if (address.rfind("unix:", 0) == 0) return connect_unix(address.substr(5));
  return connect_unix(address);
}

Fd accept_connection(int listen_fd) {
  while (true) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return Fd(fd);
    if (errno != EINTR) return Fd();
  }
}

std::pair<Fd, Fd> stream_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) sys_fail("socketpair");
  return {Fd(fds[0]), Fd(fds[1])};
}

bool LineChannel::read_line(std::string& line) {
  while (true) {
    const std::size_t nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      line.assign(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      // Compact once the consumed prefix dominates (amortized O(1)).
      if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
        buf_.erase(0, pos_);
        pos_ = 0;
      }
      return true;
    }
    if (buf_.size() - pos_ > kMaxLine) return false;  // framing abuse
    char chunk[16384];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n > 0) {
      buf_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // EOF or hard error
  }
}

bool LineChannel::write_line(std::string_view line) {
  std::string frame;
  frame.reserve(line.size() + 1);
  frame.append(line);
  frame.push_back('\n');
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace tcgrid::util
