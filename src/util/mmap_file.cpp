#include "util/mmap_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

namespace tcgrid::util {

namespace {

[[noreturn]] void sys_fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) sys_fail("open " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    sys_fail("fstat " + path);
  }
  if (st.st_size == 0) {
    ::close(fd);
    return;  // empty file: valid, unmapped
  }
  void* map = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  const int saved = errno;
  ::close(fd);  // the mapping keeps the pages alive
  if (map == MAP_FAILED) {
    errno = saved;
    sys_fail("mmap " + path);
  }
  data_ = static_cast<const char*>(map);
  size_ = static_cast<std::size_t>(st.st_size);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(const_cast<char*>(data_), size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

void write_file_atomic(const std::string& dir, const std::string& name,
                       std::string_view content, long truncate_to) {
  if (truncate_to >= 0 &&
      static_cast<std::size_t>(truncate_to) < content.size()) {
    content = content.substr(0, static_cast<std::size_t>(truncate_to));
  }
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) sys_fail("open " + tmp);
  try {
    std::size_t off = 0;
    while (off < content.size()) {
      const ssize_t n = ::write(fd, content.data() + off, content.size() - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      sys_fail("write " + tmp);
    }
    if (::fsync(fd) != 0) sys_fail("fsync " + tmp);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) sys_fail("rename " + tmp);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) sys_fail("open dir " + dir);
  const int rc = ::fsync(dfd);
  ::close(dfd);
  if (rc != 0) sys_fail("fsync dir " + dir);
}

std::vector<std::string> list_dir(const std::string& dir,
                                  std::string_view prefix,
                                  std::string_view suffix) {
  namespace fs = std::filesystem;
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() < prefix.size() + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
      continue;
    }
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace tcgrid::util
