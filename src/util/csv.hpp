// Small CSV writer for exporting experiment results (e.g. Figure 2 series)
// so they can be plotted outside the harness.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace tcgrid::util {

/// Streaming CSV writer with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);

  /// Append a row (same arity as the header).
  void add_row(const std::vector<std::string>& row);

  /// Serialize everything written so far.
  [[nodiscard]] std::string str() const { return buffer_.str(); }

  /// Write the accumulated content to a file. Returns false on I/O error.
  bool save(const std::string& path) const;

  /// Quote a field if it contains separators, quotes, or newlines.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  void emit(const std::vector<std::string>& row);

  std::size_t arity_;
  std::ostringstream buffer_;
};

}  // namespace tcgrid::util
