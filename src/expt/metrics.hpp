// The paper's comparison metrics (§VII-A): %diff, %wins, %wins30, stdv and
// the failure count, all relative to the reference heuristic IE.
#pragma once

#include <string>
#include <vector>

namespace tcgrid::expt {

/// Outcome of one (heuristic, scenario, trial) simulation.
struct TrialOutcome {
  bool success = false;  ///< completed all iterations before the slot cap
  long makespan = 0;
};

/// Per-scenario outcomes of one heuristic: outcomes[trial].
using ScenarioOutcomes = std::vector<TrialOutcome>;

/// Aggregate of one heuristic against the reference, over all scenarios.
struct HeuristicSummary {
  std::string name;
  int fails = 0;            ///< trials that hit the makespan cap
  double pct_diff = 0.0;    ///< mean over scenarios of 100 * relative diff
  double pct_wins = 0.0;    ///< % of trials with makespan <= reference's
  double pct_wins30 = 0.0;  ///< % of trials within +30% of the reference
  double stdv = 0.0;        ///< stdev across scenarios of the relative diff
  int scenarios_compared = 0;  ///< scenarios contributing to pct_diff
};

/// Relative difference of one scenario (paper §VII-A):
///   (makespan_H - makespan_ref) / min(makespan_H, makespan_ref)
/// with makespans averaged over the trials where both heuristics succeed.
/// Returns false if no trial allows the comparison.
[[nodiscard]] bool scenario_relative_diff(const ScenarioOutcomes& h,
                                          const ScenarioOutcomes& ref, double& out);

/// Full summary over aligned per-scenario outcome vectors.
[[nodiscard]] HeuristicSummary summarize(const std::string& name,
                                         const std::vector<ScenarioOutcomes>& h,
                                         const std::vector<ScenarioOutcomes>& ref);

}  // namespace tcgrid::expt
