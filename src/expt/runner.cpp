#include "expt/runner.hpp"

#include "platform/availability.hpp"
#include "sched/registry.hpp"
#include "sim/engine.hpp"

namespace tcgrid::expt {

std::uint64_t trial_seed(const platform::Scenario& scenario, int trial) {
  // Stream 1000+trial: availability. (Stream 2000+trial seeds RANDOM below;
  // distinct offsets keep the streams decorrelated.)
  return util::derive_seed(scenario.params.seed, 1000 + static_cast<std::uint64_t>(trial));
}

sim::SimulationResult run_trial(const platform::Scenario& scenario,
                                const sched::Estimator& estimator,
                                std::string_view heuristic, int trial,
                                const RunOptions& options) {
  platform::MarkovAvailability availability(scenario.platform,
                                            trial_seed(scenario, trial), options.init);
  const std::uint64_t random_seed =
      util::derive_seed(scenario.params.seed, 2000 + static_cast<std::uint64_t>(trial));
  auto scheduler = sched::make_scheduler(heuristic, estimator, random_seed);

  sim::EngineOptions engine_options;
  engine_options.slot_cap = options.slot_cap;
  sim::Engine engine(scenario.platform, scenario.app, availability, *scheduler,
                     engine_options);
  return engine.run();
}

}  // namespace tcgrid::expt
