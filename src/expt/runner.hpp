// Running one heuristic on one trial of one scenario.
//
// A trial is identified by (scenario seed, trial index); its availability
// realization is a pure function of that pair, so all heuristics evaluated
// on the trial face the exact same processor availability — the paper's
// paired-comparison methodology.
#pragma once

#include <string_view>

#include "platform/availability.hpp"
#include "platform/scenario.hpp"
#include "sched/estimator.hpp"
#include "sim/stats.hpp"

namespace tcgrid::expt {

struct RunOptions {
  long slot_cap = 1'000'000;  ///< paper's failure threshold
  double eps = 1e-6;          ///< estimator precision
  platform::InitialStates init = platform::InitialStates::Stationary;
};

/// Availability seed for (scenario, trial): shared by every heuristic.
[[nodiscard]] std::uint64_t trial_seed(const platform::Scenario& scenario, int trial);

/// Simulate `heuristic` on the given trial. The estimator must have been
/// built for this scenario's platform/application (it is reused across
/// heuristics and trials of the same scenario for cache warmth; it is not
/// thread-safe, so share it only within one thread).
[[nodiscard]] sim::SimulationResult run_trial(const platform::Scenario& scenario,
                                              const sched::Estimator& estimator,
                                              std::string_view heuristic, int trial,
                                              const RunOptions& options);

}  // namespace tcgrid::expt
