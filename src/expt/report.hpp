// Formatting sweep results the way the paper reports them: Table I/II rows
// and the Figure 2 per-wmin %diff series.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "expt/metrics.hpp"
#include "expt/sweep.hpp"
#include "util/table.hpp"

namespace tcgrid::expt {

/// Summaries of every heuristic in the sweep against `reference`, sorted by
/// ascending pct_diff (best first — the paper's table order).
[[nodiscard]] std::vector<HeuristicSummary> summarize_all(const SweepResults& results,
                                                          const std::string& reference);

/// Render summaries as a paper-style table:
/// Heuristic | #fails | %diff | %wins | %wins30 | stdv
[[nodiscard]] util::Table paper_table(const std::vector<HeuristicSummary>& summaries);

/// Figure 2: for each heuristic, the mean relative difference vs the
/// reference restricted to scenarios with a given wmin. Values are ratios
/// (the figure's y axis), not percentages.
using Figure2Series = std::map<std::string, std::vector<std::pair<long, double>>>;
[[nodiscard]] Figure2Series figure2_series(const SweepResults& results,
                                           const std::string& reference);

/// Render a Figure 2 series as a wmin-by-heuristic table.
[[nodiscard]] util::Table figure2_table(const Figure2Series& series);

/// Export every raw trial outcome as CSV (one row per heuristic x scenario x
/// trial) for external analysis/plotting.
[[nodiscard]] std::string outcomes_csv(const SweepResults& results);

}  // namespace tcgrid::expt
