#include "expt/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tcgrid::expt {

bool scenario_relative_diff(const ScenarioOutcomes& h, const ScenarioOutcomes& ref,
                            double& out) {
  if (h.size() != ref.size()) {
    throw std::invalid_argument("scenario_relative_diff: trial count mismatch");
  }
  double sum_h = 0.0, sum_ref = 0.0;
  int used = 0;
  for (std::size_t t = 0; t < h.size(); ++t) {
    if (!h[t].success || !ref[t].success) continue;
    sum_h += static_cast<double>(h[t].makespan);
    sum_ref += static_cast<double>(ref[t].makespan);
    ++used;
  }
  if (used == 0) return false;
  const double mh = sum_h / used;
  const double mref = sum_ref / used;
  const double denom = std::min(mh, mref);
  if (denom <= 0.0) return false;
  out = (mh - mref) / denom;
  return true;
}

HeuristicSummary summarize(const std::string& name,
                           const std::vector<ScenarioOutcomes>& h,
                           const std::vector<ScenarioOutcomes>& ref) {
  if (h.size() != ref.size()) {
    throw std::invalid_argument("summarize: scenario count mismatch");
  }
  HeuristicSummary s;
  s.name = name;

  std::vector<double> diffs;
  long wins = 0, wins30 = 0, trials = 0;
  for (std::size_t sc = 0; sc < h.size(); ++sc) {
    double d;
    if (scenario_relative_diff(h[sc], ref[sc], d)) {
      diffs.push_back(d);
    }
    for (std::size_t t = 0; t < h[sc].size(); ++t) {
      ++trials;
      const auto& mine = h[sc][t];
      const auto& theirs = ref[sc][t];
      if (!mine.success) {
        ++s.fails;
        continue;  // a failed trial can neither win nor be within 30%
      }
      const bool ref_failed = !theirs.success;
      if (ref_failed || mine.makespan <= theirs.makespan) ++wins;
      if (ref_failed ||
          static_cast<double>(mine.makespan) <=
              1.3 * static_cast<double>(theirs.makespan)) {
        ++wins30;
      }
    }
  }

  s.scenarios_compared = static_cast<int>(diffs.size());
  if (!diffs.empty()) {
    double mean = 0.0;
    for (double d : diffs) mean += d;
    mean /= static_cast<double>(diffs.size());
    s.pct_diff = 100.0 * mean;
    double var = 0.0;
    for (double d : diffs) var += (d - mean) * (d - mean);
    var /= static_cast<double>(diffs.size());
    s.stdv = std::sqrt(var);
  }
  if (trials > 0) {
    s.pct_wins = 100.0 * static_cast<double>(wins) / static_cast<double>(trials);
    s.pct_wins30 = 100.0 * static_cast<double>(wins30) / static_cast<double>(trials);
  }
  return s;
}

}  // namespace tcgrid::expt
