#include "expt/report.hpp"

#include <algorithm>
#include <set>

#include "util/csv.hpp"

namespace tcgrid::expt {

std::vector<HeuristicSummary> summarize_all(const SweepResults& results,
                                            const std::string& reference) {
  const int ref = results.heuristic_index(reference);
  std::vector<HeuristicSummary> out;
  out.reserve(results.heuristics.size());
  for (std::size_t h = 0; h < results.heuristics.size(); ++h) {
    out.push_back(summarize(results.heuristics[h], results.outcomes[h],
                            results.outcomes[static_cast<std::size_t>(ref)]));
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const HeuristicSummary& a, const HeuristicSummary& b) {
                     return a.pct_diff < b.pct_diff;
                   });
  return out;
}

util::Table paper_table(const std::vector<HeuristicSummary>& summaries) {
  util::Table table({"Heuristic", "#fails", "%diff", "%wins", "%wins30", "stdv"});
  for (const auto& s : summaries) {
    table.add_row({s.name, std::to_string(s.fails), util::Table::num(s.pct_diff),
                   util::Table::num(s.pct_wins), util::Table::num(s.pct_wins30),
                   util::Table::num(s.stdv)});
  }
  return table;
}

Figure2Series figure2_series(const SweepResults& results, const std::string& reference) {
  const auto ref = static_cast<std::size_t>(results.heuristic_index(reference));

  std::set<long> wmins;
  for (const auto& p : results.scenarios) wmins.insert(p.wmin);

  Figure2Series series;
  for (std::size_t h = 0; h < results.heuristics.size(); ++h) {
    auto& points = series[results.heuristics[h]];
    for (long wmin : wmins) {
      double sum = 0.0;
      int used = 0;
      for (std::size_t sc = 0; sc < results.scenarios.size(); ++sc) {
        if (results.scenarios[sc].wmin != wmin) continue;
        double d;
        if (scenario_relative_diff(results.outcomes[h][sc], results.outcomes[ref][sc],
                                   d)) {
          sum += d;
          ++used;
        }
      }
      if (used > 0) points.emplace_back(wmin, sum / used);
    }
  }
  return series;
}

util::Table figure2_table(const Figure2Series& series) {
  std::set<long> wmins;
  for (const auto& [name, points] : series) {
    for (const auto& [wmin, value] : points) wmins.insert(wmin);
  }

  std::vector<std::string> header{"wmin"};
  for (const auto& [name, points] : series) header.push_back(name);
  util::Table table(std::move(header));

  for (long wmin : wmins) {
    std::vector<std::string> row{std::to_string(wmin)};
    for (const auto& [name, points] : series) {
      auto it = std::find_if(points.begin(), points.end(),
                             [&](const auto& p) { return p.first == wmin; });
      row.push_back(it == points.end() ? "-" : util::Table::num(it->second, 3));
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::string outcomes_csv(const SweepResults& results) {
  util::CsvWriter csv({"heuristic", "m", "ncom", "wmin", "scenario_seed", "trial",
                       "success", "makespan"});
  for (std::size_t h = 0; h < results.heuristics.size(); ++h) {
    for (std::size_t sc = 0; sc < results.scenarios.size(); ++sc) {
      const auto& p = results.scenarios[sc];
      for (std::size_t t = 0; t < results.outcomes[h][sc].size(); ++t) {
        const auto& o = results.outcomes[h][sc][t];
        csv.add_row({results.heuristics[h], std::to_string(p.m),
                     std::to_string(p.ncom), std::to_string(p.wmin),
                     std::to_string(p.seed), std::to_string(t),
                     o.success ? "1" : "0", std::to_string(o.makespan)});
      }
    }
  }
  return csv.str();
}

}  // namespace tcgrid::expt
