#include "expt/sweep.hpp"

#include <atomic>
#include <stdexcept>

#include "sched/registry.hpp"
#include "util/thread_pool.hpp"

namespace tcgrid::expt {

int SweepResults::heuristic_index(const std::string& name) const {
  for (std::size_t i = 0; i < heuristics.size(); ++i) {
    if (heuristics[i] == name) return static_cast<int>(i);
  }
  throw std::invalid_argument("SweepResults: heuristic not in sweep: " + name);
}

std::vector<platform::ScenarioParams> scenario_grid(const SweepConfig& c) {
  std::vector<platform::ScenarioParams> grid;
  std::uint64_t cell = 0;
  for (int m : c.ms) {
    for (int ncom : c.ncoms) {
      for (long wmin : c.wmins) {
        for (int s = 0; s < c.scenarios_per_cell; ++s) {
          platform::ScenarioParams params;
          params.m = m;
          params.ncom = ncom;
          params.wmin = wmin;
          params.p = c.p;
          params.iterations = c.iterations;
          params.seed = util::derive_seed(
              c.seed, cell * 1000 + static_cast<std::uint64_t>(s));
          grid.push_back(params);
        }
        ++cell;
      }
    }
  }
  return grid;
}

SweepResults run_sweep(const SweepConfig& config,
                       const std::function<void(std::size_t, std::size_t)>& progress) {
  SweepResults results;
  results.heuristics = config.heuristics.empty() ? sched::all_heuristic_names()
                                                 : config.heuristics;
  results.scenarios = scenario_grid(config);

  const std::size_t n_heur = results.heuristics.size();
  const std::size_t n_scen = results.scenarios.size();
  results.outcomes.assign(n_heur, std::vector<ScenarioOutcomes>(n_scen));
  for (auto& per_scenario : results.outcomes) {
    for (auto& trials : per_scenario) {
      trials.resize(static_cast<std::size_t>(config.trials));
    }
  }

  RunOptions run_options;
  run_options.slot_cap = config.slot_cap;
  run_options.eps = config.eps;

  std::atomic<std::size_t> done{0};
  util::parallel_for(
      n_scen,
      [&](std::size_t sc) {
        // One scenario: instantiate once, share the estimator across all
        // heuristics and trials (single thread => no data races).
        const platform::Scenario scenario = platform::make_scenario(results.scenarios[sc]);
        sched::Estimator estimator(scenario.platform, scenario.app, config.eps);
        for (std::size_t h = 0; h < n_heur; ++h) {
          for (int trial = 0; trial < config.trials; ++trial) {
            const sim::SimulationResult r = run_trial(
                scenario, estimator, results.heuristics[h], trial, run_options);
            results.outcomes[h][sc][static_cast<std::size_t>(trial)] =
                TrialOutcome{r.success, r.makespan};
          }
        }
        const std::size_t d = ++done;
        if (progress) progress(d, n_scen);
      },
      config.threads);

  return results;
}

}  // namespace tcgrid::expt
