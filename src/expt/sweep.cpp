#include "expt/sweep.hpp"

#include <stdexcept>

#include "api/session.hpp"

namespace tcgrid::expt {

int SweepResults::heuristic_index(const std::string& name) const {
  const int i = try_heuristic_index(name);
  if (i < 0) {
    throw std::invalid_argument("SweepResults: heuristic not in sweep: " + name);
  }
  return i;
}

int SweepResults::try_heuristic_index(const std::string& name) const noexcept {
  for (std::size_t i = 0; i < heuristics.size(); ++i) {
    if (heuristics[i] == name) return static_cast<int>(i);
  }
  return -1;
}

api::ExperimentSpec to_spec(const SweepConfig& config) {
  api::ExperimentSpec spec;
  spec.grid.ms = config.ms;
  spec.grid.ncoms = config.ncoms;
  spec.grid.wmins = config.wmins;
  spec.grid.scenarios_per_cell = config.scenarios_per_cell;
  spec.grid.p = config.p;
  spec.grid.iterations = config.iterations;
  spec.heuristics = config.heuristics;
  spec.trials = config.trials;
  spec.options.slot_cap = config.slot_cap;
  spec.options.eps = config.eps;
  spec.options.seed = config.seed;
  spec.options.threads = config.threads;
  return spec;
}

std::vector<platform::ScenarioParams> scenario_grid(const SweepConfig& c) {
  return to_spec(c).scenarios();
}

SweepResults run_sweep(const SweepConfig& config,
                       const std::function<void(std::size_t, std::size_t)>& progress) {
  api::Session session;
  api::AggregateSink aggregate;
  session.run(to_spec(config), {&aggregate}, progress);
  return std::move(aggregate).take();
}

}  // namespace tcgrid::expt
