// The factorial experiment sweep of §VII-A, parallelized over
// (scenario, trial) units (trial-major, shared availability realizations —
// DESIGN.md §9).
//
// The paper's full space: m in {5,10} x ncom in {5,10,20} x wmin in 1..10,
// 10 random scenarios per cell, 10 trials per scenario. Bench binaries run
// a structurally identical reduced sweep by default (see DESIGN.md §2) and
// accept --full for the paper's exact scale.
//
// COMPATIBILITY ADAPTER: run_sweep is now a thin wrapper over the api::
// facade (api::Session streaming into an api::AggregateSink). It produces
// byte-identical results to the historical implementation. New code should
// prefer api::Session directly — it streams outcomes to pluggable sinks
// instead of materializing the outcomes[h][scenario][trial] tensor.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "expt/metrics.hpp"
#include "expt/runner.hpp"
#include "platform/scenario.hpp"

namespace tcgrid::api {
struct ExperimentSpec;
}

namespace tcgrid::expt {

struct SweepConfig {
  std::vector<int> ms{5};
  std::vector<int> ncoms{5, 10, 20};
  std::vector<long> wmins{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  int scenarios_per_cell = 10;
  int trials = 10;
  int iterations = 10;
  int p = 20;
  long slot_cap = 1'000'000;
  double eps = 1e-6;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::vector<std::string> heuristics;  ///< empty = all 17
};

/// All (heuristic x scenario x trial) outcomes of a sweep, with scenario
/// parameters aligned by scenario index.
struct SweepResults {
  std::vector<std::string> heuristics;
  std::vector<platform::ScenarioParams> scenarios;
  /// outcomes[h][scenario][trial]
  std::vector<std::vector<ScenarioOutcomes>> outcomes;

  /// Index of `name` in `heuristics`. Contract: throws std::invalid_argument
  /// (naming the heuristic) when `name` was not part of the sweep — callers
  /// use the index to address `outcomes`, so a silent sentinel would turn a
  /// typo into out-of-bounds access. Use try_heuristic_index to probe.
  [[nodiscard]] int heuristic_index(const std::string& name) const;

  /// Non-throwing lookup: the index of `name`, or -1 if not in the sweep.
  [[nodiscard]] int try_heuristic_index(const std::string& name) const noexcept;
};

/// Enumerate the scenario parameter grid of a config (cell-major order,
/// `scenarios_per_cell` consecutive entries per cell; seeds derived from
/// config.seed so the grid is reproducible).
[[nodiscard]] std::vector<platform::ScenarioParams> scenario_grid(const SweepConfig& c);

/// Run the sweep. `progress`, if given, is called after each completed
/// (scenario, trial) unit with (done, total) — the api::Session trial-major
/// contract, so total == scenarios x trials and progress is smooth instead
/// of one tick per scenario. It may be called from worker threads, but
/// calls are serialized by the underlying api::Session — no two invocations
/// ever run concurrently, so unsynchronized callback state is safe.
/// Heuristic names are validated up front: unknown names throw
/// std::invalid_argument before any simulation starts.
[[nodiscard]] SweepResults run_sweep(
    const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress = nullptr);

/// The api::ExperimentSpec equivalent of a legacy SweepConfig.
[[nodiscard]] api::ExperimentSpec to_spec(const SweepConfig& config);

}  // namespace tcgrid::expt
