// The factorial experiment sweep of §VII-A, parallelized over scenarios.
//
// The paper's full space: m in {5,10} x ncom in {5,10,20} x wmin in 1..10,
// 10 random scenarios per cell, 10 trials per scenario. Bench binaries run
// a structurally identical reduced sweep by default (see DESIGN.md §2) and
// accept --full for the paper's exact scale.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "expt/metrics.hpp"
#include "expt/runner.hpp"
#include "platform/scenario.hpp"

namespace tcgrid::expt {

struct SweepConfig {
  std::vector<int> ms{5};
  std::vector<int> ncoms{5, 10, 20};
  std::vector<long> wmins{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  int scenarios_per_cell = 10;
  int trials = 10;
  int iterations = 10;
  int p = 20;
  long slot_cap = 1'000'000;
  double eps = 1e-6;
  std::uint64_t seed = 42;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  std::vector<std::string> heuristics;  ///< empty = all 17
};

/// All (heuristic x scenario x trial) outcomes of a sweep, with scenario
/// parameters aligned by scenario index.
struct SweepResults {
  std::vector<std::string> heuristics;
  std::vector<platform::ScenarioParams> scenarios;
  /// outcomes[h][scenario][trial]
  std::vector<std::vector<ScenarioOutcomes>> outcomes;

  [[nodiscard]] int heuristic_index(const std::string& name) const;
};

/// Enumerate the scenario parameter grid of a config (cell-major order,
/// `scenarios_per_cell` consecutive entries per cell; seeds derived from
/// config.seed so the grid is reproducible).
[[nodiscard]] std::vector<platform::ScenarioParams> scenario_grid(const SweepConfig& c);

/// Run the sweep. `progress`, if given, is called after each completed
/// scenario with (done, total) — it may be called from worker threads.
[[nodiscard]] SweepResults run_sweep(
    const SweepConfig& config,
    const std::function<void(std::size_t, std::size_t)>& progress = nullptr);

}  // namespace tcgrid::expt
