#include "sched/heuristics.hpp"

#include <algorithm>
#include <vector>

namespace tcgrid::sched {

namespace {

using Kind = sim::Quiescence::Kind;

void report(sim::Quiescence& q, Kind kind,
            long horizon = sim::Quiescence::kUnbounded) {
  q.kind = kind;
  q.horizon = horizon;
  q.watched.clear();
}

/// "No feasible placement" depends only on the UP set's total capacity
/// (IncrementalBuilder::build fails exactly when fewer than m task slots
/// are UP), so the answer holds — for every rule, elapsed time included —
/// until some worker joins the UP set. UP-set shrinks keep it infeasible.
void report_infeasible(sim::Quiescence& q) { report(q, Kind::UntilEvent); }

}  // namespace

std::optional<model::Configuration> PassiveScheduler::decide(
    const sim::SchedulerView& view) {
  if (view.has_config()) {
    report(q_, Kind::WhileConfigured);
    return std::nullopt;
  }
  auto built = builder_.build(view);
  if (built.config.empty()) {
    report_infeasible(q_);
    return std::nullopt;
  }
  // The answer installs a configuration the policy will then never preempt.
  report(q_, Kind::WhileConfigured);
  return std::move(built.config);
}

std::optional<model::Configuration> RandomScheduler::decide(
    const sim::SchedulerView& view) {
  if (view.has_config()) {
    report(q_, Kind::WhileConfigured);  // passive while enrolled: no RNG use
    return std::nullopt;
  }
  report(q_, Kind::EverySlot);  // every idle consult may draw from the RNG
  const auto& plat = *view.platform;
  const int p = plat.size();
  const int m = view.app->num_tasks;

  // Hoisted buffers: RANDOM is consulted at every un-configured slot of its
  // (frequently cap-length) runs, and three allocations per consult were
  // measurable in sweeps.
  auto& loads = loads_;
  loads.assign(static_cast<std::size_t>(p), 0);
  auto& order = order_;
  order.clear();
  for (int task = 0; task < m; ++task) {
    // Workers eligible for one more task.
    auto& eligible = eligible_;
    eligible.clear();
    for (int q = 0; q < p; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (view.states[qi] != markov::State::Up) continue;
      if (loads[qi] >= plat.proc(q).max_tasks) continue;
      eligible.push_back(q);
    }
    if (eligible.empty()) return std::nullopt;
    const int q = eligible[rng_.index(eligible.size())];
    if (loads[static_cast<std::size_t>(q)] == 0) order.push_back(q);
    ++loads[static_cast<std::size_t>(q)];
  }

  std::vector<model::Assignment> assignments;
  assignments.reserve(order.size());
  for (int q : order) assignments.push_back({q, loads[static_cast<std::size_t>(q)]});
  return model::Configuration(std::move(assignments));
}

ProactiveScheduler::ProactiveScheduler(Criterion crit, Rule rule,
                                       const Estimator& estimator)
    : crit_(crit), builder_(rule, estimator) {
  name_ = std::string(to_string(crit)) + "-" + std::string(to_string(rule));
}

IterationEstimate ProactiveScheduler::current_estimate(
    const sim::SchedulerView& view) const {
  auto& set = cur_set_;
  auto& needs = cur_needs_;
  set.clear();
  needs.clear();
  const auto& cfg = *view.config;
  for (const auto& a : cfg.assignments()) {
    set.push_back(a.proc);
    needs.push_back({a.proc, view.comm_remaining[static_cast<std::size_t>(a.proc)]});
  }
  const long w = credit_compute_ ? view.compute_total - view.compute_done
                                 : view.compute_total;
  return builder_.estimator().evaluate(needs, set, w);
}

long ProactiveScheduler::stable_horizon(const IterationEstimate& cur,
                                        const IterationEstimate& cand,
                                        long elapsed) const {
  // The Y criterion's scores decay with elapsed time at different rates, so
  // a "no switch" verdict can flip with no state change. Replay decide()'s
  // EXACT comparison at the elapsed values of upcoming slots: the count of
  // future slots still deciding "no switch" is a horizon the engine can
  // skip through bit-identically. The cap bounds the (cheap) scan; real
  // runs hit a membership event long before 64 quiet slots pass.
  constexpr long kCap = 64;
  for (long h = 1; h <= kCap; ++h) {
    if (criterion_score(crit_, cand, elapsed + h) >
        criterion_score(crit_, cur, elapsed + h)) {
      return h - 1;
    }
  }
  return kCap;
}

void ProactiveScheduler::report_no_switch(const BuiltConfiguration& cand,
                                          const IterationEstimate& cur,
                                          long elapsed) {
  // IY candidates depend on elapsed time and compute crediting makes the
  // current estimate change every compute slot: both make the answer
  // time-varying in ways no event predicts.
  if (builder_.rule() == Rule::IY || credit_compute_) {
    report(q_, Kind::EverySlot);
    return;
  }
  q_.kind = Kind::UntilEvent;
  q_.horizon = crit_ == Criterion::Y ? stable_horizon(cur, cand.estimate, elapsed)
                                     : sim::Quiescence::kUnbounded;
  // Watch the candidate's workers: a membership change of any of them can
  // change the candidate. UP-set shrinks outside this set cannot (the
  // incremental argmax never changes when a non-chosen option disappears),
  // and joins are engine-side events already.
  q_.watched.clear();
  for (const auto& a : cand.config.assignments()) q_.watched.push_back(a.proc);
}

std::optional<model::Configuration> ProactiveScheduler::decide(
    const sim::SchedulerView& view) {
  if (!view.has_config()) {
    auto built = builder_.build(view);
    if (built.config.empty()) {
      report_infeasible(q_);
      return std::nullopt;
    }
    report(q_, Kind::EverySlot);  // fresh epoch: transfers start next slot
    return std::move(built.config);
  }

  const IterationEstimate cur = current_estimate(view);
  const double c = criterion_score(crit_, cur, view.iteration_elapsed);

  const BuiltConfiguration& cand = builder_.build_memoized(view);
  if (cand.config.empty()) {
    // No feasible alternative: "keep" holds until a worker joins the UP set,
    // whatever the criterion values do.
    report_infeasible(q_);
    return std::nullopt;
  }
  const double c2 = criterion_score(crit_, cand.estimate, view.iteration_elapsed);

  if (c2 > c) {
    model::Configuration chosen = cand.config;
    report(q_, Kind::EverySlot);
    return chosen;
  }
  report_no_switch(cand, cur, view.iteration_elapsed);
  return std::nullopt;
}

}  // namespace tcgrid::sched
