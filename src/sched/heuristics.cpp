#include "sched/heuristics.hpp"

#include <algorithm>
#include <vector>

namespace tcgrid::sched {

std::optional<model::Configuration> PassiveScheduler::decide(
    const sim::SchedulerView& view) {
  if (view.has_config()) return std::nullopt;
  auto built = builder_.build(view);
  if (built.config.empty()) return std::nullopt;
  return std::move(built.config);
}

std::optional<model::Configuration> RandomScheduler::decide(
    const sim::SchedulerView& view) {
  if (view.has_config()) return std::nullopt;
  const auto& plat = *view.platform;
  const int p = plat.size();
  const int m = view.app->num_tasks;

  std::vector<int> loads(static_cast<std::size_t>(p), 0);
  std::vector<int> order;
  for (int task = 0; task < m; ++task) {
    // Workers eligible for one more task.
    std::vector<int> eligible;
    for (int q = 0; q < p; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (view.states[qi] != markov::State::Up) continue;
      if (loads[qi] >= plat.proc(q).max_tasks) continue;
      eligible.push_back(q);
    }
    if (eligible.empty()) return std::nullopt;
    const int q = eligible[rng_.index(eligible.size())];
    if (loads[static_cast<std::size_t>(q)] == 0) order.push_back(q);
    ++loads[static_cast<std::size_t>(q)];
  }

  std::vector<model::Assignment> assignments;
  assignments.reserve(order.size());
  for (int q : order) assignments.push_back({q, loads[static_cast<std::size_t>(q)]});
  return model::Configuration(std::move(assignments));
}

ProactiveScheduler::ProactiveScheduler(Criterion crit, Rule rule,
                                       const Estimator& estimator)
    : crit_(crit), builder_(rule, estimator) {
  name_ = std::string(to_string(crit)) + "-" + std::string(to_string(rule));
}

IterationEstimate ProactiveScheduler::current_estimate(
    const sim::SchedulerView& view) const {
  std::vector<int> set;
  std::vector<Estimator::CommNeed> needs;
  const auto& cfg = *view.config;
  set.reserve(cfg.size());
  needs.reserve(cfg.size());
  for (const auto& a : cfg.assignments()) {
    set.push_back(a.proc);
    needs.push_back({a.proc, view.comm_remaining[static_cast<std::size_t>(a.proc)]});
  }
  const long w = credit_compute_ ? view.compute_total - view.compute_done
                                 : view.compute_total;
  return builder_.estimator().evaluate(needs, set, w);
}

const BuiltConfiguration& ProactiveScheduler::candidate(const sim::SchedulerView& view) {
  const bool use_cache = caching_ && builder_.rule() != Rule::IY;
  if (use_cache) {
    const std::uint64_t key = signature(view);
    if (cache_valid_ && key == cache_key_) return cache_value_;
    cache_value_ = builder_.build(view);
    cache_key_ = key;
    cache_valid_ = true;
    return cache_value_;
  }
  cache_value_ = builder_.build(view);
  cache_valid_ = false;
  return cache_value_;
}

std::uint64_t ProactiveScheduler::signature(const sim::SchedulerView& view) {
  // FNV-1a over the decision-relevant inputs: per-processor UP bit,
  // has_program bit, and completed data-message count.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (std::size_t q = 0; q < view.states.size(); ++q) {
    std::uint64_t v = view.states[q] == markov::State::Up ? 1 : 0;
    v |= static_cast<std::uint64_t>(view.holdings[q].has_program ? 1 : 0) << 1;
    v |= static_cast<std::uint64_t>(
             std::min(view.holdings[q].data_messages, 0xffff))
         << 2;
    mix(v + (static_cast<std::uint64_t>(q) << 32));
  }
  return h;
}

std::optional<model::Configuration> ProactiveScheduler::decide(
    const sim::SchedulerView& view) {
  if (!view.has_config()) {
    cache_valid_ = false;
    auto built = builder_.build(view);
    if (built.config.empty()) return std::nullopt;
    return std::move(built.config);
  }

  const IterationEstimate cur = current_estimate(view);
  const double c = criterion_score(crit_, cur, view.iteration_elapsed);

  const BuiltConfiguration& cand = candidate(view);
  if (cand.config.empty()) return std::nullopt;
  const double c2 = criterion_score(crit_, cand.estimate, view.iteration_elapsed);

  if (c2 > c) {
    model::Configuration chosen = cand.config;
    cache_valid_ = false;
    return chosen;
  }
  return std::nullopt;
}

}  // namespace tcgrid::sched
