// The paper's 17 on-line heuristics (§VI):
//   * RANDOM            — uniform placement on UP workers (baseline);
//   * IP, IE, IY, IAY   — passive incremental heuristics;
//   * C-H for C in {P, E, Y}, H in {IP, IE, IY, IAY} — proactive heuristics
//     that rebuild a candidate configuration every slot and switch when the
//     criterion strictly improves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/incremental.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace tcgrid::sched {

/// Passive heuristic: keeps the current configuration as long as possible;
/// builds a new one only when none is in place (run start, iteration start,
/// or after an enrolled worker went DOWN).
///
/// Quiescence: WhileConfigured — decide() unconditionally keeps an installed
/// configuration, reading nothing. With no configuration and no feasible
/// placement, the answer is stable until a worker joins the UP set
/// (infeasibility depends only on the UP set's total capacity, so it is
/// elapsed-independent even for the IY rule).
class PassiveScheduler final : public sim::Scheduler {
 public:
  PassiveScheduler(Rule rule, const Estimator& estimator)
      : builder_(rule, estimator), name_(to_string(rule)) {}

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] const sim::Quiescence& quiescence() const override { return q_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  IncrementalBuilder builder_;
  std::string name_;
  sim::Quiescence q_;
};

/// Baseline: allocates each task to a uniformly random UP worker with spare
/// capacity; passive otherwise.
///
/// Quiescence: WhileConfigured with a configuration in place (no RNG is
/// touched), EverySlot otherwise — idle consults draw from the RNG, so
/// skipping any would shift the random stream.
class RandomScheduler final : public sim::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] const sim::Quiescence& quiescence() const override { return q_; }
  [[nodiscard]] std::string_view name() const override { return "RANDOM"; }

 private:
  util::Rng rng_;
  sim::Quiescence q_;
  // reusable per-decide buffers (hoisted allocations)
  std::vector<int> loads_;
  std::vector<int> order_;
  std::vector<int> eligible_;
};

/// Proactive heuristic C-H (criterion `crit`, builder rule `rule`).
///
/// Every slot, the current configuration's criterion value is refreshed with
/// its actual progress (remaining communications and remaining workload) and
/// compared against a candidate built from scratch by the rule; the switch
/// happens only on strict improvement, which — because a configuration's
/// refreshed value can only improve as it progresses — guarantees the
/// no-divergence property required by §VI-B.
///
/// The candidate depends only on (UP set, holdings) — and additionally on
/// elapsed time for the IY rule — so it is memoized on a signature of those
/// inputs in the estimator's shared build memo (availability flaps and
/// paired trials revisit the same signatures over and over, and a rebuild
/// costs m*p estimator evaluations). IY rebuilds every slot.
/// Quiescence (see DESIGN.md §8): after a "no switch" answer under a
/// non-IY rule without compute crediting, the decision is stable until a
/// worker joins the UP set or a candidate worker's UP-membership changes
/// (UntilEvent, watching the memoized candidate's workers). The Y criterion
/// additionally reports a slot horizon: its scores decay with elapsed time,
/// so the no-switch comparison can flip with no state change at all; the
/// horizon is found by replaying decide()'s exact floating-point comparison
/// at future elapsed values, which keeps fast-forwarded runs bit-identical.
class ProactiveScheduler final : public sim::Scheduler {
 public:
  ProactiveScheduler(Criterion crit, Rule rule, const Estimator& estimator);

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] const sim::Quiescence& quiescence() const override { return q_; }
  [[nodiscard]] std::string_view name() const override { return name_; }

  /// Disable candidate memoization (ablation benches only; results must be
  /// identical with or without it, except for the IY rule where it is
  /// always off).
  void set_caching(bool on) noexcept { builder_.set_memo(on); }

  /// Whether the current configuration's refreshed criterion credits the
  /// compute slots already banked (W_remaining instead of the full W).
  ///
  /// Default OFF: only communication progress is credited. This reproduces
  /// the behaviour the paper *reports* — with static/decaying mid-compute
  /// criterion values, marginally better candidates keep winning, which is
  /// exactly what makes P-/Y-criterion combinations with probability-driven
  /// builders collapse in Tables I-II while the *-IE variants stay good.
  /// ON is the literal reading of §VI-B ("computations may have started ...
  /// the measure should be updated"); the ablation bench contrasts the two.
  void set_credit_compute(bool on) noexcept { credit_compute_ = on; }

 private:
  [[nodiscard]] IterationEstimate current_estimate(const sim::SchedulerView& view) const;
  [[nodiscard]] long stable_horizon(const IterationEstimate& cur,
                                    const IterationEstimate& cand,
                                    long elapsed) const;
  void report_no_switch(const BuiltConfiguration& cand, const IterationEstimate& cur,
                        long elapsed);

  Criterion crit_;
  IncrementalBuilder builder_;
  std::string name_;
  bool credit_compute_ = false;

  // Scratch for current_estimate (hoisted allocations).
  mutable std::vector<int> cur_set_;
  mutable std::vector<Estimator::CommNeed> cur_needs_;

  sim::Quiescence q_;
};

}  // namespace tcgrid::sched
