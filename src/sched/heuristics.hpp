// The paper's 17 on-line heuristics (§VI):
//   * RANDOM            — uniform placement on UP workers (baseline);
//   * IP, IE, IY, IAY   — passive incremental heuristics;
//   * C-H for C in {P, E, Y}, H in {IP, IE, IY, IAY} — proactive heuristics
//     that rebuild a candidate configuration every slot and switch when the
//     criterion strictly improves.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "sched/incremental.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace tcgrid::sched {

/// Passive heuristic: keeps the current configuration as long as possible;
/// builds a new one only when none is in place (run start, iteration start,
/// or after an enrolled worker went DOWN).
class PassiveScheduler final : public sim::Scheduler {
 public:
  PassiveScheduler(Rule rule, const Estimator& estimator)
      : builder_(rule, estimator), name_(to_string(rule)) {}

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  IncrementalBuilder builder_;
  std::string name_;
};

/// Baseline: allocates each task to a uniformly random UP worker with spare
/// capacity; passive otherwise.
class RandomScheduler final : public sim::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] std::string_view name() const override { return "RANDOM"; }

 private:
  util::Rng rng_;
};

/// Proactive heuristic C-H (criterion `crit`, builder rule `rule`).
///
/// Every slot, the current configuration's criterion value is refreshed with
/// its actual progress (remaining communications and remaining workload) and
/// compared against a candidate built from scratch by the rule; the switch
/// happens only on strict improvement, which — because a configuration's
/// refreshed value can only improve as it progresses — guarantees the
/// no-divergence property required by §VI-B.
///
/// The candidate depends only on (UP set, holdings) — and additionally on
/// elapsed time for the IY rule — so it is memoized on a signature of those
/// inputs; IY rebuilds every slot.
class ProactiveScheduler final : public sim::Scheduler {
 public:
  ProactiveScheduler(Criterion crit, Rule rule, const Estimator& estimator);

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] std::string_view name() const override { return name_; }

  /// Disable candidate memoization (ablation benches only; results must be
  /// identical with or without it, except for the IY rule where it is
  /// always off).
  void set_caching(bool on) noexcept { caching_ = on; }

  /// Whether the current configuration's refreshed criterion credits the
  /// compute slots already banked (W_remaining instead of the full W).
  ///
  /// Default OFF: only communication progress is credited. This reproduces
  /// the behaviour the paper *reports* — with static/decaying mid-compute
  /// criterion values, marginally better candidates keep winning, which is
  /// exactly what makes P-/Y-criterion combinations with probability-driven
  /// builders collapse in Tables I-II while the *-IE variants stay good.
  /// ON is the literal reading of §VI-B ("computations may have started ...
  /// the measure should be updated"); the ablation bench contrasts the two.
  void set_credit_compute(bool on) noexcept { credit_compute_ = on; }

 private:
  [[nodiscard]] IterationEstimate current_estimate(const sim::SchedulerView& view) const;
  [[nodiscard]] const BuiltConfiguration& candidate(const sim::SchedulerView& view);
  [[nodiscard]] static std::uint64_t signature(const sim::SchedulerView& view);

  Criterion crit_;
  IncrementalBuilder builder_;
  std::string name_;
  bool caching_ = true;
  bool credit_compute_ = false;

  bool cache_valid_ = false;
  std::uint64_t cache_key_ = 0;
  BuiltConfiguration cache_value_;
};

}  // namespace tcgrid::sched
