// Knowledge-light baselines from the desktop-grid literature (paper §II),
// and adaptive schedulers that learn the availability model on line.
//
// The paper's related work characterizes prior schedulers as using "static
// criteria (e.g., processor clock-rates)" or "simple statistics of past
// availability" to rank processors. These baselines make that comparison
// concrete inside this framework:
//
//   FASTEST    — clock-rate ranking: each task goes to the UP worker that
//                minimizes the resulting coupled workload W = max x_q w_q.
//   MOSTAVAIL  — static availability ranking: round-robin over the UP
//                workers with the highest long-run (stationary) availability.
//   UPTIME     — past-availability statistic: like MOSTAVAIL but ranked by
//                the *observed* current UP streak (no model knowledge).
//
// ADAPT-H / ADAPT-C-H — the paper's §VII-B question made executable: the
// Markov-based heuristic H (or proactive C-H) run WITHOUT the true model,
// re-fitting a transition matrix per processor from the states it has
// observed so far (add-alpha smoothed maximum likelihood), refreshed
// periodically.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sched/criteria.hpp"
#include "sched/estimator.hpp"
#include "sim/scheduler.hpp"

namespace tcgrid::sched {

/// Clock-rate baseline: greedy min-W placement, reliability-blind.
///
/// Quiescence: WhileConfigured once enrolled (never preempts); with no
/// configuration the placement is a pure function of the UP set, so a "no
/// placement" answer holds until ANY UP-membership changes.
class FastestScheduler final : public sim::Scheduler {
 public:
  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] const sim::Quiescence& quiescence() const override { return q_; }
  [[nodiscard]] std::string_view name() const override { return "FASTEST"; }

 private:
  sim::Quiescence q_;
};

/// Static availability ranking: one task at a time, round-robin over the UP
/// workers sorted by stationary UP probability (speed as tie-break).
///
/// Quiescence: like FASTEST. Note the ranking means a worker LEAVING the UP
/// set can promote a higher-capacity worker into the round-robin window and
/// turn an infeasible placement feasible, so the idle answer is only stable
/// while the whole UP set is unchanged (UntilUpSetChanges, not gains-only).
class MostAvailableScheduler final : public sim::Scheduler {
 public:
  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] const sim::Quiescence& quiescence() const override { return q_; }
  [[nodiscard]] std::string_view name() const override { return "MOSTAVAIL"; }

 private:
  sim::Quiescence q_;
};

/// Observed-uptime ranking: tracks each processor's current UP streak from
/// the states it has seen (nothing else), and round-robins over the longest
/// streaks. Completely model-free.
///
/// Quiescence: EverySlot (the base-class default) — the streak counters must
/// observe every slot, so the engine may never skip a consult.
class UptimeScheduler final : public sim::Scheduler {
 public:
  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] std::string_view name() const override { return "UPTIME"; }

  /// Current streak of processor q (for tests).
  [[nodiscard]] long streak(int q) const {
    return streaks_.empty() ? 0 : streaks_[static_cast<std::size_t>(q)];
  }

 private:
  void observe(const sim::SchedulerView& view);
  std::vector<long> streaks_;
  long last_slot_ = -1;
};

/// Model-free wrapper around the paper's heuristics: observes states,
/// maintains per-processor transition counts, and periodically re-fits the
/// Markov model the inner heuristic uses.
///
/// Quiescence: EverySlot (the base-class default) — the transition counts
/// must observe every slot, so the engine may never skip a consult.
class AdaptiveScheduler final : public sim::Scheduler {
 public:
  /// `criterion` empty -> passive rule; otherwise proactive criterion-rule.
  AdaptiveScheduler(std::optional<Criterion> criterion, Rule rule,
                    const platform::Platform& real_platform,
                    const model::Application& app, double eps = 1e-6,
                    long refit_interval = 256, double smoothing = 0.5);

  std::optional<model::Configuration> decide(const sim::SchedulerView& view) override;
  [[nodiscard]] std::string_view name() const override { return name_; }

  /// The transition matrix currently believed for processor q (for tests).
  [[nodiscard]] markov::TransitionMatrix fitted(int q) const;

 private:
  void observe(const sim::SchedulerView& view);
  void refit();
  [[nodiscard]] std::unique_ptr<sim::Scheduler> make_inner() const;

  std::optional<Criterion> criterion_;
  Rule rule_;
  const platform::Platform& real_platform_;
  const model::Application& app_;
  double eps_;
  long refit_interval_;
  double smoothing_;
  std::string name_;

  // observation state
  std::vector<markov::State> prev_states_;
  std::vector<std::array<std::array<double, 3>, 3>> counts_;
  long last_slot_ = -1;
  long last_refit_ = -1;

  // believed world (rebuilt on refit)
  std::unique_ptr<platform::Platform> believed_;
  std::unique_ptr<Estimator> estimator_;
  std::unique_ptr<sim::Scheduler> inner_;
};

}  // namespace tcgrid::sched
