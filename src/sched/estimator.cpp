#include "sched/estimator.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tcgrid::sched {

namespace {
// Bound the memoization table; reached only by pathological runs.
constexpr std::size_t kMaxCachedSets = std::size_t{1} << 22;

// Finalizer of splitmix64: full-avalanche mixing of the set bitmask.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}
}  // namespace

markov::CoupledStats& Estimator::SetCache::lookup(std::uint64_t key, bool& fresh) {
  if (table_.empty() || size_ * 4 >= table_.size() * 3) grow();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
  while (table_[i].slot >= 0 && table_[i].key != key) i = (i + 1) & mask;
  auto& e = table_[i];
  if (e.slot < 0) {
    if (size_ % kChunk == 0) {
      chunks_.push_back(std::make_unique<markov::CoupledStats[]>(kChunk));
    }
    e.key = key;
    e.slot = static_cast<std::int32_t>(size_++);
    fresh = true;
  }
  const auto slot = static_cast<std::size_t>(e.slot);
  return chunks_[slot / kChunk][slot % kChunk];
}

void Estimator::SetCache::grow() {
  std::vector<Entry> old = std::move(table_);
  table_.assign(old.empty() ? 1024 : old.size() * 2, Entry{});
  const std::size_t mask = table_.size() - 1;
  for (const Entry& e : old) {
    if (e.slot < 0) continue;
    std::size_t i = static_cast<std::size_t>(mix64(e.key)) & mask;
    while (table_[i].slot >= 0) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void Estimator::SetCache::clear() {
  table_.clear();
  chunks_.clear();
  size_ = 0;
}

MemoizedBuild* Estimator::BuildMemo::find(std::uint64_t key) noexcept {
  if (table_.empty()) return nullptr;
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
  while (table_[i].slot >= 0) {
    if (table_[i].key == key) {
      const auto slot = static_cast<std::size_t>(table_[i].slot);
      return &chunks_[slot / kChunk][slot % kChunk];
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

MemoizedBuild& Estimator::BuildMemo::insert(std::uint64_t key) {
  if (table_.empty() || size_ * 4 >= table_.size() * 3) grow();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
  while (table_[i].slot >= 0) {
    assert(table_[i].key != key && "BuildMemo::insert: key already present");
    i = (i + 1) & mask;
  }
  if (size_ % kChunk == 0) {
    chunks_.push_back(std::make_unique<MemoizedBuild[]>(kChunk));
  }
  auto& e = table_[i];
  e.key = key;
  e.slot = static_cast<std::int32_t>(size_++);
  const auto slot = static_cast<std::size_t>(e.slot);
  return chunks_[slot / kChunk][slot % kChunk];
}

void Estimator::BuildMemo::grow() {
  std::vector<Entry> old = std::move(table_);
  table_.assign(old.empty() ? 1024 : old.size() * 2, Entry{});
  const std::size_t mask = table_.size() - 1;
  for (const Entry& e : old) {
    if (e.slot < 0) continue;
    std::size_t i = static_cast<std::size_t>(mix64(e.key)) & mask;
    while (table_[i].slot >= 0) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void Estimator::BuildMemo::clear() {
  table_.clear();
  chunks_.clear();
  size_ = 0;
}

Estimator::Estimator(const platform::Platform& platform, const model::Application& app,
                     double eps)
    : platform_(platform), app_(app), eps_(eps) {
  if (eps_ <= 0.0) throw std::invalid_argument("Estimator: eps must be positive");
  if (platform_.size() > 64) {
    throw std::invalid_argument("Estimator: more than 64 processors unsupported");
  }
  const auto p = static_cast<std::size_t>(platform_.size());
  ur_.reserve(p);
  per_proc_.reserve(p);
  for (int q = 0; q < platform_.size(); ++q) {
    ur_.push_back(markov::ur_submatrix(platform_.proc(q).availability));
    per_proc_.push_back(markov::coupled_stats({&ur_.back(), 1}, eps_));
  }
  survival_.resize(p);
}

const markov::CoupledStats& Estimator::set_stats(std::span<const int> set) const {
  std::uint64_t key = 0;
  for (int q : set) key |= std::uint64_t{1} << q;
  if (set_cache_.size() >= kMaxCachedSets) set_cache_.clear();
  bool fresh = false;
  markov::CoupledStats& stats = set_cache_.lookup(key, fresh);
  if (fresh) {
    scratch_.clear();
    for (int q : set) scratch_.push_back(ur_[static_cast<std::size_t>(q)]);
    stats = markov::coupled_stats(scratch_, eps_);
  }
  return stats;
}

double Estimator::p_no_down_grow(int q, long t) const {
  if (t <= 0) return 1.0;
  auto& entry = survival_[static_cast<std::size_t>(q)];
  auto& table = entry.table;
  if (table.empty()) table.push_back(1.0);  // t = 0; entry.row is e_U already
  if (static_cast<long>(table.size()) <= t) {
    // Underflow cap: the survival probability is a sum of non-negative
    // doubles, so once an entry is exactly 0.0 every later entry is the
    // identical 0.0 — stop tabulating and answer 0.0 directly. Without
    // this, near-hopeless communication phases (e_comm grows exponentially
    // in the remaining slots) extend the table to millions of explicit
    // zeros and dominate whole sweeps.
    if (table.back() == 0.0) return 0.0;
    // Extend the table: table[k] = P(not DOWN within k slots). entry.row
    // stands at the last tabulated k and just keeps advancing — the same
    // advance sequence a from-scratch replay would run, minus the replay.
    // Exact growth: with the row cached, resuming costs nothing, so there
    // is no reason to overshoot the request (the old doubling existed to
    // amortize the from-scratch replay and did up to 2x the needed work).
    const auto& m = ur_[static_cast<std::size_t>(q)];
    while (static_cast<long>(table.size()) <= t) {
      entry.row.advance(m);
      double s = entry.row.survival();
      // Subnormal cut: below DBL_MIN the sequence has left meaningful
      // territory (these probabilities multiply into estimates that are
      // already ~0) and subnormal multiplies are 10-100x slower on common
      // cores — snap to the terminal 0.0 a few thousand slots early instead
      // of crawling through the denormal tail entry by entry.
      if (s < std::numeric_limits<double>::min()) s = 0.0;
      table.push_back(s);
      if (s == 0.0) break;  // all later entries are equal zeros
    }
    if (static_cast<long>(table.size()) <= t) return 0.0;
  }
  return table[static_cast<std::size_t>(t)];
}

double Estimator::expected_comm_time(std::span<const CommNeed> needs) const {
  double e_comm = 0.0;
  long total = 0;
  for (const auto& n : needs) {
    total += n.slots;
    if (n.slots <= 0) continue;
    const auto& st = per_proc_[static_cast<std::size_t>(n.proc)];
    e_comm = std::max(e_comm, st.expected_time(n.slots));
  }
  if (static_cast<int>(needs.size()) > platform_.ncom() && total > 0) {
    e_comm = std::max(e_comm, static_cast<double>(total) /
                                  static_cast<double>(platform_.ncom()));
  }
  return e_comm;
}

IterationEstimate Estimator::evaluate(std::span<const CommNeed> needs,
                                      std::span<const int> set, long w) const {
  IterationEstimate out;

  const double e_comm = expected_comm_time(needs);
  double p_comm = 1.0;
  if (e_comm > 0.0) {
    const long t = static_cast<long>(std::ceil(e_comm));
    // Every enrolled worker must avoid DOWN through the whole phase, whether
    // or not it is receiving (paper §V-B).
    for (int q : set) p_comm *= p_no_down(q, t);
  }

  const auto& st = set_stats(set);
  out.p_success = p_comm * st.success_prob(w);
  out.e_time = e_comm + st.expected_time(w);
  return out;
}

}  // namespace tcgrid::sched
