#include "sched/estimator.hpp"

#include <cmath>
#include <stdexcept>

namespace tcgrid::sched {

namespace {
// Bound the memoization table; reached only by pathological runs.
constexpr std::size_t kMaxCachedSets = std::size_t{1} << 22;
}  // namespace

Estimator::Estimator(const platform::Platform& platform, const model::Application& app,
                     double eps)
    : platform_(platform), app_(app), eps_(eps) {
  if (eps_ <= 0.0) throw std::invalid_argument("Estimator: eps must be positive");
  if (platform_.size() > 64) {
    throw std::invalid_argument("Estimator: more than 64 processors unsupported");
  }
  const auto p = static_cast<std::size_t>(platform_.size());
  ur_.reserve(p);
  per_proc_.reserve(p);
  for (int q = 0; q < platform_.size(); ++q) {
    ur_.push_back(markov::ur_submatrix(platform_.proc(q).availability));
    per_proc_.push_back(markov::coupled_stats({&ur_.back(), 1}, eps_));
  }
  survival_.resize(p);
}

const markov::CoupledStats& Estimator::set_stats(std::span<const int> set) const {
  std::uint64_t key = 0;
  for (int q : set) key |= std::uint64_t{1} << q;
  auto it = set_cache_.find(key);
  if (it != set_cache_.end()) return it->second;

  scratch_.clear();
  for (int q : set) scratch_.push_back(ur_[static_cast<std::size_t>(q)]);
  if (set_cache_.size() >= kMaxCachedSets) set_cache_.clear();
  auto [ins, _] = set_cache_.emplace(key, markov::coupled_stats(scratch_, eps_));
  return ins->second;
}

double Estimator::p_no_down(int q, long t) const {
  if (t <= 0) return 1.0;
  auto& table = survival_[static_cast<std::size_t>(q)];
  if (table.empty()) table.push_back(1.0);  // t = 0
  if (static_cast<long>(table.size()) <= t) {
    // Extend the survival table: table[k] = P(not DOWN within k slots).
    markov::UrRow row;
    // Recover the row at the current table end by replaying; tables only
    // ever grow, so keep the row cached ... recomputing from scratch keeps
    // the code simple and each extension is amortized O(1) per entry thanks
    // to geometric growth below.
    const auto& m = ur_[static_cast<std::size_t>(q)];
    for (std::size_t k = 1; k < table.size(); ++k) row.advance(m);
    const long target = std::max<long>(t, static_cast<long>(table.size()) * 2);
    while (static_cast<long>(table.size()) <= target) {
      row.advance(m);
      table.push_back(row.survival());
    }
  }
  return table[static_cast<std::size_t>(t)];
}

double Estimator::expected_comm_time(std::span<const CommNeed> needs) const {
  double e_comm = 0.0;
  long total = 0;
  for (const auto& n : needs) {
    total += n.slots;
    if (n.slots <= 0) continue;
    const auto& st = per_proc_[static_cast<std::size_t>(n.proc)];
    e_comm = std::max(e_comm, st.expected_time(n.slots));
  }
  if (static_cast<int>(needs.size()) > platform_.ncom() && total > 0) {
    e_comm = std::max(e_comm, static_cast<double>(total) /
                                  static_cast<double>(platform_.ncom()));
  }
  return e_comm;
}

IterationEstimate Estimator::evaluate(std::span<const CommNeed> needs,
                                      std::span<const int> set, long w) const {
  IterationEstimate out;

  const double e_comm = expected_comm_time(needs);
  double p_comm = 1.0;
  if (e_comm > 0.0) {
    const long t = static_cast<long>(std::ceil(e_comm));
    // Every enrolled worker must avoid DOWN through the whole phase, whether
    // or not it is receiving (paper §V-B).
    for (int q : set) p_comm *= p_no_down(q, t);
  }

  const auto& st = set_stats(set);
  out.p_success = p_comm * st.success_prob(w);
  out.e_time = e_comm + st.expected_time(w);
  return out;
}

}  // namespace tcgrid::sched
