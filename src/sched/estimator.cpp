#include "sched/estimator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace tcgrid::sched {

namespace {
// Bound the front cache / build memo; reached only by pathological runs.
// Eviction retires value chunks for one epoch instead of freeing them, so a
// reference held across the cap stays valid (see evict()).
constexpr std::size_t kMaxCachedSets = std::size_t{1} << 22;
constexpr std::size_t kMaxMemoizedBuilds = std::size_t{1} << 20;

using detail::mix64;  // shared with the inline front-cache fast paths
}  // namespace

markov::CoupledStats& Estimator::SetCache::lookup(std::uint64_t key, bool& fresh) {
  if (table_.empty() || size_ * 2 >= table_.size()) grow();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
  while (table_[i].slot >= 0 && table_[i].key != key) i = (i + 1) & mask;
  auto& e = table_[i];
  if (e.slot < 0) {
    if (size_ % kChunk == 0) {
      chunks_.push_back(std::make_unique<markov::CoupledStats[]>(kChunk));
    }
    e.key = key;
    e.slot = static_cast<std::int32_t>(size_++);
    fresh = true;
  }
  const auto slot = static_cast<std::size_t>(e.slot);
  return chunks_[slot / kChunk][slot % kChunk];
}

void Estimator::SetCache::probe(std::span<const std::uint64_t> keys,
                                const markov::CoupledStats** out) const noexcept {
  if (table_.empty()) {
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = nullptr;
    return;
  }
  const std::size_t mask = table_.size() - 1;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t key = keys[i];
    std::size_t j = static_cast<std::size_t>(mix64(key)) & mask;
    while (table_[j].slot >= 0 && table_[j].key != key) j = (j + 1) & mask;
    if (table_[j].slot < 0) {
      out[i] = nullptr;
    } else {
      const auto slot = static_cast<std::size_t>(table_[j].slot);
      out[i] = &chunks_[slot / kChunk][slot % kChunk];
    }
  }
}

void Estimator::SetCache::grow() {
  std::vector<Entry> old = std::move(table_);
  table_.assign(old.empty() ? 1024 : old.size() * 2, Entry{});
  const std::size_t mask = table_.size() - 1;
  for (const Entry& e : old) {
    if (e.slot < 0) continue;
    std::size_t i = static_cast<std::size_t>(mix64(e.key)) & mask;
    while (table_[i].slot >= 0) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void Estimator::SetCache::evict() {
  // Epoch retirement: drop the index, but keep the current value chunks
  // alive for one more epoch (and only now free the PREVIOUS epoch's). A
  // reference returned before this call therefore dereferences unchanged
  // storage until the NEXT cap-triggered eviction — a full cap's worth of
  // insertions away — instead of dangling immediately, which was the
  // historical clear()-on-next-call hazard.
  assert(size_ > 0 && "SetCache::evict: eviction with nothing inserted");
  table_.clear();
  retired_.clear();
  retired_.swap(chunks_);
  size_ = 0;
}

MemoizedBuild* Estimator::BuildMemo::find(std::uint64_t key) noexcept {
  if (table_.empty()) return nullptr;
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
  while (table_[i].slot >= 0) {
    if (table_[i].key == key) {
      const auto slot = static_cast<std::size_t>(table_[i].slot);
      return &chunks_[slot / kChunk][slot % kChunk];
    }
    i = (i + 1) & mask;
  }
  return nullptr;
}

MemoizedBuild& Estimator::BuildMemo::insert(std::uint64_t key) {
  // 3/4 max load: the memo reaches hundreds of thousands of entries, where
  // the probe table's cache footprint costs more than the longer chains
  // (unlike SetCache, whose table stays small enough to keep at 1/2).
  if (table_.empty() || size_ * 4 >= table_.size() * 3) grow();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = static_cast<std::size_t>(mix64(key)) & mask;
  while (table_[i].slot >= 0) {
    assert(table_[i].key != key && "BuildMemo::insert: key already present");
    i = (i + 1) & mask;
  }
  if (size_ % kChunk == 0) {
    chunks_.push_back(std::make_unique<MemoizedBuild[]>(kChunk));
  }
  auto& e = table_[i];
  e.key = key;
  e.slot = static_cast<std::int32_t>(size_++);
  const auto slot = static_cast<std::size_t>(e.slot);
  return chunks_[slot / kChunk][slot % kChunk];
}

void Estimator::BuildMemo::grow() {
  std::vector<Entry> old = std::move(table_);
  table_.assign(old.empty() ? 1024 : old.size() * 2, Entry{});
  const std::size_t mask = table_.size() - 1;
  for (const Entry& e : old) {
    if (e.slot < 0) continue;
    std::size_t i = static_cast<std::size_t>(mix64(e.key)) & mask;
    while (table_[i].slot >= 0) i = (i + 1) & mask;
    table_[i] = e;
  }
}

void Estimator::BuildMemo::evict() {
  // Same epoch-retirement contract as SetCache::evict().
  assert(size_ > 0 && "BuildMemo::evict: eviction with nothing inserted");
  table_.clear();
  retired_.clear();
  retired_.swap(chunks_);
  size_ = 0;
}

Estimator::Estimator(const platform::Platform& platform, const model::Application& app,
                     double eps, std::shared_ptr<markov::ChainStatsStore> store)
    : platform_(platform),
      app_(app),
      eps_(eps),
      store_(std::move(store)),
      set_cap_(kMaxCachedSets),
      build_cap_(kMaxMemoizedBuilds) {
  if (eps_ <= 0.0) throw std::invalid_argument("Estimator: eps must be positive");
  if (platform_.size() > 64) {
    throw std::invalid_argument("Estimator: more than 64 processors unsupported");
  }
  if (store_ == nullptr) {
    // Sharing ablated: a private store. Same code path, same values — the
    // store's results are pure functions of chain content (DESIGN.md §10),
    // so shared and private resolution are bit-identical by construction.
    store_ = std::make_shared<markov::ChainStatsStore>(eps_);
  } else if (store_->eps() != eps_) {
    throw std::invalid_argument(
        "Estimator: eps differs from the shared chain-stats store's");
  }
  const auto p = static_cast<std::size_t>(platform_.size());
  chain_of_.reserve(p);
  surv_of_.reserve(p);
  per_proc_.reserve(p);
  for (int q = 0; q < platform_.size(); ++q) {
    // Intern first, compute once per DISTINCT chain: the store's per-chain
    // quad and shared survival table are built on first sight of the chain
    // CONTENT — on a homogeneous platform the old constructor ran
    // coupled_stats p times for p identical chains; now p-1 of these calls
    // are dedup hits that only copy the 4-scalar quad.
    const markov::ChainId id =
        store_->intern(markov::ur_submatrix(platform_.proc(q).availability));
    chain_of_.push_back(id);
    per_proc_.push_back(store_->chain_stats(id));
    surv_of_.push_back(&store_->survival(id));
  }
}

const markov::CoupledStats& Estimator::set_stats(std::span<const int> set) const {
  std::uint64_t key = 0;
  for (int q : set) key |= std::uint64_t{1} << q;
  return set_stats_masked(key, set);
}

const markov::CoupledStats& Estimator::set_stats_masked(
    std::uint64_t key, std::span<const int> set) const {
  if (set_cache_.size() >= set_cap_) set_cache_.evict();
  bool fresh = false;
  markov::CoupledStats& stats = set_cache_.lookup(key, fresh);
  if (fresh) {
    // Resolve through the store by the sorted multiset of chain ids: on a
    // homogeneous platform every k-subset of workers lands on the same
    // store entry, and cells sharing chain content share the series math.
    auto& ids = scratch_ids_;
    ids.clear();
    for (int q : set) ids.push_back(chain_of_[static_cast<std::size_t>(q)]);
    std::sort(ids.begin(), ids.end());
    stats = store_->set_stats(ids);
  }
  return stats;
}

void Estimator::set_stats_probe(std::span<const std::uint64_t> keys,
                                const markov::CoupledStats** out) const {
  set_cache_.probe(keys, out);
}

double Estimator::expected_comm_time(std::span<const CommNeed> needs) const {
  double e_comm = 0.0;
  long total = 0;
  for (const auto& n : needs) {
    total += n.slots;
    if (n.slots <= 0) continue;
    const auto& st = proc_stats(n.proc);
    e_comm = std::max(e_comm, st.expected_time(n.slots));
  }
  if (static_cast<int>(needs.size()) > platform_.ncom() && total > 0) {
    e_comm = std::max(e_comm, static_cast<double>(total) /
                                  static_cast<double>(platform_.ncom()));
  }
  return e_comm;
}

IterationEstimate Estimator::evaluate(std::span<const CommNeed> needs,
                                      std::span<const int> set, long w) const {
  IterationEstimate out;

  const double e_comm = expected_comm_time(needs);
  double p_comm = 1.0;
  if (e_comm > 0.0) {
    const long t = static_cast<long>(std::ceil(e_comm));
    // Every enrolled worker must avoid DOWN through the whole phase, whether
    // or not it is receiving (paper §V-B).
    for (int q : set) p_comm *= p_no_down(q, t);
  }

  const auto& st = set_stats(set);
  out.p_success = p_comm * st.success_prob(w);
  out.e_time = e_comm + st.expected_time(w);
  return out;
}

}  // namespace tcgrid::sched
