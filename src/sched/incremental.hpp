// Incremental configuration construction (paper §VI-A).
//
// Tasks are placed one at a time: each of the m tasks goes to the UP worker
// (with spare capacity) that optimizes the rule's score for the whole
// partial configuration, accounting for program/data the workers already
// hold. Ties break toward the lower processor index, which makes every
// heuristic fully deterministic given the same view.
#pragma once

#include <vector>

#include "model/configuration.hpp"
#include "sched/criteria.hpp"
#include "sched/estimator.hpp"
#include "sim/scheduler.hpp"

namespace tcgrid::sched {

/// Result of building a candidate configuration: the configuration (empty if
/// no feasible placement exists) and the estimate of the *full* iteration on
/// it. Aliases the estimator's memo entry type — build results are memoized
/// at the estimator level (shared across the schedulers and trials of a
/// scenario).
using BuiltConfiguration = MemoizedBuild;

/// FNV-1a signature of everything a (non-IY) incremental build reads from a
/// view: per-processor UP bit, has_program bit, and completed data-message
/// count. Two views with equal signatures and the same platform/application
/// (the estimator's) produce identical builds.
[[nodiscard]] std::uint64_t view_signature(const sim::SchedulerView& view);

/// Like the Estimator it drives, a builder is NOT thread-safe: build()
/// reuses internal scratch buffers (a build runs m*p candidate evaluations;
/// allocating per call would dominate it). Use one per run/thread.
class IncrementalBuilder {
 public:
  IncrementalBuilder(Rule rule, const Estimator& estimator)
      : rule_(rule), estimator_(&estimator) {}

  [[nodiscard]] Rule rule() const noexcept { return rule_; }
  [[nodiscard]] const Estimator& estimator() const noexcept { return *estimator_; }

  /// Build a configuration for the current view (assumes any existing
  /// configuration would be abandoned: partial transfers are not credited;
  /// completed program/data are, per the model). Non-IY builds are memoized
  /// in the estimator's build memo keyed by view_signature — a build is a
  /// pure function of the signed inputs plus the estimator's fixed
  /// platform/application, so hits return exactly what a rebuild would.
  /// The reference is valid until the next build through this estimator.
  [[nodiscard]] const BuiltConfiguration& build_memoized(
      const sim::SchedulerView& view) const;

  /// build_memoized, returning a copy (convenience for install paths).
  [[nodiscard]] BuiltConfiguration build(const sim::SchedulerView& view) const {
    return build_memoized(view);
  }

  /// Disable the memo (ablation: results must be identical either way; the
  /// IY rule always bypasses it — its score depends on elapsed time, which
  /// the signature cannot cover).
  void set_memo(bool on) noexcept { memo_ = on; }

  /// Estimate an arbitrary configuration from scratch under the same
  /// accounting as build() (used to score proactive candidates and, with
  /// explicit remaining quantities, the current configuration).
  [[nodiscard]] IterationEstimate estimate_fresh(const sim::SchedulerView& view,
                                                 const model::Configuration& cfg) const;

 private:
  [[nodiscard]] BuiltConfiguration build_fresh(const sim::SchedulerView& view) const;

  /// Structural identity of an un-enrolled candidate: two UP workers with
  /// equal chain, speed and holdings produce bitwise-identical estimates and
  /// scores, so only the first of each class can win the argmax (ties lose
  /// to the strictly-greater test). Clustered/homogeneous platforms collapse
  /// whole candidate loops onto a handful of classes.
  struct CandClass {
    markov::ChainId chain = 0;
    long speed = 0;
    bool has_program = false;
    int data_messages = 0;
    bool operator==(const CandClass&) const = default;
  };

  Rule rule_;
  const Estimator* estimator_;
  bool memo_ = true;

  // Scratch reused across build calls (cleared on entry, never observable
  // between calls).
  mutable BuiltConfiguration uncached_;
  mutable std::vector<int> loads_;
  mutable std::vector<int> order_;
  mutable std::vector<int> cand_set_;
  mutable std::vector<int> pos_;            // proc -> index in order_ (-1)
  mutable std::vector<long> base_slots_;    // per order member: fresh need
  mutable std::vector<double> base_e_;      // per order member: comm time
  mutable std::vector<double> pre_max_;     // prefix maxes of base comm times
  mutable std::vector<double> suf_max_;     // suffix maxes of base comm times
  mutable std::vector<CandClass> classes_;
  mutable std::vector<long> ts_;            // distinct comm horizons, one round
  mutable std::vector<double> base_prod_;   // survival product over order_ per t
};

}  // namespace tcgrid::sched
