// Incremental configuration construction (paper §VI-A).
//
// Tasks are placed one at a time: each of the m tasks goes to the UP worker
// (with spare capacity) that optimizes the rule's score for the whole
// partial configuration, accounting for program/data the workers already
// hold. Ties break toward the lower processor index, which makes every
// heuristic fully deterministic given the same view.
#pragma once

#include <vector>

#include "model/configuration.hpp"
#include "sched/criteria.hpp"
#include "sched/estimator.hpp"
#include "sim/scheduler.hpp"

namespace tcgrid::sched {

/// Result of building a candidate configuration.
struct BuiltConfiguration {
  model::Configuration config;  ///< empty if no feasible placement exists
  IterationEstimate estimate;   ///< estimate of the *full* iteration on it
};

class IncrementalBuilder {
 public:
  IncrementalBuilder(Rule rule, const Estimator& estimator)
      : rule_(rule), estimator_(&estimator) {}

  [[nodiscard]] Rule rule() const noexcept { return rule_; }
  [[nodiscard]] const Estimator& estimator() const noexcept { return *estimator_; }

  /// Build a configuration from scratch for the current view (assumes any
  /// existing configuration would be abandoned: partial transfers are not
  /// credited; completed program/data are, per the model).
  [[nodiscard]] BuiltConfiguration build(const sim::SchedulerView& view) const;

  /// Estimate an arbitrary configuration from scratch under the same
  /// accounting as build() (used to score proactive candidates and, with
  /// explicit remaining quantities, the current configuration).
  [[nodiscard]] IterationEstimate estimate_fresh(const sim::SchedulerView& view,
                                                 const model::Configuration& cfg) const;

 private:
  Rule rule_;
  const Estimator* estimator_;
};

}  // namespace tcgrid::sched
