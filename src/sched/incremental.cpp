#include "sched/incremental.hpp"

#include <algorithm>
#include <limits>

namespace tcgrid::sched {

namespace {

/// Remaining transfer slots worker q would need to run x tasks, given what
/// it already holds. Candidates are scored as if placed fresh: in-flight
/// partial transfers are not credited (they are lost on reconfiguration).
long fresh_need(const sim::SchedulerView& view, int q, int x) {
  const auto& h = view.holdings[static_cast<std::size_t>(q)];
  const auto& app = *view.app;
  long need = 0;
  if (!h.has_program && app.t_prog > 0) need += app.t_prog;
  need += static_cast<long>(std::max(0, x - h.data_messages)) * app.t_data;
  return need;
}

}  // namespace

std::uint64_t view_signature(const sim::SchedulerView& view) {
  // Two independent FNV-1a lanes over alternating workers, combined at the
  // end: the one-lane chain serializes a multiply per worker (this hash
  // runs once per proactive consult), while two lanes halve that latency.
  // Any deterministic 64-bit hash is sound here — the signature is only a
  // memo key, and collision odds are unchanged.
  std::uint64_t h0 = 1469598103934665603ULL;
  std::uint64_t h1 = 0x9e3779b97f4a7c15ULL;
  const auto pack = [&view](std::size_t q) {
    std::uint64_t v = view.states[q] == markov::State::Up ? 1 : 0;
    v |= static_cast<std::uint64_t>(view.holdings[q].has_program ? 1 : 0) << 1;
    v |= static_cast<std::uint64_t>(std::min(view.holdings[q].data_messages, 0xffff))
         << 2;
    return v + (static_cast<std::uint64_t>(q) << 32);
  };
  const std::size_t n = view.states.size();
  std::size_t q = 0;
  for (; q + 1 < n; q += 2) {
    h0 = (h0 ^ pack(q)) * 1099511628211ULL;
    h1 = (h1 ^ pack(q + 1)) * 1099511628211ULL;
  }
  if (q < n) h0 = (h0 ^ pack(q)) * 1099511628211ULL;
  return h0 ^ (h1 * 0x2545f4914f6cdd1dULL);
}

const BuiltConfiguration& IncrementalBuilder::build_memoized(
    const sim::SchedulerView& view) const {
  if (!memo_ || rule_ == Rule::IY) {
    uncached_ = build_fresh(view);
    return uncached_;
  }
  // Fold the rule into the key: rules share one estimator (and memo) within
  // a sweep scenario.
  std::uint64_t key = view_signature(view);
  key ^= static_cast<std::uint64_t>(rule_) + 0x9e3779b97f4a7c15ULL;
  key *= 1099511628211ULL;
  auto& memo = estimator_->build_memo();
  if (MemoizedBuild* hit = memo.find(key)) return *hit;
  // Build BEFORE the key becomes visible: an exception out of build_fresh
  // must not leave an empty configuration memoized as a valid hit.
  MemoizedBuild built = build_fresh(view);
  MemoizedBuild& slot = memo.insert(key);
  slot = std::move(built);
  return slot;
}

BuiltConfiguration IncrementalBuilder::build_fresh(const sim::SchedulerView& view) const {
  const auto& plat = *view.platform;
  const int p = plat.size();
  const int m = view.app->num_tasks;

  auto& loads = loads_;  // per-proc task counts of the partial configuration
  loads.assign(static_cast<std::size_t>(p), 0);
  auto& order = order_;  // enrollment order of workers with >= 1 task
  order.clear();

  // Scratch buffers reused across candidate evaluations.
  auto& cand_set = cand_set_;
  auto& cand_needs = cand_needs_;
  IterationEstimate chosen_est{};

  long w_current = 0;  // max_q loads[q] * w_q over enrolled workers

  for (int task = 0; task < m; ++task) {
    int best = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    IterationEstimate best_est{};

    for (int q = 0; q < p; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (view.states[qi] != markov::State::Up) continue;
      if (loads[qi] >= plat.proc(q).max_tasks) continue;

      // Candidate: one more task on q.
      const int xq = loads[qi] + 1;
      const long wq = plat.proc(q).speed;
      const long w_cand = std::max(w_current, static_cast<long>(xq) * wq);

      cand_set.clear();
      cand_needs.clear();
      bool q_in_set = false;
      for (int r : order) {
        cand_set.push_back(r);
        const int xr = r == q ? xq : loads[static_cast<std::size_t>(r)];
        if (r == q) q_in_set = true;
        cand_needs.push_back({r, fresh_need(view, r, xr)});
      }
      if (!q_in_set) {
        cand_set.push_back(q);
        cand_needs.push_back({q, fresh_need(view, q, xq)});
      }

      const IterationEstimate est = estimator_->evaluate(cand_needs, cand_set, w_cand);
      const double score = rule_score(rule_, est, view.iteration_elapsed);
      if (score > best_score) {
        best_score = score;
        best = q;
        best_est = est;
      }
    }

    if (best < 0) return {};  // not enough UP capacity for all m tasks
    const auto bi = static_cast<std::size_t>(best);
    if (loads[bi] == 0) order.push_back(best);
    ++loads[bi];
    w_current = std::max(w_current,
                         static_cast<long>(loads[bi]) * plat.proc(best).speed);
    chosen_est = best_est;
  }

  std::vector<model::Assignment> assignments;
  assignments.reserve(order.size());
  for (int q : order) assignments.push_back({q, loads[static_cast<std::size_t>(q)]});
  return {model::Configuration(std::move(assignments)), chosen_est};
}

IterationEstimate IncrementalBuilder::estimate_fresh(
    const sim::SchedulerView& view, const model::Configuration& cfg) const {
  std::vector<int> set;
  std::vector<Estimator::CommNeed> needs;
  set.reserve(cfg.size());
  needs.reserve(cfg.size());
  for (const auto& a : cfg.assignments()) {
    set.push_back(a.proc);
    needs.push_back({a.proc, fresh_need(view, a.proc, a.tasks)});
  }
  return estimator_->evaluate(needs, set, cfg.compute_slots(view.platform->speeds()));
}

}  // namespace tcgrid::sched
