#include "sched/incremental.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace tcgrid::sched {

namespace {

/// Remaining transfer slots worker q would need to run x tasks, given what
/// it already holds. Candidates are scored as if placed fresh: in-flight
/// partial transfers are not credited (they are lost on reconfiguration).
long fresh_need(const sim::SchedulerView& view, int q, int x) {
  const auto& h = view.holdings[static_cast<std::size_t>(q)];
  const auto& app = *view.app;
  long need = 0;
  if (!h.has_program && app.t_prog > 0) need += app.t_prog;
  need += static_cast<long>(std::max(0, x - h.data_messages)) * app.t_data;
  return need;
}

}  // namespace

std::uint64_t view_signature(const sim::SchedulerView& view) {
  // Two independent FNV-1a lanes over alternating workers, combined at the
  // end: the one-lane chain serializes a multiply per worker (this hash
  // runs once per proactive consult), while two lanes halve that latency.
  // Any deterministic 64-bit hash is sound here — the signature is only a
  // memo key, and collision odds are unchanged.
  std::uint64_t h0 = 1469598103934665603ULL;
  std::uint64_t h1 = 0x9e3779b97f4a7c15ULL;
  const auto pack = [&view](std::size_t q) {
    std::uint64_t v = view.states[q] == markov::State::Up ? 1 : 0;
    v |= static_cast<std::uint64_t>(view.holdings[q].has_program ? 1 : 0) << 1;
    v |= static_cast<std::uint64_t>(std::min(view.holdings[q].data_messages, 0xffff))
         << 2;
    return v + (static_cast<std::uint64_t>(q) << 32);
  };
  const std::size_t n = view.states.size();
  std::size_t q = 0;
  for (; q + 1 < n; q += 2) {
    h0 = (h0 ^ pack(q)) * 1099511628211ULL;
    h1 = (h1 ^ pack(q + 1)) * 1099511628211ULL;
  }
  if (q < n) h0 = (h0 ^ pack(q)) * 1099511628211ULL;
  return h0 ^ (h1 * 0x2545f4914f6cdd1dULL);
}

const BuiltConfiguration& IncrementalBuilder::build_memoized(
    const sim::SchedulerView& view) const {
  if (!memo_ || rule_ == Rule::IY) {
    uncached_ = build_fresh(view);
    return uncached_;
  }
  // Fold the rule into the key: rules share one estimator (and memo) within
  // a sweep scenario.
  std::uint64_t key = view_signature(view);
  key ^= static_cast<std::uint64_t>(rule_) + 0x9e3779b97f4a7c15ULL;
  key *= 1099511628211ULL;
  auto& memo = estimator_->build_memo();
  if (MemoizedBuild* hit = memo.find(key)) return *hit;
  // Build BEFORE the key becomes visible: an exception out of build_fresh
  // must not leave an empty configuration memoized as a valid hit.
  MemoizedBuild built = build_fresh(view);
  MemoizedBuild& slot = memo.insert(key);
  slot = std::move(built);
  return slot;
}

// Round-incremental candidate evaluation. The reference semantics — for each
// of the m placement rounds, score every eligible worker q by
// Estimator::evaluate over the partial configuration plus one task on q —
// rebuilt the O(k) needs/set vectors and re-ran the O(k) comm-time max,
// survival product and set-key fold PER CANDIDATE, making each round O(p*k)
// even though every candidate shares the same k-member base. The round now
// precomputes the shared parts once and derives each candidate in O(1),
// bit-identically to the reference evaluate() calls:
//   * e_comm: max() over doubles is order-free and exact, so prefix/suffix
//     maxes over the enrolled order answer "max excluding position i" for
//     enrolled candidates and the full prefix max answers un-enrolled ones;
//     the integer slot total is exact in any order.
//   * p_comm: the survival product IS order-sensitive FP, so the shared base
//     product over the enrolled order is accumulated in enrollment order —
//     exactly evaluate()'s in-set factor order — lazily once per distinct
//     comm horizon t seen in the round, and an un-enrolled candidate appends
//     its own factor LAST, matching its position in the reference set. An
//     enrolled candidate's own factor is p_no_down(q, t), independent of its
//     load, so its product is the base product unchanged.
//   * set_stats: the candidate key is base_mask | 1 << q (O(1) instead of
//     re-folding the set), answered by the inline front-cache probe; misses
//     resolve through the store exactly as before.
//   * un-enrolled workers with identical (chain, speed, holdings) produce
//     bitwise-identical estimates and scores; the argmax keeps the first on
//     ties (strictly-greater test), so later clones are skipped outright.
BuiltConfiguration IncrementalBuilder::build_fresh(const sim::SchedulerView& view) const {
  const auto& plat = *view.platform;
  const int p = plat.size();
  const int m = view.app->num_tasks;
  const int ncom = plat.ncom();

  auto& loads = loads_;  // per-proc task counts of the partial configuration
  loads.assign(static_cast<std::size_t>(p), 0);
  auto& order = order_;  // enrollment order of workers with >= 1 task
  order.clear();
  pos_.assign(static_cast<std::size_t>(p), -1);

  IterationEstimate chosen_est{};
  long w_current = 0;  // max_q loads[q] * w_q over enrolled workers
  std::uint64_t base_mask = 0;

  for (int task = 0; task < m; ++task) {
    // Base arrays over the enrolled order: per-member fresh needs and comm
    // times at the current loads, their prefix/suffix maxes, and the slot
    // total. Members with zero need contribute 0.0 to the maxes, which the
    // reference max — started at 0.0 — also ignores.
    const std::size_t k = order.size();
    base_slots_.resize(k);
    base_e_.resize(k);
    pre_max_.resize(k + 1);
    suf_max_.resize(k + 1);
    long total_base = 0;
    pre_max_[0] = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      const int r = order[i];
      const long slots = fresh_need(view, r, loads[static_cast<std::size_t>(r)]);
      base_slots_[i] = slots;
      total_base += slots;
      base_e_[i] =
          slots > 0 ? estimator_->proc_stats(r).expected_time(slots) : 0.0;
      pre_max_[i + 1] = std::max(pre_max_[i], base_e_[i]);
    }
    suf_max_[k] = 0.0;
    for (std::size_t i = k; i-- > 0;) {
      suf_max_[i] = std::max(suf_max_[i + 1], base_e_[i]);
    }
    ts_.clear();        // distinct comm horizons of this round...
    base_prod_.clear(); // ...and the base survival product at each
    classes_.clear();

    int best = -1;
    double best_score = -std::numeric_limits<double>::infinity();
    IterationEstimate best_est{};

    for (int q = 0; q < p; ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (view.states[qi] != markov::State::Up) continue;
      if (loads[qi] >= plat.proc(q).max_tasks) continue;

      const bool in_order = loads[qi] > 0;
      if (!in_order) {
        const CandClass cls{estimator_->chain_id(q), plat.proc(q).speed,
                            view.holdings[qi].has_program,
                            view.holdings[qi].data_messages};
        bool dup = false;
        for (const CandClass& seen : classes_) {
          if (seen == cls) {
            dup = true;
            break;
          }
        }
        if (dup) continue;  // bitwise tie with an earlier candidate: cannot win
        classes_.push_back(cls);
      }

      // Candidate: one more task on q.
      const int xq = loads[qi] + 1;
      const long wq = plat.proc(q).speed;
      const long w_cand = std::max(w_current, static_cast<long>(xq) * wq);
      const long slots_q = fresh_need(view, q, xq);
      const double e_q =
          slots_q > 0 ? estimator_->proc_stats(q).expected_time(slots_q) : 0.0;

      double e_comm;
      long total = total_base + slots_q;
      std::size_t nneeds = k;
      if (in_order) {
        const auto i = static_cast<std::size_t>(pos_[qi]);
        e_comm = std::max(std::max(pre_max_[i], suf_max_[i + 1]), e_q);
        total -= base_slots_[i];
      } else {
        e_comm = std::max(pre_max_[k], e_q);
        nneeds = k + 1;
      }
      if (static_cast<int>(nneeds) > ncom && total > 0) {
        e_comm = std::max(
            e_comm, static_cast<double>(total) / static_cast<double>(ncom));
      }

      double p_comm = 1.0;
      if (e_comm > 0.0) {
        const long t = static_cast<long>(std::ceil(e_comm));
        if (k > 0) {
          std::size_t j = 0;
          while (j < ts_.size() && ts_[j] != t) ++j;
          if (j == ts_.size()) {
            double base = 1.0;
            for (int r : order) base *= estimator_->p_no_down(r, t);
            ts_.push_back(t);
            base_prod_.push_back(base);
          }
          p_comm = base_prod_[j];
        }
        if (!in_order) p_comm *= estimator_->p_no_down(q, t);
      }

      const std::uint64_t key = base_mask | (std::uint64_t{1} << q);
      const markov::CoupledStats* st = estimator_->set_stats_cached(key);
      if (st == nullptr) {
        // Front miss (rare after warm-up): resolve through the store.
        cand_set_.clear();
        for (int r : order) cand_set_.push_back(r);
        if (!in_order) cand_set_.push_back(q);
        st = &estimator_->set_stats_masked(key, cand_set_);
      }

      IterationEstimate est;
      est.p_success = p_comm * st->success_prob(w_cand);
      est.e_time = e_comm + st->expected_time(w_cand);
      const double score = rule_score(rule_, est, view.iteration_elapsed);
      if (score > best_score) {
        best_score = score;
        best = q;
        best_est = est;
      }
    }

    if (best < 0) return {};  // not enough UP capacity for all m tasks
    const auto bi = static_cast<std::size_t>(best);
    if (loads[bi] == 0) {
      pos_[bi] = static_cast<int>(order.size());
      order.push_back(best);
      base_mask |= std::uint64_t{1} << best;
    }
    ++loads[bi];
    w_current = std::max(w_current,
                         static_cast<long>(loads[bi]) * plat.proc(best).speed);
    chosen_est = best_est;
  }

  std::vector<model::Assignment> assignments;
  assignments.reserve(order.size());
  for (int q : order) assignments.push_back({q, loads[static_cast<std::size_t>(q)]});
  return {model::Configuration(std::move(assignments)), chosen_est};
}

IterationEstimate IncrementalBuilder::estimate_fresh(
    const sim::SchedulerView& view, const model::Configuration& cfg) const {
  std::vector<int> set;
  std::vector<Estimator::CommNeed> needs;
  set.reserve(cfg.size());
  needs.reserve(cfg.size());
  for (const auto& a : cfg.assignments()) {
    set.push_back(a.proc);
    needs.push_back({a.proc, fresh_need(view, a.proc, a.tasks)});
  }
  return estimator_->evaluate(needs, set, cfg.compute_slots(view.platform->speeds()));
}

}  // namespace tcgrid::sched
