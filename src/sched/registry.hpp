// Heuristic factory keyed by the paper's names ("IE", "Y-IE", "RANDOM", ...).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sched/estimator.hpp"
#include "sim/scheduler.hpp"

namespace tcgrid::sched {

/// All 17 heuristic names evaluated by the paper, in a stable order:
/// RANDOM, the 4 passive heuristics, then the 12 proactive combinations.
[[nodiscard]] const std::vector<std::string>& all_heuristic_names();

/// The 8 heuristics reported in Table II / Figure 2 (best performers + IE).
[[nodiscard]] const std::vector<std::string>& tableii_heuristic_names();

/// Extension heuristics beyond the paper's 17: knowledge-light literature
/// baselines (FASTEST, MOSTAVAIL, UPTIME) and model-free adaptive variants
/// (ADAPT-IE, ADAPT-Y-IE, ...). All accepted by make_scheduler.
[[nodiscard]] const std::vector<std::string>& extension_heuristic_names();

/// Instantiate a scheduler by paper name. `seed` only matters for RANDOM.
/// Throws std::invalid_argument for unknown names. The estimator must
/// outlive the scheduler.
[[nodiscard]] std::unique_ptr<sim::Scheduler> make_scheduler(std::string_view name,
                                                             const Estimator& estimator,
                                                             std::uint64_t seed = 0);

/// True if `name` is a valid heuristic name.
[[nodiscard]] bool is_heuristic_name(std::string_view name);

}  // namespace tcgrid::sched
