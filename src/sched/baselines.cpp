#include "sched/baselines.hpp"

#include <algorithm>
#include <stdexcept>

#include "sched/heuristics.hpp"

namespace tcgrid::sched {

namespace {

/// Shared round-robin placement over a ranked list of UP workers: one task
/// to each of the top min(m, |ranked|) workers, cycling while respecting
/// mu_q. Returns an empty configuration if capacity is insufficient.
model::Configuration round_robin(const sim::SchedulerView& view,
                                 const std::vector<int>& ranked) {
  const int m = view.app->num_tasks;
  if (ranked.empty()) return {};
  const int width = std::min<int>(m, static_cast<int>(ranked.size()));

  std::vector<int> loads(ranked.size(), 0);
  int placed = 0;
  // Cycle over the top `width` workers; skip saturated ones.
  for (int round = 0; placed < m; ++round) {
    bool progressed = false;
    for (int i = 0; i < width && placed < m; ++i) {
      const int q = ranked[static_cast<std::size_t>(i)];
      if (loads[static_cast<std::size_t>(i)] >=
          view.platform->proc(q).max_tasks) {
        continue;
      }
      ++loads[static_cast<std::size_t>(i)];
      ++placed;
      progressed = true;
    }
    if (!progressed) return {};  // all top workers saturated
  }

  std::vector<model::Assignment> assignments;
  for (int i = 0; i < width; ++i) {
    if (loads[static_cast<std::size_t>(i)] > 0) {
      assignments.push_back({ranked[static_cast<std::size_t>(i)],
                             loads[static_cast<std::size_t>(i)]});
    }
  }
  return model::Configuration(std::move(assignments));
}

std::vector<int> up_workers(const sim::SchedulerView& view) {
  std::vector<int> up;
  for (int q = 0; q < view.platform->size(); ++q) {
    if (view.states[static_cast<std::size_t>(q)] == markov::State::Up) {
      up.push_back(q);
    }
  }
  return up;
}

}  // namespace

// ------------------------------------------------------------- FASTEST ----

std::optional<model::Configuration> FastestScheduler::decide(
    const sim::SchedulerView& view) {
  if (view.has_config()) {
    q_.kind = sim::Quiescence::Kind::WhileConfigured;
    return std::nullopt;
  }
  // Idle decisions are a pure function of the UP set (holdings-blind).
  q_.kind = sim::Quiescence::Kind::UntilUpSetChanges;
  const auto& plat = *view.platform;
  const int m = view.app->num_tasks;

  std::vector<int> loads(static_cast<std::size_t>(plat.size()), 0);
  std::vector<int> order;
  for (int task = 0; task < m; ++task) {
    int best = -1;
    long best_load = 0;
    for (int q = 0; q < plat.size(); ++q) {
      const auto qi = static_cast<std::size_t>(q);
      if (view.states[qi] != markov::State::Up) continue;
      if (loads[qi] >= plat.proc(q).max_tasks) continue;
      const long load = static_cast<long>(loads[qi] + 1) * plat.proc(q).speed;
      if (best < 0 || load < best_load) {
        best = q;
        best_load = load;
      }
    }
    if (best < 0) return std::nullopt;
    if (loads[static_cast<std::size_t>(best)] == 0) order.push_back(best);
    ++loads[static_cast<std::size_t>(best)];
  }

  std::vector<model::Assignment> assignments;
  for (int q : order) assignments.push_back({q, loads[static_cast<std::size_t>(q)]});
  return model::Configuration(std::move(assignments));
}

// ----------------------------------------------------------- MOSTAVAIL ----

std::optional<model::Configuration> MostAvailableScheduler::decide(
    const sim::SchedulerView& view) {
  if (view.has_config()) {
    q_.kind = sim::Quiescence::Kind::WhileConfigured;
    return std::nullopt;
  }
  q_.kind = sim::Quiescence::Kind::UntilUpSetChanges;
  auto ranked = up_workers(view);
  const auto& plat = *view.platform;
  std::stable_sort(ranked.begin(), ranked.end(), [&](int a, int b) {
    const double av_a = plat.proc(a).availability.availability();
    const double av_b = plat.proc(b).availability.availability();
    if (av_a != av_b) return av_a > av_b;
    return plat.proc(a).speed < plat.proc(b).speed;
  });
  auto cfg = round_robin(view, ranked);
  if (cfg.empty()) return std::nullopt;
  return cfg;
}

// -------------------------------------------------------------- UPTIME ----

void UptimeScheduler::observe(const sim::SchedulerView& view) {
  if (streaks_.empty()) {
    streaks_.assign(view.states.size(), 0);
  }
  if (view.slot == last_slot_) return;  // already observed this slot
  last_slot_ = view.slot;
  for (std::size_t q = 0; q < view.states.size(); ++q) {
    if (view.states[q] == markov::State::Up) ++streaks_[q];
    else streaks_[q] = 0;
  }
}

std::optional<model::Configuration> UptimeScheduler::decide(
    const sim::SchedulerView& view) {
  observe(view);
  if (view.has_config()) return std::nullopt;
  auto ranked = up_workers(view);
  const auto& plat = *view.platform;
  std::stable_sort(ranked.begin(), ranked.end(), [&](int a, int b) {
    const long sa = streaks_[static_cast<std::size_t>(a)];
    const long sb = streaks_[static_cast<std::size_t>(b)];
    if (sa != sb) return sa > sb;
    return plat.proc(a).speed < plat.proc(b).speed;
  });
  auto cfg = round_robin(view, ranked);
  if (cfg.empty()) return std::nullopt;
  return cfg;
}

// ------------------------------------------------------------ ADAPT-* ----

AdaptiveScheduler::AdaptiveScheduler(std::optional<Criterion> criterion, Rule rule,
                                     const platform::Platform& real_platform,
                                     const model::Application& app, double eps,
                                     long refit_interval, double smoothing)
    : criterion_(criterion),
      rule_(rule),
      real_platform_(real_platform),
      app_(app),
      eps_(eps),
      refit_interval_(refit_interval),
      smoothing_(smoothing) {
  if (refit_interval_ < 1) {
    throw std::invalid_argument("AdaptiveScheduler: refit_interval < 1");
  }
  if (smoothing_ <= 0.0) {
    throw std::invalid_argument("AdaptiveScheduler: smoothing must be positive");
  }
  name_ = "ADAPT-";
  if (criterion_) name_ += std::string(to_string(*criterion_)) + "-";
  name_ += to_string(rule_);
  counts_.assign(static_cast<std::size_t>(real_platform_.size()), {});
  // Weak "sticky states" prior (a handful of pseudo-observations on the
  // diagonal): before any evidence, assume availability persists rather
  // than the uniform chaos bare smoothing would imply. Washes out quickly.
  for (auto& c : counts_) {
    for (std::size_t i = 0; i < 3; ++i) c[i][i] = 8.0;
  }
  refit();
}

markov::TransitionMatrix AdaptiveScheduler::fitted(int q) const {
  return believed_->proc(q).availability;
}

void AdaptiveScheduler::observe(const sim::SchedulerView& view) {
  if (view.slot == last_slot_) return;
  last_slot_ = view.slot;
  if (!prev_states_.empty()) {
    for (std::size_t q = 0; q < view.states.size(); ++q) {
      const auto from = static_cast<std::size_t>(prev_states_[q]);
      const auto to = static_cast<std::size_t>(view.states[q]);
      counts_[q][from][to] += 1.0;
    }
  }
  prev_states_.assign(view.states.begin(), view.states.end());
}

void AdaptiveScheduler::refit() {
  std::vector<platform::Processor> believed(real_platform_.procs().begin(),
                                            real_platform_.procs().end());
  for (std::size_t q = 0; q < believed.size(); ++q) {
    std::array<std::array<double, 3>, 3> p{};
    for (std::size_t i = 0; i < 3; ++i) {
      double total = 3.0 * smoothing_;
      for (std::size_t j = 0; j < 3; ++j) total += counts_[q][i][j];
      for (std::size_t j = 0; j < 3; ++j) {
        p[i][j] = (counts_[q][i][j] + smoothing_) / total;
      }
    }
    believed[q].availability = markov::TransitionMatrix(p);
  }
  believed_ = std::make_unique<platform::Platform>(std::move(believed),
                                                   real_platform_.ncom());
  estimator_ = std::make_unique<Estimator>(*believed_, app_, eps_);
  inner_ = make_inner();
  last_refit_ = last_slot_;
}

std::unique_ptr<sim::Scheduler> AdaptiveScheduler::make_inner() const {
  if (criterion_) {
    return std::make_unique<ProactiveScheduler>(*criterion_, rule_, *estimator_);
  }
  return std::make_unique<PassiveScheduler>(rule_, *estimator_);
}

std::optional<model::Configuration> AdaptiveScheduler::decide(
    const sim::SchedulerView& view) {
  observe(view);
  if (view.slot - last_refit_ >= refit_interval_) refit();
  return inner_->decide(view);
}

}  // namespace tcgrid::sched
