// Estimator: the paper's §V quantities packaged for scheduling decisions.
//
// Given a candidate set of enrolled workers with per-worker remaining
// communication needs and a remaining coupled workload W, produces the
// probability that the iteration completes with no enrolled worker going
// DOWN, and the (approximate) expected number of slots it takes:
//
//   computation (§V-A):  P_comp = P+(S)^(W-1)
//                        E_comp = (1 + (W-1) E_c) / P+(S)^(W-1)
//   communication (§V-B): E_comm = max_q E^{(q)}(n_q)            if |S| <= ncom
//                         E_comm = max(that,  sum n_q / ncom)    otherwise
//                         P_comm = prod_q P_ND^{(q)}(E_comm)
//   iteration:           P = P_comm * P_comp,  E = E_comm + E_comp
//
// Set-level statistics are memoized by membership bitmask (the platform is
// fixed per run), and per-processor survival rows are tabulated lazily, so
// the incremental heuristics' O(m*p) candidate evaluations per decision are
// cheap after warm-up. Instances are NOT thread-safe; use one per run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "markov/series.hpp"
#include "model/application.hpp"
#include "model/configuration.hpp"
#include "platform/platform.hpp"

namespace tcgrid::sched {

/// Probability of success and expected duration of (the remainder of) an
/// iteration on a candidate configuration.
struct IterationEstimate {
  double p_success = 1.0;
  double e_time = 0.0;
};

/// One memoized incremental build (see IncrementalBuilder): the chosen
/// configuration and its full-iteration estimate.
struct MemoizedBuild {
  model::Configuration config;
  IterationEstimate estimate;
};

class Estimator {
 public:
  /// eps: truncation precision of the Theorem 5.1 series.
  Estimator(const platform::Platform& platform, const model::Application& app,
            double eps = 1e-9);

  /// Remaining communication need of one enrolled worker.
  struct CommNeed {
    int proc = -1;
    long slots = 0;  ///< n_q: remaining transfer slots (program + data)
  };

  /// Full §V estimate: communication for `needs`, then W coupled compute
  /// slots on `set`. `needs` must cover exactly the workers of `set`
  /// (zero-slot entries allowed). `w` is the *remaining* workload.
  [[nodiscard]] IterationEstimate evaluate(std::span<const CommNeed> needs,
                                           std::span<const int> set, long w) const;

  /// Coupled-computation statistics of a worker set (memoized).
  [[nodiscard]] const markov::CoupledStats& set_stats(std::span<const int> set) const;

  /// Single-worker statistics (used for per-worker communication times).
  [[nodiscard]] const markov::CoupledStats& proc_stats(int q) const {
    return per_proc_[static_cast<std::size_t>(q)];
  }

  /// P_ND^{(q)}(t): probability that q (UP now) avoids DOWN for t slots.
  /// Table-hit fast path inline: this sits under every §V-B evaluation
  /// (two calls per evaluate, tens of millions per sweep), where the
  /// out-of-line call itself was measurable. Lazy table growth stays out
  /// of line.
  [[nodiscard]] double p_no_down(int q, long t) const {
    if (t <= 0) return 1.0;
    const auto& table = survival_[static_cast<std::size_t>(q)].table;
    if (static_cast<std::size_t>(t) < table.size()) {
      return table[static_cast<std::size_t>(t)];
    }
    return p_no_down_grow(q, t);
  }

  /// Expected communication-phase duration alone (paper §V-B).
  [[nodiscard]] double expected_comm_time(std::span<const CommNeed> needs) const;

  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] const platform::Platform& platform() const noexcept { return platform_; }
  [[nodiscard]] const model::Application& app() const noexcept { return app_; }

  /// Number of distinct worker sets memoized so far (observability/tests).
  [[nodiscard]] std::size_t cached_sets() const noexcept { return set_cache_.size(); }

  /// Shared memo of incremental builds, keyed by (rule, input-signature) —
  /// see IncrementalBuilder::build. It lives here, not in the per-trial
  /// schedulers, because the estimator is the one object a sweep shares
  /// across all trials and heuristics of a scenario: restarts re-enter the
  /// same (UP set, holdings) signatures over and over across trials, and a
  /// build is a pure function of the signed inputs, so a memo hit returns
  /// exactly what a rebuild would. Open-addressed for the same reason as
  /// SetCache: the lookup runs once per proactive consult, where bucket
  /// chasing was measurable. Bounded like the set cache.
  class BuildMemo {
   public:
    /// The memoized build for `key`, or nullptr. The pointer is stable
    /// across growth (values live in stable chunks).
    [[nodiscard]] MemoizedBuild* find(std::uint64_t key) noexcept;
    /// Insert a slot for `key` (which must be absent) and return it. Split
    /// from find() so callers can run the (throwing) build BEFORE the key
    /// becomes visible — a lookup-then-build API would memoize an empty
    /// configuration if the build threw mid-sweep.
    MemoizedBuild& insert(std::uint64_t key);
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    void clear();

   private:
    void grow();
    struct Entry {
      std::uint64_t key = 0;
      std::int32_t slot = -1;  // -1 = empty
    };
    std::vector<Entry> table_;  // power-of-two capacity
    static constexpr std::size_t kChunk = 64;
    std::vector<std::unique_ptr<MemoizedBuild[]>> chunks_;
    std::size_t size_ = 0;
  };

  [[nodiscard]] BuildMemo& build_memo() const {
    if (build_memo_.size() >= std::size_t{1} << 20) build_memo_.clear();
    return build_memo_;
  }

 private:
  /// Extend (or start) worker q's survival table through t (p_no_down's
  /// slow path; see the underflow-cap note in the implementation).
  double p_no_down_grow(int q, long t) const;

  /// Open-addressing bitmask -> CoupledStats memo. set_stats sits on the
  /// m*p-evaluations-per-decision hot path, where std::unordered_map's
  /// bucket chasing is measurable; linear probing over a power-of-two table
  /// of (key, slot) pairs is 2-3x cheaper per hit. Values live in a stable
  /// deque-like store so returned references survive growth.
  class SetCache {
   public:
    /// Returns the value slot for `key`, default-constructing it (and
    /// setting `fresh`) on first sight.
    markov::CoupledStats& lookup(std::uint64_t key, bool& fresh);
    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    void clear();

   private:
    void grow();
    struct Entry {
      std::uint64_t key = 0;
      std::int32_t slot = -1;  // -1 = empty
    };
    std::vector<Entry> table_;  // power-of-two capacity
    static constexpr std::size_t kChunk = 256;
    std::vector<std::unique_ptr<markov::CoupledStats[]>> chunks_;
    std::size_t size_ = 0;
  };

  const platform::Platform& platform_;
  const model::Application& app_;
  double eps_;

  std::vector<markov::UrMatrix> ur_;               // per-processor UR sub-matrix
  std::vector<markov::CoupledStats> per_proc_;     // coupled_stats({q})
  /// Per-worker survival table plus the UR row standing at its last entry,
  /// so an extension continues advancing instead of replaying the whole
  /// prefix (tables reach tens of thousands of entries before the
  /// underflow cap; the replay was quadratic-ish and showed up in sweeps).
  /// The advance sequence is unchanged, so the tabulated doubles are
  /// bit-identical to the replayed ones.
  struct SurvivalTable {
    std::vector<double> table;  ///< table[k] = P(not DOWN within k slots)
    markov::UrRow row;          ///< e_U^T M^k for k = table.size() - 1
  };
  mutable std::vector<SurvivalTable> survival_;  // P_ND tables, lazily grown
  mutable SetCache set_cache_;
  mutable std::vector<markov::UrMatrix> scratch_;  // reused per set_stats call
  mutable BuildMemo build_memo_;
};

}  // namespace tcgrid::sched
